//! Workspace facade for the RSSD (ASPLOS'22) reproduction.
//!
//! Re-exports the per-subsystem crates so examples and integration tests can
//! use a single dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the experiment index.

pub use rssd_array as array;
pub use rssd_attacks as attacks;
pub use rssd_bench as bench_support;
pub use rssd_compress as compress;
pub use rssd_core as core;
pub use rssd_crypto as crypto;
pub use rssd_detect as detect;
pub use rssd_faults as faults;
pub use rssd_flash as flash;
pub use rssd_fleet as fleet;
pub use rssd_ftl as ftl;
pub use rssd_net as net;
pub use rssd_obs as obs;
pub use rssd_remote as remote;
pub use rssd_ssd as ssd;
pub use rssd_trace as trace;
