#!/usr/bin/env python3
"""Structural validator for the dual-timeline Chrome traces rssd-obs emits.

Usage: check_trace.py TRACE.json [TRACE2.json ...]

Checks, per trace file:

* the document is a Chrome trace-event JSON array (or an object with a
  "traceEvents" array) and every event is well-formed for its phase:
  "X" spans carry numeric ts and dur >= 0, "i" instants carry ts and a
  scope, "M" metadata names its thread;
* every (pid, tid) an event lands on is named by thread_name metadata —
  that name is the track;
* the dual timeline is intact: every sim event carries host_ns in args;
* sim-time is monotone (non-decreasing ts) per track in emission order —
  each track renders one simulated clock (NAND unit, GC, uplink, member),
  so time can never step backwards within it;
* the wire-loss pairing invariant: on every track, each retransmission
  of a (segment, fragment) is preceded by at least as many data-frame
  losses of that same (segment, fragment) — retransmissions never appear
  out of thin air (ack losses may add unpaired losses; that is the
  asymmetry of the go-back-to-retry protocol, and it is allowed).

Exit 0 with a summary line when every file passes, exit 1 listing every
violation otherwise.
"""

import json
import sys
from pathlib import Path


def load_events(path: Path) -> list[dict]:
    data = json.loads(path.read_text())
    if isinstance(data, dict):
        data = data.get("traceEvents", [])
    if not isinstance(data, list):
        raise ValueError("not a trace-event array")
    return data


def check_trace(path: Path) -> tuple[list[str], str]:
    failures: list[str] = []
    try:
        events = load_events(path)
    except (ValueError, json.JSONDecodeError) as err:
        return [f"{path}: unparseable trace: {err}"], ""

    # Track naming: thread_name metadata maps (pid, tid) -> track.
    tracks: dict[tuple, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            name = ev.get("args", {}).get("name")
            if not name:
                failures.append(f"{path}: thread_name metadata without a name")
                continue
            tracks[(ev.get("pid"), ev.get("tid"))] = name

    last_ts: dict[str, float] = {}
    # Wire pairing state, per track: (segment, fragment) -> pending loss
    # count not yet consumed by a retransmission.
    data_losses: dict[tuple, int] = {}
    spans = instants = 0

    for index, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        where = f"{path}: event {index} ({ev.get('name', '?')})"
        if ph not in ("X", "i"):
            failures.append(f"{where}: unexpected phase {ph!r}")
            continue
        key = (ev.get("pid"), ev.get("tid"))
        track = tracks.get(key)
        if track is None:
            failures.append(f"{where}: lands on unnamed track {key}")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            failures.append(f"{where}: non-numeric ts {ts!r}")
            continue
        args = ev.get("args", {})
        if "host_ns" not in args:
            failures.append(f"{where}: missing host_ns - dual timeline broken")
        if ph == "X":
            spans += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                failures.append(f"{where}: span with bad dur {dur!r}")
        else:
            instants += 1
            if "s" not in ev:
                failures.append(f"{where}: instant without a scope")

        # Per-track monotone simulated time, in emission order.
        prev = last_ts.get(track)
        if prev is not None and ts < prev:
            failures.append(
                f"{where}: sim-time regressed on track {track!r} "
                f"({prev} -> {ts} us)")
        last_ts[track] = ts

        # Wire pairing: count data losses, consume one per retransmission.
        name = ev.get("name")
        if name == "link_loss" and args.get("kind", "data") == "data":
            frag = (track, args.get("segment_seq"), args.get("fragment"))
            data_losses[frag] = data_losses.get(frag, 0) + 1
        elif name == "retransmission":
            frag = (track, args.get("segment_seq"), args.get("fragment"))
            if data_losses.get(frag, 0) <= 0:
                failures.append(
                    f"{where}: retransmission of segment "
                    f"{args.get('segment_seq')} fragment {args.get('fragment')} "
                    f"on {track!r} without a preceding data-frame loss")
            else:
                data_losses[frag] -= 1

    if not tracks:
        failures.append(f"{path}: no named tracks - empty or metadata-free trace")
    summary = (f"{path.name}: {len(tracks)} tracks, {spans} spans, "
               f"{instants} instants")
    return failures, summary


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip().splitlines()[2])
    failures: list[str] = []
    summaries: list[str] = []
    for arg in sys.argv[1:]:
        file_failures, summary = check_trace(Path(arg))
        failures.extend(file_failures)
        if summary:
            summaries.append(summary)
    if failures:
        for failure in failures[:50]:
            print(f"FAIL: {failure}")
        if len(failures) > 50:
            print(f"... and {len(failures) - 50} more")
        sys.exit(1)
    print("trace gate: OK (" + "; ".join(summaries) +
          " - monotone per track, spans well-formed, dual timeline intact, "
          "retransmissions paired with losses)")


if __name__ == "__main__":
    main()
