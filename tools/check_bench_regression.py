#!/usr/bin/env python3
"""Bench regression gate for the perf-tracking JSON summaries.

Parses BENCH_qd_sweep.json (written by `cargo bench --bench qd_sweep`) and
fails the build unless the device-internal parallelism holds:

* QD32 throughput >= 2x QD1 for each model on the default 4-channel
  geometry (the PR acceptance gate),
* throughput rises monotonically with queue depth per model,
* the rssd rows are not identical to the plain rows (RSSD's overhead is
  real),
* p50 < p99 in at least one row (the log-linear histogram satellite), and
* the rssd QD32 replay clears a host wall-clock throughput floor — the
  zero-copy offload wire path is a tracked perf surface; re-introducing
  the per-hop serialization copies would land ~3x below the floor.

Also sanity-checks BENCH_array_scaling.json's 1 -> 4 shard monotonicity,
BENCH_offload_wire.json's link physics (datacenter out-runs WAN, lossy
links pay in retransmissions, recovery-window integrity holds on every
link), and BENCH_fleet.json's fleet-scale surface (simulated results
byte-identical across worker counts, detection recall and zero false
positives at every fleet size, a sim-throughput floor at 256 members, and
core-aware worker-pool scaling), and BENCH_degradation.json's offload
health slope (Throttled throughput strictly between Stalled and Healthy
and >= 25% of it, post-heal drain completes, zero evidence loss across
outage and crash), so the artifacts uploaded by CI are never regressed
ones.
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def load_doc(name: str) -> dict:
    path = ROOT / name
    if not path.is_file():
        sys.exit(f"FAIL: {name} missing - run `cargo bench --bench "
                 f"{name.removeprefix('BENCH_').removesuffix('.json')}` first")
    return json.loads(path.read_text())


def load_rows(name: str) -> dict:
    return {row["config"]: row for row in load_doc(name)["rows"]}


def check_profile_section(name: str, doc: dict, required: tuple) -> list[str]:
    """The host-profile contract: a "profile" section whose per-phase
    self-times are the whole span partitioned - percentages must sum to
    ~100 (the profiler's self-time accounting makes this structural, so a
    drift means broken instrumentation, not noise) and the named hot-loop
    phases must actually accrue."""
    failures = []
    profile = doc.get("profile")
    if not profile:
        return [f"{name}: profile section missing - phase timers not wired"]
    phases = {p["phase"]: p for p in profile.get("phases", [])}
    pct_sum = sum(p["pct"] for p in phases.values())
    if abs(pct_sum - 100.0) > 0.1:
        failures.append(
            f"{name}: profile phases sum to {pct_sum:.3f}% - self-time "
            "accounting no longer partitions the span")
    self_sum = sum(p["self_ms"] for p in phases.values())
    total = profile.get("total_ms", 0.0)
    if total <= 0.0:
        failures.append(f"{name}: profile total_ms is {total}")
    elif abs(self_sum - total) > max(0.001, 0.001 * total):
        failures.append(
            f"{name}: phase self_ms sum {self_sum:.3f} != total_ms "
            f"{total:.3f}")
    for phase in required:
        if phase not in phases:
            failures.append(f"{name}: required phase {phase!r} missing")
        elif phases[phase]["self_ms"] <= 0.0:
            failures.append(f"{name}: phase {phase!r} never accrued")
    return failures


# Ceiling on the wire phase's share of the QD32 replay. The zero-copy
# offload path (one serialize+seal into one refcounted buffer shared
# through fragmentation, retransmission, and the store) holds wire at
# ~16%; the old copy-per-hop path sat at 78%. Compression is profiled as
# its own phase and deliberately not counted against this ceiling.
WIRE_PCT_CEILING = 25.0


def check_profile() -> list[str]:
    doc = load_doc("BENCH_profile.json")
    failures = check_profile_section(
        "BENCH_profile.json", doc,
        ("arbitration", "nand_timing", "completion_sort", "stats", "wire",
         "compress"))
    # The rows mirror the profile section one phase per row.
    rows = {row["config"]: row for row in doc["rows"]}
    pct_sum = sum(row["pct"] for row in rows.values())
    if abs(pct_sum - 100.0) > 0.1:
        failures.append(
            f"BENCH_profile.json: row pcts sum to {pct_sum:.3f}%")
    phases = {p["phase"]: p for p in doc.get("profile", {}).get("phases", [])}
    wire_pct = phases.get("wire", {}).get("pct")
    if wire_pct is not None and wire_pct > WIRE_PCT_CEILING:
        failures.append(
            f"BENCH_profile.json: wire phase at {wire_pct:.1f}% of the QD32 "
            f"replay > {WIRE_PCT_CEILING:.0f}% ceiling - the offload path "
            "is copying again")
    return failures


def check_qd_sweep() -> list[str]:
    rows = load_rows("BENCH_qd_sweep.json")
    failures = []
    depths = [1, 8, 32]
    for model in ("plain", "rssd"):
        tput = {}
        for depth in depths:
            config = f"{model}_qd{depth}"
            if config not in rows:
                failures.append(f"{config}: row missing from BENCH_qd_sweep.json")
                continue
            tput[depth] = rows[config]["throughput_kiops"]
        if len(tput) != len(depths):
            continue
        if tput[32] < 2.0 * tput[1]:
            failures.append(
                f"{model}: QD32 must be >= 2x QD1 on the 4-channel default "
                f"geometry (qd1 {tput[1]:.2f} kIOPS, qd32 {tput[32]:.2f} kIOPS)")
        for lo, hi in zip(depths, depths[1:]):
            if tput[hi] <= tput[lo]:
                failures.append(
                    f"{model}: throughput must rise with depth "
                    f"(qd{lo} {tput[lo]:.2f} vs qd{hi} {tput[hi]:.2f} kIOPS)")
    identical = all(
        rows.get(f"plain_qd{d}", {}).get("sim_end_ms")
        == rows.get(f"rssd_qd{d}", {}).get("sim_end_ms")
        for d in depths)
    if identical:
        failures.append("rssd rows are byte-identical to plain at every depth "
                        "- RSSD's overhead is not being modeled")
    if not any(row.get("p50_us", 0) < row.get("p99_us", 0) for row in rows.values()):
        failures.append("p50 == p99 in every row - the latency histogram has "
                        "collapsed back to octave resolution")
    # Host wall-clock floor on the rssd QD32 replay. The zero-copy wire
    # path lands ~68k ops/host-s on the CI container; the pre-fix
    # serialization-tax path ran ~3x slower (~22k), so 40k separates the
    # two with noise headroom on both sides.
    floor = 40_000.0
    host_tput = rows.get("rssd_qd32", {}).get("ops_per_host_sec")
    if host_tput is None:
        failures.append("rssd_qd32: ops_per_host_sec missing from "
                        "BENCH_qd_sweep.json")
    elif host_tput < floor:
        failures.append(
            f"rssd_qd32: host throughput {host_tput:.0f} ops/host-s < "
            f"{floor:.0f} floor - the offload wire path has slowed down")
    return failures


def check_array_scaling() -> list[str]:
    rows = load_rows("BENCH_array_scaling.json")
    failures = []
    tputs = []
    for shards in (1, 2, 4):
        config = f"{shards}_shards"
        if config not in rows:
            failures.append(f"{config}: row missing from BENCH_array_scaling.json")
            return failures
        tputs.append((shards, rows[config]["throughput_kiops"]))
    for (a_shards, a), (b_shards, b) in zip(tputs, tputs[1:]):
        if b <= a:
            failures.append(
                f"array throughput must scale {a_shards} -> {b_shards} shards "
                f"({a:.2f} vs {b:.2f} kIOPS)")
    return failures


def check_offload_wire() -> list[str]:
    rows = load_rows("BENCH_offload_wire.json")
    failures = []
    expected = ("ideal", "dc_10g", "dc_10g_loss2", "dc_10g_loss20",
                "wan_cloud", "wan_loss2")
    for config in expected:
        if config not in rows:
            failures.append(f"{config}: row missing from BENCH_offload_wire.json")
    if failures:
        return failures
    dc = rows["dc_10g"]["offload_mbps"]
    wan = rows["wan_cloud"]["offload_mbps"]
    if dc <= wan:
        failures.append(
            f"datacenter link must out-run the WAN "
            f"(dc_10g {dc:.2f} vs wan_cloud {wan:.2f} MB/s)")
    if rows["wan_cloud"]["sim_end_ms"] <= rows["dc_10g"]["sim_end_ms"]:
        failures.append("WAN propagation is not landing on the device "
                        "timeline (wan sim_end <= datacenter sim_end)")
    for config in ("dc_10g_loss2", "dc_10g_loss20", "wan_loss2"):
        if rows[config]["retransmissions"] <= 0:
            failures.append(f"{config}: lossy link shows zero retransmissions "
                            "- the loss model is disconnected from the wire")
    for config in expected:
        if rows[config]["recovery_ok"] != 1.0:
            failures.append(f"{config}: recovery-window integrity broken - "
                            "the link is costing evidence, not just time")
    return failures


def check_fleet() -> list[str]:
    doc = load_doc("BENCH_fleet.json")
    rows = {row["config"]: row for row in doc["rows"]}
    failures = check_profile_section(
        "BENCH_fleet.json", doc,
        ("arbitration", "nand_timing", "completion_sort", "stats", "detect"))
    sizes = (16, 64, 256)
    workers = (1, 4, 8)
    for members in sizes:
        for count in workers:
            config = f"fleet{members}_w{count}"
            if config not in rows:
                failures.append(f"{config}: row missing from BENCH_fleet.json")
    if failures:
        return failures

    # Determinism: worker count is a host-side knob; every simulated result
    # must be identical across worker counts for a given fleet size.
    for members in sizes:
        base = rows[f"fleet{members}_w1"]
        for count in workers[1:]:
            row = rows[f"fleet{members}_w{count}"]
            for metric in ("total_ops", "sim_iops", "detection_recall",
                           "false_positives", "fleet_score"):
                if row[metric] != base[metric]:
                    failures.append(
                        f"fleet{members}: {metric} differs between 1 and "
                        f"{count} workers ({base[metric]} vs {row[metric]}) "
                        "- worker count is leaking into simulated results")

    # Detection quality must survive fleet scale.
    for members in sizes:
        row = rows[f"fleet{members}_w1"]
        if row["detection_recall"] < 0.9:
            failures.append(
                f"fleet{members}: detection recall {row['detection_recall']:.2f} "
                "< 0.9 - per-member audits are missing compromised members")
        if row["false_positives"] != 0.0:
            failures.append(
                f"fleet{members}: {row['false_positives']:.0f} clean members "
                "falsely flagged")

    # Wall-clock sim-throughput floor at the largest fleet: the simulator
    # itself is a tracked perf surface now.
    floor = 2000.0
    best_256 = max(rows[f"fleet256_w{c}"]["ops_per_host_sec"] for c in workers)
    if best_256 < floor:
        failures.append(
            f"fleet256: best sim-throughput {best_256:.0f} ops/host-s < "
            f"{floor:.0f} floor - the fleet harness has slowed down")

    # Worker-pool scaling, judged against the cores the bench actually had:
    # a >= 4-core host must show real speedup; a core-starved host only has
    # to prove the pool is not collapsing under contention.
    host_cores = rows["fleet256_w1"]["host_cores"]
    one = rows["fleet256_w1"]["ops_per_host_sec"]
    eight = rows["fleet256_w8"]["ops_per_host_sec"]
    speedup = eight / one if one > 0 else 0.0
    required = 2.0 if host_cores >= 4 else 0.5
    if speedup < required:
        failures.append(
            f"fleet256: 8-worker/1-worker host-throughput ratio {speedup:.2f} "
            f"< {required:.1f} on a {host_cores:.0f}-core host")
    return failures


def check_degradation() -> list[str]:
    rows = load_rows("BENCH_degradation.json")
    failures = []
    expected = ("healthy", "buffering_ramp", "throttled", "stalled", "drain",
                "crash_replay")
    for config in expected:
        if config not in rows:
            failures.append(f"{config}: row missing from BENCH_degradation.json")
    if failures:
        return failures

    # Admission control is a slope, not a cliff: Throttled throughput sits
    # strictly between Stalled and Healthy, and a throttled device is still
    # a useful device (>= 25% of healthy).
    healthy = rows["healthy"]["write_kiops"]
    throttled = rows["throttled"]["write_kiops"]
    stalled = rows["stalled"]["write_kiops"]
    if not stalled < throttled < healthy:
        failures.append(
            f"throttled throughput must sit strictly between stalled and "
            f"healthy (stalled {stalled:.2f} < throttled {throttled:.2f} < "
            f"healthy {healthy:.2f} kIOPS violated)")
    if throttled < 0.25 * healthy:
        failures.append(
            f"throttled throughput {throttled:.2f} kIOPS < 25% of healthy "
            f"{healthy:.2f} kIOPS - the admission penalty has become a cliff")
    if rows["stalled"]["refused"] <= 0:
        failures.append("stalled: zero refusals - the Stalled state is not "
                        "refusing writes")
    if rows["throttled"]["refused"] != 0:
        failures.append("throttled: writes were refused - the refusal cliff "
                        "belongs to Stalled only")

    # The post-heal drain completes: no staged backlog, no spill residue,
    # every sealed segment acknowledged.
    drain = rows["drain"]
    if drain["drain_complete"] != 1.0:
        failures.append("drain: post-heal drain did not complete")
    if drain["staged_after"] != 0.0 or drain["spill_bytes_after"] != 0.0:
        failures.append(
            f"drain: residue after heal (staged {drain['staged_after']:.0f}, "
            f"spill bytes {drain['spill_bytes_after']:.0f})")
    if drain["segments_spilled"] <= 0:
        failures.append("drain: the outage never exercised the spill region")

    # Zero evidence loss, outage, crash and all.
    for config in ("drain", "crash_replay"):
        row = rows[config]
        if row["evidence_loss_segments"] != 0.0:
            failures.append(
                f"{config}: {row['evidence_loss_segments']:.0f} sealed "
                "segments never reached the remote - evidence lost")
        if row["chain_verified"] != 1.0:
            failures.append(f"{config}: evidence chain does not verify")
    if rows["crash_replay"]["spill_replayed"] <= 0:
        failures.append("crash_replay: recovery did not replay the spill "
                        "region")
    return failures


def main() -> None:
    failures = (check_qd_sweep() + check_array_scaling() + check_offload_wire()
                + check_fleet() + check_profile() + check_degradation())
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        sys.exit(1)
    print("bench regression gate: OK "
          "(QD scaling >= 2x, monotonic, rssd != plain, p50 < p99, "
          "QD32 host-throughput floor holds, wire physics hold, "
          "recovery survives every link, fleet deterministic across "
          "workers, sim-throughput floor holds, host profiles partition "
          "their spans, wire phase under its ceiling, degradation slope "
          "ordered with throttled >= 25% of healthy, post-heal drain "
          "complete, zero evidence loss)")


if __name__ == "__main__":
    main()
