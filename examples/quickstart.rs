//! Quickstart: build an RSSD, suffer a ransomware attack, recover everything.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rssd_repro::core::{LoopbackTarget, RecoveryEngine, RssdConfig, RssdDevice};
use rssd_repro::flash::{FlashGeometry, NandTiming, SimClock};
use rssd_repro::ssd::BlockDevice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16 MiB simulated SSD on a shared simulation clock, offloading to an
    // in-process remote target (see `remote_attack_analysis.rs` for the full
    // NVMe-oE + log-server setup).
    let clock = SimClock::new();
    let mut device = RssdDevice::new(
        FlashGeometry::with_capacity(16 * 1024 * 1024),
        NandTiming::mlc_default(),
        clock.clone(),
        RssdConfig::default(),
        LoopbackTarget::new(),
    );
    println!(
        "device: {} | {} logical pages x {} B",
        device.model_name(),
        device.logical_pages(),
        device.page_size()
    );

    // Write some user data.
    let original = vec![0x42u8; device.page_size()];
    for lpa in 0..64u64 {
        device.write_page(lpa, original.clone())?;
    }

    // Ransomware strikes: reads the data, overwrites it with "ciphertext".
    clock.advance(1_000_000_000);
    let attack_start = clock.now_ns();
    for lpa in 0..64u64 {
        let mut page = device.read_page(lpa)?;
        for (i, byte) in page.iter_mut().enumerate() {
            *byte ^= (i as u8).wrapping_mul(197).wrapping_add(lpa as u8);
        }
        device.write_page(lpa, page)?;
    }
    assert_ne!(device.read_page(0)?, original, "data is encrypted");

    // Zero data loss: every pre-attack page is still retained.
    let victims: Vec<u64> = (0..64).collect();
    let report = RecoveryEngine::new().restore_before(&mut device, &victims, attack_start);
    println!(
        "recovered {} pages ({} unrecoverable) in {:.2} simulated ms",
        report.pages_restored,
        report.pages_unrecoverable,
        report.duration_ns as f64 / 1e6
    );
    assert_eq!(device.read_page(0)?, original, "data restored");

    // And the whole incident is in the tamper-evident evidence chain.
    let history = device.verified_history().map_err(|e| e.to_string())?;
    println!(
        "evidence chain verified: {} records, head {}",
        history.len(),
        device.chain_head()
    );
    Ok(())
}
