//! Quickstart: build an RSSD, drive it like an NVMe device, suffer a
//! ransomware attack, recover everything.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rssd_repro::core::{LoopbackTarget, RecoveryEngine, RssdConfig, RssdDevice};
use rssd_repro::flash::{FlashGeometry, NandTiming, SimClock};
use rssd_repro::ssd::{BlockDevice, CommandId, CommandOutcome, IoCommand, NvmeController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16 MiB simulated SSD on a shared simulation clock, offloading to an
    // in-process remote target (see `remote_attack_analysis.rs` for the full
    // NVMe-oE + log-server setup).
    let clock = SimClock::new();
    let mut device = RssdDevice::new(
        FlashGeometry::with_capacity(16 * 1024 * 1024),
        NandTiming::mlc_default(),
        clock.clone(),
        RssdConfig::default(),
        LoopbackTarget::new(),
    );
    println!(
        "device: {} | {} logical pages x {} B",
        device.model_name(),
        device.logical_pages(),
        device.page_size()
    );

    // Hosts talk NVMe: a controller arbitrates fixed-depth queue pairs over
    // the device. One host, queue depth 16.
    let mut controller = NvmeController::new(&mut device);
    let queue = controller.create_queue_pair(16);
    let page_size = controller.device().page_size();

    // Write some user data, a queue-depth's worth at a time.
    let original = vec![0x42u8; page_size];
    for burst in (0..64u64).collect::<Vec<_>>().chunks(16) {
        for &lpa in burst {
            controller.submit(
                queue,
                CommandId(lpa as u16),
                IoCommand::Write {
                    lpa,
                    data: original.clone(),
                },
            )?;
        }
        controller.run_to_idle();
        for completion in controller.drain_completions(queue) {
            completion.result?;
        }
    }

    // Ransomware strikes: reads the data, overwrites it with "ciphertext" —
    // through the same queue interface, because malware has no other path.
    clock.advance(1_000_000_000);
    let attack_start = clock.now_ns();
    let writes_before_attack = controller.stats(queue).writes;
    for lpa in 0..64u64 {
        controller.submit(queue, CommandId(0), IoCommand::Read { lpa })?;
        controller.run_to_idle();
        let read = controller.pop_completion(queue).expect("read completes");
        let mut page = match read.result? {
            CommandOutcome::Read(data) => data,
            other => panic!("expected read data, got {other:?}"),
        };
        for (i, byte) in page.iter_mut().enumerate() {
            *byte ^= (i as u8).wrapping_mul(197).wrapping_add(lpa as u8);
        }
        controller.submit(queue, CommandId(0), IoCommand::Write { lpa, data: page })?;
        controller.run_to_idle();
        controller
            .pop_completion(queue)
            .expect("write completes")
            .result?;
    }
    println!(
        "attacker encrypted 64 pages over {attack_writes} queue writes (queue p99 {p99} ns)",
        attack_writes = controller.stats(queue).writes - writes_before_attack,
        p99 = controller.stats(queue).latency.percentile_ns(99.0),
    );

    // The host path ends here; recovery is the investigator's back channel.
    drop(controller);
    assert_ne!(device.read_page(0)?, original, "data is encrypted");

    // Zero data loss: every pre-attack page is still retained.
    let victims: Vec<u64> = (0..64).collect();
    let report = RecoveryEngine::new().restore_before(&mut device, &victims, attack_start);
    println!(
        "recovered {} pages ({} unrecoverable) in {:.2} simulated ms",
        report.pages_restored,
        report.pages_unrecoverable,
        report.duration_ns as f64 / 1e6
    );
    assert_eq!(device.read_page(0)?, original, "data restored");

    // And the whole incident is in the tamper-evident evidence chain.
    let history = device.verified_history().map_err(|e| e.to_string())?;
    println!(
        "evidence chain verified: {} records, head {}",
        history.len(),
        device.chain_head()
    );
    Ok(())
}
