//! Fleet-level fault tolerance: lose one shard of a striped RSSD array
//! mid-attack, serve degraded reads from the remote evidence chain, rebuild
//! the shard from it, and verify zero data loss.
//!
//! Timeline:
//!
//! 1. A victim tenant writes its corpus across a 3-shard array and keeps
//!    editing a scratch region (benign traffic), with journal-style flush
//!    barriers.
//! 2. Ransomware (its own queue pair) read-encrypt-overwrites the whole
//!    corpus. Per-shard retention pins every destroyed original and the
//!    offload engine ships them to each member's remote store.
//! 3. Shard 1 dies — controller, NAND, pending log, all of it. Its remote
//!    store survives; the array harvests a chain-verified rebuild image.
//! 4. The ransomware keeps going (trim cleanup phase): commands to the dead
//!    shard complete with `ShardFailed`, the survivors keep serving.
//!    Degraded reads of shard 1 come from the remote image.
//! 5. A replacement member is rebuilt incrementally to the pre-attack
//!    point in time, regions coming online as they are copied.
//! 6. Verification: every corpus page, on every shard, is byte-identical
//!    to its pre-attack content.
//!
//! ```sh
//! cargo run --example fleet_rebuild
//! ```

use rssd_repro::array::{ArrayDetector, RssdArray, ShardStatus};
use rssd_repro::compress::shannon_entropy;
use rssd_repro::core::{LoopbackTarget, RssdConfig, RssdDevice};
use rssd_repro::detect::{Verdict, WriteObservation};
use rssd_repro::flash::{FlashGeometry, NandTiming, SimClock};
use rssd_repro::ssd::{BlockDevice, CommandId, DeviceError, IoCommand, NvmeController, QueueId};
use rssd_repro::trace::{synthesize_page, PayloadKind};
use std::collections::{HashMap, HashSet};

const SHARDS: usize = 3;
const STRIPE_PAGES: u64 = 4;
const CORPUS_PAGES: u64 = 90;
const SCRATCH_BASE: u64 = 96;
const SCRATCH_PAGES: u64 = 24;

fn mk_shard(device_id: u64) -> RssdDevice<LoopbackTarget> {
    RssdDevice::new(
        FlashGeometry::with_capacity(8 * 1024 * 1024),
        NandTiming::mlc_default(),
        SimClock::new(), // each member owns its clock: shards run in parallel
        RssdConfig {
            device_id,
            segment_pages: 8,
            ..RssdConfig::default()
        },
        LoopbackTarget::new(),
    )
}

/// Host-side bookkeeping that reconstructs detector observations from the
/// command stream, attributed to the shard each page lives on.
struct FleetMonitor {
    detector: ArrayDetector,
    valid: HashSet<u64>,
    recent_reads: HashMap<u64, u64>,
}

impl FleetMonitor {
    const READ_WINDOW_NS: u64 = 600 * 1_000_000_000;

    fn observe(&mut self, shard: usize, now: u64, command: &IoCommand) {
        match command {
            IoCommand::Read { lpa } => {
                self.recent_reads.insert(*lpa, now);
            }
            IoCommand::Write { lpa, data } => {
                let read_before = self
                    .recent_reads
                    .get(lpa)
                    .is_some_and(|&t| now.saturating_sub(t) <= Self::READ_WINDOW_NS);
                let obs = if self.valid.contains(lpa) {
                    WriteObservation::overwrite(now, *lpa, shannon_entropy(data), read_before)
                } else {
                    WriteObservation::fresh_write(now, *lpa, shannon_entropy(data))
                };
                self.detector.observe(shard, &obs);
                self.valid.insert(*lpa);
            }
            IoCommand::Trim { lpa } => {
                if self.valid.remove(lpa) {
                    self.detector
                        .observe(shard, &WriteObservation::trim(now, *lpa));
                }
            }
            IoCommand::Flush => {}
        }
    }
}

/// One tenant's queue pair with monotonically recycled command ids.
struct Tenant {
    queue: QueueId,
    next_id: u16,
}

impl Tenant {
    /// Submits one command; with `monitor` set, also feeds the fleet
    /// detector the observation a log-backed monitor would reconstruct.
    /// Pass `None` for commands known to be refused (a failed shard): a
    /// refused command never executes, so no device ever logs it.
    fn submit<D: BlockDevice>(
        &mut self,
        controller: &mut NvmeController<D>,
        monitor: Option<&mut FleetMonitor>,
        shard_of: impl Fn(u64) -> usize,
        command: IoCommand,
    ) {
        let now = controller.device().clock().now_ns();
        if let (Some(monitor), Some(lpa)) = (monitor, command.lpa()) {
            monitor.observe(shard_of(lpa), now, &command);
        }
        let id = CommandId(self.next_id);
        self.next_id = self.next_id.wrapping_add(1);
        controller
            .submit(self.queue, id, command)
            .expect("queues drained between bursts");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut array = RssdArray::new(
        (0..SHARDS as u64).map(mk_shard).collect(),
        STRIPE_PAGES,
        SimClock::new(),
    );
    let page_size = array.page_size();
    let layout = *array.layout();
    let shard_of = |lpa: u64| layout.locate(lpa).0;
    let clock = array.clock().clone();
    let mut monitor = FleetMonitor {
        detector: ArrayDetector::new(SHARDS),
        valid: HashSet::new(),
        recent_reads: HashMap::new(),
    };

    // --- 1. The victim's corpus, striped across all three members.
    let mut controller = NvmeController::new(&mut array);
    let mut victim = Tenant {
        queue: controller.create_queue_pair(32),
        next_id: 0,
    };
    let mut attacker = Tenant {
        queue: controller.create_queue_pair(32),
        next_id: 0,
    };
    let originals: HashMap<u64, Vec<u8>> = (0..CORPUS_PAGES)
        .map(|lpa| (lpa, synthesize_page(PayloadKind::Text, lpa, page_size)))
        .collect();
    for lpa in 0..CORPUS_PAGES {
        let data = originals[&lpa].clone();
        victim.submit(
            &mut controller,
            Some(&mut monitor),
            shard_of,
            IoCommand::Write { lpa, data },
        );
        if lpa % 32 == 31 {
            controller.run_to_idle();
            controller.drain_completions(victim.queue);
        }
    }
    victim.submit(
        &mut controller,
        Some(&mut monitor),
        shard_of,
        IoCommand::Flush,
    );
    controller.run_to_idle();
    controller.drain_completions(victim.queue);

    // --- 2. Ransomware: read → encrypt → overwrite the whole corpus while
    // the victim keeps editing its scratch region.
    clock.advance(3_600_000_000_000); // an hour later
    let attack_start = clock.now_ns();
    for lpa in 0..CORPUS_PAGES {
        attacker.submit(
            &mut controller,
            Some(&mut monitor),
            shard_of,
            IoCommand::Read { lpa },
        );
        controller.run_to_idle();
        let ciphertext = synthesize_page(PayloadKind::Random, lpa ^ 0xdead, page_size);
        attacker.submit(
            &mut controller,
            Some(&mut monitor),
            shard_of,
            IoCommand::Write {
                lpa,
                data: ciphertext,
            },
        );
        let scratch = SCRATCH_BASE + lpa % SCRATCH_PAGES;
        let edit = synthesize_page(PayloadKind::Text, scratch ^ 0x5a5a, page_size);
        victim.submit(
            &mut controller,
            Some(&mut monitor),
            shard_of,
            IoCommand::Write {
                lpa: scratch,
                data: edit,
            },
        );
        controller.run_to_idle();
        controller.drain_completions(victim.queue);
        controller.drain_completions(attacker.queue);
        clock.advance(50_000_000);
    }
    // The victim's journal flushes — a barrier every filesystem issues —
    // which also ships every retained pre-image to the remote stores.
    victim.submit(
        &mut controller,
        Some(&mut monitor),
        shard_of,
        IoCommand::Flush,
    );
    controller.run_to_idle();
    controller.drain_completions(victim.queue);

    // --- 3. Shard 1 dies mid-attack.
    drop(controller);
    let salvage = array.fail_shard(1).map_err(std::io::Error::other)?;
    println!(
        "shard 1 lost; salvaged from its remote store: {} segments, {} records, \
         {} retained versions over {} pages",
        salvage.segments, salvage.records, salvage.versions, salvage.lpas_covered
    );
    assert_eq!(array.shard_status(1), ShardStatus::Degraded);

    // Degraded reads of the dead shard come from the remote evidence chain
    // — and return the *pre-attack* content, because what the remote
    // retains is exactly what the ransomware destroyed.
    let shard1_corpus: Vec<u64> = (0..CORPUS_PAGES).filter(|&l| shard_of(l) == 1).collect();
    for &lpa in &shard1_corpus {
        assert_eq!(
            array.read_page(lpa)?,
            originals[&lpa],
            "degraded read of lpa {lpa} must serve the retained original"
        );
    }
    println!(
        "degraded reads: {}/{} shard-1 corpus pages served byte-identical from remote",
        shard1_corpus.len(),
        shard1_corpus.len()
    );

    // --- 4. The ransomware is still running: trim cleanup over the corpus.
    let mut controller = NvmeController::new(&mut array);
    attacker.queue = controller.create_queue_pair(32);
    attacker.next_id = 0;
    let mut dead_shard_errors = 0u64;
    for lpa in 0..CORPUS_PAGES {
        // Trims aimed at the dead shard never execute, so they must not be
        // observed as executed operations either.
        let observe = (shard_of(lpa) != 1).then_some(&mut monitor);
        attacker.submit(&mut controller, observe, shard_of, IoCommand::Trim { lpa });
        controller.run_to_idle();
        for done in controller.drain_completions(attacker.queue) {
            if matches!(done.result, Err(DeviceError::ShardFailed { shard: 1 })) {
                dead_shard_errors += 1;
            }
        }
        clock.advance(10_000_000);
    }
    drop(controller);
    println!(
        "attack continued through the outage: {} trims refused by the dead shard, \
         survivors kept serving",
        dead_shard_errors
    );
    assert_eq!(dead_shard_errors, shard1_corpus.len() as u64);

    // --- 5. Incremental rebuild of a replacement member, to the pre-attack
    // point in time, while degraded reads keep flowing.
    array
        .begin_rebuild(1, mk_shard(9), Some(attack_start))
        .map_err(std::io::Error::other)?;
    let mut steps = 0u32;
    loop {
        let progress = array.rebuild_step(1, 64).map_err(std::io::Error::other)?;
        steps += 1;
        // Mid-rebuild, the not-yet-copied tail still serves from remote.
        if !progress.done {
            let probe = shard1_corpus
                .iter()
                .copied()
                .find(|&l| layout.locate(l).1 >= progress.copied_pages);
            if let Some(lpa) = probe {
                assert_eq!(array.read_page(lpa)?, originals[&lpa]);
            }
        }
        if progress.done {
            println!(
                "rebuild complete after {steps} increments: {}/{} pages restored from remote, \
                 {} pages had nothing retained (never overwritten)",
                progress.restored_pages,
                progress.total_pages,
                progress.total_pages - progress.restored_pages
            );
            break;
        }
    }
    assert_eq!(array.shard_status(1), ShardStatus::Live);
    // The rebuilt member slots back into the same geometry.
    assert_eq!(array.layout().shard_pages(), layout.shard_pages());

    // --- 6. Fleet-wide recovery check: roll the surviving shards back to
    // the pre-attack point too, then verify the whole corpus byte for byte.
    let mut restored_live = 0u64;
    for lpa in 0..CORPUS_PAGES {
        if shard_of(lpa) != 1 {
            let data = array
                .recover_before(lpa, attack_start)
                .expect("survivors retain every destroyed original");
            array.write_page(lpa, data)?;
            restored_live += 1;
        }
    }
    let mut intact = 0u64;
    for lpa in 0..CORPUS_PAGES {
        if array.read_page(lpa)? == originals[&lpa] {
            intact += 1;
        }
    }
    println!(
        "recovery: {} pages restored on surviving shards, {} via rebuild; \
         {intact}/{CORPUS_PAGES} corpus pages byte-identical",
        restored_live,
        shard1_corpus.len()
    );
    assert_eq!(intact, CORPUS_PAGES, "zero data loss across the fleet");

    // --- Detection and merged fleet reporting.
    let report = monitor.detector.report();
    println!("fleet detection:");
    for (shard, (verdict, score)) in report.shard_verdicts.iter().enumerate() {
        println!("  shard {shard}: score {score:.2} → {verdict:?}");
    }
    println!(
        "  fleet:   score {:.2} → {:?} over {} observations",
        report.fleet_score, report.fleet_verdict, report.observations
    );
    assert_eq!(report.fleet_verdict, Verdict::Ransomware);

    // Merged fleet reporting rides the array's merge accessors — the same
    // interval-union-aware NandStats::merge the fleet harness uses — so the
    // totals here agree with any per-shard breakdown by construction.
    let offload = array.offload_stats();
    let nand = array.nand_stats();
    let ftl = array.ftl_stats();
    println!(
        "merged array stats: {} segments offloaded ({} retained pages, {:.1}x compression), \
         {} chain records across {} live shards",
        offload.segments_offloaded,
        offload.retained_pages_offloaded,
        offload.compression_ratio(),
        array.chain_len(),
        array.shard_count(),
    );
    println!(
        "merged NAND/FTL:    {} programs, {} reads, {} erases; WAF {:.2}",
        nand.programs(),
        nand.reads(),
        nand.erases(),
        ftl.write_amplification(),
    );
    Ok(())
}
