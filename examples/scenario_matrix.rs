//! Breaking it on purpose: the scenario matrix.
//!
//! Runs the curated 12-cell grid — workload profile × attack actor ×
//! fault schedule × topology — and prints one scorecard row per cell:
//! did detection fire, how much attacked data recovered, what did the
//! fault cost, and did the evidence chain survive (or was its gap at
//! least *detected*). The same grid runs as a tier-1 test in CI; the
//! machine-readable record lands in `BENCH_scenarios.json`.
//!
//! ```sh
//! cargo run --example scenario_matrix
//! ```

use rssd_repro::faults::{ScenarioMatrix, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let matrix = ScenarioMatrix::curated();
    println!(
        "scenario matrix: {} cells (profile/actor/fault/topology)\n",
        matrix.cells.len()
    );
    println!(
        "{:<34} {:>10} {:>9} {:>9} {:>6} {:>6} {:>7}  chain",
        "cell", "verdict", "victims", "recovered", "loss%", "cuts", "interr"
    );
    println!("{}", "-".repeat(96));

    let mut cards = Vec::new();
    for cell in &matrix.cells {
        let card = cell.run().map_err(|e| format!("{}: {e}", cell.cell_id()))?;
        let verdict = match card.verdict {
            Verdict::Benign => "benign",
            Verdict::Suspicious => "suspicious",
            Verdict::Ransomware => "RANSOMWARE",
        };
        let loss_pct = if card.victim_pages == 0 {
            0.0
        } else {
            100.0 * (1.0 - card.recovery_fraction)
        };
        let chain = if card.chain_verified {
            "verified"
        } else {
            "GAP DETECTED"
        };
        println!(
            "{:<34} {:>10} {:>9} {:>9} {:>5.1}% {:>6} {:>7}  {}",
            card.cell,
            verdict,
            card.victim_pages,
            card.recovered_pages,
            loss_pct,
            card.power_cuts,
            card.attack_interruptions,
            chain
        );
        cards.push(card);
    }

    // The invariants CI enforces, restated here as a readable summary.
    let fault_free_total = cards
        .iter()
        .filter(|c| c.cell.contains("/none/") && c.victim_pages > 0)
        .all(|c| c.recovery_fraction == 1.0);
    let no_false_positives = cards.iter().all(|c| !c.false_positive);
    let no_silent_gaps = cards
        .iter()
        .all(|c| c.chain_verified != c.chain_gap_detected);
    println!("\nfault-free cells recover 100%:      {fault_free_total}");
    println!("benign cells false-positive free:   {no_false_positives}");
    println!("every chain verified or gap flagged: {no_silent_gaps}");
    assert!(fault_free_total && no_false_positives && no_silent_gaps);

    let rows = ScenarioMatrix::bench_rows(&cards);
    let path = rssd_repro::bench_support::write_bench_json("scenarios", &rows)?;
    println!("\nwrote {}", path.display());
    Ok(())
}
