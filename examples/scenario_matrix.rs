//! Breaking it on purpose: the scenario matrix.
//!
//! Runs the curated 12-cell grid — workload profile × attack actor ×
//! fault schedule × topology — and prints one scorecard row per cell:
//! did detection fire, how much attacked data recovered, what did the
//! fault cost, and did the evidence chain survive (or was its gap at
//! least *detected*). The same grid runs as a tier-1 test in CI; the
//! machine-readable record lands in `BENCH_scenarios.json`.
//!
//! ```sh
//! cargo run --example scenario_matrix
//! # dual-timeline trace for https://ui.perfetto.dev:
//! cargo run --example scenario_matrix -- --trace-out matrix_trace.json
//! ```

use rssd_repro::faults::{MatrixSummary, ScenarioMatrix, Verdict};
use rssd_repro::obs::{export_chrome_trace, SinkHandle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    let sink = if trace_out.is_some() {
        SinkHandle::recording()
    } else {
        SinkHandle::disabled()
    };

    let matrix = ScenarioMatrix::curated();
    println!(
        "scenario matrix: {} cells (profile/actor/fault/topology)\n",
        matrix.cells.len()
    );
    println!(
        "{:<34} {:>10} {:>9} {:>9} {:>6} {:>6} {:>7}  chain",
        "cell", "verdict", "victims", "recovered", "loss%", "cuts", "interr"
    );
    println!("{}", "-".repeat(96));

    let mut cards = Vec::new();
    for cell in &matrix.cells {
        // Each cell gets its own track namespace so independent simulated
        // clocks never interleave on one track.
        let cell_sink = sink.with_track_prefix(&format!("{}/", cell.cell_id()));
        let card = cell
            .run_traced(cell_sink)
            .map_err(|e| format!("{}: {e}", cell.cell_id()))?;
        let verdict = match card.verdict {
            Verdict::Benign => "benign",
            Verdict::Suspicious => "suspicious",
            Verdict::Ransomware => "RANSOMWARE",
        };
        let loss_pct = if card.victim_pages == 0 {
            0.0
        } else {
            100.0 * (1.0 - card.recovery_fraction)
        };
        let chain = if card.chain_verified {
            "verified"
        } else {
            "GAP DETECTED"
        };
        println!(
            "{:<34} {:>10} {:>9} {:>9} {:>5.1}% {:>6} {:>7}  {}",
            card.cell,
            verdict,
            card.victim_pages,
            card.recovered_pages,
            loss_pct,
            card.power_cuts,
            card.attack_interruptions,
            chain
        );
        cards.push(card);
    }

    // The invariants CI enforces, folded through the matrix's merge API
    // rather than hand-summed here (so this summary and the CI gate can
    // never drift apart).
    let mut summary = MatrixSummary::default();
    for card in &cards {
        summary.absorb(card);
    }
    println!(
        "\nmerged: {}/{} cells attacked, {} victim pages, {:.0}% recovered, \
         {} power cuts, {} offloads dropped, {} chain gaps flagged",
        summary.attacked_cells,
        summary.cells,
        summary.victim_pages,
        100.0 * summary.recovery_fraction(),
        summary.power_cuts,
        summary.offloads_dropped,
        summary.chain_gaps_detected,
    );
    println!(
        "fault-free cells recover 100%:      {}",
        summary.fault_free_recovered == summary.fault_free_attacked
    );
    println!(
        "benign cells false-positive free:   {}",
        summary.false_positives == 0
    );
    println!(
        "every chain verified or gap flagged: {}",
        summary.silent_chain_gaps == 0
    );
    assert!(summary.invariants_hold());

    let rows = ScenarioMatrix::bench_rows(&cards);
    let path = rssd_repro::bench_support::write_bench_json("scenarios", &rows)?;
    println!("\nwrote {}", path.display());

    if let Some(out) = &trace_out {
        let events = sink.take_events();
        std::fs::write(out, export_chrome_trace(&events))?;
        println!(
            "wrote {} trace events to {out} (load in https://ui.perfetto.dev)",
            events.len()
        );
    }
    Ok(())
}
