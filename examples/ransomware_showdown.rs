//! Ransomware showdown: all four Ransomware 2.0 attacks against all four
//! device models, with measured survival rates — the narrative behind the
//! paper's Table 1, runnable.
//!
//! ```sh
//! cargo run --example ransomware_showdown
//! ```

use rssd_repro::attacks::{
    evaluate_recovery, ClassicRansomware, FileTable, GcAttack, TimingAttack, TrimAttack,
};
use rssd_repro::core::{LoopbackTarget, RssdConfig, RssdDevice};
use rssd_repro::flash::{FlashGeometry, NandTiming, SimClock};
use rssd_repro::ssd::{
    BlockDevice, FlashGuardConfig, FlashGuardSsd, PlainSsd, RetentionMode, RetentionSsd,
};

const FILES: usize = 16;
const PAGES: u64 = 8;

fn attack_device<D: BlockDevice>(mut device: D, attack: &str) -> (String, f64) {
    let victims = FileTable::populate(&mut device, FILES, PAGES, 7).expect("corpus fits");
    let outcome = match attack {
        "classic" => ClassicRansomware::new(1).execute(&mut device, &victims),
        "gc-flood" => GcAttack::new(1, 4).execute(&mut device, &victims),
        "timing" => TimingAttack::new(1, 4, FlashGuardConfig::default().suspect_window_ns + 1)
            .execute(&mut device, &victims, |_| Ok(())),
        "trimming" => TrimAttack::new(1, false).execute(&mut device, &victims),
        other => panic!("unknown attack {other}"),
    }
    .expect("attack completes");
    let result = evaluate_recovery(&mut device, &victims, &outcome);
    (result.model.clone(), result.recovery_fraction())
}

fn main() {
    let geometry = FlashGeometry::with_capacity(32 * 1024 * 1024);
    println!(
        "victim corpus: {FILES} files x {PAGES} pages, device {} MiB\n",
        32
    );
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}",
        "Device", "classic", "gc-flood", "timing", "trimming"
    );

    for model in ["plain", "flashguard", "localssd", "rssd"] {
        let mut cells = Vec::new();
        let mut name = String::new();
        for attack in ["classic", "gc-flood", "timing", "trimming"] {
            let timing = NandTiming::instant();
            let clock = SimClock::new();
            let (model_name, fraction) = match model {
                "plain" => attack_device(PlainSsd::new(geometry, timing, clock), attack),
                "flashguard" => attack_device(FlashGuardSsd::new(geometry, timing, clock), attack),
                "localssd" => attack_device(
                    RetentionSsd::new(geometry, timing, clock, RetentionMode::RetainAll),
                    attack,
                ),
                "rssd" => attack_device(
                    RssdDevice::new(
                        geometry,
                        timing,
                        clock,
                        RssdConfig::default(),
                        LoopbackTarget::new(),
                    ),
                    attack,
                ),
                other => panic!("unknown model {other}"),
            };
            name = model_name;
            cells.push(format!("{:>8.0}%", fraction * 100.0));
        }
        println!("{:<22} {}", name, cells.join(" "));
    }
    println!("\nOnly RSSD keeps every victim page recoverable under all four attacks.");
}
