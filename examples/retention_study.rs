//! Retention study: how long does stale data survive on each device model
//! under a real trace profile, and what does the GC attack do to that?
//! (A runnable, single-trace slice of Figure 2 plus the E7 story.)
//!
//! ```sh
//! cargo run --release --example retention_study [trace]
//! ```

use rssd_repro::flash::{FlashGeometry, NandTiming, SimClock};
use rssd_repro::ssd::{BlockDevice, NvmeController, RetentionMode, RetentionSsd};
use rssd_repro::trace::{replay_queued, TraceProfile};

const NS_PER_DAY: f64 = 86_400e9;
const SIM_DAYS: f64 = 30.0;

fn measure(profile: &TraceProfile, mode: RetentionMode) -> (f64, u64, u64) {
    let geometry = FlashGeometry::with_capacity(32 * 1024 * 1024);
    let clock = SimClock::new();
    let mut device = RetentionSsd::new(geometry, NandTiming::instant(), clock, mode);
    let horizon = (SIM_DAYS * NS_PER_DAY) as u64;
    let records = profile
        .workload(device.logical_pages(), device.page_size(), 42)
        .take_while(|r| r.at_ns < horizon);
    // Drive the device as a host would: one NVMe queue pair at depth 8.
    let mut controller = NvmeController::new(&mut device);
    let queue = controller.create_queue_pair(8);
    let _ = replay_queued(&mut controller, queue, records);
    drop(controller);
    let report = device.report();
    let days = report
        .mean_retention_ns()
        .map_or(SIM_DAYS, |ns| ns / NS_PER_DAY);
    (days, report.retained_pages, report.evicted_pages)
}

fn main() {
    let trace = std::env::args().nth(1).unwrap_or_else(|| "usr".to_string());
    let profile = TraceProfile::by_name(&trace).unwrap_or_else(|| {
        eprintln!(
            "unknown trace '{trace}'; available: {}",
            TraceProfile::all()
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    });

    println!(
        "trace '{}' ({}), {:.1} GiB/day at reference scale, {SIM_DAYS} simulated days\n",
        profile.name, profile.family, profile.daily_write_gib
    );
    for mode in [RetentionMode::RetainAll, RetentionMode::Compressed] {
        let (days, retained, evicted) = measure(&profile, mode);
        println!(
            "{:<22} retention ≈ {:>6.1} days  (retained {} pages, evicted {})",
            format!("{mode:?}"),
            days,
            retained,
            evicted
        );
    }
    println!(
        "\nRSSD, by contrast, offloads retained data over NVMe-oE: its retention is\n\
         bounded by the remote pool, not the SSD's spare area — run\n\
         `cargo bench -p rssd-bench --bench fig2_retention` for the full Figure 2."
    );
}
