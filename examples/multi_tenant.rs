//! Multi-tenant RSSD: two hosts — a well-behaved tenant and a
//! ransomware-compromised one — share a single device through separate
//! NVMe queue pairs, and detection attributes the attack to the right
//! queue.
//!
//! The controller round-robin arbitrates the pairs, so the attacker cannot
//! starve the victim; the per-queue command stream is exactly what a
//! per-host detector sees, so the verdicts attach to queues, not to the
//! device as a whole.
//!
//! ```sh
//! cargo run --example multi_tenant
//! ```

use rssd_repro::compress::shannon_entropy;
use rssd_repro::core::{LoopbackTarget, RecoveryEngine, RssdConfig, RssdDevice};
use rssd_repro::detect::{Ensemble, Verdict, WriteObservation};
use rssd_repro::flash::{FlashGeometry, NandTiming, SimClock};
use rssd_repro::ssd::{BlockDevice, CommandId, IoCommand, NvmeController, QueueId};
use rssd_repro::trace::{synthesize_page, PayloadKind};
use std::collections::{HashMap, HashSet};

/// One tenant: a queue pair plus the host-side state a per-queue detector
/// needs (what it wrote where, and when it last read each page).
struct Tenant {
    name: &'static str,
    queue: QueueId,
    detector: Ensemble,
    recent_reads: HashMap<u64, u64>,
    next_id: u16,
}

impl Tenant {
    fn new(name: &'static str, queue: QueueId) -> Self {
        Tenant {
            name,
            queue,
            detector: Ensemble::new(),
            recent_reads: HashMap::new(),
            next_id: 0,
        }
    }

    fn id(&mut self) -> CommandId {
        let id = CommandId(self.next_id);
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    /// Submits one command, feeding the per-queue detector the observation
    /// a log-backed per-host monitor would reconstruct.
    fn submit<D: BlockDevice>(
        &mut self,
        controller: &mut NvmeController<D>,
        valid: &mut HashSet<u64>,
        command: IoCommand,
    ) {
        let now = controller.device().clock().now_ns();
        const READ_WINDOW_NS: u64 = 600 * 1_000_000_000;
        match &command {
            IoCommand::Read { lpa } => {
                self.recent_reads.insert(*lpa, now);
            }
            IoCommand::Write { lpa, data } => {
                let read_before = self
                    .recent_reads
                    .get(lpa)
                    .is_some_and(|&t| now.saturating_sub(t) <= READ_WINDOW_NS);
                let obs = if valid.contains(lpa) {
                    WriteObservation::overwrite(now, *lpa, shannon_entropy(data), read_before)
                } else {
                    WriteObservation::fresh_write(now, *lpa, shannon_entropy(data))
                };
                self.detector.observe(&obs);
                valid.insert(*lpa);
            }
            IoCommand::Trim { lpa } => {
                if valid.remove(lpa) {
                    self.detector.observe(&WriteObservation::trim(now, *lpa));
                }
            }
            IoCommand::Flush => {}
        }
        let id = self.id();
        controller
            .submit(self.queue, id, command)
            .expect("queue drained between bursts");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = SimClock::new();
    let mut device = RssdDevice::new(
        FlashGeometry::with_capacity(32 * 1024 * 1024),
        NandTiming::mlc_default(),
        clock.clone(),
        RssdConfig::default(),
        LoopbackTarget::new(),
    );
    let page_size = device.page_size();
    let mut controller = NvmeController::new(&mut device);
    let mut victim = Tenant::new("victim", controller.create_queue_pair(32));
    let mut attacker = Tenant::new("attacker", controller.create_queue_pair(32));
    let mut valid: HashSet<u64> = HashSet::new();

    // --- The victim's corpus: 96 pages of ordinary, compressible data.
    let corpus: Vec<u64> = (0..96).collect();
    for chunk in corpus.chunks(32) {
        for &lpa in chunk {
            let data = synthesize_page(PayloadKind::Text, lpa, page_size);
            victim.submit(&mut controller, &mut valid, IoCommand::Write { lpa, data });
        }
        controller.run_to_idle();
        controller.drain_completions(victim.queue);
    }
    let originals: HashMap<u64, Vec<u8>> = corpus
        .iter()
        .map(|&lpa| (lpa, synthesize_page(PayloadKind::Text, lpa, page_size)))
        .collect();

    // --- Steady state: both tenants active at once, round-robin arbitrated.
    // The victim keeps editing its files (benign, compressible overwrites);
    // the attacker runs read → encrypt → overwrite over the victim's pages,
    // then trims a few to cover its tracks.
    clock.advance(3_600_000_000_000); // an hour later
    let attack_start = clock.now_ns();
    for round in 0..96u64 {
        // Victim: edit a page (text stays text).
        let lpa = round % 48;
        let data = synthesize_page(PayloadKind::Text, lpa ^ 0x5a5a, page_size);
        victim.submit(&mut controller, &mut valid, IoCommand::Write { lpa, data });

        // Attacker: classic in-place encryption of one page per round.
        let target = 48 + (round % 48);
        attacker.submit(&mut controller, &mut valid, IoCommand::Read { lpa: target });
        controller.run_to_idle();
        let ciphertext = synthesize_page(PayloadKind::Random, round ^ 0xdead, page_size);
        attacker.submit(
            &mut controller,
            &mut valid,
            IoCommand::Write {
                lpa: target,
                data: ciphertext,
            },
        );
        if round % 16 == 15 {
            attacker.submit(
                &mut controller,
                &mut valid,
                IoCommand::Trim {
                    lpa: 48 + (round % 48),
                },
            );
        }
        controller.run_to_idle();
        controller.drain_completions(victim.queue);
        controller.drain_completions(attacker.queue);
        clock.advance(50_000_000);
    }

    // --- Per-queue attribution: same detector, radically different stories.
    println!("per-queue detection attribution:");
    let mut verdicts = HashMap::new();
    for tenant in [&victim, &attacker] {
        let stats = controller.stats(tenant.queue);
        let verdict = tenant.detector.verdict();
        verdicts.insert(tenant.name, verdict);
        println!(
            "  {:<9} q{} | {:>3} w / {:>3} r / {:>2} t | queue p50 {:>9} ns p99 {:>9} ns | score {:.2} → {:?}",
            tenant.name,
            tenant.queue.0,
            stats.writes,
            stats.reads,
            stats.trims,
            stats.latency.percentile_ns(50.0),
            stats.latency.percentile_ns(99.0),
            tenant.detector.score(),
            verdict,
        );
    }
    assert_eq!(verdicts["attacker"], Verdict::Ransomware);
    assert_ne!(verdicts["victim"], Verdict::Ransomware);

    // --- The investigator's back channel: recover what the attacker hit.
    drop(controller);
    let attacked: Vec<u64> = (48..96).collect();
    let report = RecoveryEngine::new().restore_before(&mut device, &attacked, attack_start);
    let mut intact = 0;
    for &lpa in &attacked {
        if device.read_page(lpa)? == originals[&lpa] {
            intact += 1;
        }
    }
    println!(
        "recovery: {} restored, {} unrecoverable; {}/{} attacked pages byte-identical",
        report.pages_restored,
        report.pages_unrecoverable,
        intact,
        attacked.len()
    );
    assert_eq!(intact, attacked.len(), "zero data loss for the victim");
    Ok(())
}
