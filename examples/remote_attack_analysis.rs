//! The full codesign, end to end: an RSSD offloading over simulated
//! NVMe-over-Ethernet to a remote log server with an S3-like object store,
//! a timing attack hidden inside benign trace traffic, remote detection
//! firing, trusted post-attack analysis, and zero-data-loss recovery.
//!
//! ```sh
//! cargo run --example remote_attack_analysis
//! ```

use rssd_repro::attacks::{FileTable, TimingAttack};
use rssd_repro::core::{PostAttackAnalyzer, RecoveryEngine, RssdConfig, RssdDevice};
use rssd_repro::crypto::DeviceKeys;
use rssd_repro::flash::{FlashGeometry, NandTiming, SimClock};
use rssd_repro::remote::RemoteLogServer;
use rssd_repro::ssd::BlockDevice;
use rssd_repro::trace::{replay, TraceProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Provision the codesign: device + remote server share offload keys.
    let config = RssdConfig::default();
    let keys = DeviceKeys::for_simulation(config.key_seed);
    let server = RemoteLogServer::datacenter(&keys);
    let clock = SimClock::new();
    let mut device = RssdDevice::new(
        FlashGeometry::with_capacity(32 * 1024 * 1024),
        NandTiming::mlc_default(),
        clock.clone(),
        config,
        server,
    );

    // --- A victim corpus plus realistic background traffic (the `usr` trace).
    let victims = FileTable::populate(&mut device, 16, 8, 7)?;
    let profile = TraceProfile::by_name("usr").expect("profile exists");
    let background: Vec<_> = profile
        .workload(device.logical_pages(), device.page_size(), 3)
        .take(2_000)
        .map(|mut r| {
            // Keep background traffic off the victim extents.
            r.lpa += victims.next_lpa();
            r
        })
        .collect();
    let _ = replay(&mut device, background);
    println!(
        "background replayed; {} records in the evidence chain",
        device.chain_len()
    );

    // --- The timing attack: 4 pages per hour, hidden in the noise.
    let attack = TimingAttack::new(99, 4, 3_600_000_000_000);
    let outcome = attack.execute(&mut device, &victims, |_| Ok(()))?;
    println!(
        "timing attack encrypted {} pages over {:.1} simulated hours",
        outcome.pages_encrypted,
        (outcome.end_ns - outcome.start_ns) as f64 / 3.6e12
    );
    device.flush_log().map_err(|e| e.to_string())?;

    // --- Offloaded detection on the remote server has seen it.
    let report = device.remote().report();
    println!(
        "remote detection: verdict {:?} (score {:.2}) over {} offloaded records",
        report.verdict, report.score, report.records_analyzed
    );
    println!(
        "remote store: {} segments, {} bytes sealed, {} NVMe-oE capsules",
        report.segments_stored,
        device.remote().store_stats().stored_bytes,
        device.remote().transfer_stats().capsules_sent
    );

    // --- Trusted post-attack analysis over the verified history.
    let history = device.verified_history().map_err(|e| e.to_string())?;
    let analysis = PostAttackAnalyzer::new().analyze(&history, true);
    println!(
        "analysis: class = {}, {} victim pages, window {:.1}h, chain verified = {}",
        analysis.attack_class,
        analysis.victim_lpas.len(),
        analysis
            .attack_end_ns
            .zip(analysis.attack_start_ns)
            .map(|(e, s)| (e - s) as f64 / 3.6e12)
            .unwrap_or(0.0),
        analysis.chain_verified
    );

    // --- Zero-data-loss recovery from the analyzer's victim list.
    let recovery = RecoveryEngine::new().restore_before(
        &mut device,
        &analysis.victim_lpas,
        analysis.attack_start_ns.expect("attack found"),
    );
    let (intact, total) = victims.verify_intact(&mut device);
    println!(
        "recovery: {} pages restored, corpus verification {}/{} intact",
        recovery.pages_restored, intact, total
    );
    assert_eq!(intact, total, "zero data loss");
    Ok(())
}
