//! A fleet in one screen: N independent RSSD members, per-tenant
//! workloads, faults, and fused detection.
//!
//! Runs a small [`Fleet`] (12 members, a quarter of them compromised, a
//! tenth under seeded fault schedules) on two worker threads and prints
//! the per-member scorecards, the merged device-stats rollup, and the
//! fleet-wide fused detection verdict. The same harness scales to
//! thousands of members in `cargo bench --bench fleet`; this example is
//! the CI-sized tour.
//!
//! ```sh
//! cargo run --example fleet_sim
//! # dual-timeline trace for https://ui.perfetto.dev:
//! cargo run --example fleet_sim -- --trace-out fleet_trace.json
//! ```
//!
//! [`Fleet`]: rssd_repro::fleet::Fleet

use rssd_repro::detect::Verdict;
use rssd_repro::fleet::{Fleet, FleetConfig, ObsOptions};
use rssd_repro::obs::export_chrome_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    let config = FleetConfig {
        members: 12,
        workers: 2,
        seed: 42,
        ops_per_member: 60,
        fault_fraction: 0.1,
        ..FleetConfig::default()
    };
    println!(
        "fleet: {} members ({} tenants, zipf {}), {} workers, seed {}\n",
        config.members, config.tenants, config.zipf_theta, config.workers, config.seed
    );

    let (report, obs) = Fleet::new(config).run_instrumented(ObsOptions {
        trace: trace_out.is_some(),
        profile: true,
    })?;

    println!(
        "{:>3} {:<7} {:>6} {:<10} {:>6} {:>6} {:>11} {:>6} {:>6}  chain",
        "id", "kind", "tenant", "profile", "attck", "fault", "verdict", "score", "cuts"
    );
    println!("{}", "-".repeat(84));
    for card in &report.scorecards {
        let verdict = match card.verdict {
            Verdict::Benign => "benign",
            Verdict::Suspicious => "suspicious",
            Verdict::Ransomware => "RANSOMWARE",
        };
        println!(
            "{:>3} {:<7} {:>6} {:<10} {:>6} {:>6} {:>11} {:>6.2} {:>6}  {}",
            card.member,
            card.kind,
            card.tenant,
            card.profile,
            if card.compromised { "yes" } else { "-" },
            if card.faulted { "yes" } else { "-" },
            verdict,
            card.detection_score,
            card.power_cuts,
            if card.chain_verified {
                "verified"
            } else {
                "GAP FLAGGED"
            },
        );
    }
    println!("{}", "-".repeat(84));

    println!(
        "merged devices: {} programs, {} reads, {} erases; WAF {:.2}; \
         {} segments offloaded; service latency mean {:.0} ns / p99 {} ns",
        report.nand.programs(),
        report.nand.reads(),
        report.nand.erases(),
        report.ftl.write_amplification(),
        report.offload.segments_offloaded,
        report.latency.mean_ns(),
        report.latency.quantile_ns(0.99),
    );
    println!(
        "merged host:    {} submitted / {} completed across member queue pairs",
        report.queues.submitted, report.queues.completed
    );
    println!(
        "fleet:          {} ops over {:.1} simulated s ({:.2} sim IOPS); \
         fused verdict {:?} (score {:.2}, {} observations)",
        report.total_ops,
        report.sim_end_ns as f64 / 1e9,
        report.simulated_iops(),
        report.fleet_verdict,
        report.fleet_score,
        report.observations,
    );
    println!(
        "detection:      {}/{} compromised members flagged, {} false positives \
         (recall {:.2})",
        report.true_positives,
        report.compromised_members.len(),
        report.false_positives,
        report.detection_recall(),
    );

    let profile = &obs.profile;
    if profile.total_ns > 0 {
        let breakdown = profile
            .iter()
            .map(|(phase, _)| format!("{phase} {:.1}%", profile.phase_pct(phase)))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "host profile:   {:.1} ms across members ({breakdown})",
            profile.total_ns as f64 / 1e6
        );
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, export_chrome_trace(&obs.events))?;
        println!(
            "trace:          {} events -> {path} (load in https://ui.perfetto.dev)",
            obs.events.len()
        );
    }

    // The invariants CI relies on: every compromised member flagged by its
    // own audit, no clean member smeared, and the fused stream sees the
    // fleet-wide attack.
    assert_eq!(report.missed, 0, "compromised member escaped its audit");
    assert_eq!(report.false_positives, 0, "clean member falsely flagged");
    assert_eq!(report.fleet_verdict, Verdict::Ransomware);
    Ok(())
}
