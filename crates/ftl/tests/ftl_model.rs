//! Model-based property tests for the FTL: whatever GC does underneath,
//! the logical view must match a simple map, stale accounting must balance,
//! and pinning must be an absolute barrier for GC.

use proptest::prelude::*;
use rssd_flash::{FlashGeometry, NandArray, NandTiming, SimClock};
use rssd_ftl::{Ftl, FtlConfig, FtlError, InvalidateCause};
use std::collections::HashMap;

fn mk_ftl() -> Ftl {
    let nand = NandArray::with_clock(
        FlashGeometry::small_test(),
        NandTiming::instant(),
        SimClock::new(),
    );
    Ftl::new(nand, FtlConfig::default())
}

#[derive(Clone, Debug)]
enum Op {
    Write(u64, u8),
    Trim(u64),
}

fn ops(lpas: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..lpas, any::<u8>()).prop_map(|(l, b)| Op::Write(l, b)),
            1 => (0..lpas).prop_map(Op::Trim),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn logical_view_matches_model(ops in ops(32)) {
        let mut ftl = mk_ftl();
        let mut model: HashMap<u64, Option<u8>> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Write(lpa, b) => {
                    ftl.write(lpa, vec![b; 4096]).unwrap();
                    model.insert(lpa, Some(b));
                }
                Op::Trim(lpa) => {
                    ftl.trim(lpa).unwrap();
                    model.insert(lpa, None);
                }
            }
        }
        ftl.drain_stale_events();
        for (lpa, expected) in &model {
            match expected {
                Some(b) => prop_assert_eq!(ftl.read(*lpa).unwrap(), Some(vec![*b; 4096])),
                None => prop_assert_eq!(ftl.read(*lpa).unwrap(), None),
            }
        }
    }

    #[test]
    fn stale_events_balance_invalidations(ops in ops(24)) {
        let mut ftl = mk_ftl();
        let mut expected_events = 0u64;
        let mut mapped: HashMap<u64, bool> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Write(lpa, b) => {
                    if mapped.get(&lpa).copied().unwrap_or(false) {
                        expected_events += 1;
                    }
                    ftl.write(lpa, vec![b; 4096]).unwrap();
                    mapped.insert(lpa, true);
                }
                Op::Trim(lpa) => {
                    if mapped.get(&lpa).copied().unwrap_or(false) {
                        expected_events += 1;
                    }
                    ftl.trim(lpa).unwrap();
                    mapped.insert(lpa, false);
                }
            }
        }
        let host_events = ftl
            .drain_stale_events()
            .into_iter()
            .filter(|e| e.cause != InvalidateCause::GcMigration)
            .count() as u64;
        prop_assert_eq!(host_events, expected_events);
    }

    #[test]
    fn pinned_pages_survive_arbitrary_churn(churn in ops(40)) {
        let mut ftl = mk_ftl();
        // Create a victim version and pin it.
        ftl.write(63, vec![0xAB; 4096]).unwrap();
        ftl.write(63, vec![0xCD; 4096]).unwrap();
        let event = ftl
            .drain_stale_events()
            .into_iter()
            .find(|e| e.lpa == 63)
            .expect("overwrite event");
        ftl.pin_page(event.ppa);

        // Arbitrary churn, tolerating capacity stalls.
        for op in &churn {
            let result = match *op {
                Op::Write(lpa, b) => ftl.write(lpa % 60, vec![b; 4096]),
                Op::Trim(lpa) => ftl.trim(lpa % 60),
            };
            match result {
                Ok(()) | Err(FtlError::DeviceFull) => {}
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
            ftl.drain_stale_events();
        }

        // The pinned stale version is physically intact.
        let (data, oob) = ftl.read_physical(event.ppa).unwrap();
        prop_assert_eq!(data, vec![0xAB; 4096]);
        prop_assert_eq!(oob.lpa, 63);
    }

    #[test]
    fn waf_at_least_one_and_counts_consistent(ops in ops(24)) {
        let mut ftl = mk_ftl();
        for op in &ops {
            match *op {
                Op::Write(lpa, b) => ftl.write(lpa, vec![b; 4096]).unwrap(),
                Op::Trim(lpa) => ftl.trim(lpa).unwrap(),
            }
        }
        prop_assert!(ftl.stats().write_amplification() >= 1.0);
        // NAND programs = host writes + migrations.
        prop_assert_eq!(
            ftl.nand_stats().programs(),
            ftl.stats().host_pages_written + ftl.stats().gc_pages_migrated
        );
        // Valid pages never exceed logical pages.
        prop_assert!(ftl.total_valid_pages() <= ftl.logical_pages());
    }
}
