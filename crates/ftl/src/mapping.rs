//! Logical-to-physical mapping and per-block validity tracking.

use rssd_flash::{FlashGeometry, Ppa};

/// Page-level L2P table plus the per-block bookkeeping GC needs.
///
/// Tracks, for every erase block: how many pages are valid, how many are
/// stale (programmed but superseded), and which page offsets are valid.
#[derive(Clone, Debug)]
pub struct MappingTable {
    geometry: FlashGeometry,
    l2p: Vec<Option<Ppa>>,
    /// Per physical page: the LPA it maps (valid) or mapped (stale), if any.
    p2l: Vec<Option<u64>>,
    /// Per physical page: is it the current version of its LPA?
    valid: Vec<bool>,
    /// Per block: count of valid pages.
    valid_count: Vec<u32>,
    /// Per block: count of stale pages (programmed, no longer valid).
    stale_count: Vec<u32>,
}

impl MappingTable {
    /// Creates an empty mapping for `logical_pages` LPAs over `geometry`.
    pub fn new(geometry: FlashGeometry, logical_pages: u64) -> Self {
        MappingTable {
            geometry,
            l2p: vec![None; logical_pages as usize],
            p2l: vec![None; geometry.total_pages() as usize],
            valid: vec![false; geometry.total_pages() as usize],
            valid_count: vec![0; geometry.total_blocks() as usize],
            stale_count: vec![0; geometry.total_blocks() as usize],
        }
    }

    /// Number of logical pages exposed.
    pub fn logical_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Current physical location of `lpa`, if mapped.
    pub fn lookup(&self, lpa: u64) -> Option<Ppa> {
        self.l2p.get(lpa as usize).copied().flatten()
    }

    /// Records that `lpa` now lives at `ppa`. Returns the previous physical
    /// location (now stale), if any.
    pub fn update(&mut self, lpa: u64, ppa: Ppa) -> Option<Ppa> {
        let old = self.l2p[lpa as usize].replace(ppa);
        let new_idx = self.geometry.page_index(ppa) as usize;
        debug_assert!(!self.valid[new_idx], "mapping onto a still-valid page");
        self.p2l[new_idx] = Some(lpa);
        self.valid[new_idx] = true;
        self.valid_count[self.geometry.block_index(ppa) as usize] += 1;
        if let Some(old_ppa) = old {
            self.mark_stale(old_ppa);
        }
        old
    }

    /// Unmaps `lpa` (trim). Returns the now-stale physical page, if any.
    pub fn unmap(&mut self, lpa: u64) -> Option<Ppa> {
        let old = self.l2p[lpa as usize].take();
        if let Some(old_ppa) = old {
            self.mark_stale(old_ppa);
        }
        old
    }

    fn mark_stale(&mut self, ppa: Ppa) {
        let idx = self.geometry.page_index(ppa) as usize;
        debug_assert!(self.valid[idx], "staling a non-valid page");
        self.valid[idx] = false;
        let block = self.geometry.block_index(ppa) as usize;
        self.valid_count[block] -= 1;
        self.stale_count[block] += 1;
    }

    /// Is the physical page at `ppa` the current version of some LPA?
    pub fn is_valid(&self, ppa: Ppa) -> bool {
        self.valid[self.geometry.page_index(ppa) as usize]
    }

    /// The LPA associated with physical page `ppa` (valid or stale), if any.
    pub fn lpa_of(&self, ppa: Ppa) -> Option<u64> {
        self.p2l[self.geometry.page_index(ppa) as usize]
    }

    /// Valid-page count of global block `block_index`.
    pub fn block_valid_count(&self, block_index: u32) -> u32 {
        self.valid_count[block_index as usize]
    }

    /// Stale-page count of global block `block_index`.
    pub fn block_stale_count(&self, block_index: u32) -> u32 {
        self.stale_count[block_index as usize]
    }

    /// Clears all per-page records for `block_index` after an erase.
    pub fn reset_block(&mut self, block_index: u32) {
        let pages = self.geometry.pages_per_block as u64;
        let start = u64::from(block_index) * pages;
        for idx in start..start + pages {
            debug_assert!(
                !self.valid[idx as usize],
                "erasing a block holding valid data"
            );
            self.p2l[idx as usize] = None;
        }
        self.stale_count[block_index as usize] = 0;
        debug_assert_eq!(self.valid_count[block_index as usize], 0);
    }

    /// Valid page offsets (page-in-block, LPA) of `block_index`, in order.
    pub fn valid_pages_of_block(&self, block_index: u32) -> Vec<(u32, u64)> {
        let pages = self.geometry.pages_per_block;
        let start = u64::from(block_index) * u64::from(pages);
        (0..pages)
            .filter_map(|p| {
                let idx = (start + u64::from(p)) as usize;
                if self.valid[idx] {
                    Some((p, self.p2l[idx].expect("valid page has an lpa")))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Total valid pages across the device.
    pub fn total_valid(&self) -> u64 {
        self.valid_count.iter().map(|&c| u64::from(c)).sum()
    }

    /// Total stale pages across the device.
    pub fn total_stale(&self) -> u64 {
        self.stale_count.iter().map(|&c| u64::from(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rssd_flash::FlashGeometry;

    fn table() -> MappingTable {
        let g = FlashGeometry::small_test();
        MappingTable::new(g, 128)
    }

    #[test]
    fn update_and_lookup() {
        let mut t = table();
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        assert_eq!(t.update(5, ppa), None);
        assert_eq!(t.lookup(5), Some(ppa));
        assert!(t.is_valid(ppa));
        assert_eq!(t.lpa_of(ppa), Some(5));
    }

    #[test]
    fn overwrite_stales_old_page() {
        let mut t = table();
        let a = Ppa::new(0, 0, 0, 0, 0);
        let b = Ppa::new(0, 0, 0, 0, 1);
        t.update(5, a);
        assert_eq!(t.update(5, b), Some(a));
        assert!(!t.is_valid(a));
        assert!(t.is_valid(b));
        let g = FlashGeometry::small_test();
        assert_eq!(t.block_valid_count(g.block_index(a)), 1);
        assert_eq!(t.block_stale_count(g.block_index(a)), 1);
    }

    #[test]
    fn unmap_stales_and_clears() {
        let mut t = table();
        let a = Ppa::new(0, 0, 0, 0, 0);
        t.update(5, a);
        assert_eq!(t.unmap(5), Some(a));
        assert_eq!(t.lookup(5), None);
        assert!(!t.is_valid(a));
        // Stale page still remembers its LPA for forensics.
        assert_eq!(t.lpa_of(a), Some(5));
    }

    #[test]
    fn unmap_unmapped_is_none() {
        let mut t = table();
        assert_eq!(t.unmap(5), None);
    }

    #[test]
    fn valid_pages_of_block_lists_in_order() {
        let mut t = table();
        t.update(10, Ppa::new(0, 0, 0, 0, 0));
        t.update(11, Ppa::new(0, 0, 0, 0, 1));
        t.update(12, Ppa::new(0, 0, 0, 0, 2));
        t.update(11, Ppa::new(0, 0, 0, 1, 0)); // stale page 1
        let valid = t.valid_pages_of_block(0);
        assert_eq!(valid, vec![(0, 10), (2, 12)]);
    }

    #[test]
    fn reset_block_clears_stale_records() {
        let mut t = table();
        let a = Ppa::new(0, 0, 0, 0, 0);
        t.update(5, a);
        t.update(5, Ppa::new(0, 0, 0, 1, 0));
        t.reset_block(0);
        assert_eq!(t.block_stale_count(0), 0);
        assert_eq!(t.lpa_of(a), None);
    }

    #[test]
    fn totals() {
        let mut t = table();
        t.update(1, Ppa::new(0, 0, 0, 0, 0));
        t.update(2, Ppa::new(0, 0, 0, 0, 1));
        t.update(1, Ppa::new(0, 0, 0, 0, 2));
        assert_eq!(t.total_valid(), 2);
        assert_eq!(t.total_stale(), 1);
    }
}
