//! FTL-level statistics: write amplification, GC activity, trim counts.

use serde::{Deserialize, Serialize};

/// Counters kept by the FTL, on top of the raw NAND counters.
///
/// The lifetime experiment (E4) reports [`FtlStats::write_amplification`]
/// for RSSD vs. the plain SSD: the paper's claim is that retention plus
/// offload leaves WAF essentially unchanged, because retained pages are
/// never *migrated*, only held until offload and then erased in place.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct FtlStats {
    /// Pages written on behalf of the host.
    pub host_pages_written: u64,
    /// Pages read on behalf of the host.
    pub host_pages_read: u64,
    /// Pages migrated by garbage collection.
    pub gc_pages_migrated: u64,
    /// Blocks erased by garbage collection.
    pub gc_blocks_erased: u64,
    /// GC passes executed.
    pub gc_invocations: u64,
    /// Trim commands processed (per-page granularity).
    pub pages_trimmed: u64,
    /// Host writes refused because no space could be reclaimed.
    pub write_stalls: u64,
}

impl FtlStats {
    /// Write amplification factor: `(host + gc writes) / host writes`.
    /// Returns 1.0 before any host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            return 1.0;
        }
        (self.host_pages_written + self.gc_pages_migrated) as f64 / self.host_pages_written as f64
    }

    /// Folds another FTL's counters into this one — the fleet rollup.
    /// Associative and commutative, with `FtlStats::default()` as identity;
    /// [`FtlStats::write_amplification`] of the merged counters is the
    /// page-weighted fleet aggregate, not the mean of per-device WAFs.
    pub fn merge(&mut self, other: &FtlStats) {
        self.host_pages_written += other.host_pages_written;
        self.host_pages_read += other.host_pages_read;
        self.gc_pages_migrated += other.gc_pages_migrated;
        self.gc_blocks_erased += other.gc_blocks_erased;
        self.gc_invocations += other.gc_invocations;
        self.pages_trimmed += other.pages_trimmed;
        self.write_stalls += other.write_stalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_is_one_without_gc() {
        let s = FtlStats {
            host_pages_written: 100,
            ..FtlStats::default()
        };
        assert!((s.write_amplification() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn waf_counts_migrations() {
        let s = FtlStats {
            host_pages_written: 100,
            gc_pages_migrated: 50,
            ..FtlStats::default()
        };
        assert!((s.write_amplification() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn waf_defined_when_empty() {
        assert_eq!(FtlStats::default().write_amplification(), 1.0);
    }

    fn sample(base: u64) -> FtlStats {
        FtlStats {
            host_pages_written: base,
            host_pages_read: base * 2,
            gc_pages_migrated: base / 2,
            gc_blocks_erased: base / 4,
            gc_invocations: base / 8,
            pages_trimmed: base / 3,
            write_stalls: base / 16,
        }
    }

    #[test]
    fn merge_identity_and_associativity() {
        let (a, b, c) = (sample(16), sample(160), sample(1_600));
        let mut with_identity = a;
        with_identity.merge(&FtlStats::default());
        assert_eq!(with_identity, a);
        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn merged_waf_is_page_weighted() {
        let mut fleet = FtlStats {
            host_pages_written: 100,
            gc_pages_migrated: 0,
            ..FtlStats::default()
        };
        fleet.merge(&FtlStats {
            host_pages_written: 100,
            gc_pages_migrated: 100,
            ..FtlStats::default()
        });
        assert!((fleet.write_amplification() - 1.5).abs() < 1e-12);
    }
}
