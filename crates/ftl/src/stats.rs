//! FTL-level statistics: write amplification, GC activity, trim counts.

use serde::{Deserialize, Serialize};

/// Counters kept by the FTL, on top of the raw NAND counters.
///
/// The lifetime experiment (E4) reports [`FtlStats::write_amplification`]
/// for RSSD vs. the plain SSD: the paper's claim is that retention plus
/// offload leaves WAF essentially unchanged, because retained pages are
/// never *migrated*, only held until offload and then erased in place.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct FtlStats {
    /// Pages written on behalf of the host.
    pub host_pages_written: u64,
    /// Pages read on behalf of the host.
    pub host_pages_read: u64,
    /// Pages migrated by garbage collection.
    pub gc_pages_migrated: u64,
    /// Blocks erased by garbage collection.
    pub gc_blocks_erased: u64,
    /// GC passes executed.
    pub gc_invocations: u64,
    /// Trim commands processed (per-page granularity).
    pub pages_trimmed: u64,
    /// Host writes refused because no space could be reclaimed.
    pub write_stalls: u64,
}

impl FtlStats {
    /// Write amplification factor: `(host + gc writes) / host writes`.
    /// Returns 1.0 before any host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            return 1.0;
        }
        (self.host_pages_written + self.gc_pages_migrated) as f64 / self.host_pages_written as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_is_one_without_gc() {
        let s = FtlStats {
            host_pages_written: 100,
            ..FtlStats::default()
        };
        assert!((s.write_amplification() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn waf_counts_migrations() {
        let s = FtlStats {
            host_pages_written: 100,
            gc_pages_migrated: 50,
            ..FtlStats::default()
        };
        assert!((s.write_amplification() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn waf_defined_when_empty() {
        assert_eq!(FtlStats::default().write_amplification(), 1.0);
    }
}
