//! The flash translation layer proper.

use crate::allocator::{BlockAllocator, Stream};
use crate::config::FtlConfig;
#[cfg(test)]
use crate::config::GcPolicy;
use crate::gc::{select_victim, Candidate};
use crate::mapping::MappingTable;
use crate::stats::FtlStats;
use rssd_flash::{
    BlockState, FlashGeometry, NandArray, NandError, OpTicket, PageOob, Ppa, SimClock,
};
use rssd_obs::SinkHandle;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// Marks the first page of a spill-region entry.
const SPILL_MAGIC: u64 = 0x5253_5344_5350_4C31; // "RSSDSPL1"
/// Bytes of spill-entry header preceding the payload: magic + length.
const SPILL_HEADER_BYTES: usize = 16;

/// Why a physical page became stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvalidateCause {
    /// The host overwrote the logical page with new content.
    Overwrite,
    /// The host trimmed (deallocated) the logical page.
    Trim,
    /// GC migrated the still-valid content to a new physical page; the old
    /// copy is byte-identical to the new one, so retention policies never
    /// need to pin these (nothing is lost when the block is erased).
    GcMigration,
}

/// Emitted whenever a physical page transitions valid → stale.
///
/// This is the raw feed RSSD's hardware-assisted log consumes: it preserves
/// the logical address, the physical location of the stale data, the OOB
/// metadata (write timestamp + global sequence number) and the cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaleEvent {
    /// Logical page whose old version went stale.
    pub lpa: u64,
    /// Physical location of the stale (old) data.
    pub ppa: Ppa,
    /// OOB metadata the stale page was written with.
    pub oob: PageOob,
    /// Why it went stale.
    pub cause: InvalidateCause,
    /// Simulated time of the invalidation.
    pub invalidated_at_ns: u64,
}

/// Errors surfaced by FTL operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtlError {
    /// Logical address beyond the exported capacity.
    LpaOutOfRange {
        /// The offending logical page address.
        lpa: u64,
        /// Number of logical pages exported.
        logical_pages: u64,
    },
    /// No space could be reclaimed: every candidate block is pinned by the
    /// retention policy. The device layer must release pins (offload or
    /// evict) and retry — or, for an unprotected SSD under the GC attack,
    /// drop retained data.
    DeviceFull,
    /// Payload size does not match the page size.
    WrongPageSize {
        /// Bytes supplied.
        got: usize,
        /// Bytes required.
        expected: usize,
    },
    /// Raw NAND failure.
    Nand(NandError),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::LpaOutOfRange { lpa, logical_pages } => {
                write!(f, "lpa {lpa} out of range ({logical_pages} logical pages)")
            }
            FtlError::DeviceFull => {
                write!(f, "no reclaimable space: all candidate blocks pinned")
            }
            FtlError::WrongPageSize { got, expected } => {
                write!(f, "payload of {got} bytes, page size is {expected}")
            }
            FtlError::Nand(e) => write!(f, "nand: {e}"),
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for FtlError {
    fn from(e: NandError) -> Self {
        FtlError::Nand(e)
    }
}

/// Page-level FTL with greedy/cost-benefit GC, dynamic wear leveling, trim,
/// stale-event emission and page pinning.
#[derive(Clone, Debug)]
pub struct Ftl {
    nand: NandArray,
    config: FtlConfig,
    geometry: FlashGeometry,
    mapping: MappingTable,
    allocator: BlockAllocator,
    /// Pinned physical pages by global page index.
    pinned: HashSet<u64>,
    /// Pinned-page count per block (GC eligibility).
    pinned_per_block: Vec<u32>,
    /// Last invalidation time per block (cost-benefit age).
    last_invalidate_ns: Vec<u64>,
    stale_events: VecDeque<StaleEvent>,
    stats: FtlStats,
    logical_pages: u64,
    /// Reserved spill blocks (highest block indices), ascending. Removed
    /// from the allocator pool at construction so they are never host/GC
    /// targets and never GC victims.
    spill_blocks: Vec<u32>,
    /// Pages of the spill region already programmed (append cursor).
    spill_cursor: u64,
    sink: SinkHandle,
}

impl Ftl {
    /// Creates an FTL over `nand` with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(nand: NandArray, config: FtlConfig) -> Self {
        config.validate().expect("invalid FtlConfig");
        let geometry = nand.geometry();
        let total_blocks = geometry.total_blocks();
        assert!(
            config.spill_blocks < total_blocks / 2,
            "spill_blocks {} must leave most of the device ({total_blocks} blocks) to the host",
            config.spill_blocks
        );
        // Spill blocks come off the top of the block range, deterministically:
        // identical configs reserve identical physical blocks, which keeps
        // host placement (and therefore chain-MAC'd old_page_index values)
        // independent of whether a spill ever happens.
        let spill_blocks: Vec<u32> = (total_blocks - config.spill_blocks..total_blocks).collect();
        let spill_pages = spill_blocks.len() as u64 * u64::from(geometry.pages_per_block);
        let host_pages = geometry.total_pages() - spill_pages;
        let logical_pages = (host_pages as f64 * (1.0 - config.over_provisioning)) as u64;
        let mut allocator = BlockAllocator::new(geometry);
        for &b in &spill_blocks {
            allocator.retire_block(b);
        }
        Ftl {
            mapping: MappingTable::new(geometry, logical_pages),
            allocator,
            spill_blocks,
            spill_cursor: 0,
            pinned: HashSet::new(),
            pinned_per_block: vec![0; geometry.total_blocks() as usize],
            last_invalidate_ns: vec![0; geometry.total_blocks() as usize],
            stale_events: VecDeque::new(),
            stats: FtlStats::default(),
            logical_pages,
            geometry,
            config,
            nand,
            sink: SinkHandle::disabled(),
        }
    }

    /// Attaches a trace sink to the FTL and its NAND array: GC passes
    /// become spans on the `ftl/gc` track, NAND ops land on their unit
    /// tracks. Disabled by default.
    pub fn set_trace_sink(&mut self, sink: SinkHandle) {
        self.nand.set_trace_sink(sink.clone());
        self.sink = sink;
    }

    /// Number of logical pages exported to the host.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> FlashGeometry {
        self.geometry
    }

    /// Handle to the simulation clock.
    pub fn clock(&self) -> &SimClock {
        self.nand.clock()
    }

    /// FTL-level statistics.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Raw NAND statistics.
    pub fn nand_stats(&self) -> &rssd_flash::NandStats {
        self.nand.stats()
    }

    /// Erased blocks currently in the free pool.
    pub fn free_blocks(&self) -> u32 {
        self.allocator.free_blocks()
    }

    /// Total stale (retained) pages on the device.
    pub fn total_stale_pages(&self) -> u64 {
        self.mapping.total_stale()
    }

    /// Total valid pages on the device.
    pub fn total_valid_pages(&self) -> u64 {
        self.mapping.total_valid()
    }

    /// Number of currently pinned pages.
    pub fn pinned_pages(&self) -> u64 {
        self.pinned.len() as u64
    }

    /// Writes one logical page, blocking (the clock advances to the
    /// program's completion).
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpaOutOfRange`] / [`FtlError::WrongPageSize`] on bad
    ///   arguments.
    /// * [`FtlError::DeviceFull`] when no space can be reclaimed because the
    ///   retention policy has pinned every candidate block (this is the
    ///   condition the GC attack drives baselines into).
    pub fn write(&mut self, lpa: u64, data: Vec<u8>) -> Result<(), FtlError> {
        let ticket = self.write_async(lpa, data)?;
        self.clock().advance_to(ticket.done_ns);
        Ok(())
    }

    /// Dispatches one logical-page write onto the flash pipelines without
    /// advancing the clock: the mapping/stale-event state commits
    /// immediately, the ticket says when the program completes. Consecutive
    /// dispatches stripe across channels (see
    /// [`crate::allocator::BlockAllocator`]), so a batch of writes overlaps
    /// on independent units — the batched device paths block once per batch
    /// on their latest ticket.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::write`].
    pub fn write_async(&mut self, lpa: u64, data: Vec<u8>) -> Result<OpTicket, FtlError> {
        self.write_async_reclaim(lpa, data).map_err(|(e, _)| e)
    }

    /// [`Self::write_async`], but on failure the error comes back with the
    /// untouched payload whenever the write never reached the flash
    /// pipelines (`DeviceFull`, bad arguments). The device layer's
    /// backpressure loop re-submits that same buffer after evicting pins
    /// instead of cloning the payload up front on every attempt.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::write`]; the payload is `None` only when
    /// the NAND consumed it before failing.
    #[allow(clippy::type_complexity)]
    pub fn write_async_reclaim(
        &mut self,
        lpa: u64,
        data: Vec<u8>,
    ) -> Result<OpTicket, (FtlError, Option<Vec<u8>>)> {
        if let Err(e) = self.check_lpa(lpa) {
            return Err((e, Some(data)));
        }
        if data.len() != self.geometry.page_size {
            let got = data.len();
            return Err((
                FtlError::WrongPageSize {
                    got,
                    expected: self.geometry.page_size,
                },
                Some(data),
            ));
        }
        self.run_background_gc();
        let ppa = match self.acquire_host_page() {
            Ok(ppa) => ppa,
            Err(e) => return Err((e, Some(data))),
        };
        let (_, ticket) = match self.nand.program_async(
            ppa,
            data,
            PageOob {
                lpa,
                timestamp_ns: 0,
                seq: 0,
            },
        ) {
            Ok(r) => r,
            Err(e) => return Err((FtlError::Nand(e), None)),
        };
        self.stats.host_pages_written += 1;
        if let Some(old) = self.mapping.update(lpa, ppa) {
            self.emit_stale(lpa, old, InvalidateCause::Overwrite);
        }
        Ok(ticket)
    }

    /// Reads one logical page, blocking (the clock advances to the read's
    /// completion). `Ok(None)` means the page is unmapped (never written or
    /// trimmed); the device layer renders it as zeroes.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpaOutOfRange`] or a NAND error.
    pub fn read(&mut self, lpa: u64) -> Result<Option<Vec<u8>>, FtlError> {
        let (data, ticket) = self.read_async(lpa)?;
        self.clock().advance_to(ticket.done_ns);
        Ok(data)
    }

    /// Dispatches one logical-page read without advancing the clock. An
    /// unmapped page returns a zero-duration ticket (served from the
    /// mapping table, no flash involved).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn read_async(&mut self, lpa: u64) -> Result<(Option<Vec<u8>>, OpTicket), FtlError> {
        self.check_lpa(lpa)?;
        match self.mapping.lookup(lpa) {
            None => Ok((None, OpTicket::instant(self.clock().now_ns()))),
            Some(ppa) => {
                let (data, _, ticket) = self.nand.read_async(ppa)?;
                self.stats.host_pages_read += 1;
                Ok((Some(data), ticket))
            }
        }
    }

    /// Trims (deallocates) one logical page. Subsequent reads return
    /// unmapped. The old physical page becomes stale and is reported via a
    /// [`StaleEvent`] with [`InvalidateCause::Trim`] — this is the raw trim
    /// behaviour; RSSD's *enhanced trim* is layered on top by pinning the
    /// stale page and logging the operation.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpaOutOfRange`] for bad addresses.
    pub fn trim(&mut self, lpa: u64) -> Result<(), FtlError> {
        self.check_lpa(lpa)?;
        if let Some(old) = self.mapping.unmap(lpa) {
            self.stats.pages_trimmed += 1;
            self.emit_stale(lpa, old, InvalidateCause::Trim);
        }
        Ok(())
    }

    /// Reads a physical page directly (data + OOB). Used by the offload
    /// engine to ship pinned stale pages, and by recovery.
    ///
    /// # Errors
    ///
    /// Propagates NAND errors (erased page, bad block, out of range).
    pub fn read_physical(&mut self, ppa: Ppa) -> Result<(Vec<u8>, PageOob), FtlError> {
        Ok(self.nand.read(ppa)?)
    }

    /// Background physical read for the offload engine: dispatched onto the
    /// unit pipelines (it occupies the page's plane and channel — the
    /// small, bounded foreground perturbation the paper measures) but
    /// nothing blocks on it and the clock does not move.
    ///
    /// # Errors
    ///
    /// Propagates NAND errors.
    pub fn read_physical_offload(&mut self, ppa: Ppa) -> Result<(Vec<u8>, PageOob), FtlError> {
        let (data, oob, _) = self.nand.read_background_async(ppa)?;
        Ok((data, oob))
    }

    /// Zero-cost physical read for recovery and forensics (outside the
    /// device's foreground timeline): no latency charged, no pipeline
    /// occupation.
    ///
    /// # Errors
    ///
    /// Propagates NAND errors.
    pub fn read_physical_background(&mut self, ppa: Ppa) -> Result<(Vec<u8>, PageOob), FtlError> {
        Ok(self.nand.read_background(ppa)?)
    }

    /// Is the physical page currently the valid version of its LPA?
    pub fn is_valid(&self, ppa: Ppa) -> bool {
        self.mapping.is_valid(ppa)
    }

    /// Current physical location of `lpa`, if mapped.
    pub fn lookup(&self, lpa: u64) -> Option<Ppa> {
        self.mapping.lookup(lpa)
    }

    /// Pins a stale physical page, excluding its block from GC until
    /// unpinned. Idempotent.
    pub fn pin_page(&mut self, ppa: Ppa) {
        let idx = self.geometry.page_index(ppa);
        if self.pinned.insert(idx) {
            self.pinned_per_block[self.geometry.block_index(ppa) as usize] += 1;
        }
    }

    /// Unpins a physical page. Idempotent.
    pub fn unpin_page(&mut self, ppa: Ppa) {
        let idx = self.geometry.page_index(ppa);
        if self.pinned.remove(&idx) {
            self.pinned_per_block[self.geometry.block_index(ppa) as usize] -= 1;
        }
    }

    /// Is `ppa` pinned?
    pub fn is_pinned(&self, ppa: Ppa) -> bool {
        self.pinned.contains(&self.geometry.page_index(ppa))
    }

    /// Drains the queue of stale events accumulated since the last call.
    pub fn drain_stale_events(&mut self) -> Vec<StaleEvent> {
        self.stale_events.drain(..).collect()
    }

    /// Fraction of all blocks that currently contain at least one pinned
    /// page (capacity pressure signal for watermark-based eviction).
    pub fn pinned_block_fraction(&self) -> f64 {
        let pinned_blocks = self.pinned_per_block.iter().filter(|&&c| c > 0).count();
        pinned_blocks as f64 / self.geometry.total_blocks() as f64
    }

    /// Physical page at `page_off` pages into the spill region.
    fn spill_ppa(&self, page_off: u64) -> Ppa {
        let ppb = u64::from(self.geometry.pages_per_block);
        let block = self.spill_blocks[(page_off / ppb) as usize];
        self.geometry
            .block_to_ppa(block)
            .with_page((page_off % ppb) as u32)
    }

    /// Total capacity of the reserved spill region, in bytes.
    pub fn spill_capacity_bytes(&self) -> u64 {
        self.spill_blocks.len() as u64
            * u64::from(self.geometry.pages_per_block)
            * self.geometry.page_size as u64
    }

    /// Bytes of the spill region already programmed (page granularity).
    pub fn spill_used_bytes(&self) -> u64 {
        self.spill_cursor * self.geometry.page_size as u64
    }

    /// Appends one sealed entry to the spill region. The entry is laid out
    /// page-aligned: `[magic u64][len u64][payload…]`, padded to whole
    /// pages. Programs are dispatched onto the flash pipelines without
    /// advancing the clock (the spill is a background staging write), so
    /// spilling is timeline-neutral for the foreground workload.
    ///
    /// # Errors
    ///
    /// [`FtlError::DeviceFull`] when the region cannot hold the entry
    /// (nothing is written); NAND errors propagate.
    pub fn spill_append(&mut self, payload: &[u8]) -> Result<(), FtlError> {
        let page_size = self.geometry.page_size;
        let total = SPILL_HEADER_BYTES + payload.len();
        let pages_needed = total.div_ceil(page_size) as u64;
        let capacity_pages =
            self.spill_blocks.len() as u64 * u64::from(self.geometry.pages_per_block);
        if self.spill_cursor + pages_needed > capacity_pages {
            return Err(FtlError::DeviceFull);
        }
        let mut image = vec![0u8; pages_needed as usize * page_size];
        image[..8].copy_from_slice(&SPILL_MAGIC.to_le_bytes());
        image[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        image[SPILL_HEADER_BYTES..SPILL_HEADER_BYTES + payload.len()].copy_from_slice(payload);
        for (i, chunk) in image.chunks(page_size).enumerate() {
            let ppa = self.spill_ppa(self.spill_cursor + i as u64);
            let _ = self.nand.program_async(
                ppa,
                chunk.to_vec(),
                PageOob {
                    lpa: u64::MAX,
                    timestamp_ns: 0,
                    seq: 0,
                },
            )?;
        }
        self.spill_cursor += pages_needed;
        Ok(())
    }

    /// Scans the spill region from the start and returns every intact entry
    /// in append order. Used by crash recovery: the scan reads what is
    /// physically on the NAND (zero-cost background reads) and repositions
    /// the append cursor past the last intact entry.
    ///
    /// # Errors
    ///
    /// Propagates NAND read errors on programmed pages.
    pub fn spill_scan(&mut self) -> Result<Vec<Vec<u8>>, FtlError> {
        let page_size = self.geometry.page_size;
        let capacity_pages =
            self.spill_blocks.len() as u64 * u64::from(self.geometry.pages_per_block);
        let mut entries = Vec::new();
        let mut cursor = 0u64;
        while cursor < capacity_pages {
            let head_ppa = self.spill_ppa(cursor);
            if self.nand.peek_oob(head_ppa)?.is_none() {
                break;
            }
            let (head, _) = self.nand.read_background(head_ppa)?;
            let magic = u64::from_le_bytes(head[..8].try_into().expect("page >= 16 bytes"));
            if magic != SPILL_MAGIC {
                break;
            }
            let len =
                u64::from_le_bytes(head[8..16].try_into().expect("page >= 16 bytes")) as usize;
            let pages_needed = (SPILL_HEADER_BYTES + len).div_ceil(page_size) as u64;
            if cursor + pages_needed > capacity_pages {
                break;
            }
            let mut image = head;
            for i in 1..pages_needed {
                let (data, _) = self.nand.read_background(self.spill_ppa(cursor + i))?;
                image.extend_from_slice(&data);
            }
            entries.push(image[SPILL_HEADER_BYTES..SPILL_HEADER_BYTES + len].to_vec());
            cursor += pages_needed;
        }
        self.spill_cursor = cursor;
        Ok(entries)
    }

    /// Erases every spill block that holds data and resets the append
    /// cursor. Called once the staged backlog has fully drained to the
    /// remote (the spilled images are durable there now).
    ///
    /// # Errors
    ///
    /// Propagates NAND erase errors.
    pub fn spill_reset(&mut self) -> Result<(), FtlError> {
        let ppb = u64::from(self.geometry.pages_per_block);
        let used_blocks = self.spill_cursor.div_ceil(ppb) as usize;
        for &block in self.spill_blocks.iter().take(used_blocks) {
            let _ = self
                .nand
                .erase_block_async(self.geometry.block_to_ppa(block))?;
        }
        self.spill_cursor = 0;
        Ok(())
    }

    /// Runs GC passes until the free pool recovers above the high watermark
    /// or no eligible victim remains. Returns the number of blocks erased.
    pub fn run_background_gc(&mut self) -> u32 {
        let total = self.geometry.total_blocks();
        let low = (self.config.gc_low_watermark * f64::from(total)) as u32;
        let high = (self.config.gc_high_watermark * f64::from(total)) as u32;
        if self.allocator.free_blocks() > low {
            return 0;
        }
        let mut erased = 0;
        while self.allocator.free_blocks() < high {
            match self.gc_pass() {
                Some(_) => erased += 1,
                None => break,
            }
        }
        erased
    }

    /// One GC pass: select a victim, migrate its valid pages, erase it.
    /// Returns the erased block index, or `None` if no block is eligible.
    ///
    /// The copy-backs are dispatched, not blocked on: each migration read
    /// rides the victim's plane, its program is placed on the idlest
    /// channel (see [`crate::allocator::BlockAllocator`]) and ordered after
    /// the read, and the erase queues behind the reads on the victim's
    /// plane. The clock does not advance — GC overlaps host I/O on other
    /// units exactly as the hardware would.
    pub fn gc_pass(&mut self) -> Option<u32> {
        let victim = self.select_gc_victim()?;
        self.stats.gc_invocations += 1;
        let gc_start_ns = self.clock().now_ns();
        let migrated_before = self.stats.gc_pages_migrated;

        // Migrate valid pages through the GC stream.
        let valid = self.mapping.valid_pages_of_block(victim);
        let victim_base = self.geometry.block_to_ppa(victim);
        for (page, lpa) in valid {
            let src = victim_base.with_page(page);
            let (data, _, read_ticket) = self.nand.read_async(src).expect("valid page readable");
            let dst = self
                .allocator
                .next_page(Stream::Gc, &self.nand)
                .expect("gc reserve exhausted");
            // Fire-and-forget: GC never blocks the clock, the unit
            // horizons carry the cost.
            let _ = self
                .nand
                .program_async_after(
                    dst,
                    data,
                    PageOob {
                        lpa,
                        timestamp_ns: 0,
                        seq: 0,
                    },
                    read_ticket.done_ns,
                )
                .expect("gc program");
            self.stats.gc_pages_migrated += 1;
            let old = self.mapping.update(lpa, dst);
            debug_assert_eq!(old, Some(src));
            self.emit_stale(lpa, src, InvalidateCause::GcMigration);
        }

        // All pages now stale and unpinned: erase (queues on the victim's
        // plane behind the migration reads).
        self.mapping.reset_block(victim);
        let erase_ticket = self
            .nand
            .erase_block_async(victim_base)
            .expect("erase victim");
        self.stats.gc_blocks_erased += 1;
        if self.sink.is_enabled() {
            self.sink.span(
                "ftl/gc",
                "gc_pass",
                gc_start_ns,
                erase_ticket.done_ns,
                &[
                    ("victim_block", victim.to_string()),
                    (
                        "pages_migrated",
                        (self.stats.gc_pages_migrated - migrated_before).to_string(),
                    ),
                ],
            );
        }
        let state = self.nand.block_state(victim_base).expect("block state");
        if state == BlockState::Bad {
            self.allocator.retire_block(victim);
        } else {
            let pe = self.nand.pe_cycles(victim_base).expect("pe cycles");
            self.allocator.release_block(victim, pe);
        }
        Some(victim)
    }

    fn select_gc_victim(&self) -> Option<u32> {
        let now = self.clock().now_ns();
        let active = self.allocator.active_blocks();
        let candidates: Vec<Candidate> = (0..self.geometry.total_blocks())
            .filter(|b| !active.contains(b))
            .filter(|&b| self.pinned_per_block[b as usize] == 0)
            .filter(|&b| self.mapping.block_stale_count(b) > 0)
            .filter(|&b| {
                let state = self
                    .nand
                    .block_state(self.geometry.block_to_ppa(b))
                    .expect("in-range block");
                state == BlockState::Full
            })
            .map(|b| Candidate {
                block_index: b,
                valid_pages: self.mapping.block_valid_count(b),
                pages_per_block: self.geometry.pages_per_block,
                age_ns: now.saturating_sub(self.last_invalidate_ns[b as usize]),
            })
            .collect();
        select_victim(&candidates, self.config.gc_policy)
    }

    fn acquire_host_page(&mut self) -> Result<Ppa, FtlError> {
        loop {
            // Opening a fresh block is gated on the GC reserve; lanes with
            // an already-open block can always be used.
            let can_open_new = self.allocator.free_blocks() > self.config.gc_reserved_blocks;
            if let Some(ppa) = self.allocator.next_host_page(&self.nand, can_open_new) {
                return Ok(ppa);
            }
            if self.gc_pass().is_none() {
                self.stats.write_stalls += 1;
                return Err(FtlError::DeviceFull);
            }
        }
    }

    fn emit_stale(&mut self, lpa: u64, old: Ppa, cause: InvalidateCause) {
        let now = self.clock().now_ns();
        self.last_invalidate_ns[self.geometry.block_index(old) as usize] = now;
        let oob = self
            .nand
            .peek_oob(old)
            .expect("in-range page")
            .expect("stale page was programmed");
        self.stale_events.push_back(StaleEvent {
            lpa,
            ppa: old,
            oob,
            cause,
            invalidated_at_ns: now,
        });
    }

    fn check_lpa(&self, lpa: u64) -> Result<(), FtlError> {
        if lpa < self.logical_pages {
            Ok(())
        } else {
            Err(FtlError::LpaOutOfRange {
                lpa,
                logical_pages: self.logical_pages,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rssd_flash::NandTiming;

    fn small_ftl() -> Ftl {
        let nand = NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
        );
        Ftl::new(nand, FtlConfig::default())
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    #[test]
    fn write_read_round_trip() {
        let mut ftl = small_ftl();
        ftl.write(3, page(0x5A)).unwrap();
        assert_eq!(ftl.read(3).unwrap().unwrap(), page(0x5A));
    }

    #[test]
    fn unwritten_reads_none() {
        let mut ftl = small_ftl();
        assert_eq!(ftl.read(9).unwrap(), None);
    }

    #[test]
    fn overwrite_returns_new_data_and_emits_event() {
        let mut ftl = small_ftl();
        ftl.write(3, page(1)).unwrap();
        ftl.write(3, page(2)).unwrap();
        assert_eq!(ftl.read(3).unwrap().unwrap(), page(2));
        let events = ftl.drain_stale_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].lpa, 3);
        assert_eq!(events[0].cause, InvalidateCause::Overwrite);
        // Stale data still physically present at the old PPA.
        let (old_data, _) = ftl.read_physical(events[0].ppa).unwrap();
        assert_eq!(old_data, page(1));
    }

    #[test]
    fn trim_unmaps_and_emits_event() {
        let mut ftl = small_ftl();
        ftl.write(3, page(1)).unwrap();
        ftl.trim(3).unwrap();
        assert_eq!(ftl.read(3).unwrap(), None);
        let events = ftl.drain_stale_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cause, InvalidateCause::Trim);
        assert_eq!(ftl.stats().pages_trimmed, 1);
    }

    #[test]
    fn trim_unmapped_is_noop() {
        let mut ftl = small_ftl();
        ftl.trim(3).unwrap();
        assert!(ftl.drain_stale_events().is_empty());
    }

    #[test]
    fn lpa_out_of_range_rejected() {
        let mut ftl = small_ftl();
        let lp = ftl.logical_pages();
        assert!(matches!(
            ftl.write(lp, page(0)),
            Err(FtlError::LpaOutOfRange { .. })
        ));
        assert!(matches!(ftl.read(lp), Err(FtlError::LpaOutOfRange { .. })));
        assert!(matches!(ftl.trim(lp), Err(FtlError::LpaOutOfRange { .. })));
    }

    #[test]
    fn wrong_page_size_rejected() {
        let mut ftl = small_ftl();
        assert!(matches!(
            ftl.write(0, vec![0; 10]),
            Err(FtlError::WrongPageSize { .. })
        ));
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_survive() {
        let mut ftl = small_ftl();
        // Working set of 8 LPAs, overwritten many times: forces GC on the
        // 4 MiB device.
        for round in 0..200u32 {
            for lpa in 0..8u64 {
                ftl.write(lpa, page((round % 251) as u8)).unwrap();
            }
        }
        assert!(ftl.stats().gc_blocks_erased > 0, "GC should have run");
        for lpa in 0..8u64 {
            // Last round was 199, and 199 % 251 == 199.
            assert_eq!(ftl.read(lpa).unwrap().unwrap(), page(199));
        }
        assert!(ftl.stats().write_amplification() >= 1.0);
    }

    #[test]
    fn fills_to_logical_capacity() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpa in 0..logical {
            ftl.write(lpa, page((lpa % 256) as u8)).unwrap();
        }
        for lpa in (0..logical).step_by(17) {
            assert_eq!(ftl.read(lpa).unwrap().unwrap(), page((lpa % 256) as u8));
        }
    }

    #[test]
    fn pinning_blocks_gc_until_released() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Fill the device.
        for lpa in 0..logical {
            ftl.write(lpa, page(1)).unwrap();
        }
        // Overwrite everything once, pinning every stale page as we go
        // (conservative retention).
        let mut pinned = Vec::new();
        let mut full_hits = 0u32;
        for lpa in 0..logical {
            match ftl.write(lpa, page(2)) {
                Ok(()) => {}
                Err(FtlError::DeviceFull) => {
                    full_hits += 1;
                    // Release all pins (simulating offload) and retry.
                    for ppa in pinned.drain(..) {
                        ftl.unpin_page(ppa);
                    }
                    ftl.write(lpa, page(2)).unwrap();
                }
                Err(e) => panic!("unexpected error {e}"),
            }
            for ev in ftl.drain_stale_events() {
                if ev.cause == InvalidateCause::Overwrite {
                    ftl.pin_page(ev.ppa);
                    pinned.push(ev.ppa);
                }
            }
        }
        assert!(
            full_hits > 0,
            "pinning every stale page must exhaust a small device"
        );
    }

    #[test]
    fn gc_migration_events_are_marked() {
        let mut ftl = small_ftl();
        // Interleave hot churn (LPAs 32..37) with unique cold writes so every
        // block holds at least one never-overwritten page: GC victims then
        // always need a migration.
        let mut cold_lpa = 40u64;
        for i in 0..600u64 {
            if i % 8 == 3 {
                ftl.write(cold_lpa, page(0xC0)).unwrap();
                cold_lpa += 1;
            } else {
                ftl.write(32 + (i % 5), page((i % 251) as u8)).unwrap();
            }
        }
        assert!(ftl.stats().gc_pages_migrated > 0);
        let events = ftl.drain_stale_events();
        assert!(events
            .iter()
            .any(|e| e.cause == InvalidateCause::GcMigration));
    }

    #[test]
    fn stale_event_oob_carries_original_write_order() {
        let mut ftl = small_ftl();
        ftl.write(1, page(1)).unwrap();
        ftl.write(2, page(2)).unwrap();
        ftl.write(1, page(3)).unwrap();
        ftl.write(2, page(4)).unwrap();
        let events = ftl.drain_stale_events();
        assert_eq!(events.len(), 2);
        // LPA 1's original write (seq 0) precedes LPA 2's (seq 1).
        assert!(events[0].oob.seq < events[1].oob.seq);
    }

    #[test]
    fn cost_benefit_policy_works_end_to_end() {
        let nand = NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
        );
        let mut ftl = Ftl::new(
            nand,
            FtlConfig {
                gc_policy: GcPolicy::CostBenefit,
                ..FtlConfig::default()
            },
        );
        for round in 0..150u32 {
            for lpa in 0..8u64 {
                ftl.write(lpa, page(round as u8)).unwrap();
            }
        }
        assert!(ftl.stats().gc_blocks_erased > 0);
        for lpa in 0..8u64 {
            assert_eq!(ftl.read(lpa).unwrap().unwrap(), page(149));
        }
    }

    #[test]
    fn pin_unpin_idempotent() {
        let mut ftl = small_ftl();
        ftl.write(0, page(1)).unwrap();
        let ppa = ftl.lookup(0).unwrap();
        ftl.pin_page(ppa);
        ftl.pin_page(ppa);
        assert!(ftl.is_pinned(ppa));
        assert_eq!(ftl.pinned_pages(), 1);
        ftl.unpin_page(ppa);
        ftl.unpin_page(ppa);
        assert!(!ftl.is_pinned(ppa));
        assert_eq!(ftl.pinned_pages(), 0);
    }

    #[test]
    fn stats_track_host_ops() {
        let mut ftl = small_ftl();
        ftl.write(0, page(1)).unwrap();
        ftl.read(0).unwrap();
        assert_eq!(ftl.stats().host_pages_written, 1);
        assert_eq!(ftl.stats().host_pages_read, 1);
    }

    fn spill_ftl() -> Ftl {
        let nand = NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
        );
        Ftl::new(
            nand,
            FtlConfig {
                spill_blocks: 2,
                ..FtlConfig::default()
            },
        )
    }

    #[test]
    fn spill_round_trip_scan_and_reset() {
        let mut ftl = spill_ftl();
        assert!(ftl.spill_capacity_bytes() > 0);
        assert_eq!(ftl.spill_used_bytes(), 0);
        let a = vec![0xA5u8; 100]; // sub-page entry
        let b: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect(); // multi-page
        ftl.spill_append(&a).unwrap();
        ftl.spill_append(&b).unwrap();
        assert!(ftl.spill_used_bytes() > 0);
        assert_eq!(ftl.spill_scan().unwrap(), vec![a.clone(), b.clone()]);
        // Scanning is idempotent and the cursor stays past the entries.
        let used = ftl.spill_used_bytes();
        assert_eq!(ftl.spill_scan().unwrap().len(), 2);
        assert_eq!(ftl.spill_used_bytes(), used);
        ftl.spill_reset().unwrap();
        assert_eq!(ftl.spill_used_bytes(), 0);
        assert!(ftl.spill_scan().unwrap().is_empty());
        // Region is reusable after the erase.
        ftl.spill_append(&a).unwrap();
        assert_eq!(ftl.spill_scan().unwrap(), vec![a]);
    }

    #[test]
    fn spill_append_is_clock_neutral_and_survives_host_gc_churn() {
        let mut ftl = spill_ftl();
        let before_ns = ftl.clock().now_ns();
        ftl.spill_append(&[7u8; 5000]).unwrap();
        assert_eq!(ftl.clock().now_ns(), before_ns);
        // Heavy host churn with GC must never touch the spill region.
        for round in 0..200u32 {
            for lpa in 0..8u64 {
                ftl.write(lpa, page((round % 251) as u8)).unwrap();
            }
        }
        assert!(ftl.stats().gc_blocks_erased > 0, "GC should have run");
        assert_eq!(ftl.spill_scan().unwrap(), vec![vec![7u8; 5000]]);
    }

    #[test]
    fn spill_full_rejects_without_partial_write() {
        let mut ftl = spill_ftl();
        let capacity = ftl.spill_capacity_bytes() as usize;
        let oversized = vec![1u8; capacity]; // header pushes it past capacity
        assert_eq!(ftl.spill_append(&oversized), Err(FtlError::DeviceFull));
        assert_eq!(ftl.spill_used_bytes(), 0);
        assert!(ftl.spill_scan().unwrap().is_empty());
    }

    #[test]
    fn spill_region_shrinks_logical_capacity() {
        let plain = small_ftl();
        let spilled = spill_ftl();
        assert!(spilled.logical_pages() < plain.logical_pages());
        assert!(spilled.logical_pages() > 0);
    }

    #[test]
    fn write_async_reclaim_returns_payload_on_device_full() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpa in 0..logical {
            ftl.write(lpa, page(1)).unwrap();
        }
        // Pin every stale page so reclamation is impossible.
        let mut hit_full = false;
        'outer: for lpa in 0..logical {
            match ftl.write_async_reclaim(lpa, page(2)) {
                Ok(ticket) => {
                    ftl.clock().advance_to(ticket.done_ns);
                }
                Err((FtlError::DeviceFull, reclaimed)) => {
                    assert_eq!(reclaimed, Some(page(2)), "payload must come back intact");
                    hit_full = true;
                    break 'outer;
                }
                Err((e, _)) => panic!("unexpected error {e}"),
            }
            for ev in ftl.drain_stale_events() {
                if ev.cause == InvalidateCause::Overwrite {
                    ftl.pin_page(ev.ppa);
                }
            }
        }
        assert!(hit_full, "pinning every stale page must exhaust the device");
    }

    #[test]
    fn pinned_block_fraction_reflects_pins() {
        let mut ftl = small_ftl();
        assert_eq!(ftl.pinned_block_fraction(), 0.0);
        ftl.write(0, page(1)).unwrap();
        let ppa = ftl.lookup(0).unwrap();
        ftl.pin_page(ppa);
        assert!(ftl.pinned_block_fraction() > 0.0);
    }
}
