//! FTL configuration.

use serde::{Deserialize, Serialize};

/// Garbage-collection victim-selection policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pick the eligible block with the fewest valid pages.
    #[default]
    Greedy,
    /// Cost-benefit: maximize `age * (1 - u) / (2u)` where `u` is block
    /// utilization — prefers cold, mostly-invalid blocks.
    CostBenefit,
}

/// FTL tuning knobs.
///
/// Built with struct-update syntax from [`FtlConfig::default`]:
///
/// ```
/// use rssd_ftl::{FtlConfig, GcPolicy};
///
/// let config = FtlConfig {
///     over_provisioning: 0.25,
///     gc_policy: GcPolicy::CostBenefit,
///     ..FtlConfig::default()
/// };
/// assert!(config.over_provisioning > 0.2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Fraction of raw capacity reserved as over-provisioning (not exposed
    /// as logical capacity). Commodity SSDs use 7–28 %.
    pub over_provisioning: f64,
    /// Start background GC when free blocks drop below this fraction of all
    /// blocks.
    pub gc_low_watermark: f64,
    /// Background GC stops once free blocks recover above this fraction.
    pub gc_high_watermark: f64,
    /// Victim-selection policy.
    pub gc_policy: GcPolicy,
    /// Reserved blocks GC may always draw on for migrations (so GC can make
    /// progress even when the host-visible pool is exhausted).
    pub gc_reserved_blocks: u32,
    /// Blocks reserved (from the top of the block range) as a durable
    /// evidence-spill region. They never enter the allocator's free pool,
    /// are never GC victims, and hold sealed segment images staged while
    /// the remote is unreachable. Zero disables the region.
    pub spill_blocks: u32,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            over_provisioning: 0.20,
            gc_low_watermark: 0.08,
            gc_high_watermark: 0.16,
            gc_policy: GcPolicy::Greedy,
            gc_reserved_blocks: 2,
            spill_blocks: 0,
        }
    }
}

impl FtlConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..0.9).contains(&self.over_provisioning) {
            return Err(format!(
                "over_provisioning {} outside [0, 0.9)",
                self.over_provisioning
            ));
        }
        if !(0.0..1.0).contains(&self.gc_low_watermark)
            || !(0.0..1.0).contains(&self.gc_high_watermark)
        {
            return Err("gc watermarks must lie in [0, 1)".to_string());
        }
        if self.gc_low_watermark >= self.gc_high_watermark {
            return Err(format!(
                "gc_low_watermark {} must be below gc_high_watermark {}",
                self.gc_low_watermark, self.gc_high_watermark
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        FtlConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_inverted_watermarks() {
        let c = FtlConfig {
            gc_low_watermark: 0.5,
            gc_high_watermark: 0.2,
            ..FtlConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_huge_over_provisioning() {
        let c = FtlConfig {
            over_provisioning: 0.95,
            ..FtlConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
