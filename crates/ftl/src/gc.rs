//! Garbage-collection victim selection.
//!
//! A block is *eligible* when it is fully programmed, not an active write
//! block, holds at least one stale page, and contains **no pinned pages** —
//! pinning is how retention policies (RSSD, LocalSSD, FlashGuard) keep stale
//! data out of GC's reach. Victim scoring implements the two classic
//! policies; which blocks are eligible at all is what the ransomware-defense
//! schemes disagree about.

use crate::config::GcPolicy;

/// Inputs to victim scoring for one candidate block.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// Global block index.
    pub block_index: u32,
    /// Valid pages that would need migration.
    pub valid_pages: u32,
    /// Pages per block (for utilization).
    pub pages_per_block: u32,
    /// Nanoseconds since the block last had a page invalidated ("age").
    pub age_ns: u64,
}

impl Candidate {
    /// Block utilization `u` in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        f64::from(self.valid_pages) / f64::from(self.pages_per_block)
    }

    /// Score under `policy`; higher is a better victim.
    pub fn score(&self, policy: GcPolicy) -> f64 {
        match policy {
            // Greedy: fewest valid pages wins.
            GcPolicy::Greedy => f64::from(self.pages_per_block - self.valid_pages),
            // Cost-benefit (Rosenblum & Ousterhout): age * (1-u) / 2u.
            GcPolicy::CostBenefit => {
                let u = self.utilization();
                if u == 0.0 {
                    // Free win: nothing to migrate. Rank above everything,
                    // older first.
                    f64::MAX / 2.0 + self.age_ns as f64
                } else {
                    self.age_ns as f64 * (1.0 - u) / (2.0 * u)
                }
            }
        }
    }
}

/// Picks the best victim among `candidates` under `policy`, or `None` if
/// the slice is empty. Ties break toward the lower block index for
/// determinism.
pub fn select_victim(candidates: &[Candidate], policy: GcPolicy) -> Option<u32> {
    candidates
        .iter()
        .map(|c| (c.score(policy), std::cmp::Reverse(c.block_index)))
        .zip(candidates)
        .max_by(|(a, _), (b, _)| a.partial_cmp(b).expect("scores are finite"))
        .map(|(_, c)| c.block_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(block: u32, valid: u32, age: u64) -> Candidate {
        Candidate {
            block_index: block,
            valid_pages: valid,
            pages_per_block: 64,
            age_ns: age,
        }
    }

    #[test]
    fn empty_yields_none() {
        assert_eq!(select_victim(&[], GcPolicy::Greedy), None);
    }

    #[test]
    fn greedy_picks_fewest_valid() {
        let cands = [cand(0, 10, 0), cand(1, 2, 0), cand(2, 30, 0)];
        assert_eq!(select_victim(&cands, GcPolicy::Greedy), Some(1));
    }

    #[test]
    fn greedy_ties_break_to_lower_index() {
        let cands = [cand(5, 2, 0), cand(3, 2, 0)];
        assert_eq!(select_victim(&cands, GcPolicy::Greedy), Some(3));
    }

    #[test]
    fn cost_benefit_prefers_old_sparse_blocks() {
        // Same utilization, different age.
        let cands = [cand(0, 16, 100), cand(1, 16, 10_000)];
        assert_eq!(select_victim(&cands, GcPolicy::CostBenefit), Some(1));
        // Same age, different utilization.
        let cands = [cand(0, 48, 1_000), cand(1, 8, 1_000)];
        assert_eq!(select_victim(&cands, GcPolicy::CostBenefit), Some(1));
    }

    #[test]
    fn cost_benefit_zero_utilization_wins() {
        let cands = [cand(0, 0, 5), cand(1, 1, u64::MAX / 4)];
        assert_eq!(select_victim(&cands, GcPolicy::CostBenefit), Some(0));
    }

    #[test]
    fn utilization_bounds() {
        assert_eq!(cand(0, 0, 0).utilization(), 0.0);
        assert_eq!(cand(0, 64, 0).utilization(), 1.0);
    }
}
