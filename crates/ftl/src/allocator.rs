//! Free-block pool and active-block write allocation.
//!
//! Writes stripe across channels round-robin (to exploit channel
//! parallelism); within a pool, the freshest allocation is the erased block
//! with the fewest P/E cycles (dynamic wear leveling).

use rssd_flash::{FlashGeometry, NandArray, Ppa};
use std::collections::BTreeSet;

/// Allocation streams: host writes and GC migrations use separate active
/// blocks so hot host data and cold migrated data don't mix (reduces future
/// write amplification).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stream {
    /// Host-issued writes.
    Host,
    /// GC migration writes.
    Gc,
}

/// Free-block pool plus per-stream active blocks.
#[derive(Clone, Debug)]
pub struct BlockAllocator {
    geometry: FlashGeometry,
    /// Erased blocks ready for allocation, keyed by (pe_cycles, block) so
    /// `pop_first` implements dynamic wear leveling.
    free: BTreeSet<(u32, u32)>,
    /// Active (partially programmed) block per stream, with its next page.
    active_host: Option<(u32, u32)>,
    active_gc: Option<(u32, u32)>,
    /// Round-robin cursor so consecutive allocations spread over channels.
    rr_cursor: u32,
}

impl BlockAllocator {
    /// Creates an allocator owning every block of `geometry` as free.
    pub fn new(geometry: FlashGeometry) -> Self {
        let free = (0..geometry.total_blocks()).map(|b| (0u32, b)).collect();
        BlockAllocator {
            geometry,
            free,
            active_host: None,
            active_gc: None,
            rr_cursor: 0,
        }
    }

    /// Number of erased blocks in the pool (excluding active blocks).
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Returns the next page to program for `stream`, opening a new active
    /// block from the pool if necessary. Returns `None` when the pool is
    /// empty and no active block has room.
    pub fn next_page(&mut self, stream: Stream, nand: &NandArray) -> Option<Ppa> {
        let pages_per_block = self.geometry.pages_per_block;
        let active = match stream {
            Stream::Host => &mut self.active_host,
            Stream::Gc => &mut self.active_gc,
        };

        if let Some((block, next_page)) = active {
            if *next_page < pages_per_block {
                let ppa = self.geometry.block_to_ppa(*block).with_page(*next_page);
                *next_page += 1;
                return Some(ppa);
            }
        }

        // Need a fresh block: prefer least-worn, breaking ties by spreading
        // across channels starting at the round-robin cursor.
        let chosen = self.pick_block(nand)?;
        self.free.retain(|&(_, b)| b != chosen);
        let ppa = self.geometry.block_to_ppa(chosen);
        match stream {
            Stream::Host => self.active_host = Some((chosen, 1)),
            Stream::Gc => self.active_gc = Some((chosen, 1)),
        }
        Some(ppa)
    }

    fn pick_block(&mut self, nand: &NandArray) -> Option<u32> {
        if self.free.is_empty() {
            return None;
        }
        // All candidates with the minimal wear.
        let min_pe = self.free.iter().next().expect("non-empty").0;
        let preferred_channel = self.rr_cursor % self.geometry.channels;
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        let candidate = self
            .free
            .iter()
            .take_while(|&&(pe, _)| pe == min_pe)
            .map(|&(_, b)| b)
            .find(|&b| self.geometry.block_to_ppa(b).channel == preferred_channel)
            .or_else(|| self.free.iter().next().map(|&(_, b)| b));
        // Sanity check the block really is erased in the NAND.
        debug_assert!(candidate.is_some_and(|b| {
            nand.block_state(self.geometry.block_to_ppa(b))
                .is_ok_and(|s| s == rssd_flash::BlockState::Erased)
        }));
        candidate
    }

    /// Does the active block for `stream` still have an unprogrammed page?
    pub fn has_room(&self, stream: Stream) -> bool {
        let active = match stream {
            Stream::Host => &self.active_host,
            Stream::Gc => &self.active_gc,
        };
        active.is_some_and(|(_, next)| next < self.geometry.pages_per_block)
    }

    /// Returns an erased block (after GC) to the pool with its wear count.
    pub fn release_block(&mut self, block_index: u32, pe_cycles: u32) {
        self.free.insert((pe_cycles, block_index));
    }

    /// Removes `block_index` from the pool (e.g. it went bad).
    pub fn retire_block(&mut self, block_index: u32) {
        self.free.retain(|&(_, b)| b != block_index);
    }

    /// Blocks currently held open for writing (at most one per stream).
    pub fn active_blocks(&self) -> Vec<u32> {
        self.active_host
            .iter()
            .chain(self.active_gc.iter())
            .map(|&(b, _)| b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rssd_flash::{NandTiming, SimClock};

    fn setup() -> (BlockAllocator, NandArray) {
        let g = FlashGeometry::small_test();
        let nand = NandArray::with_clock(g, NandTiming::instant(), SimClock::new());
        (BlockAllocator::new(g), nand)
    }

    #[test]
    fn allocates_sequential_pages_within_block() {
        let (mut alloc, nand) = setup();
        let a = alloc.next_page(Stream::Host, &nand).unwrap();
        let b = alloc.next_page(Stream::Host, &nand).unwrap();
        assert_eq!(a.with_page(0), b.with_page(0), "same block");
        assert_eq!(a.page + 1, b.page);
    }

    #[test]
    fn opens_new_block_when_full() {
        let (mut alloc, nand) = setup();
        let first = alloc.next_page(Stream::Host, &nand).unwrap();
        for _ in 0..7 {
            alloc.next_page(Stream::Host, &nand).unwrap();
        }
        let next = alloc.next_page(Stream::Host, &nand).unwrap();
        assert_ne!(first.with_page(0), next.with_page(0));
        assert_eq!(next.page, 0);
    }

    #[test]
    fn streams_use_separate_blocks() {
        let (mut alloc, nand) = setup();
        let host = alloc.next_page(Stream::Host, &nand).unwrap();
        let gc = alloc.next_page(Stream::Gc, &nand).unwrap();
        assert_ne!(host.with_page(0), gc.with_page(0));
    }

    #[test]
    fn pool_exhausts_to_none() {
        let (mut alloc, nand) = setup();
        let total = FlashGeometry::small_test().total_pages();
        for _ in 0..total {
            assert!(alloc.next_page(Stream::Host, &nand).is_some());
        }
        assert_eq!(alloc.next_page(Stream::Host, &nand), None);
        assert_eq!(alloc.free_blocks(), 0);
    }

    #[test]
    fn release_returns_block_to_pool() {
        let (mut alloc, nand) = setup();
        let total = FlashGeometry::small_test().total_pages();
        for _ in 0..total {
            alloc.next_page(Stream::Host, &nand).unwrap();
        }
        alloc.release_block(3, 1);
        let ppa = alloc.next_page(Stream::Gc, &nand).unwrap();
        assert_eq!(FlashGeometry::small_test().block_index(ppa), 3);
    }

    #[test]
    fn wear_leveling_prefers_least_worn() {
        let g = FlashGeometry::small_test();
        let nand = NandArray::with_clock(g, NandTiming::instant(), SimClock::new());
        let mut alloc = BlockAllocator::new(g);
        // Drain the pool, then return two blocks with different wear.
        while alloc.next_page(Stream::Host, &nand).is_some() {}
        alloc.release_block(5, 10);
        alloc.release_block(9, 1);
        let ppa = alloc.next_page(Stream::Host, &nand).unwrap();
        assert_eq!(g.block_index(ppa), 9, "least-worn block first");
    }

    #[test]
    fn retire_removes_block() {
        let (mut alloc, nand) = setup();
        let before = alloc.free_blocks();
        // Retire a block that is still in the pool (not active).
        let active = alloc.active_blocks();
        let victim = (0..before).find(|b| !active.contains(b)).unwrap();
        alloc.retire_block(victim);
        assert_eq!(alloc.free_blocks(), before - 1);
        let _ = nand;
    }
}
