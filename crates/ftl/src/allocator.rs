//! Free-block pool and active-block write allocation.
//!
//! Host writes stripe across the device's internal parallel units: the
//! allocator keeps one active block per **lane** — a (channel, chip, plane)
//! tuple — and rotates consecutive writes channel-first across the lanes,
//! so a burst of writes lands on independent pipelines (the allocation-side
//! half of the device-internal parallelism the timing model exposes).
//! GC migrations use separate per-channel active blocks and are placed on
//! whichever channel is idlest when the pass runs, keeping copy-back
//! traffic off the pipelines the host is using. Within a lane or channel,
//! the freshest allocation is the erased block with the fewest P/E cycles
//! (dynamic wear leveling).

use rssd_flash::{FlashGeometry, NandArray, Ppa};
use std::collections::BTreeSet;

/// Allocation streams: host writes and GC migrations use separate active
/// blocks so hot host data and cold migrated data don't mix (reduces future
/// write amplification).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stream {
    /// Host-issued writes.
    Host,
    /// GC migration writes.
    Gc,
}

/// Free-block pool plus per-lane (host) and per-channel (GC) active blocks.
#[derive(Clone, Debug)]
pub struct BlockAllocator {
    geometry: FlashGeometry,
    /// Erased blocks ready for allocation, keyed by (pe_cycles, block) so
    /// iteration order implements dynamic wear leveling.
    free: BTreeSet<(u32, u32)>,
    /// Active (partially programmed) host block per lane, with its next
    /// page. A block is dropped from its lane the moment it fills.
    host_lanes: Vec<Option<(u32, u32)>>,
    /// Rotating lane cursor: consecutive host writes stripe channel-first.
    host_cursor: usize,
    /// Active GC block per channel.
    gc_active: Vec<Option<(u32, u32)>>,
}

impl BlockAllocator {
    /// Creates an allocator owning every block of `geometry` as free.
    pub fn new(geometry: FlashGeometry) -> Self {
        let free = (0..geometry.total_blocks()).map(|b| (0u32, b)).collect();
        BlockAllocator {
            free,
            host_lanes: vec![None; geometry.total_planes() as usize],
            host_cursor: 0,
            gc_active: vec![None; geometry.channels as usize],
            geometry,
        }
    }

    /// Number of erased blocks in the pool (excluding active blocks).
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// The lane (plane) index of `block`, in cursor order: channels rotate
    /// fastest so consecutive lane indices alternate channels.
    fn lane_of_block(&self, block: u32) -> usize {
        let ppa = self.geometry.block_to_ppa(block);
        self.lane_index(ppa)
    }

    /// Cursor-ordered lane index: `plane-major within chip, chip within
    /// channel` is inverted so that stepping the cursor by one moves to the
    /// next *channel* first.
    fn lane_index(&self, ppa: Ppa) -> usize {
        let g = &self.geometry;
        ((ppa.chip * g.planes_per_chip + ppa.plane) * g.channels + ppa.channel) as usize
    }

    /// Returns the next page to program for `stream`, opening a new active
    /// block from the pool if necessary. Returns `None` when the pool is
    /// empty and no active block has room.
    ///
    /// Host allocations stripe across the lanes; GC allocations go to the
    /// channel `nand` reports as idlest (falling back across channels).
    pub fn next_page(&mut self, stream: Stream, nand: &NandArray) -> Option<Ppa> {
        match stream {
            Stream::Host => self.next_host_page(nand, true),
            Stream::Gc => self.next_gc_page(nand),
        }
    }

    /// Host allocation with an explicit open policy: when `allow_open` is
    /// false only lanes with an already-open block are used (the FTL gates
    /// opening on the GC reserve).
    pub fn next_host_page(&mut self, nand: &NandArray, allow_open: bool) -> Option<Ppa> {
        let lanes = self.host_lanes.len();
        for step in 0..lanes {
            let li = (self.host_cursor + step) % lanes;
            if let Some(ppa) = self.lane_page(li) {
                self.host_cursor = (li + 1) % lanes;
                return Some(ppa);
            }
            if allow_open {
                if let Some(block) = self.pick_block_for_lane(li, nand) {
                    self.free.retain(|&(_, b)| b != block);
                    let ppa = self.geometry.block_to_ppa(block);
                    self.host_lanes[li] = self.advanced_entry(block, 1);
                    self.host_cursor = (li + 1) % lanes;
                    return Some(ppa);
                }
            }
        }
        None
    }

    /// Takes the next page of lane `li`'s active block, dropping the block
    /// from the lane once it fills.
    fn lane_page(&mut self, li: usize) -> Option<Ppa> {
        let (block, next_page) = self.host_lanes[li]?;
        let ppa = self.geometry.block_to_ppa(block).with_page(next_page);
        self.host_lanes[li] = self.advanced_entry(block, next_page + 1);
        Some(ppa)
    }

    /// The lane/channel entry after programming up to `next_page`: `None`
    /// once the block is full (full blocks need no tracking and become GC
    /// candidates immediately).
    fn advanced_entry(&self, block: u32, next_page: u32) -> Option<(u32, u32)> {
        (next_page < self.geometry.pages_per_block).then_some((block, next_page))
    }

    /// GC allocation: prefer the idlest channel, falling back round-robin
    /// across the rest, then to any free block anywhere.
    fn next_gc_page(&mut self, nand: &NandArray) -> Option<Ppa> {
        let channels = self.geometry.channels;
        let start = nand.least_busy_channel();
        for step in 0..channels {
            let ch = (start + step) % channels;
            let slot = ch as usize;
            if let Some((block, next_page)) = self.gc_active[slot] {
                let ppa = self.geometry.block_to_ppa(block).with_page(next_page);
                self.gc_active[slot] = self.advanced_entry(block, next_page + 1);
                return Some(ppa);
            }
            if let Some(block) = self.pick_block_in_channel(ch) {
                self.free.retain(|&(_, b)| b != block);
                let ppa = self.geometry.block_to_ppa(block);
                self.gc_active[slot] = self.advanced_entry(block, 1);
                return Some(ppa);
            }
        }
        None
    }

    /// Least-worn free block belonging to lane `li`.
    fn pick_block_for_lane(&self, li: usize, nand: &NandArray) -> Option<u32> {
        let candidate = self
            .free
            .iter()
            .map(|&(_, b)| b)
            .find(|&b| self.lane_of_block(b) == li);
        // Sanity check the block really is erased in the NAND.
        debug_assert!(candidate.map_or(true, |b| {
            nand.block_state(self.geometry.block_to_ppa(b))
                .is_ok_and(|s| s == rssd_flash::BlockState::Erased)
        }));
        candidate
    }

    /// Least-worn free block on `channel`.
    fn pick_block_in_channel(&self, channel: u32) -> Option<u32> {
        self.free
            .iter()
            .map(|&(_, b)| b)
            .find(|&b| self.geometry.block_to_ppa(b).channel == channel)
    }

    /// Does any active block for `stream` still have an unprogrammed page?
    pub fn has_room(&self, stream: Stream) -> bool {
        match stream {
            Stream::Host => self.host_lanes.iter().any(Option::is_some),
            Stream::Gc => self.gc_active.iter().any(Option::is_some),
        }
    }

    /// Returns an erased block (after GC) to the pool with its wear count.
    pub fn release_block(&mut self, block_index: u32, pe_cycles: u32) {
        self.free.insert((pe_cycles, block_index));
    }

    /// Removes `block_index` from the pool (e.g. it went bad).
    pub fn retire_block(&mut self, block_index: u32) {
        self.free.retain(|&(_, b)| b != block_index);
    }

    /// Blocks currently held open for writing (up to one per host lane plus
    /// one per GC channel).
    pub fn active_blocks(&self) -> Vec<u32> {
        self.host_lanes
            .iter()
            .chain(self.gc_active.iter())
            .filter_map(|slot| slot.map(|(b, _)| b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rssd_flash::{NandTiming, SimClock};

    fn setup() -> (BlockAllocator, NandArray) {
        let g = FlashGeometry::small_test();
        let nand = NandArray::with_clock(g, NandTiming::instant(), SimClock::new());
        (BlockAllocator::new(g), nand)
    }

    #[test]
    fn consecutive_host_writes_stripe_across_channels() {
        let (mut alloc, nand) = setup();
        let a = alloc.next_page(Stream::Host, &nand).unwrap();
        let b = alloc.next_page(Stream::Host, &nand).unwrap();
        assert_ne!(a.channel, b.channel, "stripe channel-first: {a} vs {b}");
    }

    #[test]
    fn lane_round_trip_returns_to_the_same_block() {
        let (mut alloc, nand) = setup();
        let g = FlashGeometry::small_test();
        let lanes = g.total_planes() as usize;
        let first = alloc.next_page(Stream::Host, &nand).unwrap();
        for _ in 0..lanes - 1 {
            alloc.next_page(Stream::Host, &nand).unwrap();
        }
        // One full rotation later the cursor is back on the first lane and
        // continues its open block sequentially.
        let again = alloc.next_page(Stream::Host, &nand).unwrap();
        assert_eq!(first.with_page(0), again.with_page(0), "same block");
        assert_eq!(first.page + 1, again.page);
    }

    #[test]
    fn streams_use_separate_blocks() {
        let (mut alloc, nand) = setup();
        let host = alloc.next_page(Stream::Host, &nand).unwrap();
        let gc = alloc.next_page(Stream::Gc, &nand).unwrap();
        assert_ne!(host.with_page(0), gc.with_page(0));
    }

    #[test]
    fn pool_exhausts_to_none() {
        let (mut alloc, nand) = setup();
        let total = FlashGeometry::small_test().total_pages();
        for _ in 0..total {
            assert!(alloc.next_page(Stream::Host, &nand).is_some());
        }
        assert_eq!(alloc.next_page(Stream::Host, &nand), None);
        assert_eq!(alloc.free_blocks(), 0);
    }

    #[test]
    fn closed_open_policy_uses_only_open_blocks() {
        let (mut alloc, nand) = setup();
        // Nothing open yet: with opening disallowed there is nothing to
        // hand out even though the pool is full.
        assert_eq!(alloc.next_host_page(&nand, false), None);
        let a = alloc.next_host_page(&nand, true).unwrap();
        // The opened lane still has room, so the closed policy can use it
        // (the cursor rotates back around to it).
        let b = alloc.next_host_page(&nand, false).unwrap();
        assert_eq!(a.with_page(0), b.with_page(0));
        assert_eq!(b.page, 1);
    }

    #[test]
    fn release_returns_block_to_pool() {
        let (mut alloc, nand) = setup();
        let total = FlashGeometry::small_test().total_pages();
        for _ in 0..total {
            alloc.next_page(Stream::Host, &nand).unwrap();
        }
        alloc.release_block(3, 1);
        let ppa = alloc.next_page(Stream::Gc, &nand).unwrap();
        assert_eq!(FlashGeometry::small_test().block_index(ppa), 3);
    }

    #[test]
    fn wear_leveling_prefers_least_worn_in_lane() {
        let g = FlashGeometry::small_test();
        let nand = NandArray::with_clock(g, NandTiming::instant(), SimClock::new());
        let mut alloc = BlockAllocator::new(g);
        // Drain the pool, then return two blocks of the same lane (both in
        // channel 0, chip 0, plane 0: blocks 0..8) with different wear.
        while alloc.next_page(Stream::Host, &nand).is_some() {}
        alloc.release_block(5, 10);
        alloc.release_block(3, 1);
        let ppa = alloc.next_page(Stream::Host, &nand).unwrap();
        assert_eq!(g.block_index(ppa), 3, "least-worn block first");
    }

    #[test]
    fn full_blocks_leave_their_lane() {
        let (mut alloc, nand) = setup();
        let g = FlashGeometry::small_test();
        let lanes = g.total_planes();
        // Fill every lane's first block completely.
        let mut first_blocks = Vec::new();
        for i in 0..lanes * g.pages_per_block {
            let ppa = alloc.next_page(Stream::Host, &nand).unwrap();
            if i < lanes {
                first_blocks.push(g.block_index(ppa));
            }
        }
        for b in first_blocks {
            assert!(
                !alloc.active_blocks().contains(&b),
                "full block {b} must leave its lane (GC-eligible)"
            );
        }
    }

    #[test]
    fn retire_removes_block() {
        let (mut alloc, nand) = setup();
        let before = alloc.free_blocks();
        let active = alloc.active_blocks();
        let victim = (0..before).find(|b| !active.contains(b)).unwrap();
        alloc.retire_block(victim);
        assert_eq!(alloc.free_blocks(), before - 1);
        let _ = nand;
    }

    #[test]
    fn gc_prefers_the_idlest_channel() {
        let g = FlashGeometry::small_test();
        let clock = SimClock::new();
        let mut nand = NandArray::with_clock(g, NandTiming::mlc_default(), clock);
        let mut alloc = BlockAllocator::new(g);
        // Keep channel 0 busy: program both planes' worth of chips there.
        for chip in 0..g.chips_per_channel {
            let ppa = Ppa::new(0, chip, 0, 0, 0);
            let _ = nand.program_async(ppa, vec![0; g.page_size], Default::default());
        }
        assert_eq!(nand.least_busy_channel(), 1);
        let gc = alloc.next_page(Stream::Gc, &nand).unwrap();
        assert_eq!(gc.channel, 1, "copy-backs go to the idle channel");
    }
}
