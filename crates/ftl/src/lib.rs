//! Flash translation layer (FTL) for the RSSD reproduction.
//!
//! This is the firmware layer the paper modifies: page-level address
//! translation, garbage collection, wear leveling, and trim handling on top
//! of the raw NAND array from [`rssd_flash`]. Everything RSSD adds —
//! hardware-assisted logging, conservative stale-page retention, enhanced
//! trim — hangs off two mechanisms exposed here:
//!
//! * **Stale events** ([`StaleEvent`]): whenever a physical page becomes
//!   stale (overwritten or trimmed), the FTL emits an event carrying the
//!   logical address, physical address, OOB metadata and cause. Device-level
//!   retention policies consume these to decide what to retain.
//! * **Page pinning** ([`Ftl::pin_page`]): a pinned stale page blocks garbage
//!   collection of its block. RSSD pins every stale page until the offload
//!   engine has shipped it remotely; the LocalSSD baseline pins until a
//!   capacity watermark (which the GC attack exploits); FlashGuard pins only
//!   suspected-encrypted overwrites.
//!
//! # Examples
//!
//! ```
//! use rssd_flash::{FlashGeometry, NandArray, NandTiming, SimClock};
//! use rssd_ftl::{Ftl, FtlConfig};
//!
//! let nand = NandArray::with_clock(
//!     FlashGeometry::small_test(),
//!     NandTiming::instant(),
//!     SimClock::new(),
//! );
//! let mut ftl = Ftl::new(nand, FtlConfig::default());
//! ftl.write(0, vec![0xAA; 4096])?;
//! assert_eq!(ftl.read(0)?.unwrap()[0], 0xAA);
//! # Ok::<(), rssd_ftl::FtlError>(())
//! ```

pub mod allocator;
pub mod config;
pub mod ftl;
pub mod gc;
pub mod mapping;
pub mod stats;

pub use config::{FtlConfig, GcPolicy};
pub use ftl::{Ftl, FtlError, InvalidateCause, StaleEvent};
pub use stats::FtlStats;
