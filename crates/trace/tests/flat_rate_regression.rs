//! Pins the default (flat-rate) workload stream byte for byte.
//!
//! The diurnal-modulation satellite must not perturb the un-modulated
//! path: a builder with no [`DiurnalLoad`] attached draws the exact same
//! RNG sequence and emits the exact same records as the generator did
//! before modulation existed. The constants below were captured from the
//! pre-diurnal generator; any change to them is a breaking change to
//! every seeded experiment in the repo.
//!
//! [`DiurnalLoad`]: rssd_trace::synth::DiurnalLoad

use rssd_trace::{IoOp, IoRecord, WorkloadBuilder};

/// FNV-1a over every field of every record — order-sensitive, so a single
/// shifted arrival time or swapped op changes the digest.
fn digest(records: &[IoRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in records {
        mix(r.at_ns);
        mix(match r.op {
            IoOp::Read => 1,
            IoOp::Write => 2,
            IoOp::Trim => 3,
        });
        mix(r.lpa);
        mix(u64::from(r.pages));
        mix(r.payload_seed);
    }
    h
}

#[test]
fn default_builder_stream_is_pinned() {
    let records: Vec<IoRecord> = WorkloadBuilder::new(4096)
        .seed(5)
        .build()
        .take(256)
        .collect();
    assert_eq!(
        digest(&records),
        17_772_939_638_837_874_378,
        "flat-rate default stream drifted from the pre-diurnal generator"
    );
}

#[test]
fn tuned_builder_stream_is_pinned() {
    let records: Vec<IoRecord> = WorkloadBuilder::new(65_536)
        .seed(42)
        .read_fraction(0.3)
        .trim_fraction(0.1)
        .sequential_fraction(0.25)
        .zipf_theta(1.1)
        .working_set_fraction(0.05)
        .mean_request_pages(4)
        .ops_per_second(500.0)
        .start_ns(1_000_000)
        .build()
        .take(256)
        .collect();
    assert_eq!(
        digest(&records),
        6_221_462_592_427_588_055,
        "tuned flat-rate stream drifted from the pre-diurnal generator"
    );
}
