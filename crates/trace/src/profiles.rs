//! The twelve named trace models of Figure 2.
//!
//! Seven MSR-Cambridge server traces (hm, src, ts, wdev, rsrch, stg, usr)
//! and five FIU traces (home, mail, online, web, webusers), reproduced as
//! parameterised synthetic models. Each profile is calibrated to the
//! published aggregate statistics of its namesake: daily write volume
//! (expressed relative to a 256 GiB-class device so experiments can scale),
//! read/write mix, skew, request size and payload compressibility.

use crate::record::PayloadKind;
use crate::synth::{Workload, WorkloadBuilder};
use serde::{Deserialize, Serialize};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
/// Reference device capacity the daily volumes are quoted against.
pub const REFERENCE_CAPACITY_BYTES: f64 = 256.0 * GIB;

/// A named, calibrated trace model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Trace name as it appears in Figure 2.
    pub name: &'static str,
    /// Collection the trace belongs to.
    pub family: &'static str,
    /// Unique bytes written per simulated day on the reference device.
    pub daily_write_gib: f64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Fraction of operations that are trims.
    pub trim_fraction: f64,
    /// Zipf exponent of the write skew.
    pub zipf_theta: f64,
    /// Hot working set as a fraction of logical capacity.
    pub working_set_fraction: f64,
    /// Mean request size in pages.
    pub mean_request_pages: u32,
    /// Fraction of request streams that are sequential.
    pub sequential_fraction: f64,
    /// Weight of text-like payloads (rest split binary/zero/random).
    pub text_weight: f64,
    /// Weight of incompressible payloads.
    pub random_weight: f64,
}

impl TraceProfile {
    /// All twelve profiles, in Figure 2's x-axis order.
    pub fn all() -> Vec<TraceProfile> {
        vec![
            Self::msr("hm", 9.0, 0.35, 0.95, 0.10, 2, 0.15, 0.45, 0.10),
            Self::msr("src", 15.0, 0.43, 0.90, 0.15, 4, 0.30, 0.60, 0.05),
            Self::msr("ts", 12.0, 0.38, 0.92, 0.12, 2, 0.20, 0.45, 0.10),
            Self::msr("wdev", 7.0, 0.20, 0.97, 0.06, 2, 0.10, 0.50, 0.08),
            Self::msr("rsrch", 11.0, 0.10, 0.93, 0.09, 2, 0.12, 0.40, 0.15),
            Self::msr("stg", 13.0, 0.25, 0.90, 0.14, 4, 0.35, 0.40, 0.15),
            Self::msr("usr", 20.0, 0.40, 0.88, 0.20, 3, 0.25, 0.35, 0.25),
            Self::fiu("home", 5.0, 0.30, 0.95, 0.05, 2, 0.15, 0.50, 0.10),
            Self::fiu("mail", 25.0, 0.45, 0.85, 0.25, 3, 0.20, 0.55, 0.10),
            Self::fiu("online", 8.0, 0.55, 0.93, 0.08, 2, 0.15, 0.45, 0.12),
            Self::fiu("web", 6.0, 0.60, 0.94, 0.06, 3, 0.30, 0.50, 0.10),
            Self::fiu("webusers", 10.0, 0.50, 0.91, 0.10, 3, 0.25, 0.45, 0.12),
        ]
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<TraceProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    #[allow(clippy::too_many_arguments)]
    fn msr(
        name: &'static str,
        daily_write_gib: f64,
        read_fraction: f64,
        zipf_theta: f64,
        working_set_fraction: f64,
        mean_request_pages: u32,
        sequential_fraction: f64,
        text_weight: f64,
        random_weight: f64,
    ) -> TraceProfile {
        TraceProfile {
            name,
            family: "msr",
            daily_write_gib,
            read_fraction,
            trim_fraction: 0.0,
            zipf_theta,
            working_set_fraction,
            mean_request_pages,
            sequential_fraction,
            text_weight,
            random_weight,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fiu(
        name: &'static str,
        daily_write_gib: f64,
        read_fraction: f64,
        zipf_theta: f64,
        working_set_fraction: f64,
        mean_request_pages: u32,
        sequential_fraction: f64,
        text_weight: f64,
        random_weight: f64,
    ) -> TraceProfile {
        TraceProfile {
            family: "fiu",
            ..Self::msr(
                name,
                daily_write_gib,
                read_fraction,
                zipf_theta,
                working_set_fraction,
                mean_request_pages,
                sequential_fraction,
                text_weight,
                random_weight,
            )
        }
    }

    /// Daily write bytes scaled to a device of `capacity_bytes`.
    pub fn daily_write_bytes(&self, capacity_bytes: u64) -> f64 {
        self.daily_write_gib * GIB * (capacity_bytes as f64 / REFERENCE_CAPACITY_BYTES)
    }

    /// Builds the workload stream for a device exporting `logical_pages`
    /// pages of `page_size` bytes, paced so the scaled daily write volume is
    /// met.
    pub fn workload(&self, logical_pages: u64, page_size: usize, seed: u64) -> Workload {
        self.workload_builder(logical_pages, page_size, seed)
            .build()
    }

    /// The calibrated [`WorkloadBuilder`] behind [`TraceProfile::workload`],
    /// for callers that want to tweak the stream before building — e.g.
    /// attach [`DiurnalLoad`](crate::synth::DiurnalLoad) modulation for a
    /// fleet tenant.
    pub fn workload_builder(
        &self,
        logical_pages: u64,
        page_size: usize,
        seed: u64,
    ) -> WorkloadBuilder {
        let capacity = logical_pages * page_size as u64;
        let daily_bytes = self.daily_write_bytes(capacity);
        let write_pages_per_day = daily_bytes / page_size as f64;
        let write_ops_per_day = write_pages_per_day / f64::from(self.mean_request_pages);
        let write_share = (1.0 - self.read_fraction - self.trim_fraction).max(0.01);
        let ops_per_second = write_ops_per_day / write_share / 86_400.0;

        let zero_weight = 0.08;
        let binary_weight = (1.0 - self.text_weight - self.random_weight - zero_weight).max(0.0);
        WorkloadBuilder::new(logical_pages)
            .seed(seed)
            .read_fraction(self.read_fraction)
            .trim_fraction(self.trim_fraction)
            .sequential_fraction(self.sequential_fraction)
            .zipf_theta(self.zipf_theta)
            .working_set_fraction(self.working_set_fraction)
            .mean_request_pages(self.mean_request_pages)
            .ops_per_second(ops_per_second)
            .payload_mix(vec![
                (PayloadKind::Text, self.text_weight),
                (PayloadKind::Binary, binary_weight),
                (PayloadKind::Zero, zero_weight),
                (PayloadKind::Random, self.random_weight),
            ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::IoOp;

    #[test]
    fn twelve_profiles_in_figure_order() {
        let all = TraceProfile::all();
        assert_eq!(all.len(), 12);
        let names: Vec<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "hm", "src", "ts", "wdev", "rsrch", "stg", "usr", "home", "mail", "online", "web",
                "webusers"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(TraceProfile::by_name("usr").unwrap().name, "usr");
        assert!(TraceProfile::by_name("nope").is_none());
    }

    #[test]
    fn daily_volume_scales_with_capacity() {
        let p = TraceProfile::by_name("hm").unwrap();
        let full = p.daily_write_bytes(256 * 1024 * 1024 * 1024);
        let scaled = p.daily_write_bytes(256 * 1024 * 1024);
        assert!((full / scaled - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn workload_write_volume_matches_calibration() {
        let p = TraceProfile::by_name("wdev").unwrap();
        let page_size = 4096usize;
        let logical_pages = 16 * 1024u64; // 64 MiB device
        let mut written_pages = 0u64;
        let mut last_ns = 0u64;
        for rec in p.workload(logical_pages, page_size, 3).take(20_000) {
            if rec.op == IoOp::Write {
                written_pages += u64::from(rec.pages);
            }
            last_ns = rec.at_ns;
        }
        let days = last_ns as f64 / 86_400e9;
        let measured_daily = written_pages as f64 * page_size as f64 / days;
        let expected_daily = p.daily_write_bytes(logical_pages * page_size as u64);
        let ratio = measured_daily / expected_daily;
        assert!(
            (0.8..1.25).contains(&ratio),
            "measured/expected daily write ratio {ratio}"
        );
    }

    #[test]
    fn profiles_have_sane_parameters() {
        for p in TraceProfile::all() {
            assert!(p.daily_write_gib > 0.0, "{}", p.name);
            assert!((0.0..1.0).contains(&p.read_fraction), "{}", p.name);
            assert!(p.text_weight + p.random_weight < 1.0, "{}", p.name);
            assert!(p.mean_request_pages >= 1, "{}", p.name);
        }
    }
}
