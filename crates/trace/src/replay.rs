//! Replays record streams against a [`BlockDevice`].

use crate::record::{synthesize_page, IoOp, IoRecord};
use rssd_ssd::{BlockDevice, DeviceError};
use serde::{Deserialize, Serialize};

/// Aggregate results of a replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayStats {
    /// Records issued.
    pub records: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Pages trimmed.
    pub pages_trimmed: u64,
    /// Writes refused with [`DeviceError::Stalled`] (capacity pressure the
    /// device could not relieve — data-loss territory for baselines).
    pub stalls: u64,
    /// Simulated time of the last issued record.
    pub end_ns: u64,
}

/// Outcome of [`replay`].
#[derive(Debug)]
pub enum ReplayOutcome {
    /// Every record issued (stalls, if any, are counted in the stats).
    Completed(ReplayStats),
    /// A non-stall device error aborted the replay.
    Aborted {
        /// Stats up to the failure.
        stats: ReplayStats,
        /// The failing record.
        record: IoRecord,
        /// The device error.
        error: DeviceError,
    },
}

impl ReplayOutcome {
    /// The stats regardless of outcome.
    pub fn stats(&self) -> ReplayStats {
        match self {
            ReplayOutcome::Completed(s) => *s,
            ReplayOutcome::Aborted { stats, .. } => *stats,
        }
    }

    /// Unwraps the completed stats.
    ///
    /// # Panics
    ///
    /// Panics if the replay aborted.
    pub fn expect_completed(self) -> ReplayStats {
        match self {
            ReplayOutcome::Completed(s) => s,
            ReplayOutcome::Aborted { record, error, .. } => {
                panic!("replay aborted at {record:?}: {error}")
            }
        }
    }
}

/// Replays `records` against `device`, pacing the simulation clock to each
/// record's arrival time and synthesizing write payloads deterministically.
///
/// Stalled writes are counted and skipped (the workload's data is lost, as
/// it would be on a wedged device); any other error aborts.
pub fn replay<D, I>(device: &mut D, records: I) -> ReplayOutcome
where
    D: BlockDevice + ?Sized,
    I: IntoIterator<Item = IoRecord>,
{
    let mut stats = ReplayStats::default();
    let page_size = device.page_size();
    let logical_pages = device.logical_pages();

    for record in records {
        device.clock().advance_to(record.at_ns);
        stats.records += 1;
        stats.end_ns = record.at_ns;

        for i in 0..u64::from(record.pages) {
            let lpa = record.lpa + i;
            if lpa >= logical_pages {
                break;
            }
            let result = match record.op {
                IoOp::Read => device.read_page(lpa).map(|_| {
                    stats.pages_read += 1;
                }),
                IoOp::Write => {
                    let payload =
                        synthesize_page(record.payload, record.payload_seed ^ i, page_size);
                    device.write_page(lpa, payload).map(|()| {
                        stats.pages_written += 1;
                    })
                }
                IoOp::Trim => device.trim_page(lpa).map(|()| {
                    stats.pages_trimmed += 1;
                }),
            };
            match result {
                Ok(()) => {}
                Err(DeviceError::Stalled) => stats.stalls += 1,
                Err(error) => {
                    return ReplayOutcome::Aborted {
                        stats,
                        record,
                        error,
                    }
                }
            }
        }
    }
    ReplayOutcome::Completed(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PayloadKind;
    use crate::synth::WorkloadBuilder;
    use rssd_flash::{FlashGeometry, NandTiming, SimClock};
    use rssd_ssd::PlainSsd;

    fn device() -> PlainSsd {
        PlainSsd::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
        )
    }

    #[test]
    fn replays_explicit_records() {
        let mut d = device();
        let records = vec![
            IoRecord::write(100, 0, PayloadKind::Text, 1),
            IoRecord::read(200, 0),
            IoRecord::trim(300, 0),
        ];
        let stats = replay(&mut d, records).expect_completed();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.pages_written, 1);
        assert_eq!(stats.pages_read, 1);
        assert_eq!(stats.pages_trimmed, 1);
        assert_eq!(stats.end_ns, 300);
    }

    #[test]
    fn clock_paced_to_arrivals() {
        let mut d = device();
        let records = vec![IoRecord::write(5_000_000, 0, PayloadKind::Zero, 1)];
        replay(&mut d, records).expect_completed();
        assert!(d.clock().now_ns() >= 5_000_000);
    }

    #[test]
    fn write_payloads_are_deterministic() {
        let mut a = device();
        let mut b = device();
        let recs: Vec<_> = WorkloadBuilder::new(64)
            .seed(9)
            .read_fraction(0.0)
            .build()
            .take(50)
            .collect();
        replay(&mut a, recs.clone()).expect_completed();
        replay(&mut b, recs).expect_completed();
        for lpa in 0..64u64 {
            assert_eq!(a.read_page(lpa).unwrap(), b.read_page(lpa).unwrap());
        }
    }

    #[test]
    fn out_of_bounds_tail_is_clipped() {
        let mut d = device();
        let logical = d.logical_pages();
        let records = vec![IoRecord {
            at_ns: 0,
            op: IoOp::Write,
            lpa: logical - 2,
            pages: 10,
            payload_seed: 1,
            payload: PayloadKind::Text,
        }];
        let stats = replay(&mut d, records).expect_completed();
        assert_eq!(stats.pages_written, 2);
    }

    #[test]
    fn multi_page_requests_write_all_pages() {
        let mut d = device();
        let records = vec![IoRecord {
            at_ns: 0,
            op: IoOp::Write,
            lpa: 0,
            pages: 4,
            payload_seed: 7,
            payload: PayloadKind::Binary,
        }];
        let stats = replay(&mut d, records).expect_completed();
        assert_eq!(stats.pages_written, 4);
        // Pages differ (seed xored with the page offset).
        assert_ne!(d.read_page(0).unwrap(), d.read_page(1).unwrap());
    }

    #[test]
    fn workload_replay_end_to_end() {
        let mut d = device();
        let recs: Vec<_> = WorkloadBuilder::new(d.logical_pages())
            .seed(11)
            .read_fraction(0.3)
            .trim_fraction(0.05)
            .build()
            .take(2000)
            .collect();
        let stats = replay(&mut d, recs).expect_completed();
        assert_eq!(stats.records, 2000);
        assert!(stats.pages_written > 0);
        assert!(stats.pages_read > 0);
    }
}
