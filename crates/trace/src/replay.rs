//! Replays record streams against a device through the NVMe-style queue
//! layer.
//!
//! [`replay_queued`] is the primary entry point: it drives an
//! [`NvmeController`] queue pair, keeping its submission ring as full as the
//! trace allows, so the device sees real queue depth and can batch work per
//! arbitration round. [`replay_fanout`] generalizes it to several queue
//! pairs at once — records spread round-robin across the pairs, the way a
//! multi-host front end drives a striped array (each arbitration round then
//! carries commands from every host, which an `RssdArray` splits per shard
//! and executes in parallel). [`replay`] is the scalar-compatible wrapper —
//! a depth-1 queue pair over a borrowed device — preserving the historical
//! one-command-at-a-time semantics.

use crate::record::{synthesize_page, IoOp, IoRecord};
use rssd_ssd::{
    BlockDevice, CommandId, CommandOutcome, Completion, DeviceError, IoCommand, NvmeController,
    QueueId,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate results of a replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct ReplayStats {
    /// Records issued.
    pub records: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Pages trimmed.
    pub pages_trimmed: u64,
    /// Writes refused with [`DeviceError::Stalled`] (capacity pressure the
    /// device could not relieve — data-loss territory for baselines).
    pub stalls: u64,
    /// Non-stall error completions observed. The first one aborts the
    /// replay; later ones (commands already in flight at the failure) are
    /// only counted here.
    pub errors: u64,
    /// Simulated time of the last issued record.
    pub end_ns: u64,
}

impl ReplayStats {
    /// Folds another replay's counters into this one — used both to stitch
    /// resumed replays (a power cut splits one trace into several partial
    /// replays of the same device) and for the fleet rollup across members.
    /// Counters add; `end_ns` takes the maximum, which is the fleet's
    /// completion time under the share-nothing model (members run in
    /// parallel on independent timelines, so the slowest stream bounds the
    /// merged replay). Associative and commutative, with
    /// `ReplayStats::default()` as identity.
    pub fn merge(&mut self, other: &ReplayStats) {
        self.records += other.records;
        self.pages_read += other.pages_read;
        self.pages_written += other.pages_written;
        self.pages_trimmed += other.pages_trimmed;
        self.stalls += other.stalls;
        self.errors += other.errors;
        self.end_ns = self.end_ns.max(other.end_ns);
    }
}

/// Outcome of a replay.
#[derive(Debug)]
#[must_use]
pub enum ReplayOutcome {
    /// Every record issued (stalls, if any, are counted in the stats).
    Completed(ReplayStats),
    /// A non-stall device error aborted the replay.
    Aborted {
        /// Stats up to the failure.
        stats: ReplayStats,
        /// The failing record.
        record: IoRecord,
        /// The device error.
        error: DeviceError,
    },
}

impl ReplayOutcome {
    /// The stats regardless of outcome.
    pub fn stats(&self) -> ReplayStats {
        match self {
            ReplayOutcome::Completed(s) => *s,
            ReplayOutcome::Aborted { stats, .. } => *stats,
        }
    }

    /// Unwraps the completed stats.
    ///
    /// # Panics
    ///
    /// Panics if the replay aborted.
    pub fn expect_completed(self) -> ReplayStats {
        match self {
            ReplayOutcome::Completed(s) => s,
            ReplayOutcome::Aborted { record, error, .. } => {
                panic!("replay aborted at {record:?}: {error}")
            }
        }
    }

    /// Index into the replayed record stream at which to resume after an
    /// abort: the number of records issued so far. The aborting record
    /// counts as issued — its unexecuted pages were never acknowledged, so
    /// a resuming caller (e.g. a host riding out a power cut) moves on to
    /// the next record rather than re-issuing a partially-applied one.
    pub fn resume_index(&self) -> usize {
        self.stats().records as usize
    }
}

/// Book-keeping for one (possibly fanned-out) replay: maps in-flight
/// `(queue, command id)` pairs back to their source records and folds
/// completions into the stats.
struct ReplayDriver {
    stats: ReplayStats,
    in_flight: HashMap<(u16, u16), IoRecord>,
    /// Next command id to try, per driven queue pair.
    next_id: Vec<u16>,
    abort: Option<(IoRecord, DeviceError)>,
}

impl ReplayDriver {
    fn new(queue_count: usize) -> Self {
        ReplayDriver {
            stats: ReplayStats::default(),
            in_flight: HashMap::new(),
            next_id: vec![0; queue_count],
            abort: None,
        }
    }

    /// Allocates a command id unused among in-flight commands of `queue`
    /// (queue depth is far below the 64 Ki id space, so the scan terminates
    /// quickly).
    fn alloc_id(&mut self, qi: usize, queue: QueueId) -> CommandId {
        while self.in_flight.contains_key(&(queue.0, self.next_id[qi])) {
            self.next_id[qi] = self.next_id[qi].wrapping_add(1);
        }
        let id = self.next_id[qi];
        self.next_id[qi] = self.next_id[qi].wrapping_add(1);
        CommandId(id)
    }

    fn absorb(&mut self, queue: QueueId, completion: Completion) {
        let Some(record) = self.in_flight.remove(&(queue.0, completion.id.0)) else {
            // A stale completion the caller left un-reaped on this queue
            // pair before the replay started: not ours, not counted.
            return;
        };
        match completion.result {
            Ok(CommandOutcome::Read(_)) => self.stats.pages_read += 1,
            Ok(CommandOutcome::Written) => self.stats.pages_written += 1,
            Ok(CommandOutcome::Trimmed) => self.stats.pages_trimmed += 1,
            Ok(CommandOutcome::Flushed) => {}
            Err(DeviceError::Stalled) => self.stats.stalls += 1,
            Err(error) => {
                self.stats.errors += 1;
                if self.abort.is_none() {
                    self.abort = Some((record, error));
                }
            }
        }
    }

    fn reap<D: BlockDevice>(&mut self, controller: &mut NvmeController<D>, queues: &[QueueId]) {
        for &queue in queues {
            while let Some(completion) = controller.pop_completion(queue) {
                self.absorb(queue, completion);
            }
        }
    }

    fn finish(self) -> ReplayOutcome {
        match self.abort {
            None => ReplayOutcome::Completed(self.stats),
            Some((record, error)) => ReplayOutcome::Aborted {
                stats: self.stats,
                record,
                error,
            },
        }
    }
}

/// Replays `records` against the device behind `controller` through the
/// queue pair `queue`, pacing the simulation clock to each record's arrival
/// time and synthesizing write payloads deterministically.
///
/// The queue pair's depth is the replay's queue depth, and the device is
/// work-conserving: commands already submitted are executed before the
/// clock may jump to a later arrival, so queue depth builds up exactly
/// when the device falls behind the trace's arrival rate (and those
/// backlogged windows are what execute as batches). Stalled writes are
/// counted and skipped (the workload's data is lost, as it would be on a
/// wedged device); any other error stops submission and aborts — commands
/// already submitted still complete before the abort is returned, as on a
/// real device (their successes and errors land in the stats counters; only
/// the *first* error is carried in [`ReplayOutcome::Aborted`]).
///
/// Other queue pairs on the same controller keep being arbitrated while
/// this replay runs — that is how multi-tenant scenarios share a device.
/// Completions left un-reaped on `queue` from before the replay are popped
/// but ignored.
///
/// # Panics
///
/// Panics if `queue` does not exist on `controller`.
pub fn replay_queued<D, I>(
    controller: &mut NvmeController<D>,
    queue: QueueId,
    records: I,
) -> ReplayOutcome
where
    D: BlockDevice,
    I: IntoIterator<Item = IoRecord>,
{
    replay_fanout(controller, &[queue], records)
}

/// Replays `records` fanned out round-robin across several queue pairs of
/// one controller — the multi-host shape: each record (all of its pages)
/// lands on one pair, every pair is kept as full as the trace allows, and
/// each arbitration round carries commands from all of them. Against an
/// `RssdArray` device this is the scale-out pipeline: the round's batch is
/// split per shard and the shards execute in parallel.
///
/// Semantics otherwise match [`replay_queued`] (which is the single-queue
/// special case): the clock paces to arrivals work-conservingly, stalls are
/// counted and skipped, the first non-stall error aborts after in-flight
/// commands drain.
///
/// # Panics
///
/// Panics if `queues` is empty or names a queue pair that does not exist on
/// `controller`.
pub fn replay_fanout<D, I>(
    controller: &mut NvmeController<D>,
    queues: &[QueueId],
    records: I,
) -> ReplayOutcome
where
    D: BlockDevice,
    I: IntoIterator<Item = IoRecord>,
{
    assert!(!queues.is_empty(), "fan-out needs at least one queue pair");
    let mut driver = ReplayDriver::new(queues.len());
    let page_size = controller.device().page_size();
    let logical_pages = controller.device().logical_pages();

    'records: for (index, record) in records.into_iter().enumerate() {
        // Work conservation: if this arrival is in the device's future, the
        // device would have drained its backlog before idling — execute
        // everything pending at the current clock before jumping forward.
        // (When the device is already at or past `at_ns`, i.e. saturated,
        // the backlog stays queued and batches up.)
        while controller.device().clock().now_ns() < record.at_ns && !driver.in_flight.is_empty() {
            if controller.process_round() == 0 {
                driver.reap(controller, queues);
                break;
            }
            driver.reap(controller, queues);
            if driver.abort.is_some() {
                break 'records;
            }
        }
        controller.device().clock().advance_to(record.at_ns);
        driver.stats.records += 1;
        driver.stats.end_ns = record.at_ns;

        let qi = index % queues.len();
        let queue = queues[qi];
        for i in 0..u64::from(record.pages) {
            let lpa = record.lpa + i;
            if lpa >= logical_pages {
                break;
            }
            let command = match record.op {
                IoOp::Read => IoCommand::Read { lpa },
                IoOp::Write => IoCommand::Write {
                    lpa,
                    data: synthesize_page(record.payload, record.payload_seed ^ i, page_size),
                },
                IoOp::Trim => IoCommand::Trim { lpa },
            };
            // Make room: process and reap until a submission slot frees up.
            while controller.submission_queue(queue).free() == 0 {
                controller.process_round();
                driver.reap(controller, queues);
                if driver.abort.is_some() {
                    break 'records;
                }
            }
            let id = driver.alloc_id(qi, queue);
            controller
                .submit(queue, id, command)
                .expect("submission slot verified free");
            driver.in_flight.insert((queue.0, id.0), record);
        }
    }

    // Drain the tail — also after an abort, so no command of this replay is
    // left in the submission queue to execute behind the caller's back.
    while !driver.in_flight.is_empty() {
        let executed = controller.process_round();
        driver.reap(controller, queues);
        if executed == 0 && !driver.in_flight.is_empty() {
            // Only possible if another tenant's queue wedged the round;
            // keep reaping our own completions but avoid spinning forever.
            break;
        }
    }
    driver.reap(controller, queues);
    driver.finish()
}

/// Scalar-compatible replay: wraps `device` in a temporary controller with a
/// single depth-1 queue pair, so records execute one at a time in arrival
/// order — the historical behaviour, now expressed through the queue layer.
pub fn replay<D, I>(device: &mut D, records: I) -> ReplayOutcome
where
    D: BlockDevice + ?Sized,
    I: IntoIterator<Item = IoRecord>,
{
    let mut controller = NvmeController::new(device);
    let queue = controller.create_queue_pair(1);
    replay_queued(&mut controller, queue, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PayloadKind;
    use crate::synth::WorkloadBuilder;
    use rssd_flash::{FlashGeometry, NandTiming, SimClock};
    use rssd_ssd::PlainSsd;

    fn device() -> PlainSsd {
        PlainSsd::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
        )
    }

    #[test]
    fn replays_explicit_records() {
        let mut d = device();
        let records = vec![
            IoRecord::write(100, 0, PayloadKind::Text, 1),
            IoRecord::read(200, 0),
            IoRecord::trim(300, 0),
        ];
        let stats = replay(&mut d, records).expect_completed();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.pages_written, 1);
        assert_eq!(stats.pages_read, 1);
        assert_eq!(stats.pages_trimmed, 1);
        assert_eq!(stats.end_ns, 300);
    }

    #[test]
    fn clock_paced_to_arrivals() {
        let mut d = device();
        let records = vec![IoRecord::write(5_000_000, 0, PayloadKind::Zero, 1)];
        let _ = replay(&mut d, records).expect_completed();
        assert!(d.clock().now_ns() >= 5_000_000);
    }

    #[test]
    fn write_payloads_are_deterministic() {
        let mut a = device();
        let mut b = device();
        let recs: Vec<_> = WorkloadBuilder::new(64)
            .seed(9)
            .read_fraction(0.0)
            .build()
            .take(50)
            .collect();
        let _ = replay(&mut a, recs.clone()).expect_completed();
        let _ = replay(&mut b, recs).expect_completed();
        for lpa in 0..64u64 {
            assert_eq!(a.read_page(lpa).unwrap(), b.read_page(lpa).unwrap());
        }
    }

    #[test]
    fn out_of_bounds_tail_is_clipped() {
        let mut d = device();
        let logical = d.logical_pages();
        let records = vec![IoRecord {
            at_ns: 0,
            op: IoOp::Write,
            lpa: logical - 2,
            pages: 10,
            payload_seed: 1,
            payload: PayloadKind::Text,
        }];
        let stats = replay(&mut d, records).expect_completed();
        assert_eq!(stats.pages_written, 2);
    }

    #[test]
    fn multi_page_requests_write_all_pages() {
        let mut d = device();
        let records = vec![IoRecord {
            at_ns: 0,
            op: IoOp::Write,
            lpa: 0,
            pages: 4,
            payload_seed: 7,
            payload: PayloadKind::Binary,
        }];
        let stats = replay(&mut d, records).expect_completed();
        assert_eq!(stats.pages_written, 4);
        // Pages differ (seed xored with the page offset).
        assert_ne!(d.read_page(0).unwrap(), d.read_page(1).unwrap());
    }

    #[test]
    fn workload_replay_end_to_end() {
        let mut d = device();
        let recs: Vec<_> = WorkloadBuilder::new(d.logical_pages())
            .seed(11)
            .read_fraction(0.3)
            .trim_fraction(0.05)
            .build()
            .take(2000)
            .collect();
        let stats = replay(&mut d, recs).expect_completed();
        assert_eq!(stats.records, 2000);
        assert!(stats.pages_written > 0);
        assert!(stats.pages_read > 0);
    }

    #[test]
    fn queued_replay_matches_scalar_results_at_any_depth() {
        let recs: Vec<_> = WorkloadBuilder::new(64)
            .seed(3)
            .read_fraction(0.25)
            .trim_fraction(0.05)
            .build()
            .take(600)
            .collect();
        let mut scalar_dev = device();
        let scalar = replay(&mut scalar_dev, recs.clone()).expect_completed();
        for depth in [2usize, 8, 32] {
            let mut controller = NvmeController::with_arbitration_burst(device(), depth);
            let queue = controller.create_queue_pair(depth);
            let queued = replay_queued(&mut controller, queue, recs.clone()).expect_completed();
            assert_eq!(queued, scalar, "depth {depth}");
            let mut dev = controller.into_device();
            for lpa in 0..64u64 {
                assert_eq!(
                    dev.read_page(lpa).unwrap(),
                    scalar_dev.read_page(lpa).unwrap(),
                    "contents diverged at depth {depth}, lpa {lpa}"
                );
            }
        }
    }

    #[test]
    fn queued_replay_reports_queue_depth_in_stats() {
        let recs: Vec<_> = WorkloadBuilder::new(64)
            .seed(5)
            .read_fraction(0.0)
            .build()
            .take(100)
            .collect();
        let mut controller = NvmeController::new(device());
        let queue = controller.create_queue_pair(16);
        let stats = replay_queued(&mut controller, queue, recs).expect_completed();
        assert_eq!(stats.pages_written, controller.stats(queue).completed);
        assert_eq!(controller.stats(queue).latency.count(), stats.pages_written);
        assert_eq!(controller.outstanding(queue), 0, "tail fully drained");
    }

    /// Wraps a device and records the clock time at which each write
    /// actually executes.
    struct WriteTimeProbe {
        inner: PlainSsd,
        write_times: Vec<u64>,
    }

    impl BlockDevice for WriteTimeProbe {
        fn model_name(&self) -> &str {
            "WriteTimeProbe"
        }
        fn page_size(&self) -> usize {
            self.inner.page_size()
        }
        fn logical_pages(&self) -> u64 {
            self.inner.logical_pages()
        }
        fn clock(&self) -> &SimClock {
            self.inner.clock()
        }
        fn write_page(&mut self, lpa: u64, data: Vec<u8>) -> Result<(), DeviceError> {
            self.write_times.push(self.inner.clock().now_ns());
            self.inner.write_page(lpa, data)
        }
        fn read_page(&mut self, lpa: u64) -> Result<Vec<u8>, DeviceError> {
            self.inner.read_page(lpa)
        }
        fn trim_page(&mut self, lpa: u64) -> Result<(), DeviceError> {
            self.inner.trim_page(lpa)
        }
    }

    #[test]
    fn commands_execute_at_their_own_arrival_time_not_the_next() {
        // Work conservation: with the device keeping up (instant timing),
        // record N must execute at t_N, not when record N+1 arrives.
        let mut probe = WriteTimeProbe {
            inner: device(),
            write_times: Vec::new(),
        };
        let records = vec![
            IoRecord::write(1_000, 0, PayloadKind::Text, 1),
            IoRecord::write(5_000_000, 1, PayloadKind::Text, 2),
            IoRecord::write(9_000_000, 2, PayloadKind::Text, 3),
        ];
        let _ = replay(&mut probe, records).expect_completed();
        assert_eq!(probe.write_times, vec![1_000, 5_000_000, 9_000_000]);
    }

    /// A device whose reads always fail — exercises the abort path, which a
    /// healthy simulated device cannot reach through `replay` (out-of-range
    /// tails are clipped before submission).
    struct FailingReads(PlainSsd);

    impl BlockDevice for FailingReads {
        fn model_name(&self) -> &str {
            "FailingReads"
        }
        fn page_size(&self) -> usize {
            self.0.page_size()
        }
        fn logical_pages(&self) -> u64 {
            self.0.logical_pages()
        }
        fn clock(&self) -> &SimClock {
            self.0.clock()
        }
        fn write_page(&mut self, lpa: u64, data: Vec<u8>) -> Result<(), DeviceError> {
            self.0.write_page(lpa, data)
        }
        fn read_page(&mut self, lpa: u64) -> Result<Vec<u8>, DeviceError> {
            Err(DeviceError::OutOfRange {
                lpa,
                logical_pages: 0,
            })
        }
        fn trim_page(&mut self, lpa: u64) -> Result<(), DeviceError> {
            self.0.trim_page(lpa)
        }
    }

    #[test]
    fn fanout_across_queues_matches_single_queue_totals() {
        let recs: Vec<_> = WorkloadBuilder::new(64)
            .seed(17)
            .read_fraction(0.3)
            .trim_fraction(0.05)
            .build()
            .take(400)
            .collect();
        let mut single = NvmeController::new(device());
        let q = single.create_queue_pair(8);
        let single_stats = replay_queued(&mut single, q, recs.clone()).expect_completed();

        let mut fanned = NvmeController::new(device());
        let queues: Vec<QueueId> = (0..4).map(|_| fanned.create_queue_pair(8)).collect();
        let fan_stats = replay_fanout(&mut fanned, &queues, recs).expect_completed();

        assert_eq!(fan_stats.records, single_stats.records);
        assert_eq!(fan_stats.pages_written, single_stats.pages_written);
        assert_eq!(fan_stats.pages_read, single_stats.pages_read);
        assert_eq!(fan_stats.pages_trimmed, single_stats.pages_trimmed);
        // Every queue pair carried work and drained fully.
        for &queue in &queues {
            assert!(fanned.stats(queue).completed > 0, "{queue} idle");
            assert_eq!(fanned.outstanding(queue), 0);
        }
        let total: u64 = queues.iter().map(|&q| fanned.stats(q).completed).sum();
        assert_eq!(
            total,
            fan_stats.pages_written + fan_stats.pages_read + fan_stats.pages_trimmed
        );
    }

    #[test]
    fn fanout_aborts_cleanly_on_every_queue() {
        let mut controller = NvmeController::new(FailingReads(device()));
        let queues: Vec<QueueId> = (0..3).map(|_| controller.create_queue_pair(4)).collect();
        let records = vec![
            IoRecord::write(0, 0, PayloadKind::Text, 1),
            IoRecord::write(5, 1, PayloadKind::Text, 2),
            IoRecord::read(10, 0),
            IoRecord::write(20, 2, PayloadKind::Text, 3),
        ];
        match replay_fanout(&mut controller, &queues, records) {
            ReplayOutcome::Aborted { record, error, .. } => {
                assert_eq!(record.op, IoOp::Read);
                assert!(matches!(error, DeviceError::OutOfRange { .. }));
            }
            ReplayOutcome::Completed(_) => panic!("must abort on read failure"),
        }
        for &queue in &queues {
            assert_eq!(controller.outstanding(queue), 0);
            assert!(controller.submission_queue(queue).is_empty());
            assert!(controller.completion_queue(queue).is_empty());
        }
    }

    #[test]
    fn resume_index_points_past_the_aborting_record() {
        let mut controller = NvmeController::new(FailingReads(device()));
        let queue = controller.create_queue_pair(1);
        let records = vec![
            IoRecord::write(0, 0, PayloadKind::Text, 1),
            IoRecord::read(10, 0), // aborts here, counted as issued
            IoRecord::write(20, 1, PayloadKind::Text, 2),
        ];
        let outcome = replay_queued(&mut controller, queue, records.clone());
        assert!(matches!(outcome, ReplayOutcome::Aborted { .. }));
        assert_eq!(outcome.resume_index(), 2);
        // Resuming from the index replays exactly the untouched tail.
        assert_eq!(records.len() - outcome.resume_index(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one queue pair")]
    fn fanout_rejects_empty_queue_list() {
        let mut controller = NvmeController::new(device());
        let _ = replay_fanout(&mut controller, &[], Vec::new());
    }

    #[test]
    fn queued_replay_aborts_on_non_stall_error() {
        let mut controller = NvmeController::new(FailingReads(device()));
        let queue = controller.create_queue_pair(4);
        let records = vec![
            IoRecord::write(0, 0, PayloadKind::Text, 1),
            IoRecord::read(10, 0),
            IoRecord::write(20, 1, PayloadKind::Text, 2),
        ];
        match replay_queued(&mut controller, queue, records) {
            ReplayOutcome::Aborted {
                stats,
                record,
                error,
            } => {
                assert_eq!(record.op, IoOp::Read);
                assert!(matches!(error, DeviceError::OutOfRange { .. }));
                // Commands already in flight when the failure completes may
                // still land (queue semantics); the write before it must.
                assert!(stats.pages_written >= 1, "{stats:?}");
            }
            ReplayOutcome::Completed(_) => panic!("must abort on read failure"),
        }
        // Nothing of the aborted replay may linger to execute later.
        assert_eq!(controller.outstanding(queue), 0);
        assert!(controller.submission_queue(queue).is_empty());
        assert!(controller.completion_queue(queue).is_empty());
    }

    fn stats_sample(base: u64) -> ReplayStats {
        ReplayStats {
            records: base,
            pages_read: base * 2,
            pages_written: base * 3,
            pages_trimmed: base / 2,
            stalls: base / 4,
            errors: base / 8,
            end_ns: base * 1_000,
        }
    }

    #[test]
    fn stats_merge_identity_and_associativity() {
        let (a, b, c) = (stats_sample(8), stats_sample(80), stats_sample(800));
        let mut with_identity = a;
        with_identity.merge(&ReplayStats::default());
        assert_eq!(with_identity, a);
        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn stats_merge_takes_the_slowest_end() {
        let mut fast = stats_sample(8);
        let slow = stats_sample(80);
        fast.merge(&slow);
        assert_eq!(fast.end_ns, 80_000);
        assert_eq!(fast.records, 88);
    }
}
