//! The generic synthetic workload generator.

use crate::record::{IoOp, IoRecord, PayloadKind};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NS_PER_DAY: u64 = 86_400 * 1_000_000_000;

/// Diurnal load modulation: a seeded day-curve that scales the arrival
/// rate over simulated time, so a tenant's traffic peaks during its
/// business hours and troughs overnight.
///
/// The curve is a fundamental-plus-second-harmonic sinusoid whose harmonic
/// weights and phases are derived from the seed (every tenant's day looks
/// a little different), shifted by a per-tenant phase offset (tenants in
/// different time zones peak at different simulated hours). The multiplier
/// is a pure function of the record timestamp: attaching it to a
/// [`WorkloadBuilder`] draws **no extra RNG values**, and a builder without
/// it is byte-identical to the pre-diurnal generator (pinned by the
/// `flat_rate_regression` test).
///
/// # Examples
///
/// ```
/// use rssd_trace::synth::DiurnalLoad;
/// use rssd_trace::WorkloadBuilder;
///
/// // Two tenants on the same seeded day-curve, half a day out of phase.
/// let day = DiurnalLoad::seeded(9);
/// let night = DiurnalLoad::seeded(9).with_phase_fraction(0.5);
/// assert_ne!(day.rate_multiplier(0), night.rate_multiplier(0));
///
/// let records: Vec<_> = WorkloadBuilder::new(4096)
///     .seed(7)
///     .ops_per_second(100.0)
///     .diurnal(day)
///     .build()
///     .take(50)
///     .collect();
/// assert_eq!(records.len(), 50);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiurnalLoad {
    /// Weight of the fundamental (one cycle per day), `0.0..=0.9`.
    amplitude: f64,
    /// Weight of the second harmonic (two cycles per day).
    harmonic: f64,
    /// Phase of the fundamental in nanoseconds.
    phase_ns: u64,
    /// Phase of the second harmonic in nanoseconds.
    harmonic_phase_ns: u64,
    /// Length of one cycle in nanoseconds.
    period_ns: u64,
}

impl DiurnalLoad {
    /// Builds a day-curve from a seed: the harmonic weights and both
    /// phases are scattered from `seed`, so distinct seeds give distinct
    /// (but equally plausible) daily shapes.
    pub fn seeded(seed: u64) -> Self {
        let mix = |salt: u64| {
            let mut z = seed.wrapping_add(salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let unit = |salt: u64| (mix(salt) >> 11) as f64 / (1u64 << 53) as f64;
        DiurnalLoad {
            amplitude: 0.35 + 0.3 * unit(1),
            harmonic: 0.05 + 0.15 * unit(2),
            phase_ns: mix(3) % NS_PER_DAY,
            harmonic_phase_ns: mix(4) % NS_PER_DAY,
            period_ns: NS_PER_DAY,
        }
    }

    /// Shifts the whole curve by `fraction` of a period (`0.0..1.0`) — the
    /// per-tenant offset: tenant *t* of *n* passes `t / n` so the fleet's
    /// peaks spread around the clock.
    pub fn with_phase_fraction(mut self, fraction: f64) -> Self {
        let shift = (fraction.rem_euclid(1.0) * self.period_ns as f64) as u64;
        self.phase_ns = (self.phase_ns + shift) % self.period_ns;
        self.harmonic_phase_ns = (self.harmonic_phase_ns + shift) % self.period_ns;
        self
    }

    /// Overrides the fundamental's weight (clamped to `0.0..=0.9` so the
    /// rate never collapses to zero).
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude.clamp(0.0, 0.9);
        self
    }

    /// Overrides the cycle length (default: one simulated day).
    pub fn with_period_ns(mut self, period_ns: u64) -> Self {
        self.period_ns = period_ns.max(1);
        self
    }

    /// Length of one cycle in nanoseconds.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// The instantaneous rate multiplier at simulated time `at_ns`: the
    /// configured `ops_per_second` is scaled by this value, which averages
    /// ~1.0 over a full cycle and is floored at 0.05 (the overnight trough
    /// never stops the stream entirely).
    pub fn rate_multiplier(&self, at_ns: u64) -> f64 {
        let turn = |t: u64, phase: u64, cycles: f64| {
            let pos = (t % self.period_ns) as f64 / self.period_ns as f64;
            let shift = phase as f64 / self.period_ns as f64;
            (cycles * (pos + shift) * std::f64::consts::TAU).sin()
        };
        let m = 1.0
            + self.amplitude * turn(at_ns, self.phase_ns, 1.0)
            + self.harmonic * turn(at_ns, self.harmonic_phase_ns, 2.0);
        m.max(0.05)
    }
}

/// Builder for a synthetic block workload.
///
/// # Examples
///
/// ```
/// use rssd_trace::WorkloadBuilder;
///
/// let records: Vec<_> = WorkloadBuilder::new(1024)
///     .seed(7)
///     .read_fraction(0.3)
///     .zipf_theta(0.9)
///     .ops_per_second(1000.0)
///     .build()
///     .take(100)
///     .collect();
/// assert_eq!(records.len(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    logical_pages: u64,
    seed: u64,
    read_fraction: f64,
    trim_fraction: f64,
    sequential_fraction: f64,
    zipf_theta: f64,
    working_set_fraction: f64,
    mean_request_pages: u32,
    ops_per_second: f64,
    start_ns: u64,
    payload_mix: Vec<(PayloadKind, f64)>,
    diurnal: Option<DiurnalLoad>,
}

impl WorkloadBuilder {
    /// Starts a builder for a device exporting `logical_pages` pages.
    pub fn new(logical_pages: u64) -> Self {
        WorkloadBuilder {
            logical_pages,
            seed: 0,
            read_fraction: 0.5,
            trim_fraction: 0.0,
            sequential_fraction: 0.2,
            zipf_theta: 0.9,
            working_set_fraction: 0.2,
            mean_request_pages: 2,
            ops_per_second: 2_000.0,
            start_ns: 0,
            payload_mix: vec![
                (PayloadKind::Text, 0.45),
                (PayloadKind::Binary, 0.35),
                (PayloadKind::Zero, 0.10),
                (PayloadKind::Random, 0.10),
            ],
            diurnal: None,
        }
    }

    /// RNG seed (workloads are fully deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fraction of operations that are reads (`0.0..=1.0`).
    pub fn read_fraction(mut self, f: f64) -> Self {
        self.read_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Fraction of operations that are trims (taken from the write share).
    pub fn trim_fraction(mut self, f: f64) -> Self {
        self.trim_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Fraction of requests that continue sequentially from the previous.
    pub fn sequential_fraction(mut self, f: f64) -> Self {
        self.sequential_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Zipf exponent of the random-access component.
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Fraction of the logical space forming the hot working set.
    pub fn working_set_fraction(mut self, f: f64) -> Self {
        self.working_set_fraction = f.clamp(0.001, 1.0);
        self
    }

    /// Mean request size in pages (geometric distribution, minimum 1).
    pub fn mean_request_pages(mut self, pages: u32) -> Self {
        self.mean_request_pages = pages.max(1);
        self
    }

    /// Arrival rate; inter-arrival times are exponential around this rate.
    pub fn ops_per_second(mut self, rate: f64) -> Self {
        self.ops_per_second = rate.max(1e-6);
        self
    }

    /// First record's arrival time.
    pub fn start_ns(mut self, t: u64) -> Self {
        self.start_ns = t;
        self
    }

    /// Payload class mix for writes (weights are normalized).
    pub fn payload_mix(mut self, mix: Vec<(PayloadKind, f64)>) -> Self {
        assert!(!mix.is_empty(), "payload mix must not be empty");
        self.payload_mix = mix;
        self
    }

    /// Attaches diurnal load modulation: `ops_per_second` becomes the mean
    /// rate of a seeded day-curve instead of a flat rate. Without this the
    /// stream is byte-identical to the unmodulated generator.
    pub fn diurnal(mut self, curve: DiurnalLoad) -> Self {
        self.diurnal = Some(curve);
        self
    }

    /// Builds the infinite record stream.
    pub fn build(self) -> Workload {
        let ws_pages = ((self.logical_pages as f64 * self.working_set_fraction) as u64).max(1);
        let zipf = Zipf::new(ws_pages.min(1 << 22) as usize, self.zipf_theta);
        let total_weight: f64 = self.payload_mix.iter().map(|(_, w)| w).sum();
        Workload {
            rng: StdRng::seed_from_u64(self.seed),
            zipf,
            ws_pages,
            next_ns: self.start_ns,
            prev_end_lpa: 0,
            seed_counter: self.seed.wrapping_mul(0x9E3779B97F4A7C15),
            total_weight,
            builder: self,
        }
    }
}

/// An infinite, deterministic stream of [`IoRecord`]s.
#[derive(Clone, Debug)]
pub struct Workload {
    builder: WorkloadBuilder,
    rng: StdRng,
    zipf: Zipf,
    ws_pages: u64,
    next_ns: u64,
    prev_end_lpa: u64,
    seed_counter: u64,
    total_weight: f64,
}

impl Workload {
    fn pick_payload(&mut self) -> PayloadKind {
        let mut u: f64 = self.rng.gen::<f64>() * self.total_weight;
        for &(kind, w) in &self.builder.payload_mix {
            if u < w {
                return kind;
            }
            u -= w;
        }
        self.builder.payload_mix.last().expect("non-empty").0
    }

    fn pick_lpa(&mut self, pages: u32) -> u64 {
        let max_start = self.builder.logical_pages.saturating_sub(u64::from(pages));
        if self.rng.gen::<f64>() < self.builder.sequential_fraction {
            // Continue from the previous request.
            self.prev_end_lpa.min(max_start)
        } else {
            // Zipf rank scattered over the working set via multiplicative
            // hashing so rank popularity maps to stable page addresses.
            let rank = self.zipf.sample(&mut self.rng) as u64;
            let scattered = rank.wrapping_mul(0x9E3779B97F4A7C15) % self.ws_pages;
            scattered.min(max_start)
        }
    }
}

impl Iterator for Workload {
    type Item = IoRecord;

    fn next(&mut self) -> Option<IoRecord> {
        // Exponential inter-arrival around the configured rate. The
        // diurnal multiplier is a pure function of the current timestamp —
        // no extra RNG draw — so the unmodulated path stays byte-identical
        // to the pre-diurnal generator.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        let mut gap_s = -u.ln() / self.builder.ops_per_second;
        if let Some(curve) = &self.builder.diurnal {
            gap_s /= curve.rate_multiplier(self.next_ns);
        }
        self.next_ns += (gap_s * 1e9) as u64;

        // Geometric request size with the configured mean.
        let p = 1.0 / f64::from(self.builder.mean_request_pages);
        let mut pages = 1u32;
        while self.rng.gen::<f64>() > p && pages < 64 {
            pages += 1;
        }

        let roll: f64 = self.rng.gen();
        let op = if roll < self.builder.read_fraction {
            IoOp::Read
        } else if roll < self.builder.read_fraction + self.builder.trim_fraction {
            IoOp::Trim
        } else {
            IoOp::Write
        };

        let lpa = self.pick_lpa(pages);
        self.prev_end_lpa = lpa + u64::from(pages);
        self.seed_counter = self.seed_counter.wrapping_add(0x9E3779B97F4A7C15);

        let payload = if op == IoOp::Write {
            self.pick_payload()
        } else {
            PayloadKind::Zero
        };

        Some(IoRecord {
            at_ns: self.next_ns,
            op,
            lpa,
            pages,
            payload_seed: self.seed_counter,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(builder: WorkloadBuilder, n: usize) -> Vec<IoRecord> {
        builder.build().take(n).collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sample(WorkloadBuilder::new(1024).seed(5), 200);
        let b = sample(WorkloadBuilder::new(1024).seed(5), 200);
        assert_eq!(a, b);
        let c = sample(WorkloadBuilder::new(1024).seed(6), 200);
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_times_are_monotone() {
        let recs = sample(WorkloadBuilder::new(1024).seed(1), 500);
        for w in recs.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
    }

    #[test]
    fn read_fraction_respected() {
        let recs = sample(WorkloadBuilder::new(1024).seed(2).read_fraction(0.8), 5000);
        let reads = recs.iter().filter(|r| r.op == IoOp::Read).count();
        let frac = reads as f64 / recs.len() as f64;
        assert!((frac - 0.8).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn trims_generated_when_requested() {
        let recs = sample(
            WorkloadBuilder::new(1024)
                .seed(3)
                .read_fraction(0.2)
                .trim_fraction(0.3),
            5000,
        );
        let trims = recs.iter().filter(|r| r.op == IoOp::Trim).count();
        assert!(trims > 1000, "trims {trims}");
    }

    #[test]
    fn requests_stay_in_bounds() {
        let recs = sample(
            WorkloadBuilder::new(256).seed(4).mean_request_pages(8),
            5000,
        );
        for r in &recs {
            assert!(r.lpa + u64::from(r.pages) <= 256 + 64, "record {r:?}");
            assert!(r.lpa < 256);
        }
    }

    #[test]
    fn rate_controls_time() {
        let slow = sample(WorkloadBuilder::new(1024).seed(5).ops_per_second(10.0), 100);
        let fast = sample(
            WorkloadBuilder::new(1024).seed(5).ops_per_second(10_000.0),
            100,
        );
        assert!(slow.last().unwrap().at_ns > fast.last().unwrap().at_ns * 100);
    }

    #[test]
    fn flat_rate_regression() {
        // Golden records captured from the generator before diurnal
        // modulation existed: a builder without `.diurnal(..)` must keep
        // producing exactly this stream, timestamps included.
        let golden = [
            (IoOp::Read, 0u64, 1u32, 10615391314449192839u64, 597985u64),
            (IoOp::Write, 551, 1, 3569362060062839708, 880586),
            (IoOp::Read, 0, 4, 14970076879386038193, 2295122),
            (IoOp::Write, 0, 2, 7924047624999685062, 3040305),
            (IoOp::Read, 30, 9, 878018370613331931, 3637172),
            (IoOp::Read, 221, 2, 12278733189936530416, 8409823),
        ];
        let recs = sample(
            WorkloadBuilder::new(4096)
                .seed(42)
                .ops_per_second(500.0)
                .read_fraction(0.3)
                .trim_fraction(0.05),
            golden.len(),
        );
        for (r, g) in recs.iter().zip(&golden) {
            assert_eq!((r.op, r.lpa, r.pages, r.payload_seed, r.at_ns), *g);
        }
    }

    #[test]
    fn diurnal_modulation_changes_pacing_only() {
        let flat = sample(WorkloadBuilder::new(1024).seed(5), 500);
        let shaped = sample(
            WorkloadBuilder::new(1024)
                .seed(5)
                .diurnal(DiurnalLoad::seeded(1)),
            500,
        );
        // Same RNG sequence: op/lpa/size/payload identical, only timing moves.
        for (f, s) in flat.iter().zip(&shaped) {
            assert_eq!(
                (f.op, f.lpa, f.pages, f.payload_seed),
                (s.op, s.lpa, s.pages, s.payload_seed)
            );
        }
        assert!(flat.iter().zip(&shaped).any(|(f, s)| f.at_ns != s.at_ns));
    }

    #[test]
    fn diurnal_peaks_and_troughs_move_with_phase() {
        let curve = DiurnalLoad::seeded(7);
        let shifted = curve.with_phase_fraction(0.5);
        let day = curve.period_ns();
        let mut diverged = false;
        for hour in 0..24u64 {
            let t = hour * day / 24;
            let (a, b) = (curve.rate_multiplier(t), shifted.rate_multiplier(t));
            assert!(a >= 0.05 && b >= 0.05, "floored multipliers");
            if (a - b).abs() > 1e-9 {
                diverged = true;
            }
        }
        assert!(diverged, "a half-day phase shift must move the curve");
    }

    #[test]
    fn diurnal_mean_rate_is_close_to_flat() {
        // Over many whole cycles the modulated stream must pace near the
        // configured mean rate: the curve reshapes the day, not the volume.
        let curve = DiurnalLoad::seeded(3).with_period_ns(1_000_000_000);
        let recs = sample(
            WorkloadBuilder::new(1024)
                .seed(8)
                .ops_per_second(10_000.0)
                .diurnal(curve),
            50_000,
        );
        let span_s = recs.last().unwrap().at_ns as f64 / 1e9;
        let measured = recs.len() as f64 / span_s;
        let ratio = measured / 10_000.0;
        assert!((0.7..1.4).contains(&ratio), "mean-rate ratio {ratio}");
    }

    #[test]
    fn working_set_concentrates_accesses() {
        let recs = sample(
            WorkloadBuilder::new(100_000)
                .seed(6)
                .working_set_fraction(0.01)
                .sequential_fraction(0.0),
            5000,
        );
        let in_ws = recs.iter().filter(|r| r.lpa < 1000).count();
        assert!(
            in_ws as f64 / recs.len() as f64 > 0.9,
            "working-set hit fraction {}",
            in_ws as f64 / recs.len() as f64
        );
    }
}
