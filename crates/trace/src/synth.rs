//! The generic synthetic workload generator.

use crate::record::{IoOp, IoRecord, PayloadKind};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builder for a synthetic block workload.
///
/// # Examples
///
/// ```
/// use rssd_trace::WorkloadBuilder;
///
/// let records: Vec<_> = WorkloadBuilder::new(1024)
///     .seed(7)
///     .read_fraction(0.3)
///     .zipf_theta(0.9)
///     .ops_per_second(1000.0)
///     .build()
///     .take(100)
///     .collect();
/// assert_eq!(records.len(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    logical_pages: u64,
    seed: u64,
    read_fraction: f64,
    trim_fraction: f64,
    sequential_fraction: f64,
    zipf_theta: f64,
    working_set_fraction: f64,
    mean_request_pages: u32,
    ops_per_second: f64,
    start_ns: u64,
    payload_mix: Vec<(PayloadKind, f64)>,
}

impl WorkloadBuilder {
    /// Starts a builder for a device exporting `logical_pages` pages.
    pub fn new(logical_pages: u64) -> Self {
        WorkloadBuilder {
            logical_pages,
            seed: 0,
            read_fraction: 0.5,
            trim_fraction: 0.0,
            sequential_fraction: 0.2,
            zipf_theta: 0.9,
            working_set_fraction: 0.2,
            mean_request_pages: 2,
            ops_per_second: 2_000.0,
            start_ns: 0,
            payload_mix: vec![
                (PayloadKind::Text, 0.45),
                (PayloadKind::Binary, 0.35),
                (PayloadKind::Zero, 0.10),
                (PayloadKind::Random, 0.10),
            ],
        }
    }

    /// RNG seed (workloads are fully deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fraction of operations that are reads (`0.0..=1.0`).
    pub fn read_fraction(mut self, f: f64) -> Self {
        self.read_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Fraction of operations that are trims (taken from the write share).
    pub fn trim_fraction(mut self, f: f64) -> Self {
        self.trim_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Fraction of requests that continue sequentially from the previous.
    pub fn sequential_fraction(mut self, f: f64) -> Self {
        self.sequential_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Zipf exponent of the random-access component.
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Fraction of the logical space forming the hot working set.
    pub fn working_set_fraction(mut self, f: f64) -> Self {
        self.working_set_fraction = f.clamp(0.001, 1.0);
        self
    }

    /// Mean request size in pages (geometric distribution, minimum 1).
    pub fn mean_request_pages(mut self, pages: u32) -> Self {
        self.mean_request_pages = pages.max(1);
        self
    }

    /// Arrival rate; inter-arrival times are exponential around this rate.
    pub fn ops_per_second(mut self, rate: f64) -> Self {
        self.ops_per_second = rate.max(1e-6);
        self
    }

    /// First record's arrival time.
    pub fn start_ns(mut self, t: u64) -> Self {
        self.start_ns = t;
        self
    }

    /// Payload class mix for writes (weights are normalized).
    pub fn payload_mix(mut self, mix: Vec<(PayloadKind, f64)>) -> Self {
        assert!(!mix.is_empty(), "payload mix must not be empty");
        self.payload_mix = mix;
        self
    }

    /// Builds the infinite record stream.
    pub fn build(self) -> Workload {
        let ws_pages = ((self.logical_pages as f64 * self.working_set_fraction) as u64).max(1);
        let zipf = Zipf::new(ws_pages.min(1 << 22) as usize, self.zipf_theta);
        let total_weight: f64 = self.payload_mix.iter().map(|(_, w)| w).sum();
        Workload {
            rng: StdRng::seed_from_u64(self.seed),
            zipf,
            ws_pages,
            next_ns: self.start_ns,
            prev_end_lpa: 0,
            seed_counter: self.seed.wrapping_mul(0x9E3779B97F4A7C15),
            total_weight,
            builder: self,
        }
    }
}

/// An infinite, deterministic stream of [`IoRecord`]s.
#[derive(Clone, Debug)]
pub struct Workload {
    builder: WorkloadBuilder,
    rng: StdRng,
    zipf: Zipf,
    ws_pages: u64,
    next_ns: u64,
    prev_end_lpa: u64,
    seed_counter: u64,
    total_weight: f64,
}

impl Workload {
    fn pick_payload(&mut self) -> PayloadKind {
        let mut u: f64 = self.rng.gen::<f64>() * self.total_weight;
        for &(kind, w) in &self.builder.payload_mix {
            if u < w {
                return kind;
            }
            u -= w;
        }
        self.builder.payload_mix.last().expect("non-empty").0
    }

    fn pick_lpa(&mut self, pages: u32) -> u64 {
        let max_start = self.builder.logical_pages.saturating_sub(u64::from(pages));
        if self.rng.gen::<f64>() < self.builder.sequential_fraction {
            // Continue from the previous request.
            self.prev_end_lpa.min(max_start)
        } else {
            // Zipf rank scattered over the working set via multiplicative
            // hashing so rank popularity maps to stable page addresses.
            let rank = self.zipf.sample(&mut self.rng) as u64;
            let scattered = rank.wrapping_mul(0x9E3779B97F4A7C15) % self.ws_pages;
            scattered.min(max_start)
        }
    }
}

impl Iterator for Workload {
    type Item = IoRecord;

    fn next(&mut self) -> Option<IoRecord> {
        // Exponential inter-arrival around the configured rate.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        let gap_s = -u.ln() / self.builder.ops_per_second;
        self.next_ns += (gap_s * 1e9) as u64;

        // Geometric request size with the configured mean.
        let p = 1.0 / f64::from(self.builder.mean_request_pages);
        let mut pages = 1u32;
        while self.rng.gen::<f64>() > p && pages < 64 {
            pages += 1;
        }

        let roll: f64 = self.rng.gen();
        let op = if roll < self.builder.read_fraction {
            IoOp::Read
        } else if roll < self.builder.read_fraction + self.builder.trim_fraction {
            IoOp::Trim
        } else {
            IoOp::Write
        };

        let lpa = self.pick_lpa(pages);
        self.prev_end_lpa = lpa + u64::from(pages);
        self.seed_counter = self.seed_counter.wrapping_add(0x9E3779B97F4A7C15);

        let payload = if op == IoOp::Write {
            self.pick_payload()
        } else {
            PayloadKind::Zero
        };

        Some(IoRecord {
            at_ns: self.next_ns,
            op,
            lpa,
            pages,
            payload_seed: self.seed_counter,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(builder: WorkloadBuilder, n: usize) -> Vec<IoRecord> {
        builder.build().take(n).collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sample(WorkloadBuilder::new(1024).seed(5), 200);
        let b = sample(WorkloadBuilder::new(1024).seed(5), 200);
        assert_eq!(a, b);
        let c = sample(WorkloadBuilder::new(1024).seed(6), 200);
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_times_are_monotone() {
        let recs = sample(WorkloadBuilder::new(1024).seed(1), 500);
        for w in recs.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
    }

    #[test]
    fn read_fraction_respected() {
        let recs = sample(WorkloadBuilder::new(1024).seed(2).read_fraction(0.8), 5000);
        let reads = recs.iter().filter(|r| r.op == IoOp::Read).count();
        let frac = reads as f64 / recs.len() as f64;
        assert!((frac - 0.8).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn trims_generated_when_requested() {
        let recs = sample(
            WorkloadBuilder::new(1024)
                .seed(3)
                .read_fraction(0.2)
                .trim_fraction(0.3),
            5000,
        );
        let trims = recs.iter().filter(|r| r.op == IoOp::Trim).count();
        assert!(trims > 1000, "trims {trims}");
    }

    #[test]
    fn requests_stay_in_bounds() {
        let recs = sample(
            WorkloadBuilder::new(256).seed(4).mean_request_pages(8),
            5000,
        );
        for r in &recs {
            assert!(r.lpa + u64::from(r.pages) <= 256 + 64, "record {r:?}");
            assert!(r.lpa < 256);
        }
    }

    #[test]
    fn rate_controls_time() {
        let slow = sample(WorkloadBuilder::new(1024).seed(5).ops_per_second(10.0), 100);
        let fast = sample(
            WorkloadBuilder::new(1024).seed(5).ops_per_second(10_000.0),
            100,
        );
        assert!(slow.last().unwrap().at_ns > fast.last().unwrap().at_ns * 100);
    }

    #[test]
    fn working_set_concentrates_accesses() {
        let recs = sample(
            WorkloadBuilder::new(100_000)
                .seed(6)
                .working_set_fraction(0.01)
                .sequential_fraction(0.0),
            5000,
        );
        let in_ws = recs.iter().filter(|r| r.lpa < 1000).count();
        assert!(
            in_ws as f64 / recs.len() as f64 > 0.9,
            "working-set hit fraction {}",
            in_ws as f64 / recs.len() as f64
        );
    }
}
