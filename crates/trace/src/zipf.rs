//! Zipf-distributed sampling for skewed access patterns.
//!
//! Block traces are heavily skewed: a small working set absorbs most writes.
//! The models in [`crate::profiles`] express that skew with a Zipf exponent.

use rand::Rng;

/// A Zipf(θ) sampler over ranks `0..n` using a precomputed CDF.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rssd_trace::Zipf;
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta` (`0.0` =
    /// uniform, `~0.99` = typical storage-trace skew).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(theta.is_finite() && theta >= 0.0, "invalid zipf theta");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: a sampler has at least one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..len()`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(
            f64::from(max) / f64::from(min) < 1.2,
            "uniform spread, got {counts:?}"
        );
    }

    #[test]
    fn skewed_when_theta_high() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(42);
        let mut head = 0u32;
        const DRAWS: u32 = 100_000;
        for _ in 0..DRAWS {
            if zipf.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Top 10% of ranks should absorb well over half the draws.
        assert!(
            f64::from(head) / f64::from(DRAWS) > 0.6,
            "head fraction {}",
            f64::from(head) / f64::from(DRAWS)
        );
    }

    #[test]
    fn samples_in_range() {
        let zipf = Zipf::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_rank() {
        let zipf = Zipf::new(1, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(zipf.sample(&mut rng), 0);
        assert_eq!(zipf.len(), 1);
        assert!(!zipf.is_empty());
    }

    #[test]
    #[should_panic(expected = "zipf over zero ranks")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
