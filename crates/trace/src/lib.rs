//! Workload and trace substrate.
//!
//! The paper evaluates RSSD with MSR-Cambridge block traces (hm, src, ts,
//! wdev, rsrch, stg, usr) and FIU traces (home, mail, online, web, webusers),
//! replayed against the prototype. Those traces are not redistributable, so
//! this crate provides **synthetic trace models calibrated to the published
//! per-trace statistics** — daily write volume, read/write mix, working-set
//! skew, request sizes, and payload compressibility — which are the
//! aggregates that determine every retention/overhead result reproduced
//! here (see DESIGN.md §1 for the substitution argument).
//!
//! * [`record`] — I/O records and deterministic payload synthesis.
//! * [`zipf`] — a Zipf sampler for skewed access patterns.
//! * [`synth`] — the generic workload generator.
//! * [`profiles`] — the twelve named trace models of Figure 2.
//! * [`mod@replay`] — drives any [`rssd_ssd::BlockDevice`] from a record
//!   stream through the NVMe-style queue layer, at a configurable queue
//!   depth ([`replay_queued`]), fanned out across several queue pairs
//!   ([`replay_fanout`]), or scalar-compatibly ([`replay()`]).

pub mod profiles;
pub mod record;
pub mod replay;
pub mod synth;
pub mod zipf;

pub use profiles::TraceProfile;
pub use record::{synthesize_page, IoOp, IoRecord, PayloadKind};
pub use replay::{replay, replay_fanout, replay_queued, ReplayOutcome, ReplayStats};
pub use synth::{DiurnalLoad, Workload, WorkloadBuilder};
pub use zipf::Zipf;
