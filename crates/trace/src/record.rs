//! I/O records and deterministic payload synthesis.

use serde::{Deserialize, Serialize};

/// The operation of one trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// Read `pages` logical pages starting at `lpa`.
    Read,
    /// Write `pages` logical pages starting at `lpa`.
    Write,
    /// Trim `pages` logical pages starting at `lpa`.
    Trim,
}

/// What kind of content a write carries — this determines entropy and
/// compressibility, which both the Figure 2 compression series and the
/// entropy-based detectors depend on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadKind {
    /// All-zero pages (sparse files, freshly formatted space).
    Zero,
    /// Text-like, highly compressible (~4:1 with LZ77).
    Text,
    /// Binary-like, moderately compressible (~1.7:1).
    Binary,
    /// Incompressible high-entropy data (media, or ciphertext).
    Random,
}

/// One logical I/O request in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRecord {
    /// Simulated arrival time.
    pub at_ns: u64,
    /// Operation.
    pub op: IoOp,
    /// First logical page touched.
    pub lpa: u64,
    /// Number of consecutive pages.
    pub pages: u32,
    /// Seed for deterministic payload synthesis (writes only).
    pub payload_seed: u64,
    /// Payload content class (writes only).
    pub payload: PayloadKind,
}

impl IoRecord {
    /// Convenience constructor for a single-page write.
    pub fn write(at_ns: u64, lpa: u64, payload: PayloadKind, seed: u64) -> Self {
        IoRecord {
            at_ns,
            op: IoOp::Write,
            lpa,
            pages: 1,
            payload_seed: seed,
            payload,
        }
    }

    /// Convenience constructor for a single-page read.
    pub fn read(at_ns: u64, lpa: u64) -> Self {
        IoRecord {
            at_ns,
            op: IoOp::Read,
            lpa,
            pages: 1,
            payload_seed: 0,
            payload: PayloadKind::Zero,
        }
    }

    /// Convenience constructor for a single-page trim.
    pub fn trim(at_ns: u64, lpa: u64) -> Self {
        IoRecord {
            at_ns,
            op: IoOp::Trim,
            lpa,
            pages: 1,
            payload_seed: 0,
            payload: PayloadKind::Zero,
        }
    }
}

/// Deterministically synthesizes one page of content of the given kind.
///
/// The same `(kind, seed, page_size)` always yields identical bytes, so
/// recovery checks can re-derive expected contents without storing them.
pub fn synthesize_page(kind: PayloadKind, seed: u64, page_size: usize) -> Vec<u8> {
    // Pre-mix so adjacent seeds yield unrelated streams.
    let seed = {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    match kind {
        PayloadKind::Zero => vec![0u8; page_size],
        PayloadKind::Text => {
            // Repeating word-like fragments with seed-dependent variation:
            // entropy ~2-4 bits/byte, compresses well.
            const WORDS: &[&str] = &[
                "storage", "the", "ransom", "page", "and", "flash", "data", "of", "block",
                "request", "to", "file", "system", "with", "log",
            ];
            let mut out = Vec::with_capacity(page_size);
            let mut x = seed | 1;
            while out.len() < page_size {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let w = WORDS[(x >> 33) as usize % WORDS.len()];
                out.extend_from_slice(w.as_bytes());
                out.push(b' ');
            }
            out.truncate(page_size);
            out
        }
        PayloadKind::Binary => {
            // Structured records: small integers with long zero runs,
            // moderate compressibility.
            let mut out = Vec::with_capacity(page_size);
            let mut x = seed | 1;
            while out.len() < page_size {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                out.extend_from_slice(&(x as u32).to_le_bytes());
                out.extend_from_slice(&[0u8; 12]);
            }
            out.truncate(page_size);
            out
        }
        PayloadKind::Random => {
            // SplitMix-style high-entropy stream: incompressible, entropy
            // ~8 bits/byte — statistically like ciphertext.
            let mut out = Vec::with_capacity(page_size);
            let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
            while out.len() < page_size {
                let mut z = x;
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                out.extend_from_slice(&z.to_le_bytes());
            }
            out.truncate(page_size);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        for kind in [
            PayloadKind::Zero,
            PayloadKind::Text,
            PayloadKind::Binary,
            PayloadKind::Random,
        ] {
            assert_eq!(
                synthesize_page(kind, 7, 4096),
                synthesize_page(kind, 7, 4096),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn seeds_vary_content() {
        assert_ne!(
            synthesize_page(PayloadKind::Text, 1, 4096),
            synthesize_page(PayloadKind::Text, 2, 4096)
        );
        assert_ne!(
            synthesize_page(PayloadKind::Random, 1, 4096),
            synthesize_page(PayloadKind::Random, 2, 4096)
        );
    }

    #[test]
    fn exact_page_size() {
        for kind in [PayloadKind::Text, PayloadKind::Binary, PayloadKind::Random] {
            assert_eq!(synthesize_page(kind, 3, 4096).len(), 4096);
            assert_eq!(synthesize_page(kind, 3, 512).len(), 512);
        }
    }

    #[test]
    fn entropy_ordering_matches_kinds() {
        let page = |k| synthesize_page(k, 11, 4096);
        let h = |k| {
            let p = page(k);
            // Shannon entropy without depending on rssd-compress.
            let mut counts = [0u64; 256];
            for &b in &p {
                counts[b as usize] += 1;
            }
            let n = p.len() as f64;
            counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let pr = c as f64 / n;
                    -pr * pr.log2()
                })
                .sum::<f64>()
        };
        assert_eq!(h(PayloadKind::Zero), 0.0);
        assert!(h(PayloadKind::Text) < 5.0);
        assert!(h(PayloadKind::Random) > 7.5);
        assert!(h(PayloadKind::Binary) < h(PayloadKind::Random));
    }

    #[test]
    fn record_constructors() {
        let w = IoRecord::write(10, 5, PayloadKind::Text, 1);
        assert_eq!(w.op, IoOp::Write);
        assert_eq!(w.pages, 1);
        let r = IoRecord::read(10, 5);
        assert_eq!(r.op, IoOp::Read);
        let t = IoRecord::trim(10, 5);
        assert_eq!(t.op, IoOp::Trim);
    }
}
