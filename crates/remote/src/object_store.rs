//! An S3-like object store with a simple latency model.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Latency model for the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectStoreConfig {
    /// Fixed per-request latency (request processing, metadata).
    pub request_latency_ns: u64,
    /// Per-byte cost (storage backend bandwidth).
    pub per_byte_ns: u64,
}

impl ObjectStoreConfig {
    /// Cloud object storage: 10 ms per request, ~400 MB/s streaming.
    pub fn cloud() -> Self {
        ObjectStoreConfig {
            request_latency_ns: 10_000_000,
            per_byte_ns: 2,
        }
    }

    /// A local storage server: 200 µs per request, ~2 GB/s.
    pub fn local_server() -> Self {
        ObjectStoreConfig {
            request_latency_ns: 200_000,
            per_byte_ns: 0,
        }
    }
}

impl Default for ObjectStoreConfig {
    fn default() -> Self {
        Self::local_server()
    }
}

/// Operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct ObjectStoreStats {
    /// PUT requests served.
    pub puts: u64,
    /// GET requests served.
    pub gets: u64,
    /// Bytes currently stored.
    pub stored_bytes: u64,
}

/// A bucketed key→blob store. Single-bucket helpers cover the common case.
/// Blobs are refcounted [`Bytes`]: a PUT of an already-shared buffer (the
/// offload wire image) stores a reference, and GETs hand back views, so
/// segments are never deep-copied on the storage path.
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    config: ObjectStoreConfig,
    objects: BTreeMap<String, Bytes>,
    stats: ObjectStoreStats,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new(config: ObjectStoreConfig) -> Self {
        ObjectStore {
            config,
            objects: BTreeMap::new(),
            stats: ObjectStoreStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> ObjectStoreStats {
        self.stats
    }

    /// Stores `data` under `key`, returning the simulated completion time.
    pub fn put(&mut self, key: &str, data: impl Into<Bytes>, now_ns: u64) -> u64 {
        let data = data.into();
        self.stats.puts += 1;
        let cost = self.config.request_latency_ns + self.config.per_byte_ns * data.len() as u64;
        if let Some(old) = self.objects.insert(key.to_string(), data) {
            self.stats.stored_bytes -= old.len() as u64;
        }
        self.stats.stored_bytes += self.objects[key].len() as u64;
        now_ns + cost
    }

    /// Fetches the object at `key`, with its simulated completion time.
    /// The returned blob is a refcounted view, not a copy.
    pub fn get(&mut self, key: &str, now_ns: u64) -> Option<(Bytes, u64)> {
        self.stats.gets += 1;
        let data = self.objects.get(key)?.clone();
        let cost = self.config.request_latency_ns + self.config.per_byte_ns * data.len() as u64;
        Some((data, now_ns + cost))
    }

    /// Lists keys with the given prefix, in order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Deletes an object; returns whether it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        if let Some(old) = self.objects.remove(key) {
            self.stats.stored_bytes -= old.len() as u64;
            true
        } else {
            false
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = ObjectStore::new(ObjectStoreConfig::local_server());
        let done = s.put("seg/000", vec![1, 2, 3], 0);
        assert!(done >= 200_000);
        let (data, _) = s.get("seg/000", done).unwrap();
        assert_eq!(data, vec![1, 2, 3]);
        assert_eq!(s.stats().puts, 1);
        assert_eq!(s.stats().gets, 1);
    }

    #[test]
    fn missing_get_is_none() {
        let mut s = ObjectStore::new(ObjectStoreConfig::default());
        assert!(s.get("nope", 0).is_none());
    }

    #[test]
    fn overwrite_accounts_bytes() {
        let mut s = ObjectStore::new(ObjectStoreConfig::default());
        s.put("k", vec![0; 100], 0);
        s.put("k", vec![0; 40], 0);
        assert_eq!(s.stats().stored_bytes, 40);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn list_by_prefix_in_order() {
        let mut s = ObjectStore::new(ObjectStoreConfig::default());
        s.put("seg/002", vec![], 0);
        s.put("seg/001", vec![], 0);
        s.put("other/x", vec![], 0);
        assert_eq!(s.list("seg/"), vec!["seg/001", "seg/002"]);
    }

    #[test]
    fn delete_frees_bytes() {
        let mut s = ObjectStore::new(ObjectStoreConfig::default());
        s.put("k", vec![0; 10], 0);
        assert!(s.delete("k"));
        assert!(!s.delete("k"));
        assert_eq!(s.stats().stored_bytes, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn cloud_is_slower_than_local() {
        let mut cloud = ObjectStore::new(ObjectStoreConfig::cloud());
        let mut local = ObjectStore::new(ObjectStoreConfig::local_server());
        let a = cloud.put("k", vec![0; 1_000_000], 0);
        let b = local.put("k", vec![0; 1_000_000], 0);
        assert!(a > b);
    }
}
