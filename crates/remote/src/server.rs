//! The remote log server.
//!
//! Receives segment envelopes over the simulated NVMe-oE fabric, enforces
//! evidence-chain continuity (a device — or an attacker spoofing one —
//! cannot silently rewind or skip history), stores the sealed payloads in
//! the object store, and runs the offloaded detection ensemble over the
//! decrypted records.

use rssd_core::{LogOp, PostAttackAnalyzer, RemoteError, RemoteTarget, SegmentEnvelope, StoreAck};
use rssd_crypto::{DeviceKeys, Digest};
use rssd_detect::{Ensemble, Verdict};
use rssd_net::{LinkConfig, NvmeOeEndpoint, SecureSession, TransferStats};
use serde::{Deserialize, Serialize};

use crate::object_store::{ObjectStore, ObjectStoreConfig};

/// Aggregated server-side observations (the operator's dashboard).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct ServerReport {
    /// Segments accepted and stored.
    pub segments_stored: u64,
    /// Segments rejected for chain discontinuity.
    pub segments_rejected: u64,
    /// Records fed to the detection ensemble.
    pub records_analyzed: u64,
    /// Current detection verdict.
    pub verdict: Verdict,
    /// Combined detection score.
    pub score: f64,
    /// Time (ns) spent receiving + storing, summed.
    pub ingest_time_ns: u64,
}

/// The remote log/detection server. Implements [`RemoteTarget`] so it plugs
/// directly under an `RssdDevice`.
#[derive(Debug)]
pub struct RemoteLogServer {
    fabric: NvmeOeEndpoint,
    store: ObjectStore,
    session: SecureSession,
    ensemble: Ensemble,
    last_head: Option<Digest>,
    segment_index: Vec<u64>,
    report: ServerReport,
    reachable: bool,
    external_fabric: bool,
}

impl RemoteLogServer {
    /// Builds a server reachable over `link`, storing into an object store
    /// with `store_config`, holding the operator-provisioned offload keys
    /// derived from `keys`.
    pub fn new(link: LinkConfig, store_config: ObjectStoreConfig, keys: &DeviceKeys) -> Self {
        RemoteLogServer {
            fabric: NvmeOeEndpoint::new(link),
            store: ObjectStore::new(store_config),
            session: SecureSession::new(keys, 0),
            ensemble: Ensemble::new(),
            last_head: None,
            segment_index: Vec::new(),
            report: ServerReport::default(),
            reachable: true,
            external_fabric: false,
        }
    }

    /// Convenience: datacenter link + local storage server.
    pub fn datacenter(keys: &DeviceKeys) -> Self {
        Self::new(
            LinkConfig::datacenter_10g(),
            ObjectStoreConfig::local_server(),
            keys,
        )
    }

    /// Convenience: WAN link + cloud object storage.
    pub fn cloud(keys: &DeviceKeys) -> Self {
        Self::new(LinkConfig::wan_cloud(), ObjectStoreConfig::cloud(), keys)
    }

    /// Simulates a network partition.
    pub fn set_reachable(&mut self, reachable: bool) {
        self.reachable = reachable;
    }

    /// Tells the server its envelopes already crossed a modeled wire
    /// upstream — the device wrapped this server in
    /// `rssd_core::WireRemote`, which charged the NVMe-oE transfer to the
    /// simulated clock. Ingest then happens at `now_ns` without a second
    /// fabric hop.
    pub fn set_external_fabric(&mut self, external: bool) {
        self.external_fabric = external;
    }

    /// Current dashboard.
    pub fn report(&self) -> ServerReport {
        self.report.clone()
    }

    /// NVMe-oE transfer statistics.
    pub fn transfer_stats(&self) -> TransferStats {
        self.fabric.stats()
    }

    /// Object-store statistics.
    pub fn store_stats(&self) -> crate::object_store::ObjectStoreStats {
        self.store.stats()
    }

    /// Current offloaded-detection verdict.
    pub fn verdict(&self) -> Verdict {
        self.ensemble.verdict()
    }

    fn segment_key(seq: u64) -> String {
        format!("segments/{seq:016x}")
    }

    /// Feeds the decrypted records of a stored segment to the detection
    /// ensemble.
    fn analyze_segment(&mut self, envelope: &SegmentEnvelope) {
        let Ok(compressed) = self
            .session
            .open(envelope.segment_seq(), envelope.sealed_payload())
        else {
            return;
        };
        let Ok(raw) = rssd_compress::decompress(&compressed) else {
            return;
        };
        let Ok(segment) = rssd_core::Segment::from_bytes(&raw) else {
            return;
        };
        for record in &segment.records {
            if record.op == LogOp::Read {
                continue;
            }
            self.ensemble
                .observe(&PostAttackAnalyzer::observation(record));
            self.report.records_analyzed += 1;
        }
        self.report.verdict = self.ensemble.verdict();
        self.report.score = self.ensemble.score();
    }
}

impl RemoteTarget for RemoteLogServer {
    fn store_segment(
        &mut self,
        envelope: SegmentEnvelope,
        now_ns: u64,
    ) -> Result<StoreAck, RemoteError> {
        if !self.reachable {
            return Err(RemoteError::Unreachable);
        }
        if let Some(expected) = self.last_head {
            if envelope.prev_chain_head() != expected {
                self.report.segments_rejected += 1;
                return Err(RemoteError::ChainDiscontinuity {
                    expected,
                    got: envelope.prev_chain_head(),
                });
            }
        }
        // Transfer over the fabric (unless the wire was modeled upstream),
        // then persist. The envelope, the fabric payload, and the stored
        // object all share one refcounted wire image.
        let wire = envelope.to_wire_bytes();
        let (arrival_ns, wire) = if self.external_fabric {
            (now_ns, wire)
        } else {
            let (arrival_ns, delivered) =
                self.fabric
                    .transfer_segment(envelope.segment_seq(), wire.clone(), now_ns);
            debug_assert_eq!(delivered, wire, "fabric must deliver intact");
            (arrival_ns, delivered)
        };
        let durable_at_ns =
            self.store
                .put(&Self::segment_key(envelope.segment_seq()), wire, arrival_ns);

        self.last_head = Some(envelope.chain_head());
        self.segment_index.push(envelope.segment_seq());
        self.report.segments_stored += 1;
        self.report.ingest_time_ns += durable_at_ns.saturating_sub(now_ns);
        self.analyze_segment(&envelope);
        Ok(StoreAck {
            segment_seq: envelope.segment_seq(),
            durable_at_ns,
        })
    }

    fn fetch_segment(&mut self, segment_seq: u64) -> Result<SegmentEnvelope, RemoteError> {
        if !self.reachable {
            return Err(RemoteError::Unreachable);
        }
        let (bytes, _) = self
            .store
            .get(&Self::segment_key(segment_seq), 0)
            .ok_or(RemoteError::NoSuchSegment(segment_seq))?;
        SegmentEnvelope::from_wire_bytes(bytes).ok_or(RemoteError::NoSuchSegment(segment_seq))
    }

    fn stored_segments(&self) -> Vec<u64> {
        self.segment_index.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rssd_core::{LoopbackTarget, RssdConfig, RssdDevice};
    use rssd_flash::{FlashGeometry, NandTiming, SimClock};
    use rssd_ssd::BlockDevice;

    fn keys() -> DeviceKeys {
        DeviceKeys::for_simulation(RssdConfig::default().key_seed)
    }

    fn device_over_server() -> RssdDevice<RemoteLogServer> {
        RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
            RssdConfig {
                segment_pages: 8,
                ..RssdConfig::default()
            },
            RemoteLogServer::datacenter(&keys()),
        )
    }

    #[test]
    fn device_offloads_through_real_server() {
        let mut d = device_over_server();
        for i in 0..40u64 {
            d.write_page(i % 4, vec![(i % 7) as u8; 4096]).unwrap();
        }
        d.flush_log().unwrap();
        let report = d.remote().report();
        assert!(report.segments_stored > 0);
        assert_eq!(report.segments_rejected, 0);
        assert!(report.records_analyzed > 0);
        assert!(d.remote().transfer_stats().payload_bytes > 0);
        assert!(d.remote().store_stats().stored_bytes > 0);
    }

    #[test]
    fn recovery_through_real_server() {
        let mut d = device_over_server();
        d.write_page(3, vec![1; 4096]).unwrap();
        d.write_page(3, vec![2; 4096]).unwrap();
        d.flush_log().unwrap();
        assert_eq!(d.recover_page(3).unwrap(), vec![1; 4096]);
    }

    #[test]
    fn wire_remote_carries_segments_to_real_server_on_one_wire() {
        // The full codesign path: offload engine → WireRemote (the modeled
        // NVMe-oE wire) → log server ingesting without a second fabric hop.
        let mut server = RemoteLogServer::datacenter(&keys());
        server.set_external_fabric(true);
        let mut d = RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
            RssdConfig {
                segment_pages: 8,
                ..RssdConfig::default()
            },
            rssd_core::WireRemote::new(server, rssd_net::LinkConfig::datacenter_10g()),
        );
        d.write_page(3, vec![1; 4096]).unwrap();
        d.write_page(3, vec![2; 4096]).unwrap();
        d.flush_log().unwrap();
        assert!(d.remote().inner().report().segments_stored > 0);
        assert_eq!(d.remote().inner().report().segments_rejected, 0);
        // Exactly one wire: WireRemote's fabric carried capsules, the
        // server's internal fabric stayed idle.
        assert!(d.remote().transfer_stats().payload_bytes > 0);
        assert_eq!(d.remote().inner().transfer_stats().payload_bytes, 0);
        assert_eq!(d.recover_page(3).unwrap(), vec![1; 4096]);
    }

    #[test]
    fn server_detects_classic_ransomware_in_offloaded_log() {
        let mut d = device_over_server();
        // Victim data.
        for lpa in 0..100u64 {
            d.write_page(lpa, rssd_trace_page(lpa)).unwrap();
        }
        // Read-encrypt-overwrite everything with high-entropy data.
        for lpa in 0..100u64 {
            d.read_page(lpa).unwrap();
            d.write_page(lpa, cipher_page(lpa)).unwrap();
        }
        d.flush_log().unwrap();
        assert_eq!(
            d.remote().verdict(),
            Verdict::Ransomware,
            "report: {:?}",
            d.remote().report()
        );
    }

    // Low-entropy, text-like page.
    fn rssd_trace_page(seed: u64) -> Vec<u8> {
        let mut p = vec![b'a'; 4096];
        p[0] = seed as u8;
        p
    }

    // High-entropy pseudo-ciphertext page.
    fn cipher_page(seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        while out.len() < 4096 {
            let mut z = x;
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            out.extend_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        out
    }

    #[test]
    fn chain_discontinuity_rejected() {
        let mut server = RemoteLogServer::datacenter(&keys());
        let env = |seq: u64, prev: Digest, head: Digest| {
            SegmentEnvelope::new(1, seq, prev, head, 0, &[0; 40])
        };
        let d1 = Digest::from_bytes([1; 32]);
        server.store_segment(env(0, Digest::ZERO, d1), 0).unwrap();
        let err = server
            .store_segment(env(1, Digest::from_bytes([9; 32]), d1), 0)
            .unwrap_err();
        assert!(matches!(err, RemoteError::ChainDiscontinuity { .. }));
        assert_eq!(server.report().segments_rejected, 1);
    }

    #[test]
    fn fetch_round_trips_envelope() {
        let mut server = RemoteLogServer::datacenter(&keys());
        let envelope = SegmentEnvelope::new(
            7,
            3,
            Digest::ZERO,
            Digest::from_bytes([2; 32]),
            5,
            &[9; 100],
        );
        server.store_segment(envelope.clone(), 0).unwrap();
        assert_eq!(server.fetch_segment(3).unwrap(), envelope);
        assert_eq!(server.stored_segments(), vec![3]);
        assert!(matches!(
            server.fetch_segment(99),
            Err(RemoteError::NoSuchSegment(99))
        ));
    }

    #[test]
    fn partition_returns_unreachable() {
        let mut server = RemoteLogServer::datacenter(&keys());
        server.set_reachable(false);
        let envelope = SegmentEnvelope::new(1, 0, Digest::ZERO, Digest::ZERO, 0, &[]);
        assert_eq!(
            server.store_segment(envelope, 0),
            Err(RemoteError::Unreachable)
        );
    }

    #[test]
    fn loopback_and_server_agree_on_interface() {
        // Both targets drive the same device code path.
        let mut a = RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
            RssdConfig::default(),
            LoopbackTarget::new(),
        );
        let mut b = device_over_server();
        for i in 0..20u64 {
            a.write_page(i % 3, vec![i as u8; 4096]).unwrap();
            b.write_page(i % 3, vec![i as u8; 4096]).unwrap();
        }
        a.flush_log().unwrap();
        b.flush_log().unwrap();
        assert_eq!(a.recover_page(0).unwrap(), b.recover_page(0).unwrap());
    }
}
