//! The remote half of the RSSD network-storage codesign.
//!
//! The paper offloads retained data and logs to "remote cloud/servers"
//! (Amazon S3 and local storage servers in the prototype) and pushes
//! ransomware *detection and analysis* to that remote compute. This crate
//! provides:
//!
//! * [`object_store`] — an S3-like object store with a latency model.
//! * [`server`] — the log server: receives segments over the simulated
//!   NVMe-oE fabric, verifies evidence-chain continuity, stores them
//!   durably, and (holding the operator-provisioned offload keys) runs the
//!   [`rssd_detect`] ensemble over every arriving segment.
//!
//! [`RemoteLogServer`] implements [`rssd_core::RemoteTarget`], so an
//! [`rssd_core::RssdDevice`] can be constructed directly over it.

pub mod object_store;
pub mod server;

pub use object_store::{ObjectStore, ObjectStoreConfig, ObjectStoreStats};
pub use server::{RemoteLogServer, ServerReport};
