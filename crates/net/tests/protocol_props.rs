//! Property tests for the NVMe-oE protocol layers: decoders are total
//! (never panic on arbitrary bytes), round trips are exact, and reliable
//! transfer survives every deterministic loss pattern.

use bytes::Bytes;
use proptest::prelude::*;
use rssd_crypto::DeviceKeys;
use rssd_net::{
    Capsule, CapsuleKind, EthernetFrame, LinkConfig, MacAddr, NvmeOeEndpoint, SecureSession,
};

proptest! {
    #[test]
    fn capsule_round_trip(
        seq in any::<u64>(),
        segment_seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        for kind in [
            CapsuleKind::SegmentWrite,
            CapsuleKind::SegmentRead,
            CapsuleKind::ReadResponse,
            CapsuleKind::Ack,
        ] {
            let c = Capsule { kind, seq, segment_seq, payload: Bytes::from(payload.clone()) };
            prop_assert_eq!(Capsule::from_wire(&c.to_wire().unwrap()).unwrap(), c);
        }
    }

    #[test]
    fn capsule_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must never panic, whatever the input.
        let _ = Capsule::from_wire(&Bytes::from(bytes));
    }

    #[test]
    fn frame_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = EthernetFrame::from_bytes(&bytes);
    }

    #[test]
    fn frame_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let f = EthernetFrame::nvme_oe(
            MacAddr::REMOTE,
            MacAddr::DEVICE,
            bytes::Bytes::from(payload),
        );
        prop_assert_eq!(EthernetFrame::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn session_round_trip_and_tamper_rejection(
        seed in any::<u64>(),
        segment_seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        flip in any::<u16>(),
    ) {
        let session = SecureSession::new(&DeviceKeys::for_simulation(seed), 0);
        let sealed = session.seal(segment_seq, &payload);
        prop_assert_eq!(session.open(segment_seq, &sealed).unwrap(), payload);

        let mut tampered = sealed.clone();
        let idx = (flip as usize) % tampered.len().max(1);
        if !tampered.is_empty() {
            tampered[idx] ^= 1;
            prop_assert!(session.open(segment_seq, &tampered).is_err());
        }
    }

    #[test]
    fn transfer_survives_any_loss_period(
        loss_period in 2u64..10,
        len in 1usize..200_000,
    ) {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::lossy(loss_period));
        let payload = Bytes::from((0..len).map(|i| (i * 131) as u8).collect::<Vec<u8>>());
        let (done, delivered) = fabric.transfer_segment(1, payload.clone(), 0);
        prop_assert_eq!(delivered, payload);
        prop_assert!(done > 0);
    }
}
