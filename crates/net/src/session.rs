//! The secure offload session: encrypt-then-MAC over capsule payloads.
//!
//! Retained pages leave the device "in a compressed and encrypted format"
//! (paper §3). The session keys derive from the device hierarchy inside the
//! controller; the host — and therefore any ransomware, however privileged —
//! never observes plaintext log data or the keys.

use rssd_crypto::{ChaCha20, DeviceKeys, HmacSha256, KeyId, KeyPurpose};

/// Length of the appended authentication tag.
pub const TAG_LEN: usize = 32;

/// Session failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// Message shorter than a tag.
    Truncated,
    /// Authentication tag mismatch: tampered or mis-keyed.
    BadTag,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Truncated => write!(f, "sealed message shorter than tag"),
            SessionError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for SessionError {}

/// An encrypt-then-MAC session keyed from a [`DeviceKeys`] hierarchy.
///
/// # Examples
///
/// ```
/// use rssd_crypto::DeviceKeys;
/// use rssd_net::SecureSession;
///
/// let keys = DeviceKeys::for_simulation(7);
/// let sender = SecureSession::new(&keys, 0);
/// let receiver = SecureSession::new(&keys, 0);
/// let sealed = sender.seal(42, b"retained pages");
/// assert_eq!(receiver.open(42, &sealed).unwrap(), b"retained pages");
/// ```
#[derive(Clone)]
pub struct SecureSession {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
    keys: DeviceKeys,
    enc_id: KeyId,
}

impl std::fmt::Debug for SecureSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureSession")
            .field("keys", &"<sealed>")
            .field("epoch", &self.enc_id.epoch)
            .finish()
    }
}

impl SecureSession {
    /// Derives session keys at `epoch` from the device hierarchy.
    pub fn new(keys: &DeviceKeys, epoch: u32) -> Self {
        let enc_id = KeyId {
            purpose: KeyPurpose::OffloadEncryption,
            epoch,
        };
        let mac_id = KeyId {
            purpose: KeyPurpose::SegmentAuthentication,
            epoch,
        };
        SecureSession {
            enc_key: keys.derive_id(enc_id),
            mac_key: keys.derive_id(mac_id),
            keys: keys.clone(),
            enc_id,
        }
    }

    /// Encrypts `plaintext` under the per-segment nonce for `segment_seq`
    /// and appends an HMAC tag over `(segment_seq || ciphertext)`.
    ///
    /// The sealed image is built in a single allocation sized
    /// `plaintext.len() + TAG_LEN` and ciphered in place — no intermediate
    /// ciphertext buffer, no tag-append reallocation.
    pub fn seal(&self, segment_seq: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.seal_in_place(segment_seq, &mut out, 0);
        out
    }

    /// Seals `buf[from..]` in place: the plaintext tail is ciphered where it
    /// sits and the authentication tag is appended to `buf`. This is the
    /// zero-copy spelling of [`seal`](Self::seal) — callers that already
    /// assembled `[header | plaintext]` in one buffer seal the payload
    /// without ever materialising a separate ciphertext allocation.
    ///
    /// # Panics
    ///
    /// Panics if `from > buf.len()`.
    pub fn seal_in_place(&self, segment_seq: u64, buf: &mut Vec<u8>, from: usize) {
        let nonce = self.keys.segment_nonce(self.enc_id, segment_seq);
        buf.reserve(TAG_LEN);
        ChaCha20::new(&self.enc_key, &nonce).apply_keystream(&mut buf[from..]);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&segment_seq.to_le_bytes());
        mac.update(&buf[from..]);
        buf.extend_from_slice(mac.finalize().as_bytes());
    }

    /// Verifies and decrypts a sealed message.
    ///
    /// # Errors
    ///
    /// [`SessionError::Truncated`] if shorter than a tag;
    /// [`SessionError::BadTag`] if authentication fails (any bit flipped in
    /// transit, a replayed segment number, or a wrong key).
    pub fn open(&self, segment_seq: u64, sealed: &[u8]) -> Result<Vec<u8>, SessionError> {
        if sealed.len() < TAG_LEN {
            return Err(SessionError::Truncated);
        }
        let (ciphertext, tag_bytes) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&segment_seq.to_le_bytes());
        mac.update(ciphertext);
        let expected = mac.finalize();
        let mut diff = 0u8;
        for (a, b) in expected.as_bytes().iter().zip(tag_bytes) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(SessionError::BadTag);
        }
        let nonce = self.keys.segment_nonce(self.enc_id, segment_seq);
        let mut out = Vec::with_capacity(ciphertext.len());
        out.extend_from_slice(ciphertext);
        ChaCha20::new(&self.enc_key, &nonce).apply_keystream(&mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rssd_crypto::DeviceKeys;

    fn session() -> SecureSession {
        SecureSession::new(&DeviceKeys::for_simulation(1), 0)
    }

    #[test]
    fn seal_open_round_trip() {
        let s = session();
        let sealed = s.seal(5, b"hello");
        assert_eq!(s.open(5, &sealed).unwrap(), b"hello");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let s = session();
        let sealed = s.seal(5, b"hello");
        assert_ne!(&sealed[..5], b"hello");
    }

    #[test]
    fn tampering_detected() {
        let s = session();
        let mut sealed = s.seal(5, b"hello");
        sealed[0] ^= 1;
        assert_eq!(s.open(5, &sealed), Err(SessionError::BadTag));
    }

    #[test]
    fn tag_tampering_detected() {
        let s = session();
        let mut sealed = s.seal(5, b"hello");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(s.open(5, &sealed), Err(SessionError::BadTag));
    }

    #[test]
    fn wrong_segment_seq_rejected() {
        let s = session();
        let sealed = s.seal(5, b"hello");
        assert_eq!(s.open(6, &sealed), Err(SessionError::BadTag));
    }

    #[test]
    fn truncated_rejected() {
        let s = session();
        assert_eq!(s.open(0, &[0u8; 10]), Err(SessionError::Truncated));
    }

    #[test]
    fn different_epochs_do_not_interoperate() {
        let keys = DeviceKeys::for_simulation(1);
        let a = SecureSession::new(&keys, 0);
        let b = SecureSession::new(&keys, 1);
        let sealed = a.seal(5, b"hello");
        assert_eq!(b.open(5, &sealed), Err(SessionError::BadTag));
    }

    #[test]
    fn unique_nonces_give_unique_ciphertexts() {
        let s = session();
        let a = s.seal(1, b"same plaintext");
        let b = s.seal(2, b"same plaintext");
        assert_ne!(a[..14], b[..14]);
    }

    #[test]
    fn empty_payload_round_trips() {
        let s = session();
        let sealed = s.seal(9, b"");
        assert_eq!(s.open(9, &sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn seal_in_place_matches_seal_and_preserves_prefix() {
        let s = session();
        let mut buf = b"HEADERBYTES".to_vec();
        buf.extend_from_slice(b"retained pages");
        s.seal_in_place(7, &mut buf, 11);
        assert_eq!(&buf[..11], b"HEADERBYTES", "prefix untouched");
        assert_eq!(&buf[11..], &s.seal(7, b"retained pages")[..]);
        assert_eq!(s.open(7, &buf[11..]).unwrap(), b"retained pages");
    }

    #[test]
    fn debug_never_leaks_keys() {
        let s = session();
        assert!(format!("{s:?}").contains("sealed"));
    }
}
