//! Hardware-isolated NVMe-over-Ethernet (NVMe-oE) for the RSSD reproduction.
//!
//! Figure 1 of the paper shows the offload datapath: the SSD controller owns
//! a MAC/transceiver with DMA'd Tx/Rx buffers and control registers, and
//! speaks NVMe-oE directly to remote storage — **without any host software
//! in the loop**. This crate reproduces that path:
//!
//! * [`frame`] — Ethernet framing and MAC addressing.
//! * [`nic`] — the controller-owned NIC: Tx/Rx rings, control registers.
//! * [`link`] — a simulated link with bandwidth, propagation delay and
//!   deterministic loss injection.
//! * [`nvmeoe`] — the capsule protocol: sequencing, acknowledgement,
//!   retransmission, in-order delivery.
//! * [`session`] — the secure session: ChaCha20 + HMAC-SHA-256 over every
//!   capsule payload, keyed from the device hierarchy (the host never sees
//!   these keys).
//!
//! Hardware isolation is structural: the host-facing `BlockDevice` API in
//! `rssd-ssd`/`rssd-core` exposes no reference to any type in this crate.

pub mod frame;
pub mod link;
pub mod nic;
pub mod nvmeoe;
pub mod session;

pub use frame::{EthernetFrame, MacAddr, ETHERTYPE_NVME_OE};
pub use link::{LinkConfig, SharedLink, SimLink};
pub use nic::{Nic, NicError, NicStats};
pub use nvmeoe::{
    Capsule, CapsuleKind, NvmeOeEndpoint, ProtocolError, TransferStalled, TransferStats,
};
pub use session::{SecureSession, SessionError};
