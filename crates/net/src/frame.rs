//! Ethernet framing.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// EtherType used for NVMe-oE capsules (vendor-experimental range).
pub const ETHERTYPE_NVME_OE: u16 = 0x88B5;

/// Maximum payload carried per frame (jumbo frames, as storage fabrics use).
pub const MAX_PAYLOAD: usize = 9000;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The SSD controller's MAC in simulations.
    pub const DEVICE: MacAddr = MacAddr([0x02, 0x55, 0x53, 0x53, 0x44, 0x01]);
    /// The remote log server's MAC in simulations.
    pub const REMOTE: MacAddr = MacAddr([0x02, 0x52, 0x4d, 0x54, 0x45, 0x01]);
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

/// One Ethernet frame on the simulated wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Error parsing a frame off the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the 14-byte header.
    Truncated,
    /// Payload longer than [`MAX_PAYLOAD`].
    Oversized(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame shorter than ethernet header"),
            FrameError::Oversized(n) => write!(f, "payload of {n} bytes exceeds max"),
        }
    }
}

impl std::error::Error for FrameError {}

impl EthernetFrame {
    /// Builds an NVMe-oE frame.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_PAYLOAD`].
    pub fn nvme_oe(dst: MacAddr, src: MacAddr, payload: Bytes) -> Self {
        assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds jumbo MTU");
        EthernetFrame {
            dst,
            src,
            ethertype: ETHERTYPE_NVME_OE,
            payload,
        }
    }

    /// Total on-wire size (header + payload; preamble/FCS ignored).
    pub fn wire_bytes(&self) -> usize {
        14 + self.payload.len()
    }

    /// Serializes to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on truncated or oversized input.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FrameError> {
        if data.len() < 14 {
            return Err(FrameError::Truncated);
        }
        if data.len() - 14 > MAX_PAYLOAD {
            return Err(FrameError::Oversized(data.len() - 14));
        }
        Ok(EthernetFrame {
            dst: MacAddr(data[0..6].try_into().expect("6 bytes")),
            src: MacAddr(data[6..12].try_into().expect("6 bytes")),
            ethertype: u16::from_be_bytes(data[12..14].try_into().expect("2 bytes")),
            payload: Bytes::copy_from_slice(&data[14..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = EthernetFrame::nvme_oe(
            MacAddr::REMOTE,
            MacAddr::DEVICE,
            Bytes::from_static(b"capsule"),
        );
        let parsed = EthernetFrame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(parsed.ethertype, ETHERTYPE_NVME_OE);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            EthernetFrame::from_bytes(&[0u8; 10]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn oversized_rejected() {
        let data = vec![0u8; 14 + MAX_PAYLOAD + 1];
        assert!(matches!(
            EthernetFrame::from_bytes(&data),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    #[should_panic(expected = "payload exceeds jumbo MTU")]
    fn construction_rejects_oversized() {
        EthernetFrame::nvme_oe(
            MacAddr::REMOTE,
            MacAddr::DEVICE,
            Bytes::from(vec![0u8; MAX_PAYLOAD + 1]),
        );
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::DEVICE.to_string(), "02:55:53:53:44:01");
    }

    #[test]
    fn wire_bytes_counts_header() {
        let f = EthernetFrame::nvme_oe(MacAddr::REMOTE, MacAddr::DEVICE, Bytes::new());
        assert_eq!(f.wire_bytes(), 14);
    }
}
