//! The controller-owned NIC: Tx/Rx rings and control registers (Figure 1).

use crate::frame::EthernetFrame;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// NIC failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NicError {
    /// Tx ring has no free descriptor.
    TxRingFull,
    /// Rx ring overflowed; the frame was dropped.
    RxRingFull,
    /// The corresponding direction is disabled in the control registers.
    Disabled,
}

impl std::fmt::Display for NicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NicError::TxRingFull => write!(f, "tx ring full"),
            NicError::RxRingFull => write!(f, "rx ring full"),
            NicError::Disabled => write!(f, "nic direction disabled"),
        }
    }
}

impl std::error::Error for NicError {}

/// Operation counters (the "control register" block's statistics page).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct NicStats {
    /// Frames accepted into the Tx ring.
    pub tx_frames: u64,
    /// Payload bytes accepted for transmit.
    pub tx_bytes: u64,
    /// Frames delivered into the Rx ring.
    pub rx_frames: u64,
    /// Payload bytes received.
    pub rx_bytes: u64,
    /// Frames dropped because the Rx ring was full.
    pub rx_drops: u64,
}

/// The SSD controller's network interface. In the prototype this block sits
/// inside the FPGA next to the flash controllers; the host has no MMIO path
/// to it — which is what makes the offload tamper-proof.
#[derive(Clone, Debug)]
pub struct Nic {
    mac: crate::frame::MacAddr,
    tx_ring: VecDeque<EthernetFrame>,
    rx_ring: VecDeque<EthernetFrame>,
    ring_capacity: usize,
    tx_enabled: bool,
    rx_enabled: bool,
    stats: NicStats,
}

impl Nic {
    /// Default ring depth (descriptors per direction).
    pub const DEFAULT_RING_DEPTH: usize = 256;

    /// Creates an enabled NIC with the default ring depth.
    pub fn new(mac: crate::frame::MacAddr) -> Self {
        Self::with_ring_depth(mac, Self::DEFAULT_RING_DEPTH)
    }

    /// Creates a NIC with an explicit ring depth.
    pub fn with_ring_depth(mac: crate::frame::MacAddr, depth: usize) -> Self {
        Nic {
            mac,
            tx_ring: VecDeque::with_capacity(depth),
            rx_ring: VecDeque::with_capacity(depth),
            ring_capacity: depth.max(1),
            tx_enabled: true,
            rx_enabled: true,
            stats: NicStats::default(),
        }
    }

    /// This NIC's MAC address.
    pub fn mac(&self) -> crate::frame::MacAddr {
        self.mac
    }

    /// Counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Enables/disables the transmit path (control register bit).
    pub fn set_tx_enabled(&mut self, enabled: bool) {
        self.tx_enabled = enabled;
    }

    /// Enables/disables the receive path (control register bit).
    pub fn set_rx_enabled(&mut self, enabled: bool) {
        self.rx_enabled = enabled;
    }

    /// Queues a frame for transmission (firmware side).
    ///
    /// # Errors
    ///
    /// [`NicError::Disabled`] if Tx is off, [`NicError::TxRingFull`] if no
    /// descriptor is free.
    pub fn enqueue_tx(&mut self, frame: EthernetFrame) -> Result<(), NicError> {
        if !self.tx_enabled {
            return Err(NicError::Disabled);
        }
        if self.tx_ring.len() >= self.ring_capacity {
            return Err(NicError::TxRingFull);
        }
        self.stats.tx_frames += 1;
        self.stats.tx_bytes += frame.payload.len() as u64;
        self.tx_ring.push_back(frame);
        Ok(())
    }

    /// Pops the next frame for the wire (MAC side).
    pub fn dequeue_tx(&mut self) -> Option<EthernetFrame> {
        self.tx_ring.pop_front()
    }

    /// Frames waiting in the Tx ring.
    pub fn tx_pending(&self) -> usize {
        self.tx_ring.len()
    }

    /// Delivers a frame arriving off the wire (MAC side). Frames not
    /// addressed to this NIC are ignored (no promiscuous mode).
    ///
    /// # Errors
    ///
    /// [`NicError::Disabled`] if Rx is off, [`NicError::RxRingFull`] on
    /// overflow (the frame is counted as dropped).
    pub fn deliver_rx(&mut self, frame: EthernetFrame) -> Result<(), NicError> {
        if !self.rx_enabled {
            return Err(NicError::Disabled);
        }
        if frame.dst != self.mac {
            return Ok(());
        }
        if self.rx_ring.len() >= self.ring_capacity {
            self.stats.rx_drops += 1;
            return Err(NicError::RxRingFull);
        }
        self.stats.rx_frames += 1;
        self.stats.rx_bytes += frame.payload.len() as u64;
        self.rx_ring.push_back(frame);
        Ok(())
    }

    /// Pops the next received frame (firmware side).
    pub fn dequeue_rx(&mut self) -> Option<EthernetFrame> {
        self.rx_ring.pop_front()
    }

    /// Frames waiting in the Rx ring.
    pub fn rx_pending(&self) -> usize {
        self.rx_ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MacAddr;
    use bytes::Bytes;

    fn frame_to(dst: MacAddr) -> EthernetFrame {
        EthernetFrame::nvme_oe(dst, MacAddr::DEVICE, Bytes::from_static(b"x"))
    }

    #[test]
    fn tx_fifo_order() {
        let mut nic = Nic::new(MacAddr::DEVICE);
        nic.enqueue_tx(frame_to(MacAddr::REMOTE)).unwrap();
        let mut f2 = frame_to(MacAddr::REMOTE);
        f2.payload = Bytes::from_static(b"second");
        nic.enqueue_tx(f2.clone()).unwrap();
        assert_eq!(nic.tx_pending(), 2);
        assert_eq!(nic.dequeue_tx().unwrap().payload, Bytes::from_static(b"x"));
        assert_eq!(nic.dequeue_tx().unwrap(), f2);
        assert_eq!(nic.dequeue_tx(), None);
    }

    #[test]
    fn tx_ring_overflow() {
        let mut nic = Nic::with_ring_depth(MacAddr::DEVICE, 1);
        nic.enqueue_tx(frame_to(MacAddr::REMOTE)).unwrap();
        assert_eq!(
            nic.enqueue_tx(frame_to(MacAddr::REMOTE)),
            Err(NicError::TxRingFull)
        );
    }

    #[test]
    fn rx_filters_by_mac() {
        let mut nic = Nic::new(MacAddr::REMOTE);
        nic.deliver_rx(frame_to(MacAddr::REMOTE)).unwrap();
        nic.deliver_rx(frame_to(MacAddr::DEVICE)).unwrap(); // not for us
        assert_eq!(nic.rx_pending(), 1);
        assert_eq!(nic.stats().rx_frames, 1);
    }

    #[test]
    fn rx_overflow_counts_drops() {
        let mut nic = Nic::with_ring_depth(MacAddr::REMOTE, 1);
        nic.deliver_rx(frame_to(MacAddr::REMOTE)).unwrap();
        assert_eq!(
            nic.deliver_rx(frame_to(MacAddr::REMOTE)),
            Err(NicError::RxRingFull)
        );
        assert_eq!(nic.stats().rx_drops, 1);
    }

    #[test]
    fn disabled_directions_refuse() {
        let mut nic = Nic::new(MacAddr::DEVICE);
        nic.set_tx_enabled(false);
        assert_eq!(
            nic.enqueue_tx(frame_to(MacAddr::REMOTE)),
            Err(NicError::Disabled)
        );
        nic.set_rx_enabled(false);
        assert_eq!(
            nic.deliver_rx(frame_to(MacAddr::DEVICE)),
            Err(NicError::Disabled)
        );
    }

    #[test]
    fn stats_count_bytes() {
        let mut nic = Nic::new(MacAddr::DEVICE);
        nic.enqueue_tx(frame_to(MacAddr::REMOTE)).unwrap();
        assert_eq!(nic.stats().tx_bytes, 1);
        assert_eq!(nic.stats().tx_frames, 1);
    }
}
