//! The NVMe-oE capsule protocol: fragmentation, sequencing, cumulative
//! acknowledgement and retransmission over the lossy link.
//!
//! # Examples
//!
//! A fabric transfer consumes simulated nanoseconds proportional to the
//! payload and the link, and a dead link surfaces as a timeout rather than
//! an infinite retry loop:
//!
//! ```
//! use bytes::Bytes;
//! use rssd_net::{LinkConfig, NvmeOeEndpoint};
//!
//! let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
//! let payload = Bytes::from(vec![7u8; 20_000]);
//! let (done_ns, delivered) = fabric.transfer_segment(1, payload.clone(), 0);
//! assert_eq!(delivered, payload);
//! // 1.25 GB/s line rate: 20 kB cannot arrive faster than 16 us.
//! assert!(done_ns >= 16_000);
//!
//! fabric.set_link_down(true);
//! let err = fabric
//!     .try_transfer_segment(2, payload, done_ns, 4)
//!     .unwrap_err();
//! assert_eq!(err.stall_rounds, 4);
//! ```

use crate::frame::{EthernetFrame, MacAddr, MAX_PAYLOAD};
use crate::link::{LinkConfig, SharedLink, SimLink};
use crate::nic::Nic;
use bytes::Bytes;
use rssd_obs::SinkHandle;
use serde::{Deserialize, Serialize};

/// Capsule header magic ("NVOE" + version 1).
const MAGIC: [u8; 4] = *b"NVO\x01";
/// Header: magic (4) + kind (1) + seq (8) + segment_seq (8) + len (4).
const HEADER: usize = 25;
/// Payload bytes carried per capsule.
pub const CAPSULE_PAYLOAD: usize = MAX_PAYLOAD - HEADER;

/// Capsule type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapsuleKind {
    /// A fragment of an offloaded log segment, device → remote.
    SegmentWrite,
    /// A request to read a stored segment back, device → remote.
    SegmentRead,
    /// A fragment of a segment served back, remote → device.
    ReadResponse,
    /// Cumulative acknowledgement.
    Ack,
}

impl CapsuleKind {
    fn id(self) -> u8 {
        match self {
            CapsuleKind::SegmentWrite => 1,
            CapsuleKind::SegmentRead => 2,
            CapsuleKind::ReadResponse => 3,
            CapsuleKind::Ack => 4,
        }
    }

    fn from_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(CapsuleKind::SegmentWrite),
            2 => Some(CapsuleKind::SegmentRead),
            3 => Some(CapsuleKind::ReadResponse),
            4 => Some(CapsuleKind::Ack),
            _ => None,
        }
    }
}

/// One protocol capsule. The payload is a [`Bytes`] view — on the send side
/// a zero-copy slice of the segment's shared wire image, on the receive side
/// a zero-copy slice of the delivered frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capsule {
    /// Capsule type.
    pub kind: CapsuleKind,
    /// Per-direction monotone capsule sequence number.
    pub seq: u64,
    /// The log segment this capsule belongs to.
    pub segment_seq: u64,
    /// Fragment payload.
    pub payload: Bytes,
}

/// Capsule parse/encode errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Missing or wrong magic/version.
    BadMagic,
    /// Shorter than the header or the declared length.
    Truncated,
    /// Unknown capsule kind id.
    UnknownKind(u8),
    /// Encode-side: the payload exceeds [`CAPSULE_PAYLOAD`] and cannot ride
    /// one Ethernet frame. (The header's length field is a `u32`; before
    /// this error existed an oversized payload had its length silently
    /// truncated instead of being rejected.)
    PayloadTooLarge(usize),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic => write!(f, "bad capsule magic"),
            ProtocolError::Truncated => write!(f, "truncated capsule"),
            ProtocolError::UnknownKind(k) => write!(f, "unknown capsule kind {k}"),
            ProtocolError::PayloadTooLarge(len) => {
                write!(
                    f,
                    "capsule payload of {len} bytes exceeds the {CAPSULE_PAYLOAD}-byte fragment limit"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Reliable transfer gave up: the fabric made no forward progress (no new
/// fragment delivered, no completing ack) for the caller's stall budget of
/// consecutive retransmission rounds.
///
/// This is how a [`SimLink`] blackout window becomes visible to the offload
/// engine: the transport times out, the segment stays pending on-device, and
/// the caller decides whether to queue, retry, or report the remote
/// unreachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferStalled {
    /// Consecutive no-progress rounds observed before giving up.
    pub stall_rounds: u32,
    /// Simulated time at which the sender gave up (RTO waits included).
    pub gave_up_at_ns: u64,
}

impl std::fmt::Display for TransferStalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transfer stalled for {} consecutive rounds (gave up at {} ns)",
            self.stall_rounds, self.gave_up_at_ns
        )
    }
}

impl std::error::Error for TransferStalled {}

impl Capsule {
    /// Serializes the capsule into one frame-payload buffer.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::PayloadTooLarge`] if the payload exceeds
    /// [`CAPSULE_PAYLOAD`] — an oversized length used to be silently
    /// truncated into the header's `u32` length field; now it is rejected
    /// before any bytes hit the wire.
    pub fn to_wire(&self) -> Result<Bytes, ProtocolError> {
        if self.payload.len() > CAPSULE_PAYLOAD {
            return Err(ProtocolError::PayloadTooLarge(self.payload.len()));
        }
        let mut out = Vec::with_capacity(HEADER + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.kind.id());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.segment_seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        Ok(Bytes::from(out))
    }

    /// Parses a capsule from a delivered frame payload. The capsule's
    /// payload is a zero-copy slice of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on malformed input.
    pub fn from_wire(data: &Bytes) -> Result<Self, ProtocolError> {
        if data.len() < HEADER {
            return Err(ProtocolError::Truncated);
        }
        if data[..4] != MAGIC {
            return Err(ProtocolError::BadMagic);
        }
        let kind = CapsuleKind::from_id(data[4]).ok_or(ProtocolError::UnknownKind(data[4]))?;
        let seq = u64::from_le_bytes(data[5..13].try_into().expect("8 bytes"));
        let segment_seq = u64::from_le_bytes(data[13..21].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(data[21..25].try_into().expect("4 bytes")) as usize;
        if data.len() < HEADER + len {
            return Err(ProtocolError::Truncated);
        }
        Ok(Capsule {
            kind,
            seq,
            segment_seq,
            payload: data.slice(HEADER..HEADER + len),
        })
    }
}

/// Transfer statistics for the offload-path experiment (E8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct TransferStats {
    /// Segments fully transferred and acknowledged.
    pub segments: u64,
    /// Data capsules sent (including retransmissions).
    pub capsules_sent: u64,
    /// Capsules retransmitted after loss.
    pub retransmissions: u64,
    /// Acks received.
    pub acks: u64,
    /// Payload bytes delivered (goodput).
    pub payload_bytes: u64,
    /// Timeout rounds that waited out an RTO (each wait doubles within a
    /// transfer, capped, and resets on progress or a new transfer).
    pub rto_timeouts: u64,
}

/// The device↔remote NVMe-oE fabric: both NICs, both link directions, and
/// the reliable-delivery protocol between them.
///
/// The transfer discipline is a batched go-back-N: all fragments of a
/// segment are pipelined back-to-back, the receiver cumulative-acks the
/// batch, and lost fragments are retransmitted after a retransmission
/// timeout until the segment is complete.
#[derive(Clone, Debug)]
pub struct NvmeOeEndpoint {
    device_nic: Nic,
    remote_nic: Nic,
    to_remote: SharedLink,
    to_device: SimLink,
    next_seq: u64,
    /// Initial retransmission timeout, used until the first RTT sample.
    rto_ns: u64,
    /// Smoothed round-trip time (RFC 6298). Zero until the first sample.
    srtt_ns: u64,
    /// Round-trip time variance (RFC 6298).
    rttvar_ns: u64,
    stats: TransferStats,
    /// Trace sink for `link_loss` / `retransmission` instants on the
    /// `wire/uplink` track. Disabled by default.
    sink: SinkHandle,
}

impl NvmeOeEndpoint {
    /// Default *initial* retransmission timeout, in force until the RTT
    /// estimator takes its first sample.
    pub const DEFAULT_RTO_NS: u64 = 2_000_000; // 2 ms
    /// Floor for the adaptive RTO once RTT samples exist — a fast fabric
    /// may recover far quicker than the conservative initial timeout.
    pub const MIN_RTO_NS: u64 = 100_000; // 100 us
    /// Ceiling for the adaptive RTO and for exponential backoff.
    pub const MAX_RTO_NS: u64 = 512_000_000; // 512 ms
    /// Simulated clock granularity `G` in `SRTT + max(G, 4·RTTVAR)`.
    const RTO_GRANULARITY_NS: u64 = 1_000; // 1 us
    /// Backoff doublings are capped at this shift (further stall rounds
    /// wait the same capped interval).
    const MAX_BACKOFF_SHIFT: u32 = 6;

    /// Builds a fabric over symmetric links with `config` (a private
    /// uplink; see [`NvmeOeEndpoint::with_uplink`] for a shared one).
    pub fn new(config: LinkConfig) -> Self {
        Self::with_uplink(SharedLink::new(config), config)
    }

    /// Builds a fabric whose device → remote direction is the caller's
    /// `uplink` — possibly shared with other endpoints, so N devices
    /// funneling into one wire queue behind each other's serialization
    /// time. The remote → device return path (acks, read responses) is a
    /// private [`SimLink`] with `return_config`.
    pub fn with_uplink(uplink: SharedLink, return_config: LinkConfig) -> Self {
        NvmeOeEndpoint {
            device_nic: Nic::new(MacAddr::DEVICE),
            remote_nic: Nic::new(MacAddr::REMOTE),
            to_remote: uplink,
            to_device: SimLink::new(return_config),
            next_seq: 0,
            rto_ns: Self::DEFAULT_RTO_NS,
            srtt_ns: 0,
            rttvar_ns: 0,
            stats: TransferStats::default(),
            sink: SinkHandle::disabled(),
        }
    }

    /// Installs a trace sink. Every frame the wire swallows (data or ack,
    /// loss pattern or partition) emits a `link_loss` instant, and every
    /// retransmitted capsule emits a `retransmission` instant, both on the
    /// `wire/uplink` track — so a trace checker can verify that
    /// retransmissions never outnumber observed losses.
    pub fn set_trace_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Overrides the initial retransmission timeout and resets the RTT
    /// estimator (the caller is asserting new link characteristics).
    pub fn set_rto_ns(&mut self, rto_ns: u64) {
        self.rto_ns = rto_ns.max(1);
        self.srtt_ns = 0;
        self.rttvar_ns = 0;
    }

    /// The retransmission timeout currently in force: the configured
    /// initial RTO until the first RTT sample, then the RFC 6298 estimate
    /// `SRTT + max(G, 4·RTTVAR)` clamped to
    /// [[`Self::MIN_RTO_NS`], [`Self::MAX_RTO_NS`]].
    pub fn current_rto_ns(&self) -> u64 {
        if self.srtt_ns == 0 {
            self.rto_ns
        } else {
            (self.srtt_ns + Self::RTO_GRANULARITY_NS.max(4 * self.rttvar_ns))
                .clamp(Self::MIN_RTO_NS, Self::MAX_RTO_NS)
        }
    }

    /// Smoothed round-trip time (zero until the first sample).
    pub fn srtt_ns(&self) -> u64 {
        self.srtt_ns
    }

    /// Round-trip time variance.
    pub fn rttvar_ns(&self) -> u64 {
        self.rttvar_ns
    }

    /// Feeds one RTT measurement into the RFC 6298 estimator.
    fn take_rtt_sample(&mut self, rtt_ns: u64) {
        let rtt = rtt_ns.max(1); // zero is the "no sample yet" sentinel
        if self.srtt_ns == 0 {
            self.srtt_ns = rtt;
            self.rttvar_ns = rtt / 2;
        } else {
            // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − RTT|, then
            // SRTT = 7/8·SRTT + 1/8·RTT (order per the RFC).
            self.rttvar_ns = (3 * self.rttvar_ns + self.srtt_ns.abs_diff(rtt)) / 4;
            self.srtt_ns = (7 * self.srtt_ns + rtt) / 8;
        }
    }

    /// Takes both link directions down (`true`) or restores them
    /// (`false`). While down, frames serialize into the void and
    /// [`NvmeOeEndpoint::try_transfer_segment`] exhausts its stall budget —
    /// the wire expression of a network partition.
    pub fn set_link_down(&mut self, down: bool) {
        self.to_remote.set_down(down);
        self.to_device.set_down(down);
    }

    /// Whether the device → remote direction is currently down.
    pub fn is_link_down(&self) -> bool {
        self.to_remote.is_down()
    }

    /// A handle to the device → remote uplink (cloning shares the wire).
    pub fn uplink(&self) -> SharedLink {
        self.to_remote.clone()
    }

    /// Protocol statistics.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Device-side NIC counters.
    pub fn device_nic_stats(&self) -> crate::nic::NicStats {
        self.device_nic.stats()
    }

    /// Remote-side NIC counters.
    pub fn remote_nic_stats(&self) -> crate::nic::NicStats {
        self.remote_nic.stats()
    }

    /// Reliably transfers `segment_seq`/`payload` device → remote starting
    /// at `now_ns`. Returns `(completion_ns, reassembled_payload)` — the
    /// caller (the remote log server) receives the payload exactly once,
    /// in order, whatever the link loss.
    ///
    /// Retries forever: on a link that is down indefinitely this spins.
    /// Callers that must survive a partition use
    /// [`NvmeOeEndpoint::try_transfer_segment`] with a stall budget.
    pub fn transfer_segment(
        &mut self,
        segment_seq: u64,
        payload: Bytes,
        now_ns: u64,
    ) -> (u64, Bytes) {
        self.try_transfer_segment(segment_seq, payload, now_ns, u32::MAX)
            .expect("unlimited stall budget never gives up")
    }

    /// [`NvmeOeEndpoint::transfer_segment`] with a bounded stall budget.
    ///
    /// Fragments carry zero-copy slices of the shared `payload`, each under
    /// a stable capsule sequence number; every fragment's frame is built
    /// exactly once and cached for the transfer's lifetime, so go-back-N
    /// retransmission resends the identical wire bytes by refcount bump —
    /// no per-round re-serialization.
    ///
    /// A retransmission round makes *progress* when it delivers at least
    /// one new fragment or the completing cumulative ack. After
    /// `max_stall_rounds` consecutive rounds without progress — each
    /// waiting out the adaptive RTO ([`Self::current_rto_ns`]), doubled
    /// per consecutive timeout up to [`Self::MAX_RTO_NS`] — the sender
    /// gives up with [`TransferStalled`]: the segment is **not** delivered
    /// and the caller still owns the payload.
    ///
    /// # Errors
    ///
    /// [`TransferStalled`] once the stall budget is exhausted.
    pub fn try_transfer_segment(
        &mut self,
        segment_seq: u64,
        payload: Bytes,
        now_ns: u64,
        max_stall_rounds: u32,
    ) -> Result<(u64, Bytes), TransferStalled> {
        let fragment_count = if payload.is_empty() {
            1
        } else {
            payload.len().div_ceil(CAPSULE_PAYLOAD)
        };
        // Build every fragment's frame once, under a stable capsule seq.
        let frames: Vec<EthernetFrame> = (0..fragment_count)
            .map(|i| {
                let start = i * CAPSULE_PAYLOAD;
                let end = (start + CAPSULE_PAYLOAD).min(payload.len());
                let capsule = Capsule {
                    kind: CapsuleKind::SegmentWrite,
                    seq: self.next_seq + i as u64,
                    segment_seq,
                    payload: payload.slice(start..end),
                };
                EthernetFrame::nvme_oe(
                    MacAddr::REMOTE,
                    MacAddr::DEVICE,
                    capsule.to_wire().expect("fragment fits one capsule"),
                )
            })
            .collect();
        self.next_seq += fragment_count as u64;
        let mut received: Vec<Option<Bytes>> = vec![None; fragment_count];
        let mut t = now_ns;
        let mut round = 0u32;
        let mut stall_rounds = 0u32;
        // Exponential backoff across this transfer's timeout rounds. Reset
        // per transfer and on progress — a healed link pays the adaptive
        // RTO, not a backoff inherited from an earlier blackout.
        let mut backoff_shift = 0u32;

        while received.iter().any(Option::is_none) {
            // One round: pipeline every missing fragment.
            let mut last_arrival = t;
            let mut progressed = false;
            for (i, cached) in frames.iter().enumerate() {
                if received[i].is_some() {
                    continue;
                }
                self.stats.capsules_sent += 1;
                if round > 0 {
                    self.stats.retransmissions += 1;
                    if self.sink.is_enabled() {
                        self.sink.instant(
                            "wire/uplink",
                            "retransmission",
                            t,
                            &[
                                ("segment_seq", segment_seq.to_string()),
                                ("fragment", i.to_string()),
                                ("round", round.to_string()),
                            ],
                        );
                    }
                }
                self.device_nic
                    .enqueue_tx(cached.clone())
                    .expect("tx ring sized for batch");
                let frame = self.device_nic.dequeue_tx().expect("just queued");
                if let Some(arrival) = self.to_remote.transmit(&frame, t) {
                    self.remote_nic.deliver_rx(frame).expect("rx ring sized");
                    let frame = self.remote_nic.dequeue_rx().expect("just delivered");
                    let capsule = Capsule::from_wire(&frame.payload).expect("well-formed capsule");
                    debug_assert_eq!(capsule.kind, CapsuleKind::SegmentWrite);
                    received[i] = Some(capsule.payload);
                    last_arrival = last_arrival.max(arrival);
                    progressed = true;
                } else if self.sink.is_enabled() {
                    self.sink.instant(
                        "wire/uplink",
                        "link_loss",
                        t,
                        &[
                            ("kind", "data".to_string()),
                            ("segment_seq", segment_seq.to_string()),
                            ("fragment", i.to_string()),
                        ],
                    );
                }
            }
            // Cumulative ack (or timeout if everything in the round died).
            let complete = received.iter().all(Option::is_some);
            let ack = Capsule {
                kind: CapsuleKind::Ack,
                seq: self.next_seq,
                segment_seq,
                payload: Bytes::new(),
            };
            let ack_frame = EthernetFrame::nvme_oe(
                MacAddr::DEVICE,
                MacAddr::REMOTE,
                ack.to_wire().expect("empty ack always encodes"),
            );
            let ack_arrival = self.to_device.transmit(&ack_frame, last_arrival);
            if ack_arrival.is_none() && self.sink.is_enabled() {
                self.sink.instant(
                    "wire/uplink",
                    "link_loss",
                    last_arrival,
                    &[
                        ("kind", "ack".to_string()),
                        ("segment_seq", segment_seq.to_string()),
                    ],
                );
            }
            match ack_arrival {
                Some(ack_arrival) if complete => {
                    self.stats.acks += 1;
                    // Karn's rule: only an unambiguous exchange — completed
                    // in the very first round, with no retransmission in
                    // flight — may update the RTT estimator.
                    if round == 0 {
                        self.take_rtt_sample(ack_arrival.saturating_sub(now_ns));
                    }
                    t = ack_arrival;
                }
                _ => {
                    // Lost fragments or lost ack: wait out the adaptive
                    // RTO, doubling (capped) each consecutive timeout.
                    let wait = (self.current_rto_ns() << backoff_shift).min(Self::MAX_RTO_NS);
                    t = last_arrival.max(t) + wait;
                    backoff_shift = (backoff_shift + 1).min(Self::MAX_BACKOFF_SHIFT);
                    self.stats.rto_timeouts += 1;
                }
            }
            round += 1;
            if progressed {
                stall_rounds = 0;
                backoff_shift = 0;
            } else {
                stall_rounds += 1;
                if stall_rounds >= max_stall_rounds {
                    return Err(TransferStalled {
                        stall_rounds,
                        gave_up_at_ns: t,
                    });
                }
            }
        }

        self.stats.segments += 1;
        self.stats.payload_bytes += payload.len() as u64;
        // Reassembly: a single-fragment segment hands back the delivered
        // frame's payload slice untouched; multi-fragment segments pay the
        // receive path's one copy, gluing the slices contiguous.
        let data = if received.len() == 1 {
            received.pop().flatten().expect("complete")
        } else {
            let mut acc = Vec::with_capacity(payload.len());
            for frag in received {
                acc.extend_from_slice(&frag.expect("complete"));
            }
            Bytes::from(acc)
        };
        Ok((t, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capsule_round_trip() {
        let c = Capsule {
            kind: CapsuleKind::SegmentWrite,
            seq: 42,
            segment_seq: 7,
            payload: Bytes::from(vec![1, 2, 3]),
        };
        assert_eq!(Capsule::from_wire(&c.to_wire().unwrap()).unwrap(), c);
    }

    #[test]
    fn capsule_payload_is_sliced_not_copied() {
        let c = Capsule {
            kind: CapsuleKind::SegmentWrite,
            seq: 1,
            segment_seq: 2,
            payload: Bytes::from(vec![9u8; 256]),
        };
        let wire = c.to_wire().unwrap();
        let parsed = Capsule::from_wire(&wire).unwrap();
        assert_eq!(
            parsed.payload.as_ref().as_ptr(),
            wire[HEADER..].as_ptr(),
            "parsed payload must view the wire buffer in place"
        );
    }

    #[test]
    fn oversized_payload_rejected_not_truncated() {
        // Regression: the length field is a u32 and used to be written with
        // a silent `as u32` cast; any payload over the fragment limit must
        // now fail loudly at encode time.
        let too_big = Capsule {
            kind: CapsuleKind::SegmentWrite,
            seq: 0,
            segment_seq: 0,
            payload: Bytes::from(vec![0u8; CAPSULE_PAYLOAD + 1]),
        };
        assert_eq!(
            too_big.to_wire(),
            Err(ProtocolError::PayloadTooLarge(CAPSULE_PAYLOAD + 1))
        );
        let max = Capsule {
            kind: CapsuleKind::SegmentWrite,
            seq: 0,
            segment_seq: 0,
            payload: Bytes::from(vec![0u8; CAPSULE_PAYLOAD]),
        };
        let wire = max.to_wire().unwrap();
        assert_eq!(Capsule::from_wire(&wire).unwrap(), max);
    }

    #[test]
    fn capsule_rejects_bad_magic() {
        let mut bytes = Capsule {
            kind: CapsuleKind::Ack,
            seq: 0,
            segment_seq: 0,
            payload: Bytes::new(),
        }
        .to_wire()
        .unwrap()
        .to_vec();
        bytes[0] = b'X';
        assert_eq!(
            Capsule::from_wire(&Bytes::from(bytes)),
            Err(ProtocolError::BadMagic)
        );
    }

    #[test]
    fn capsule_rejects_truncation_and_unknown_kind() {
        assert_eq!(
            Capsule::from_wire(&Bytes::from(vec![0u8; 4])),
            Err(ProtocolError::Truncated)
        );
        let mut bytes = Capsule {
            kind: CapsuleKind::Ack,
            seq: 0,
            segment_seq: 0,
            payload: Bytes::new(),
        }
        .to_wire()
        .unwrap()
        .to_vec();
        bytes[4] = 99;
        assert_eq!(
            Capsule::from_wire(&Bytes::from(bytes)),
            Err(ProtocolError::UnknownKind(99))
        );
        let mut lying = Capsule {
            kind: CapsuleKind::Ack,
            seq: 0,
            segment_seq: 0,
            payload: Bytes::from(vec![1, 2, 3]),
        }
        .to_wire()
        .unwrap()
        .to_vec();
        lying.truncate(lying.len() - 1);
        assert_eq!(
            Capsule::from_wire(&Bytes::from(lying)),
            Err(ProtocolError::Truncated)
        );
    }

    #[test]
    fn lossless_transfer_delivers_payload() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        let payload = Bytes::from((0..50_000u32).map(|i| i as u8).collect::<Vec<u8>>());
        let (done, delivered) = fabric.transfer_segment(1, payload.clone(), 0);
        assert_eq!(delivered, payload);
        assert!(done > 0);
        assert_eq!(fabric.stats().segments, 1);
        assert_eq!(fabric.stats().retransmissions, 0);
        assert_eq!(fabric.stats().payload_bytes, 50_000);
    }

    #[test]
    fn empty_segment_transfers() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        let (_, delivered) = fabric.transfer_segment(1, Bytes::new(), 0);
        assert!(delivered.is_empty());
        assert_eq!(fabric.stats().segments, 1);
    }

    #[test]
    fn lossy_link_retransmits_until_complete() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::lossy(3));
        let payload = Bytes::from((0..100_000u32).map(|i| (i * 7) as u8).collect::<Vec<u8>>());
        let (done, delivered) = fabric.transfer_segment(1, payload.clone(), 0);
        assert_eq!(delivered, payload, "payload must survive 33% loss");
        assert!(fabric.stats().retransmissions > 0);
        assert!(done > 0);
    }

    #[test]
    fn wan_is_slower_than_datacenter() {
        let payload = Bytes::from(vec![0u8; 200_000]);
        let mut dc = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        let mut wan = NvmeOeEndpoint::new(LinkConfig::wan_cloud());
        let (t_dc, _) = dc.transfer_segment(1, payload.clone(), 0);
        let (t_wan, _) = wan.transfer_segment(1, payload, 0);
        assert!(t_wan > t_dc * 5, "wan {t_wan} vs dc {t_dc}");
    }

    #[test]
    fn throughput_close_to_line_rate_on_large_segments() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        let payload = Bytes::from(vec![0u8; 10_000_000]);
        let len = payload.len();
        let (done, _) = fabric.transfer_segment(1, payload, 0);
        let gbps = len as f64 / done as f64; // bytes per ns = GB/s
        assert!(gbps > 1.0, "goodput {gbps} GB/s on a 1.25 GB/s link");
    }

    #[test]
    fn down_link_times_out_instead_of_hanging() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        fabric.set_link_down(true);
        assert!(fabric.is_link_down());
        let err = fabric
            .try_transfer_segment(1, Bytes::from(vec![1, 2, 3]), 0, 3)
            .unwrap_err();
        assert_eq!(err.stall_rounds, 3);
        // Each stalled round waits out one RTO on the simulated clock.
        assert!(err.gave_up_at_ns >= 3 * NvmeOeEndpoint::DEFAULT_RTO_NS);
        assert_eq!(fabric.stats().segments, 0);
    }

    #[test]
    fn restored_link_delivers_after_blackout() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        fabric.set_link_down(true);
        let gave_up = fabric
            .try_transfer_segment(1, Bytes::from(vec![9u8; 100]), 0, 2)
            .unwrap_err()
            .gave_up_at_ns;
        fabric.set_link_down(false);
        let (done, delivered) = fabric
            .try_transfer_segment(1, Bytes::from(vec![9u8; 100]), gave_up, 2)
            .unwrap();
        assert_eq!(delivered, vec![9; 100]);
        assert!(done > gave_up);
        assert_eq!(fabric.stats().segments, 1);
    }

    #[test]
    fn shared_uplink_serializes_concurrent_offloads() {
        let uplink = SharedLink::new(LinkConfig::datacenter_10g());
        let mut a = NvmeOeEndpoint::with_uplink(uplink.clone(), LinkConfig::datacenter_10g());
        let mut b = NvmeOeEndpoint::with_uplink(uplink.clone(), LinkConfig::datacenter_10g());
        let payload = Bytes::from(vec![0u8; 100_000]);
        let mut solo = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        let (t_solo, _) = solo.transfer_segment(1, payload.clone(), 0);
        let (t_a, _) = a.transfer_segment(1, payload.clone(), 0);
        let (t_b, _) = b.transfer_segment(1, payload, 0);
        assert_eq!(t_a, t_solo, "first sender owns the idle wire");
        // The second sender queues behind the first for at least the pure
        // serialization time of the payload (100 kB at 1.25 GB/s = 80 us).
        assert!(
            t_b >= t_a + 80_000,
            "second sender queues behind the first: {t_b} vs {t_a}"
        );
        assert_eq!(
            uplink.frames_offered(),
            a.stats().capsules_sent + b.stats().capsules_sent
        );
    }

    #[test]
    fn adaptive_rto_learns_from_clean_exchanges() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        assert_eq!(fabric.current_rto_ns(), NvmeOeEndpoint::DEFAULT_RTO_NS);
        assert_eq!(fabric.srtt_ns(), 0);
        let mut t = 0;
        for seq in 0..4 {
            let (done, _) = fabric.transfer_segment(seq, Bytes::from(vec![7u8; 4_000]), t);
            t = done;
        }
        assert!(fabric.srtt_ns() > 0, "clean exchanges must be sampled");
        let rto = fabric.current_rto_ns();
        assert!(
            rto < NvmeOeEndpoint::DEFAULT_RTO_NS,
            "a microsecond-RTT fabric must shrink the 2 ms initial RTO, got {rto}"
        );
        assert!(rto >= NvmeOeEndpoint::MIN_RTO_NS);
    }

    #[test]
    fn karns_rule_skips_ambiguous_samples() {
        // 33% loss forces retransmission rounds: every completing ack is
        // ambiguous (which copy does it acknowledge?), so the estimator
        // must not learn from this transfer at all.
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::lossy(3));
        let payload = Bytes::from(vec![5u8; 100_000]);
        let (_, delivered) = fabric.transfer_segment(1, payload.clone(), 0);
        assert_eq!(delivered, payload);
        assert!(fabric.stats().retransmissions > 0);
        assert_eq!(
            fabric.srtt_ns(),
            0,
            "retransmitted transfers must not feed the RTT estimator"
        );
        assert_eq!(fabric.current_rto_ns(), NvmeOeEndpoint::DEFAULT_RTO_NS);
    }

    #[test]
    fn timeout_backoff_doubles_within_a_transfer_and_resets_between() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        fabric.set_link_down(true);
        // Three no-progress rounds at base RTO r wait r + 2r + 4r = 7r.
        let r0 = fabric.current_rto_ns();
        let err = fabric
            .try_transfer_segment(1, Bytes::from(vec![1u8; 64]), 0, 3)
            .unwrap_err();
        assert_eq!(err.gave_up_at_ns, 7 * r0, "capped exponential backoff");
        assert_eq!(fabric.stats().rto_timeouts, 3);

        // Heal, let the estimator learn the real (fast) RTT...
        fabric.set_link_down(false);
        let (t, _) = fabric
            .try_transfer_segment(1, Bytes::from(vec![1u8; 64]), err.gave_up_at_ns, 2)
            .unwrap();
        assert!(fabric.srtt_ns() > 0);

        // ...then a fresh blackout: the backoff restarts from the *current*
        // adaptive RTO — nothing leaks from the earlier stall.
        fabric.set_link_down(true);
        let r1 = fabric.current_rto_ns();
        assert!(r1 < r0, "adaptive RTO shrank after clean samples");
        let err2 = fabric
            .try_transfer_segment(2, Bytes::from(vec![2u8; 64]), t, 3)
            .unwrap_err();
        assert_eq!(err2.gave_up_at_ns - t, 7 * r1, "per-transfer backoff reset");
    }

    #[test]
    fn backoff_wait_is_capped() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        fabric.set_link_down(true);
        // Enough stall rounds to exceed MAX_BACKOFF_SHIFT: the waits grow
        // 1,2,4,…,64× and then stay flat; total time stays bounded by
        // rounds × MAX_RTO_NS rather than doubling forever.
        let err = fabric
            .try_transfer_segment(1, Bytes::from(vec![3u8; 64]), 0, 20)
            .unwrap_err();
        assert_eq!(err.stall_rounds, 20);
        assert!(err.gave_up_at_ns <= 20 * NvmeOeEndpoint::MAX_RTO_NS);
    }

    #[test]
    fn sequence_numbers_advance_across_segments() {
        let mut fabric = NvmeOeEndpoint::new(LinkConfig::datacenter_10g());
        fabric.transfer_segment(1, Bytes::from(vec![1, 2, 3]), 0);
        let sent_after_first = fabric.stats().capsules_sent;
        fabric.transfer_segment(2, Bytes::from(vec![4, 5, 6]), 0);
        assert!(fabric.stats().capsules_sent > sent_after_first);
        assert_eq!(fabric.stats().segments, 2);
    }
}
