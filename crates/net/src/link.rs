//! Simulated Ethernet link: bandwidth, propagation delay, deterministic
//! loss injection, and operator-controlled blackout windows.
//!
//! # Examples
//!
//! A frame's arrival time is the sender's serialization time (it queues
//! behind earlier frames) plus the propagation delay — both in simulated
//! nanoseconds on the shared clock:
//!
//! ```
//! use bytes::Bytes;
//! use rssd_net::{EthernetFrame, LinkConfig, MacAddr, SimLink};
//!
//! let mut link = SimLink::new(LinkConfig {
//!     bandwidth_bytes_per_sec: 1_000_000_000, // 1 ns per byte
//!     propagation_delay_ns: 1_000,
//!     loss_period: 0,
//! });
//! let frame = EthernetFrame::nvme_oe(
//!     MacAddr::REMOTE,
//!     MacAddr::DEVICE,
//!     Bytes::from(vec![0u8; 986]), // 1000 bytes on the wire with the header
//! );
//! assert_eq!(link.transmit(&frame, 0), Some(2_000)); // 1000 ns + 1000 ns
//!
//! // A blackout window: frames vanish until the link comes back.
//! link.set_down(true);
//! assert_eq!(link.transmit(&frame, 5_000), None);
//! link.set_down(false);
//! assert!(link.transmit(&frame, 5_000).is_some());
//! ```

use crate::frame::EthernetFrame;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Link parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Serialization bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// One-way propagation delay in nanoseconds.
    pub propagation_delay_ns: u64,
    /// Drop every `loss_period`-th frame (`0` = lossless). Deterministic so
    /// experiments reproduce exactly.
    pub loss_period: u64,
}

impl LinkConfig {
    /// 10 GbE to a machine-room server: 1.25 GB/s, 50 µs one-way.
    pub fn datacenter_10g() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: 1_250_000_000,
            propagation_delay_ns: 50_000,
            loss_period: 0,
        }
    }

    /// A WAN path to cloud storage: 125 MB/s, 20 ms one-way.
    pub fn wan_cloud() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: 125_000_000,
            propagation_delay_ns: 20_000_000,
            loss_period: 0,
        }
    }

    /// Same as `datacenter_10g` but dropping every `period`-th frame.
    pub fn lossy(period: u64) -> Self {
        LinkConfig {
            loss_period: period,
            ..Self::datacenter_10g()
        }
    }

    /// An ideal link: infinite bandwidth, zero propagation, zero loss.
    /// Frames arrive the instant they are offered — the wire consumes no
    /// simulated time at all. This is the differential baseline the
    /// wire-equivalence suite compares against: a device offloading through
    /// an ideal link must be byte-identical to one calling its remote
    /// target directly.
    pub fn ideal() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: u64::MAX,
            propagation_delay_ns: 0,
            loss_period: 0,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::datacenter_10g()
    }
}

/// A unidirectional simulated link. Frames are serialized at the configured
/// bandwidth (the sender side is busy until the last bit leaves) and arrive
/// after the propagation delay — unless the deterministic loss pattern eats
/// them.
#[derive(Clone, Debug)]
pub struct SimLink {
    config: LinkConfig,
    busy_until_ns: u64,
    frames_offered: u64,
    frames_dropped: u64,
    frames_blackholed: u64,
    bytes_carried: u64,
    down: bool,
}

impl SimLink {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        SimLink {
            config,
            busy_until_ns: 0,
            frames_offered: 0,
            frames_dropped: 0,
            frames_blackholed: 0,
            bytes_carried: 0,
            down: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Frames offered to the link so far.
    pub fn frames_offered(&self) -> u64 {
        self.frames_offered
    }

    /// Frames dropped by loss injection.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Frames swallowed by blackout windows (a cut cable, a dead switch).
    pub fn frames_blackholed(&self) -> u64 {
        self.frames_blackholed
    }

    /// `true` while a blackout window is open.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Opens (`true`) or closes (`false`) a blackout window. While down,
    /// every offered frame vanishes — the sender still serializes into the
    /// dead medium (bandwidth is consumed), but nothing arrives. This is
    /// how partition faults are expressed on the wire: the span between
    /// `set_down(true)` and `set_down(false)` *is* the fault window, and
    /// everything downstream (retransmission, timeout, backpressure) is
    /// emergent protocol behavior rather than an injected result.
    pub fn set_down(&mut self, down: bool) {
        self.down = down;
    }

    /// Payload + header bytes successfully carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Time the sender finishes serializing its latest frame.
    pub fn busy_until_ns(&self) -> u64 {
        self.busy_until_ns
    }

    /// Offers `frame` to the wire at time `now_ns`. Returns the arrival time
    /// at the far end, or `None` if the loss pattern dropped this frame
    /// (sender bandwidth is consumed either way, as on a real wire).
    pub fn transmit(&mut self, frame: &EthernetFrame, now_ns: u64) -> Option<u64> {
        self.frames_offered += 1;
        let start = self.busy_until_ns.max(now_ns);
        let serialize_ns = serialize_ns(frame.wire_bytes(), self.config.bandwidth_bytes_per_sec);
        self.busy_until_ns = start + serialize_ns;

        if self.down {
            self.frames_blackholed += 1;
            return None;
        }
        let dropped =
            self.config.loss_period != 0 && self.frames_offered % self.config.loss_period == 0;
        if dropped {
            self.frames_dropped += 1;
            return None;
        }
        self.bytes_carried += frame.wire_bytes() as u64;
        Some(self.busy_until_ns + self.config.propagation_delay_ns)
    }
}

/// Serialization time of `wire_bytes` at `bandwidth` bytes/s. Saturating so
/// [`LinkConfig::ideal`]'s `u64::MAX` bandwidth yields exactly zero.
fn serialize_ns(wire_bytes: usize, bandwidth: u64) -> u64 {
    if bandwidth == u64::MAX {
        return 0;
    }
    wire_bytes as u64 * 1_000_000_000 / bandwidth.max(1)
}

/// A [`SimLink`] shared by several endpoints: N array members funneling
/// into one uplink to a common remote. Cloning shares the underlying link,
/// so every sender queues behind every other sender's frames — contention
/// for the shared medium is what the scenario matrix's shared-uplink
/// topology measures.
#[derive(Clone, Debug)]
pub struct SharedLink(Arc<Mutex<SimLink>>);

impl SharedLink {
    /// Creates an idle shared link.
    pub fn new(config: LinkConfig) -> Self {
        SharedLink(Arc::new(Mutex::new(SimLink::new(config))))
    }

    /// Offers a frame to the shared wire; see [`SimLink::transmit`].
    pub fn transmit(&self, frame: &EthernetFrame, now_ns: u64) -> Option<u64> {
        self.lock().transmit(frame, now_ns)
    }

    /// The configuration.
    pub fn config(&self) -> LinkConfig {
        self.lock().config()
    }

    /// Opens/closes a blackout window on the shared wire (affects every
    /// endpoint funneling through it); see [`SimLink::set_down`].
    pub fn set_down(&self, down: bool) {
        self.lock().set_down(down);
    }

    /// `true` while a blackout window is open.
    pub fn is_down(&self) -> bool {
        self.lock().is_down()
    }

    /// Frames offered by all senders combined.
    pub fn frames_offered(&self) -> u64 {
        self.lock().frames_offered()
    }

    /// Frames dropped by loss injection.
    pub fn frames_dropped(&self) -> u64 {
        self.lock().frames_dropped()
    }

    /// Frames swallowed by blackout windows.
    pub fn frames_blackholed(&self) -> u64 {
        self.lock().frames_blackholed()
    }

    /// Header + payload bytes successfully carried.
    pub fn bytes_carried(&self) -> u64 {
        self.lock().bytes_carried()
    }

    /// Time the shared sender side frees up.
    pub fn busy_until_ns(&self) -> u64 {
        self.lock().busy_until_ns()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimLink> {
        self.0.lock().expect("link lock never poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MacAddr;
    use bytes::Bytes;

    fn frame(len: usize) -> EthernetFrame {
        EthernetFrame::nvme_oe(MacAddr::REMOTE, MacAddr::DEVICE, Bytes::from(vec![0; len]))
    }

    #[test]
    fn arrival_includes_serialization_and_propagation() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000, // 1 ns/byte
            propagation_delay_ns: 1_000,
            loss_period: 0,
        });
        let arrival = link.transmit(&frame(986), 0).unwrap();
        assert_eq!(arrival, 1_000 + 1_000); // 1000 wire bytes + 1000 ns prop
    }

    #[test]
    fn back_to_back_frames_serialize() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            propagation_delay_ns: 0,
            loss_period: 0,
        });
        let a = link.transmit(&frame(86), 0).unwrap(); // 100 wire bytes
        let b = link.transmit(&frame(86), 0).unwrap();
        assert_eq!(a, 100);
        assert_eq!(b, 200, "second frame waits for the first");
    }

    #[test]
    fn loss_pattern_is_deterministic() {
        let mut link = SimLink::new(LinkConfig::lossy(3));
        let outcomes: Vec<bool> = (0..9)
            .map(|_| link.transmit(&frame(10), 0).is_some())
            .collect();
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(link.frames_dropped(), 3);
    }

    #[test]
    fn dropped_frames_still_consume_bandwidth() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            propagation_delay_ns: 0,
            loss_period: 1, // drop everything
        });
        assert!(link.transmit(&frame(86), 0).is_none());
        assert_eq!(link.busy_until_ns(), 100);
        assert_eq!(link.bytes_carried(), 0);
    }

    #[test]
    fn ideal_link_consumes_no_time() {
        let mut link = SimLink::new(LinkConfig::ideal());
        assert_eq!(link.transmit(&frame(8986), 7_000), Some(7_000));
        assert_eq!(link.busy_until_ns(), 7_000);
    }

    #[test]
    fn blackout_swallows_frames_but_still_serializes() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            propagation_delay_ns: 0,
            loss_period: 0,
        });
        link.set_down(true);
        assert!(link.is_down());
        assert_eq!(link.transmit(&frame(86), 0), None);
        assert_eq!(link.frames_blackholed(), 1);
        assert_eq!(link.frames_dropped(), 0, "blackouts are not loss");
        assert_eq!(link.busy_until_ns(), 100, "sender serialized into the void");
        link.set_down(false);
        assert_eq!(link.transmit(&frame(86), 0), Some(200));
    }

    #[test]
    fn shared_link_serializes_across_senders() {
        let shared = SharedLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            propagation_delay_ns: 0,
            loss_period: 0,
        });
        let a = shared.clone();
        let b = shared.clone();
        assert_eq!(a.transmit(&frame(86), 0), Some(100));
        // The second sender queues behind the first on the same wire.
        assert_eq!(b.transmit(&frame(86), 0), Some(200));
        assert_eq!(shared.frames_offered(), 2);
        assert_eq!(shared.bytes_carried(), 200);
    }

    #[test]
    fn shared_link_blackout_hits_every_sender() {
        let shared = SharedLink::new(LinkConfig::datacenter_10g());
        let a = shared.clone();
        shared.set_down(true);
        assert_eq!(a.transmit(&frame(86), 0), None);
        assert_eq!(shared.frames_blackholed(), 1);
    }

    #[test]
    fn transmit_respects_now() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            propagation_delay_ns: 0,
            loss_period: 0,
        });
        let arrival = link.transmit(&frame(86), 5_000).unwrap();
        assert_eq!(arrival, 5_100);
    }
}
