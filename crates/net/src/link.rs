//! Simulated Ethernet link: bandwidth, propagation delay, deterministic
//! loss injection.

use crate::frame::EthernetFrame;
use serde::{Deserialize, Serialize};

/// Link parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Serialization bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// One-way propagation delay in nanoseconds.
    pub propagation_delay_ns: u64,
    /// Drop every `loss_period`-th frame (`0` = lossless). Deterministic so
    /// experiments reproduce exactly.
    pub loss_period: u64,
}

impl LinkConfig {
    /// 10 GbE to a machine-room server: 1.25 GB/s, 50 µs one-way.
    pub fn datacenter_10g() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: 1_250_000_000,
            propagation_delay_ns: 50_000,
            loss_period: 0,
        }
    }

    /// A WAN path to cloud storage: 125 MB/s, 20 ms one-way.
    pub fn wan_cloud() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: 125_000_000,
            propagation_delay_ns: 20_000_000,
            loss_period: 0,
        }
    }

    /// Same as `datacenter_10g` but dropping every `period`-th frame.
    pub fn lossy(period: u64) -> Self {
        LinkConfig {
            loss_period: period,
            ..Self::datacenter_10g()
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::datacenter_10g()
    }
}

/// A unidirectional simulated link. Frames are serialized at the configured
/// bandwidth (the sender side is busy until the last bit leaves) and arrive
/// after the propagation delay — unless the deterministic loss pattern eats
/// them.
#[derive(Clone, Debug)]
pub struct SimLink {
    config: LinkConfig,
    busy_until_ns: u64,
    frames_offered: u64,
    frames_dropped: u64,
    bytes_carried: u64,
}

impl SimLink {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        SimLink {
            config,
            busy_until_ns: 0,
            frames_offered: 0,
            frames_dropped: 0,
            bytes_carried: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Frames offered to the link so far.
    pub fn frames_offered(&self) -> u64 {
        self.frames_offered
    }

    /// Frames dropped by loss injection.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Payload + header bytes successfully carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Time the sender finishes serializing its latest frame.
    pub fn busy_until_ns(&self) -> u64 {
        self.busy_until_ns
    }

    /// Offers `frame` to the wire at time `now_ns`. Returns the arrival time
    /// at the far end, or `None` if the loss pattern dropped this frame
    /// (sender bandwidth is consumed either way, as on a real wire).
    pub fn transmit(&mut self, frame: &EthernetFrame, now_ns: u64) -> Option<u64> {
        self.frames_offered += 1;
        let start = self.busy_until_ns.max(now_ns);
        let serialize_ns =
            frame.wire_bytes() as u64 * 1_000_000_000 / self.config.bandwidth_bytes_per_sec.max(1);
        self.busy_until_ns = start + serialize_ns;

        let dropped =
            self.config.loss_period != 0 && self.frames_offered % self.config.loss_period == 0;
        if dropped {
            self.frames_dropped += 1;
            return None;
        }
        self.bytes_carried += frame.wire_bytes() as u64;
        Some(self.busy_until_ns + self.config.propagation_delay_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MacAddr;
    use bytes::Bytes;

    fn frame(len: usize) -> EthernetFrame {
        EthernetFrame::nvme_oe(MacAddr::REMOTE, MacAddr::DEVICE, Bytes::from(vec![0; len]))
    }

    #[test]
    fn arrival_includes_serialization_and_propagation() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000, // 1 ns/byte
            propagation_delay_ns: 1_000,
            loss_period: 0,
        });
        let arrival = link.transmit(&frame(986), 0).unwrap();
        assert_eq!(arrival, 1_000 + 1_000); // 1000 wire bytes + 1000 ns prop
    }

    #[test]
    fn back_to_back_frames_serialize() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            propagation_delay_ns: 0,
            loss_period: 0,
        });
        let a = link.transmit(&frame(86), 0).unwrap(); // 100 wire bytes
        let b = link.transmit(&frame(86), 0).unwrap();
        assert_eq!(a, 100);
        assert_eq!(b, 200, "second frame waits for the first");
    }

    #[test]
    fn loss_pattern_is_deterministic() {
        let mut link = SimLink::new(LinkConfig::lossy(3));
        let outcomes: Vec<bool> = (0..9)
            .map(|_| link.transmit(&frame(10), 0).is_some())
            .collect();
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(link.frames_dropped(), 3);
    }

    #[test]
    fn dropped_frames_still_consume_bandwidth() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            propagation_delay_ns: 0,
            loss_period: 1, // drop everything
        });
        assert!(link.transmit(&frame(86), 0).is_none());
        assert_eq!(link.busy_until_ns(), 100);
        assert_eq!(link.bytes_carried(), 0);
    }

    #[test]
    fn transmit_respects_now() {
        let mut link = SimLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            propagation_delay_ns: 0,
            loss_period: 0,
        });
        let arrival = link.transmit(&frame(86), 5_000).unwrap();
        assert_eq!(arrival, 5_100);
    }
}
