//! Crash-consistency property tests.
//!
//! The durability contract under arbitrary power cuts (DESIGN.md §6):
//!
//! 1. **Prefix consistency** — after `crash()` + `recover()`, device
//!    contents equal exactly the state produced by the acknowledged
//!    command prefix: every acked write/trim is durable, the cut command
//!    and everything after it never happened.
//! 2. **No chain fork** — `verified_history()` never errors across a
//!    crash: the chain resumes at the durable head, the lost volatile tail
//!    is truncated, and post-restart appends verify end to end.
//!
//! Both properties are checked for a bare device and a 4-shard array,
//! under random workloads and random cut points.

use proptest::prelude::*;
use rssd_array::RssdArray;
use rssd_core::RssdDevice;
use rssd_faults::{
    scenario_member, FaultInjector, FaultSchedule, FaultTarget, FaultyRemote, PermissiveTarget,
};
use rssd_flash::SimClock;
use rssd_ssd::{BlockDevice, DeviceError};
use std::collections::HashMap;

type Remote = FaultyRemote<PermissiveTarget>;

fn page(b: u8, size: usize) -> Vec<u8> {
    vec![b; size]
}

/// Applies `ops` until the cut lands, tracking the acknowledged state,
/// then restores power and checks both contract clauses.
fn check_crash_consistency<D: FaultTarget>(
    mut injector: FaultInjector<D>,
    ops: &[(u8, u64, u8)],
    span: u64,
) {
    let page_size = injector.page_size();
    let mut acked: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut cut_seen = false;
    for &(kind, lpa_raw, fill) in ops {
        let lpa = lpa_raw % span;
        let result = match kind % 3 {
            0 | 1 => injector
                .write_page(lpa, page(fill, page_size))
                .map(|()| acked.insert(lpa, page(fill, page_size)))
                .map(|_| ()),
            _ => injector
                .trim_page(lpa)
                .map(|()| acked.insert(lpa, page(0, page_size)))
                .map(|_| ()),
        };
        match result {
            Ok(()) => {}
            Err(DeviceError::PowerLoss) => {
                cut_seen = true;
                break;
            }
            Err(e) => panic!("unexpected device error: {e}"),
        }
    }
    if cut_seen {
        let _ = injector.restore_power().expect("recovery must succeed");
    }
    // The checks below drive I/O through the injector too; a cut that had
    // not yet come due must not fire mid-verification.
    injector.arm(&FaultSchedule::none());
    // Clause 1: contents equal the acknowledged prefix exactly.
    for (lpa, expected) in &acked {
        let got = injector.read_page(*lpa).expect("device is back up");
        assert_eq!(&got, expected, "lpa {lpa} diverged from acked state");
    }
    // Clause 2: the chain verifies — no fork, no silent truncation — and
    // keeps verifying after post-restart traffic.
    let audit = injector.history_audit();
    assert!(audit.verified, "history after crash: {:?}", audit.failure);
    injector
        .write_page(0, page(0xA5, page_size))
        .expect("post-restart write");
    let audit = injector.history_audit();
    assert!(
        audit.verified,
        "history after post-restart append: {:?}",
        audit.failure
    );
}

proptest! {
    #[test]
    fn bare_device_state_is_prefix_consistent_after_power_cut(
        ops in proptest::collection::vec((0u8..3, 0u64..64, 0u8..255), 1..120),
        cut in 0u64..140,
    ) {
        let device: RssdDevice<Remote> = scenario_member(1);
        let span = device.logical_pages();
        let injector = FaultInjector::new(device, &FaultSchedule::power_cut(cut));
        check_crash_consistency(injector, &ops, span);
    }

    #[test]
    fn four_shard_array_state_is_prefix_consistent_after_power_cut(
        ops in proptest::collection::vec((0u8..3, 0u64..256, 0u8..255), 1..100),
        cut in 0u64..120,
    ) {
        let members: Vec<RssdDevice<Remote>> = (0..4).map(scenario_member).collect();
        let array = RssdArray::new(members, 4, SimClock::new());
        let span = array.logical_pages();
        let injector = FaultInjector::new(array, &FaultSchedule::power_cut(cut));
        check_crash_consistency(injector, &ops, span);
    }

    #[test]
    fn repeated_cuts_never_fork_the_chain(
        ops in proptest::collection::vec((0u8..3, 0u64..48, 0u8..255), 10..80),
        cut1 in 0u64..40,
        cut2 in 0u64..40,
    ) {
        use rssd_faults::FaultEvent;
        let device: RssdDevice<Remote> = scenario_member(1);
        let span = device.logical_pages();
        let schedule = FaultSchedule::new(
            "two_cuts",
            vec![
                FaultEvent::PowerCut { at_op: cut1 },
                FaultEvent::PowerCut { at_op: cut1 + 1 + cut2 },
            ],
        );
        let mut injector = FaultInjector::new(device, &schedule);
        let page_size = injector.page_size();
        for &(kind, lpa_raw, fill) in &ops {
            let lpa = lpa_raw % span;
            let result = match kind % 3 {
                0 | 1 => injector.write_page(lpa, page(fill, page_size)),
                _ => injector.trim_page(lpa),
            };
            if matches!(result, Err(DeviceError::PowerLoss)) {
                let _ = injector.restore_power().expect("recovery");
            }
        }
        let audit = injector.history_audit();
        prop_assert!(audit.verified, "after two cuts: {:?}", audit.failure);
    }
}
