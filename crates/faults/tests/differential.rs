//! Differential pinning: with the `none` fault schedule, the fault
//! pipeline (FaultyRemote + FaultInjector) must be **byte-identical** to
//! the direct, wrapper-free pipeline the repo already trusted — same
//! detection verdicts, same recovery, same chain state, same scorecard
//! JSON. Only once the wrappers are provably inert can their faults be
//! trusted to measure the faults and nothing else.

use rssd_faults::{ActorKind, FaultPlan, Scenario, Topology};

fn assert_identical(scenario: Scenario) {
    let faulted = scenario.run().expect("fault pipeline");
    let direct = scenario.run_direct().expect("direct pipeline");
    assert_eq!(faulted, direct, "{}", scenario.cell_id());
    assert_eq!(
        faulted.to_json(),
        direct.to_json(),
        "{}: serialized scorecards must be byte-identical",
        scenario.cell_id()
    );
    // The wrappers must leave no fingerprints at all.
    assert_eq!(faulted.power_cuts, 0);
    assert_eq!(faulted.torn_batches, 0);
    assert_eq!(faulted.offloads_queued + faulted.offloads_dropped, 0);
}

#[test]
fn none_schedule_cells_match_direct_replay_bare() {
    for actor in [ActorKind::None, ActorKind::Classic, ActorKind::Trim] {
        assert_identical(Scenario {
            profile: "hm",
            actor,
            plan: FaultPlan::None,
            topology: Topology::Bare,
            seed: 77,
        });
    }
}

#[test]
fn none_schedule_cells_match_direct_replay_multiqueue() {
    assert_identical(Scenario {
        profile: "src",
        actor: ActorKind::Classic,
        plan: FaultPlan::None,
        topology: Topology::MultiQueue {
            queues: 4,
            depth: 8,
        },
        seed: 78,
    });
}

#[test]
fn none_schedule_cells_match_direct_replay_array() {
    for actor in [ActorKind::None, ActorKind::Classic] {
        assert_identical(Scenario {
            profile: "mail",
            actor,
            plan: FaultPlan::None,
            topology: Topology::Array {
                shards: 3,
                stripe_pages: 4,
            },
            seed: 79,
        });
    }
}

#[test]
fn direct_pipeline_refuses_fault_plans() {
    let scenario = Scenario {
        profile: "hm",
        actor: ActorKind::Classic,
        plan: FaultPlan::PowerCutMidAttack,
        topology: Topology::Bare,
        seed: 80,
    };
    assert!(scenario.run_direct().is_err());
}
