//! The ideal-link equivalence suite: with infinite bandwidth and zero
//! loss, routing offload through the simulated NVMe-oE stack must be
//! *invisible* — byte-identical durable state, chain records, recovery and
//! harvest results to the direct `RemoteTarget` path, bare and behind the
//! `FaultInjector`, and byte-identical scenario scorecards including the
//! partition cells (whose faults the wire pipeline expresses as link
//! blackouts and collector drops instead of injected results).
//!
//! This is what licenses the wire model: every nanosecond and every
//! failure a real link adds is then a *measured departure* from a pinned
//! baseline, not an artifact of a second code path.

use proptest::prelude::*;
use rssd_core::{LoopbackTarget, RebuildImage, RemoteTarget, RssdConfig, RssdDevice, WireRemote};
use rssd_faults::{
    ActorKind, FaultInjector, FaultPlan, FaultSchedule, FaultTarget, Scenario, Topology,
};
use rssd_flash::{FlashGeometry, NandTiming, SimClock};
use rssd_net::LinkConfig;
use rssd_ssd::{BlockDevice, DeviceError};

const CAPACITY: u64 = 4 * 1024 * 1024;

fn direct_device() -> RssdDevice<LoopbackTarget> {
    RssdDevice::new(
        FlashGeometry::with_capacity(CAPACITY),
        NandTiming::instant(),
        SimClock::new(),
        RssdConfig {
            segment_pages: 4,
            ..RssdConfig::default()
        },
        LoopbackTarget::new(),
    )
}

fn wired_device() -> RssdDevice<WireRemote<LoopbackTarget>> {
    RssdDevice::new(
        FlashGeometry::with_capacity(CAPACITY),
        NandTiming::instant(),
        SimClock::new(),
        RssdConfig {
            segment_pages: 4,
            ..RssdConfig::default()
        },
        WireRemote::new(LoopbackTarget::new(), LinkConfig::ideal()),
    )
}

/// A spill-enabled device over a direct loopback remote: the configuration
/// the outage-equivalence proptests run on both sides of the comparison,
/// so the *only* differing variable is whether the remote was reachable.
fn spill_device() -> RssdDevice<LoopbackTarget> {
    RssdDevice::new(
        FlashGeometry::with_capacity(CAPACITY),
        NandTiming::instant(),
        SimClock::new(),
        RssdConfig {
            segment_pages: 4,
            spill_blocks: 3,
            ..RssdConfig::default()
        },
        LoopbackTarget::new(),
    )
}

/// One host-visible operation, drawn by proptest.
#[derive(Clone, Copy, Debug)]
enum Op {
    Write(u64, u8),
    Trim(u64),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u64>(), any::<u8>()).prop_map(|(l, b)| Op::Write(l, b)),
        2 => any::<u64>().prop_map(Op::Trim),
        1 => Just(Op::Flush),
    ]
}

/// Ops drawn for an outage window: no explicit flushes, because a forced
/// flush against a dead remote fails *visibly* by design — the equivalence
/// under test is about the background write path riding the outage.
fn outage_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u64>(), any::<u8>()).prop_map(|(l, b)| Op::Write(l, b)),
        2 => any::<u64>().prop_map(Op::Trim),
    ]
}

/// Applies `op` to a device, returning a comparable outcome tag.
fn apply<D: BlockDevice>(device: &mut D, op: Op) -> Result<(), DeviceError> {
    let pages = device.logical_pages();
    let page_size = device.page_size();
    match op {
        Op::Write(lpa, byte) => device.write_page(lpa % pages, vec![byte; page_size]),
        Op::Trim(lpa) => device.trim_page(lpa % pages),
        Op::Flush => device.flush(),
    }
}

/// Asserts the two remotes hold byte-identical envelope sets.
fn assert_remotes_identical<A: RemoteTarget, B: RemoteTarget>(a: &mut A, b: &mut B) {
    assert_eq!(a.stored_segments(), b.stored_segments());
    for seq in a.stored_segments() {
        assert_eq!(
            a.fetch_segment(seq).unwrap(),
            b.fetch_segment(seq).unwrap(),
            "segment {seq} differs between direct and wire paths"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bare equivalence: same ops in, identical durable state, history,
    /// recovery and harvest out.
    #[test]
    fn ideal_wire_is_byte_identical_bare(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut direct = direct_device();
        let mut wired = wired_device();
        for &op in &ops {
            let a = apply(&mut direct, op);
            let b = apply(&mut wired, op);
            prop_assert_eq!(a, b, "op {:?} diverged", op);
        }
        direct.flush_log().ok();
        wired.flush_log().ok();

        // Same simulated time: the ideal wire consumed zero nanoseconds.
        prop_assert_eq!(direct.clock().now_ns(), wired.clock().now_ns());
        // Same chain, same records.
        prop_assert_eq!(direct.chain_head(), wired.chain_head());
        prop_assert_eq!(
            direct.verified_history().unwrap(),
            wired.verified_history().unwrap()
        );
        // Same durable bytes remotely.
        assert_remotes_identical(direct.remote_mut(), wired.remote_mut());
        // Same per-page recovery answers.
        for lpa in 0..direct.logical_pages() {
            prop_assert_eq!(direct.recover_page(lpa), wired.recover_page(lpa));
        }
        // Same rebuild harvest (fetched back *through the wire*).
        let keys = direct.escrow_keys();
        let image_direct = RebuildImage::harvest(&keys, direct.remote_mut()).unwrap();
        let image_wired = RebuildImage::harvest(&keys, wired.remote_mut()).unwrap();
        for lpa in 0..direct.logical_pages() {
            prop_assert_eq!(image_direct.newest(lpa), image_wired.newest(lpa));
        }
    }

    /// The same equivalence behind the `FaultInjector` with a power cut
    /// mid-stream: crash, recovery and the post-recovery state must all be
    /// identical through the ideal wire.
    #[test]
    fn ideal_wire_is_byte_identical_behind_injector(
        ops in proptest::collection::vec(op_strategy(), 8..100),
        cut_at in 2u64..60,
    ) {
        let schedule = FaultSchedule::power_cut(cut_at);
        let mut direct = FaultInjector::new(direct_device(), &schedule);
        let mut wired = FaultInjector::new(wired_device(), &schedule);
        for &op in &ops {
            let a = apply(&mut direct, op);
            let b = apply(&mut wired, op);
            prop_assert_eq!(&a, &b, "op {:?} diverged under faults", op);
            if a == Err(DeviceError::PowerLoss) {
                let ra = direct.restore_power().unwrap();
                let rb = wired.restore_power().unwrap();
                prop_assert_eq!(ra, rb, "recovery reports diverged");
            }
        }
        prop_assert_eq!(direct.power_cuts(), wired.power_cuts());
        prop_assert_eq!(direct.torn_batches(), wired.torn_batches());

        let audit_direct = direct.history_audit();
        let audit_wired = wired.history_audit();
        prop_assert_eq!(audit_direct.verified, audit_wired.verified);
        prop_assert_eq!(audit_direct.records, audit_wired.records);
        prop_assert_eq!(direct.offload_totals(), wired.offload_totals());
        let horizon = direct.clock().now_ns() + 1;
        for lpa in 0..direct.logical_pages() {
            prop_assert_eq!(
                direct.recover_as_of(lpa, horizon),
                wired.recover_as_of(lpa, horizon)
            );
        }
        assert_remotes_identical(
            direct.inner_mut().remote_mut(),
            wired.inner_mut().remote_mut(),
        );
    }

    /// Outage equivalence, bare: the same op stream through a device whose
    /// remote dies for the middle window — offloads fail, sealed segments
    /// spill to NAND, the remote heals, the backlog replays — must leave
    /// chain, remote store and every point-in-time recovery answer
    /// byte-identical to the never-outage run. The outage window carries no
    /// explicit flushes and stays small enough that the device degrades no
    /// further than Buffering, so admission control cannot skew the clock.
    #[test]
    fn outage_spill_heal_replay_is_invisible_bare(
        prefix in proptest::collection::vec(op_strategy(), 1..40),
        outage in proptest::collection::vec(outage_op_strategy(), 1..40),
        suffix in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut steady = spill_device();
        let mut outaged = spill_device();
        for &op in &prefix {
            let a = apply(&mut steady, op);
            let b = apply(&mut outaged, op);
            prop_assert_eq!(a, b, "prefix op {:?} diverged", op);
        }
        outaged.remote_mut().set_reachable(false);
        for &op in &outage {
            let a = apply(&mut steady, op);
            let b = apply(&mut outaged, op);
            prop_assert_eq!(a, b, "outage op {:?} diverged at the host", op);
        }
        outaged.remote_mut().set_reachable(true);
        for &op in &suffix {
            let a = apply(&mut steady, op);
            let b = apply(&mut outaged, op);
            prop_assert_eq!(a, b, "post-heal op {:?} diverged", op);
        }
        // Drain both backlogs (a no-op for the steady device).
        steady.flush().unwrap();
        outaged.flush().unwrap();

        // The outage consumed zero simulated time and left zero residue.
        prop_assert_eq!(steady.clock().now_ns(), outaged.clock().now_ns());
        prop_assert_eq!(outaged.staged_segments(), 0);
        prop_assert_eq!(outaged.spill_used_bytes(), 0);
        // Chain, history, durable remote bytes, recovery: byte-identical.
        prop_assert_eq!(steady.chain_head(), outaged.chain_head());
        prop_assert_eq!(
            steady.verified_history().unwrap(),
            outaged.verified_history().unwrap()
        );
        assert_remotes_identical(steady.remote_mut(), outaged.remote_mut());
        for lpa in 0..steady.logical_pages() {
            prop_assert_eq!(steady.recover_page(lpa), outaged.recover_page(lpa));
        }
    }

    /// Outage × crash equivalence, behind the injector: both devices take
    /// the same scheduled power cut, but one takes it *inside* a remote
    /// outage. For the steady device the sealed backlog is already remote;
    /// for the outaged one it exists only in the spill region — recovery
    /// must replay it so both emerge with identical chains, histories,
    /// remote stores and recovery answers (the spill is exactly as durable
    /// as the remote it stood in for).
    #[test]
    fn outage_crash_heal_replay_matches_never_outage_behind_injector(
        ops in proptest::collection::vec(outage_op_strategy(), 45..110),
        outage_from in 2usize..8,
        cut_at in 10u64..40,
    ) {
        let schedule = FaultSchedule::power_cut(cut_at);
        let mut steady = FaultInjector::new(spill_device(), &schedule);
        let mut outaged = FaultInjector::new(spill_device(), &schedule);
        let mut outage_open = false;
        for (i, &op) in ops.iter().enumerate() {
            if i == outage_from {
                outaged.inner_mut().remote_mut().set_reachable(false);
                outage_open = true;
            }
            let a = apply(&mut steady, op);
            let b = apply(&mut outaged, op);
            prop_assert_eq!(&a, &b, "op {:?} diverged under outage + cut", op);
            if a == Err(DeviceError::PowerLoss) {
                let ra = steady.restore_power().unwrap();
                // The outaged device cannot walk a dead remote that holds
                // evidence: recovery fails visibly, the operator restores
                // the network, and the retry replays the spill region. (If
                // nothing was ever offloaded the walk is empty and the
                // first attempt succeeds — nothing to refuse over.)
                let rb = match outaged.restore_power() {
                    Ok(r) => r,
                    Err(_) => {
                        outaged.inner_mut().remote_mut().set_reachable(true);
                        outage_open = false;
                        outaged.restore_power().unwrap()
                    }
                };
                if outage_open {
                    outaged.inner_mut().remote_mut().set_reachable(true);
                    outage_open = false;
                }
                // The cut cost both devices the same volatile tail.
                prop_assert_eq!(ra.pending_records_lost, rb.pending_records_lost);
                prop_assert_eq!(ra.pending_preimages_lost, rb.pending_preimages_lost);
            }
        }
        if outage_open {
            // The cut landed past the op stream's end: heal without a crash.
            outaged.inner_mut().remote_mut().set_reachable(true);
        }
        steady.inner_mut().flush().unwrap();
        outaged.inner_mut().flush().unwrap();

        prop_assert_eq!(steady.power_cuts(), outaged.power_cuts());
        let audit_steady = steady.history_audit();
        let audit_outaged = outaged.history_audit();
        prop_assert!(audit_steady.verified, "steady chain must verify");
        prop_assert!(audit_outaged.verified, "spill replay must not fork the chain");
        prop_assert_eq!(audit_steady.records, audit_outaged.records);
        prop_assert_eq!(
            steady.inner_mut().chain_head(),
            outaged.inner_mut().chain_head()
        );
        assert_remotes_identical(
            steady.inner_mut().remote_mut(),
            outaged.inner_mut().remote_mut(),
        );
        let horizon = steady.clock().now_ns() + 1;
        for lpa in 0..steady.logical_pages() {
            prop_assert_eq!(
                steady.recover_as_of(lpa, horizon),
                outaged.recover_as_of(lpa, horizon)
            );
        }
    }
}

/// Every bare curated cell — including the partition cells whose faults the
/// wire pipeline expresses as link blackouts (`PartitionQueue`) and
/// collector drops (`PartitionDrop`) — must score byte-identically over an
/// ideal link: these are the PR-4 scorecards, reproduced with the faults as
/// emergent link conditions.
#[test]
fn ideal_wire_scorecards_match_fault_pipeline_byte_for_byte() {
    let cells = [
        ("hm", ActorKind::None, FaultPlan::None, 11),
        ("hm", ActorKind::Classic, FaultPlan::None, 12),
        ("hm", ActorKind::Classic, FaultPlan::PowerCutMidAttack, 13),
        ("hm", ActorKind::Classic, FaultPlan::PartitionQueue, 14),
        ("hm", ActorKind::Trim, FaultPlan::PartitionDrop, 15),
    ];
    for (profile, actor, plan, seed) in cells {
        let cell = Scenario {
            profile,
            actor,
            plan,
            topology: Topology::Bare,
            seed,
        };
        let injected = cell.run().expect("fault pipeline");
        let wired = cell.run_wire(LinkConfig::ideal()).expect("wire pipeline");
        assert_eq!(
            injected.to_json(),
            wired.to_json(),
            "{}: wire-expressed faults must reproduce the injected scorecard",
            cell.cell_id()
        );
        assert_eq!(injected, wired);
    }
}

/// The shared-uplink topology: three members funneling into one wire, with
/// the fault contract holding when the partition is a blackout of that one
/// shared link.
#[test]
fn shared_uplink_cells_hold_the_fault_contract() {
    let topology = Topology::SharedUplink {
        shards: 3,
        stripe_pages: 4,
    };

    // Fault-free attack: full detection, full recovery, wire or not.
    let clean = Scenario {
        profile: "mail",
        actor: ActorKind::Classic,
        plan: FaultPlan::None,
        topology,
        seed: 20,
    }
    .run()
    .expect("shared-uplink cell");
    assert_eq!(clean.cell, "mail/classic/none/uplink3");
    assert!(clean.true_positive, "attack must be flagged");
    assert!(clean.chain_verified);
    assert_eq!(clean.recovery_fraction, 1.0);
    assert_eq!(clean.data_loss_bytes, 0);
    assert_eq!(clean.skipped_events, 0);
    assert!(clean.segments_offloaded > 0, "offloads crossed the wire");

    // Queue-mode partition of the shared link: every member's offloads
    // buffer at the edge and replay in order when the one wire heals.
    let queued = Scenario {
        profile: "mail",
        actor: ActorKind::Classic,
        plan: FaultPlan::PartitionQueue,
        topology,
        seed: 21,
    }
    .run()
    .expect("shared-uplink partition cell");
    assert_eq!(queued.skipped_events, 0, "blackout must be expressible");
    assert!(queued.offloads_queued > 0, "window saw offload traffic");
    assert_eq!(
        queued.offloads_replayed, queued.offloads_queued,
        "heal replays the whole buffer"
    );
    assert_eq!(queued.offloads_dropped, 0);
    assert!(queued.chain_verified);
    assert!(queued.true_positive);
    assert_eq!(queued.recovery_fraction, 1.0, "queueing costs nothing");
}
