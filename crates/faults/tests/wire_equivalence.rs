//! The ideal-link equivalence suite: with infinite bandwidth and zero
//! loss, routing offload through the simulated NVMe-oE stack must be
//! *invisible* — byte-identical durable state, chain records, recovery and
//! harvest results to the direct `RemoteTarget` path, bare and behind the
//! `FaultInjector`, and byte-identical scenario scorecards including the
//! partition cells (whose faults the wire pipeline expresses as link
//! blackouts and collector drops instead of injected results).
//!
//! This is what licenses the wire model: every nanosecond and every
//! failure a real link adds is then a *measured departure* from a pinned
//! baseline, not an artifact of a second code path.

use proptest::prelude::*;
use rssd_core::{LoopbackTarget, RebuildImage, RemoteTarget, RssdConfig, RssdDevice, WireRemote};
use rssd_faults::{
    ActorKind, FaultInjector, FaultPlan, FaultSchedule, FaultTarget, Scenario, Topology,
};
use rssd_flash::{FlashGeometry, NandTiming, SimClock};
use rssd_net::LinkConfig;
use rssd_ssd::{BlockDevice, DeviceError};

const CAPACITY: u64 = 4 * 1024 * 1024;

fn direct_device() -> RssdDevice<LoopbackTarget> {
    RssdDevice::new(
        FlashGeometry::with_capacity(CAPACITY),
        NandTiming::instant(),
        SimClock::new(),
        RssdConfig {
            segment_pages: 4,
            ..RssdConfig::default()
        },
        LoopbackTarget::new(),
    )
}

fn wired_device() -> RssdDevice<WireRemote<LoopbackTarget>> {
    RssdDevice::new(
        FlashGeometry::with_capacity(CAPACITY),
        NandTiming::instant(),
        SimClock::new(),
        RssdConfig {
            segment_pages: 4,
            ..RssdConfig::default()
        },
        WireRemote::new(LoopbackTarget::new(), LinkConfig::ideal()),
    )
}

/// One host-visible operation, drawn by proptest.
#[derive(Clone, Copy, Debug)]
enum Op {
    Write(u64, u8),
    Trim(u64),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u64>(), any::<u8>()).prop_map(|(l, b)| Op::Write(l, b)),
        2 => any::<u64>().prop_map(Op::Trim),
        1 => Just(Op::Flush),
    ]
}

/// Applies `op` to a device, returning a comparable outcome tag.
fn apply<D: BlockDevice>(device: &mut D, op: Op) -> Result<(), DeviceError> {
    let pages = device.logical_pages();
    let page_size = device.page_size();
    match op {
        Op::Write(lpa, byte) => device.write_page(lpa % pages, vec![byte; page_size]),
        Op::Trim(lpa) => device.trim_page(lpa % pages),
        Op::Flush => device.flush(),
    }
}

/// Asserts the two remotes hold byte-identical envelope sets.
fn assert_remotes_identical<A: RemoteTarget, B: RemoteTarget>(a: &mut A, b: &mut B) {
    assert_eq!(a.stored_segments(), b.stored_segments());
    for seq in a.stored_segments() {
        assert_eq!(
            a.fetch_segment(seq).unwrap(),
            b.fetch_segment(seq).unwrap(),
            "segment {seq} differs between direct and wire paths"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bare equivalence: same ops in, identical durable state, history,
    /// recovery and harvest out.
    #[test]
    fn ideal_wire_is_byte_identical_bare(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut direct = direct_device();
        let mut wired = wired_device();
        for &op in &ops {
            let a = apply(&mut direct, op);
            let b = apply(&mut wired, op);
            prop_assert_eq!(a, b, "op {:?} diverged", op);
        }
        direct.flush_log().ok();
        wired.flush_log().ok();

        // Same simulated time: the ideal wire consumed zero nanoseconds.
        prop_assert_eq!(direct.clock().now_ns(), wired.clock().now_ns());
        // Same chain, same records.
        prop_assert_eq!(direct.chain_head(), wired.chain_head());
        prop_assert_eq!(
            direct.verified_history().unwrap(),
            wired.verified_history().unwrap()
        );
        // Same durable bytes remotely.
        assert_remotes_identical(direct.remote_mut(), wired.remote_mut());
        // Same per-page recovery answers.
        for lpa in 0..direct.logical_pages() {
            prop_assert_eq!(direct.recover_page(lpa), wired.recover_page(lpa));
        }
        // Same rebuild harvest (fetched back *through the wire*).
        let keys = direct.escrow_keys();
        let image_direct = RebuildImage::harvest(&keys, direct.remote_mut()).unwrap();
        let image_wired = RebuildImage::harvest(&keys, wired.remote_mut()).unwrap();
        for lpa in 0..direct.logical_pages() {
            prop_assert_eq!(image_direct.newest(lpa), image_wired.newest(lpa));
        }
    }

    /// The same equivalence behind the `FaultInjector` with a power cut
    /// mid-stream: crash, recovery and the post-recovery state must all be
    /// identical through the ideal wire.
    #[test]
    fn ideal_wire_is_byte_identical_behind_injector(
        ops in proptest::collection::vec(op_strategy(), 8..100),
        cut_at in 2u64..60,
    ) {
        let schedule = FaultSchedule::power_cut(cut_at);
        let mut direct = FaultInjector::new(direct_device(), &schedule);
        let mut wired = FaultInjector::new(wired_device(), &schedule);
        for &op in &ops {
            let a = apply(&mut direct, op);
            let b = apply(&mut wired, op);
            prop_assert_eq!(&a, &b, "op {:?} diverged under faults", op);
            if a == Err(DeviceError::PowerLoss) {
                let ra = direct.restore_power().unwrap();
                let rb = wired.restore_power().unwrap();
                prop_assert_eq!(ra, rb, "recovery reports diverged");
            }
        }
        prop_assert_eq!(direct.power_cuts(), wired.power_cuts());
        prop_assert_eq!(direct.torn_batches(), wired.torn_batches());

        let audit_direct = direct.history_audit();
        let audit_wired = wired.history_audit();
        prop_assert_eq!(audit_direct.verified, audit_wired.verified);
        prop_assert_eq!(audit_direct.records, audit_wired.records);
        prop_assert_eq!(direct.offload_totals(), wired.offload_totals());
        let horizon = direct.clock().now_ns() + 1;
        for lpa in 0..direct.logical_pages() {
            prop_assert_eq!(
                direct.recover_as_of(lpa, horizon),
                wired.recover_as_of(lpa, horizon)
            );
        }
        assert_remotes_identical(
            direct.inner_mut().remote_mut(),
            wired.inner_mut().remote_mut(),
        );
    }
}

/// Every bare curated cell — including the partition cells whose faults the
/// wire pipeline expresses as link blackouts (`PartitionQueue`) and
/// collector drops (`PartitionDrop`) — must score byte-identically over an
/// ideal link: these are the PR-4 scorecards, reproduced with the faults as
/// emergent link conditions.
#[test]
fn ideal_wire_scorecards_match_fault_pipeline_byte_for_byte() {
    let cells = [
        ("hm", ActorKind::None, FaultPlan::None, 11),
        ("hm", ActorKind::Classic, FaultPlan::None, 12),
        ("hm", ActorKind::Classic, FaultPlan::PowerCutMidAttack, 13),
        ("hm", ActorKind::Classic, FaultPlan::PartitionQueue, 14),
        ("hm", ActorKind::Trim, FaultPlan::PartitionDrop, 15),
    ];
    for (profile, actor, plan, seed) in cells {
        let cell = Scenario {
            profile,
            actor,
            plan,
            topology: Topology::Bare,
            seed,
        };
        let injected = cell.run().expect("fault pipeline");
        let wired = cell.run_wire(LinkConfig::ideal()).expect("wire pipeline");
        assert_eq!(
            injected.to_json(),
            wired.to_json(),
            "{}: wire-expressed faults must reproduce the injected scorecard",
            cell.cell_id()
        );
        assert_eq!(injected, wired);
    }
}

/// The shared-uplink topology: three members funneling into one wire, with
/// the fault contract holding when the partition is a blackout of that one
/// shared link.
#[test]
fn shared_uplink_cells_hold_the_fault_contract() {
    let topology = Topology::SharedUplink {
        shards: 3,
        stripe_pages: 4,
    };

    // Fault-free attack: full detection, full recovery, wire or not.
    let clean = Scenario {
        profile: "mail",
        actor: ActorKind::Classic,
        plan: FaultPlan::None,
        topology,
        seed: 20,
    }
    .run()
    .expect("shared-uplink cell");
    assert_eq!(clean.cell, "mail/classic/none/uplink3");
    assert!(clean.true_positive, "attack must be flagged");
    assert!(clean.chain_verified);
    assert_eq!(clean.recovery_fraction, 1.0);
    assert_eq!(clean.data_loss_bytes, 0);
    assert_eq!(clean.skipped_events, 0);
    assert!(clean.segments_offloaded > 0, "offloads crossed the wire");

    // Queue-mode partition of the shared link: every member's offloads
    // buffer at the edge and replay in order when the one wire heals.
    let queued = Scenario {
        profile: "mail",
        actor: ActorKind::Classic,
        plan: FaultPlan::PartitionQueue,
        topology,
        seed: 21,
    }
    .run()
    .expect("shared-uplink partition cell");
    assert_eq!(queued.skipped_events, 0, "blackout must be expressible");
    assert!(queued.offloads_queued > 0, "window saw offload traffic");
    assert_eq!(
        queued.offloads_replayed, queued.offloads_queued,
        "heal replays the whole buffer"
    );
    assert_eq!(queued.offloads_dropped, 0);
    assert!(queued.chain_verified);
    assert!(queued.true_positive);
    assert_eq!(queued.recovery_fraction, 1.0, "queueing costs nothing");
}
