//! Partition-tolerance tests.
//!
//! Two contract clauses (DESIGN.md §6):
//!
//! * **Queue mode** — offloads acknowledged during a partition are
//!   buffered and replayed *in order* on heal; afterwards the inner store
//!   is contiguous, the chain verifies, and a full rebuild from the store
//!   alone recovers everything — the partition cost nothing.
//! * **Drop mode** — offloads acknowledged and destroyed must surface as
//!   a chain gap in every downstream consumer (`verified_history`,
//!   `audit_history`, `RebuildImage::harvest`) rather than silently
//!   passing with a shorter history.

use rssd_core::{RebuildImage, RemoteTarget, RssdDevice};
use rssd_faults::{scenario_member, FaultyRemote, PartitionMode, PermissiveTarget};
use rssd_ssd::BlockDevice;

type QueueDut = RssdDevice<FaultyRemote<rssd_core::LoopbackTarget>>;
type DropDut = RssdDevice<FaultyRemote<PermissiveTarget>>;

fn page(b: u8) -> Vec<u8> {
    vec![b; 4096]
}

/// Generates enough overwrite traffic to seal `n` segments or more.
fn churn<R: RemoteTarget>(d: &mut RssdDevice<R>, rounds: u8, lpas: u64) {
    for round in 0..rounds {
        for lpa in 0..lpas {
            d.write_page(lpa, page(round ^ lpa as u8)).unwrap();
        }
    }
}

#[test]
fn queued_offloads_replay_in_order_on_heal() {
    let mut d: QueueDut = scenario_member(1);
    churn(&mut d, 2, 16);
    d.flush_log().unwrap();
    let before_partition = d.remote().inner().stored_segments();
    assert!(!before_partition.is_empty());

    // Partition in queue mode; keep destroying data. Offloads are acked
    // (the device unpins) but only buffered.
    d.remote_mut().partition(PartitionMode::QueueForReplay);
    churn(&mut d, 2, 16);
    d.flush_log().unwrap();
    let queued = d.remote().queued_segments();
    assert!(queued > 0, "window must have buffered offloads");
    assert_eq!(
        d.remote().inner().stored_segments().len(),
        before_partition.len(),
        "nothing reached the store during the partition"
    );
    assert_eq!(d.offload_stats().offload_failures, 0, "acked, not refused");

    // Heal: the buffer replays in order; the store is contiguous.
    let replayed = d.remote_mut().heal();
    assert_eq!(replayed as usize, queued);
    let seqs = d.remote().inner().stored_segments();
    let contiguous: Vec<u64> = (0..seqs.len() as u64).collect();
    assert_eq!(seqs, contiguous, "segments stored in order with no holes");

    // The chain verifies, and every record is accounted for.
    let history = d.verified_history().unwrap();
    assert_eq!(history.len() as u64, d.chain_len());

    // Total loss of the device: the store alone still rebuilds everything
    // the attack destroyed — the partition was free.
    let keys = d.escrow_keys();
    let mut remote = d.into_remote();
    let image = RebuildImage::harvest(&keys, &mut remote).unwrap();
    for lpa in 0..16u64 {
        assert!(image.covers(lpa), "lpa {lpa} missing from rebuild image");
    }
}

#[test]
fn recovery_still_works_while_partitioned_from_queued_segments() {
    let mut d: QueueDut = scenario_member(1);
    d.write_page(3, page(1)).unwrap();
    d.remote_mut().partition(PartitionMode::QueueForReplay);
    d.write_page(3, page(2)).unwrap();
    d.flush_log().unwrap(); // seals into the replay buffer
    assert!(d.remote().queued_segments() > 0);
    // The retained pre-image lives in the buffer; recovery can fetch it.
    assert_eq!(d.recover_page(3).unwrap(), page(1));
}

#[test]
fn dropped_offloads_surface_as_chain_gap_in_verified_history() {
    let mut d: DropDut = scenario_member(1);
    churn(&mut d, 2, 16);
    d.flush_log().unwrap();

    d.remote_mut().partition(PartitionMode::DropSilently);
    churn(&mut d, 2, 16);
    d.flush_log().unwrap();
    assert!(d.remote().fault_stats().offloads_dropped > 0);
    d.remote_mut().heal();
    // Post-heal traffic stores segments *after* the hole.
    churn(&mut d, 1, 16);
    d.flush_log().unwrap();

    let err = d.verified_history().unwrap_err();
    assert!(
        err.contains("does not extend the chain") || err.contains("chain gap"),
        "gap must be detected, got: {err}"
    );
    let audit = d.audit_history();
    assert!(!audit.verified, "audit must flag the gap");
    assert!(
        !audit.records.is_empty(),
        "the verifiable prefix is still usable evidence"
    );
}

#[test]
fn dropped_offloads_fail_rebuild_harvest_not_silently_shorten_it() {
    let mut d: DropDut = scenario_member(1);
    churn(&mut d, 2, 16);
    d.flush_log().unwrap();
    d.remote_mut().partition(PartitionMode::DropSilently);
    churn(&mut d, 2, 16);
    d.flush_log().unwrap();
    d.remote_mut().heal();
    churn(&mut d, 1, 16);
    d.flush_log().unwrap();

    let keys = d.escrow_keys();
    let mut remote = d.into_remote();
    let err = RebuildImage::harvest(&keys, &mut remote).unwrap_err();
    assert!(
        err.contains("does not extend the chain"),
        "harvest must refuse the holed chain, got: {err}"
    );
}

#[test]
fn drop_against_strict_store_wedges_visibly_and_count_check_catches_it() {
    // Against a continuity-checking store, the hole manifests differently:
    // post-heal offloads are refused (the store's expected head no longer
    // matches), so the device accumulates visible failures — and if the
    // pending tail is eventually shipped nowhere, verified_history's
    // record accounting flags the discrepancy.
    let mut d: QueueDut = scenario_member(1);
    churn(&mut d, 2, 16);
    d.flush_log().unwrap();
    d.remote_mut().partition(PartitionMode::DropSilently);
    churn(&mut d, 2, 16);
    d.flush_log().unwrap();
    let dropped = d.remote().fault_stats().offloads_dropped;
    assert!(dropped > 0);
    d.remote_mut().heal();
    churn(&mut d, 1, 16);
    // The strict store refuses everything after the hole.
    assert!(d.flush_log().is_err(), "post-gap offloads must be refused");
    assert!(d.offload_stats().offload_failures > 0);
    let err = d.verified_history().unwrap_err();
    assert!(
        err.contains("chain gap") || err.contains("pending tail"),
        "{err}"
    );
}
