//! Tier-1 scenario matrix: the curated grid (3 topologies × 5 actors × 7
//! fault schedules, sampled), every cell's scorecard asserted, results
//! written to `BENCH_scenarios.json` for cross-PR tracking.
//!
//! The assertions encode the fault-model contract of DESIGN.md §6:
//!
//! * benign cells never false-positive and lose nothing;
//! * fault-free attack cells detect and recover **100 %** of victim data;
//! * a crash never forks the evidence chain — after recovery the audit
//!   verifies end to end, and recovery is still total;
//! * a queue-mode partition replays every buffered offload in order and
//!   costs nothing;
//! * a sustained uplink blackout with a power cut **inside** it loses
//!   nothing: sealed evidence rides the FTL spill region across the cut,
//!   recovery replays it, and the chain never forks;
//! * a drop-mode partition is **detected as a chain gap** — data may be
//!   lost, silence may not;
//! * shard deaths cost exactly the data retention had not yet guarded
//!   (pending pre-images + never-destroyed live pages), all of it
//!   accounted in `data_loss_bytes`, and the array survives to full
//!   rebuild — including the double-failure case.

use rssd_faults::{ScenarioMatrix, Scorecard, Verdict};

fn find<'a>(cards: &'a [Scorecard], cell: &str) -> &'a Scorecard {
    cards
        .iter()
        .find(|c| c.cell == cell)
        .unwrap_or_else(|| panic!("matrix missing cell {cell}"))
}

#[test]
fn curated_matrix_holds_the_fault_model_contract() {
    let matrix = ScenarioMatrix::curated();
    assert!(matrix.cells.len() >= 12, "curated grid shrank");

    let cards = matrix.run().expect("no cell may fail the harness");
    assert_eq!(cards.len(), matrix.cells.len());

    // --- Universal invariants, every cell.
    for card in &cards {
        assert_eq!(
            card.skipped_events, 0,
            "{}: schedule/topology mismatch",
            card.cell
        );
        assert_eq!(
            card.data_loss_bytes,
            (card.victim_pages - card.recovered_pages) * 4096,
            "{}: loss accounting must be exact",
            card.cell
        );
        assert!(
            card.chain_verified != card.chain_gap_detected,
            "{}: a chain is either verified or its gap is detected — never both, never neither",
            card.cell
        );
        // Losses are only ever explained by an injected fault.
        if card.data_loss_bytes > 0 {
            assert!(
                card.power_cuts > 0 || card.offloads_dropped > 0 || card.attack_interruptions > 0,
                "{}: silent data loss with no fault",
                card.cell
            );
        }
    }

    // --- Benign baselines: no false positives, nothing lost.
    for cell in ["hm/none/none/bare", "mail/none/none/array3"] {
        let card = find(&cards, cell);
        assert!(!card.false_positive, "{cell}: false positive");
        assert_eq!(card.verdict, Verdict::Benign, "{cell}");
        assert!(card.chain_verified, "{cell}");
        assert_eq!(card.recovery_fraction, 1.0, "{cell}");
        assert_eq!(card.data_loss_bytes, 0, "{cell}");
    }

    // --- Fault-free attack cells: detected, fully recovered.
    for cell in [
        "hm/classic/none/bare",
        "src/gc_flood/none/mq4x8",
        "src/trim/none/mq4x8",
        "mail/classic/none/array3",
    ] {
        let card = find(&cards, cell);
        assert!(card.true_positive, "{cell}: attack not flagged");
        assert_eq!(card.verdict, Verdict::Ransomware, "{cell}");
        assert!(card.chain_verified, "{cell}");
        assert_eq!(card.victim_pages, 128, "{cell}");
        assert_eq!(card.recovery_fraction, 1.0, "{cell}: zero data loss");
        assert_eq!(card.data_loss_bytes, 0, "{cell}");
    }

    // --- Power cuts: crash + recover, chain must NOT fork, recovery total.
    for cell in ["hm/classic/power_cut/bare", "src/timing/power_cut/mq4x8"] {
        let card = find(&cards, cell);
        assert_eq!(card.power_cuts, 1, "{cell}: the scheduled cut fired");
        assert!(card.attack_interruptions >= 1, "{cell}");
        assert!(
            card.chain_verified,
            "{cell}: crash-induced evidence-chain fork"
        );
        assert!(card.true_positive, "{cell}: detection survives the crash");
        assert_eq!(
            card.recovery_fraction, 1.0,
            "{cell}: acked-durable writes and offloaded retention survive power loss"
        );
    }

    // --- Blackout + cut: a power loss *inside* a refused-offload outage.
    // The degradation acceptance: every acked page recovers, zero evidence
    // loss, unforked chain — possible only because sealed segments staged
    // into the durable spill region while the wire was dead.
    for cell in [
        "hm/classic/blackout_cut/bare",
        "src/timing/blackout_cut/mq4x8",
    ] {
        let card = find(&cards, cell);
        assert_eq!(card.power_cuts, 1, "{cell}: the scheduled cut fired");
        assert!(
            card.offload_failures > 0,
            "{cell}: the blackout refused offload traffic"
        );
        assert!(
            card.segments_spilled > 0,
            "{cell}: sealed evidence staged durably during the outage"
        );
        assert!(
            card.spill_replayed > 0,
            "{cell}: recovery replayed the spill region"
        );
        assert!(card.attack_interruptions >= 1, "{cell}");
        assert!(
            card.chain_verified,
            "{cell}: spill replay must not fork the evidence chain"
        );
        assert!(card.true_positive, "{cell}: detection survives the outage");
        assert_eq!(
            card.recovery_fraction, 1.0,
            "{cell}: zero evidence loss across blackout + cut"
        );
        assert_eq!(card.data_loss_bytes, 0, "{cell}");
    }

    // --- Queue-mode partition: buffered offloads replay in order, free.
    let card = find(&cards, "hm/classic/partition_queue/bare");
    assert!(card.offloads_queued > 0, "window saw offload traffic");
    assert_eq!(
        card.offloads_replayed, card.offloads_queued,
        "every queued offload replayed on heal"
    );
    assert_eq!(card.offloads_dropped, 0);
    assert!(card.chain_verified);
    assert!(card.true_positive);
    assert_eq!(card.recovery_fraction, 1.0);

    // --- Drop-mode partition: lost offloads are DETECTED, never silent.
    let card = find(&cards, "hm/trim/partition_drop/bare");
    assert!(card.offloads_dropped > 0, "window dropped offload traffic");
    assert!(
        card.chain_gap_detected,
        "dropped offloads must surface as a chain gap"
    );
    assert!(!card.chain_verified);
    assert!(
        card.data_loss_bytes > 0,
        "dropped retention is honestly reported lost"
    );
    assert!(card.recovery_fraction >= 0.7, "loss bounded by the window");

    // --- Shard death mid-attack: array survives, loss bounded + accounted.
    let card = find(&cards, "mail/classic/shard_death/array3");
    assert!(
        card.attack_interruptions >= 1,
        "the actor hit the dead shard"
    );
    assert!(card.chain_verified, "survivor + replacement chains verify");
    assert!(
        card.recovery_fraction >= 0.85,
        "salvage covers everything the attack destroyed pre-death: {}",
        card.recovery_fraction
    );
    assert!(
        card.verdict != Verdict::Benign,
        "fleet detection survives losing one member's evidence"
    );

    // --- Double failure: two members die, the array still comes back.
    let card = find(&cards, "mail/trim/double_fault/array3");
    assert!(
        card.attack_interruptions >= 2,
        "both deaths interrupted the actor"
    );
    assert!(card.chain_verified);
    assert!(
        card.recovery_fraction >= 0.65,
        "two parity-less losses stay bounded: {}",
        card.recovery_fraction
    );

    // --- Coverage of the acceptance grid.
    let topologies: std::collections::BTreeSet<&str> = cards
        .iter()
        .map(|c| c.cell.rsplit('/').next().unwrap())
        .collect();
    assert!(topologies.len() >= 2, "≥2 topologies: {topologies:?}");
    let schedules: std::collections::BTreeSet<&str> = cards
        .iter()
        .map(|c| c.cell.split('/').nth(2).unwrap())
        .collect();
    assert!(schedules.len() >= 3, "≥3 fault schedules: {schedules:?}");
    let actors: std::collections::BTreeSet<&str> = cards
        .iter()
        .map(|c| c.cell.split('/').nth(1).unwrap())
        .collect();
    assert!(actors.len() >= 3, "≥3 actors: {actors:?}");

    // --- Machine-readable record for cross-PR tracking.
    let rows = ScenarioMatrix::bench_rows(&cards);
    let path =
        rssd_bench::write_bench_json("scenarios", &rows).expect("write BENCH_scenarios.json");
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("\"bench\": \"scenarios\""));
    assert!(body.contains("hm/classic/power_cut/bare"));
}

#[test]
fn seeded_plans_score_rather_than_error() {
    // Seeded schedules compose faults arbitrarily — cuts inside partition
    // windows included. Every composition must come back as a scorecard;
    // the only tolerated error is recovery refusing to resume over a
    // chain holed by *dropped* offloads (unrecoverable by policy).
    use rssd_faults::{ActorKind, FaultPlan, Scenario, Topology};
    let mut scored = 0usize;
    for seed in 0..10u64 {
        let scenario = Scenario {
            profile: "hm",
            actor: ActorKind::Classic,
            plan: FaultPlan::Seeded { seed },
            topology: Topology::Bare,
            seed: 40 + seed,
        };
        match scenario.run() {
            Ok(card) => {
                assert!(
                    card.chain_verified != card.chain_gap_detected,
                    "{}: verdict on the chain must be definite",
                    card.cell
                );
                scored += 1;
            }
            Err(rssd_faults::FaultError::Recovery(_)) => {
                let schedule = rssd_faults::FaultSchedule::seeded(seed, 256, 1);
                assert!(
                    schedule.events().iter().any(|e| matches!(
                        e,
                        rssd_faults::FaultEvent::PartitionStart {
                            mode: rssd_faults::PartitionMode::DropSilently,
                            ..
                        }
                    )),
                    "seed {seed}: recovery may only refuse after dropped offloads"
                );
            }
            Err(e) => panic!("seed {seed}: injected faults must be scored, got {e}"),
        }
    }
    assert!(scored >= 5, "most seeded cells must produce scorecards");
}

#[test]
fn matrix_is_deterministic_per_seed() {
    let cell = &ScenarioMatrix::curated().cells[2]; // classic + power cut
    let a = cell.run().unwrap();
    let b = cell.run().unwrap();
    assert_eq!(a, b, "same seed, same scorecard");
    assert_eq!(a.to_json(), b.to_json(), "byte-identical rendering");
}
