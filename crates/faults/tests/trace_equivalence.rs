//! Observer inertness, pinned as properties: attaching a **recording**
//! trace sink to a scenario must be byte-invisible in every simulated
//! result — same [`Scorecard`](rssd_faults::Scorecard), same serialized
//! JSON — bare, behind the full fault pipeline, and over the NVMe-oE wire.
//! The dual-timeline tracer is read-only by construction; these tests make
//! that construction a contract.

use proptest::prelude::*;
use rssd_faults::{ActorKind, FaultPlan, Scenario, Topology};
use rssd_net::LinkConfig;
use rssd_obs::SinkHandle;

fn actors() -> impl Strategy<Value = ActorKind> {
    prop_oneof![
        Just(ActorKind::None),
        Just(ActorKind::Classic),
        Just(ActorKind::GcFlood),
        Just(ActorKind::Timing),
        Just(ActorKind::Trim),
    ]
}

fn profiles() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("hm"), Just("src"), Just("mail")]
}

proptest! {
    // Every case runs the cell twice; scenarios finish in well under a
    // second each, so a handful of cases explores the space within CI
    // budget.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bare topology, no faults: the plain pipeline with and without a
    /// recording sink.
    #[test]
    fn recording_sink_is_invisible_bare(
        profile in profiles(),
        actor in actors(),
        seed in 0u64..10_000,
    ) {
        let scenario = Scenario {
            profile,
            actor,
            plan: FaultPlan::None,
            topology: Topology::Bare,
            seed,
        };
        let untraced = scenario.run().expect("untraced run");
        let sink = SinkHandle::recording();
        let traced = scenario.run_traced(sink.clone()).expect("traced run");
        prop_assert_eq!(&untraced, &traced, "recording sink perturbed the scorecard");
        prop_assert_eq!(untraced.to_json(), traced.to_json());
        prop_assert!(!sink.take_events().is_empty(), "recording sink saw nothing");
    }

    /// Behind the FaultInjector with live fault plans: the sink rides the
    /// whole power-cut / partition / shard-death machinery untouched.
    #[test]
    fn recording_sink_is_invisible_under_faults(
        actor in actors(),
        plan_pick in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let (plan, topology) = match plan_pick {
            0 => (FaultPlan::PowerCutMidAttack, Topology::Bare),
            1 => (FaultPlan::PartitionDrop, Topology::Bare),
            _ => (
                FaultPlan::ShardDeath { shard: 1 },
                Topology::Array { shards: 3, stripe_pages: 4 },
            ),
        };
        let scenario = Scenario {
            profile: "hm",
            actor,
            plan,
            topology,
            seed,
        };
        // Arbitrary (actor, plan, seed) combos may legitimately refuse to
        // run (e.g. a fault landing where the harness cannot absorb it);
        // the property is that the observer changes *nothing* — success,
        // scorecard, or the exact failure.
        let untraced = scenario.run();
        let traced = scenario.run_traced(SinkHandle::recording());
        match (untraced, traced) {
            (Ok(u), Ok(t)) => {
                prop_assert_eq!(&u, &t, "sink perturbed the faulted pipeline");
                prop_assert_eq!(u.to_json(), t.to_json());
            }
            (Err(u), Err(t)) => prop_assert_eq!(
                u.to_string(),
                t.to_string(),
                "sink changed the failure mode"
            ),
            (u, t) => prop_assert!(
                false,
                "sink flipped run success: untraced {u:?} vs traced {t:?}"
            ),
        }
    }

    /// Over the simulated NVMe-oE wire, where the sink additionally sees
    /// link losses and retransmissions.
    #[test]
    fn recording_sink_is_invisible_over_the_wire(
        actor in actors(),
        lossy in any::<bool>(),
        seed in 0u64..10_000,
    ) {
        let scenario = Scenario {
            profile: "hm",
            actor,
            plan: FaultPlan::None,
            topology: Topology::Bare,
            seed,
        };
        let link = if lossy {
            LinkConfig::lossy(7)
        } else {
            LinkConfig::datacenter_10g()
        };
        let untraced = scenario.run_wire(link).expect("untraced wire run");
        let traced = scenario
            .run_wire_traced(link, SinkHandle::recording())
            .expect("traced wire run");
        prop_assert_eq!(&untraced, &traced, "sink perturbed the wire pipeline");
        prop_assert_eq!(untraced.to_json(), traced.to_json());
    }
}
