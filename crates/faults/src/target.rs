//! The fault-injection surface of a device under test.
//!
//! [`FaultTarget`] is what the [`FaultInjector`](crate::FaultInjector) and
//! the scenario harness drive: a [`BlockDevice`] that additionally knows how
//! to crash and recover, partition and heal its remote link(s), kill and
//! revive shards, audit its evidence chain, and answer point-in-time
//! recovery queries. Implementations exist for a bare
//! [`RssdDevice`] and for an [`RssdArray`] of them, over any remote that
//! implements [`FaultRemote`] — which includes the plain
//! [`LoopbackTarget`] (partitions unsupported, everything else works), so
//! the *same generic harness* runs both the faulted and the direct
//! ("existing behavior") configurations the differential tests compare.

use crate::remote::{FaultyRemote, PartitionMode, PermissiveTarget, RemoteFaultStats};
use crate::schedule::FaultSchedule;
use rssd_array::{ArrayError, RssdArray, ShardStatus};
use rssd_core::{
    HistoryAudit, LoopbackTarget, OffloadStats, RemoteTarget, RssdConfig, RssdDevice, WireRemote,
};
use rssd_flash::{FlashGeometry, NandStats, NandTiming, SimClock};
use rssd_ftl::FtlStats;
use rssd_net::LinkConfig;
use rssd_ssd::{BlockDevice, LatencyStats};
use serde::{Deserialize, Serialize};

/// Failures of fault-control operations.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The device under test has no such fault surface (e.g. killing a
    /// shard of a bare device).
    Unsupported(&'static str),
    /// An array lifecycle operation failed.
    Array(ArrayError),
    /// Post-crash recovery failed (unreachable or tampered remote).
    Recovery(String),
    /// The scenario harness hit a state the cell definition does not allow
    /// (e.g. a replay aborted on an error no fault explains).
    Scenario(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Unsupported(what) => {
                write!(f, "fault surface unsupported by this device: {what}")
            }
            FaultError::Array(e) => write!(f, "array: {e}"),
            FaultError::Recovery(e) => write!(f, "recovery: {e}"),
            FaultError::Scenario(e) => write!(f, "scenario: {e}"),
        }
    }
}

impl std::error::Error for FaultError {}

impl From<ArrayError> for FaultError {
    fn from(e: ArrayError) -> Self {
        FaultError::Array(e)
    }
}

/// What a power cycle (crash + recover) cost and rebuilt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct PowerRestoreReport {
    /// Pending log records lost with the controller RAM.
    pub pending_records_lost: u64,
    /// Retained pre-images whose only reference was a pending record.
    pub pending_preimages_lost: u64,
    /// Offloaded segments walked while rebuilding the volatile indexes.
    pub segments_walked: u64,
    /// Retained versions indexed again (recoverable after the restart).
    pub versions_indexed: u64,
}

/// A remote target the scenario harness knows how to construct and
/// partition. [`FaultyRemote`] gives real windows; the plain stores
/// implement the control surface as a no-op (`false`) so the same generic
/// code drives the direct, wrapper-free configuration.
pub trait FaultRemote: RemoteTarget + Sized {
    /// A fresh, empty store of this kind (replacement shards get one).
    fn fresh() -> Self;

    /// Opens a partition window; `false` when unsupported by this remote.
    fn set_partition(&mut self, mode: PartitionMode) -> bool;

    /// Heals the window, replaying buffered offloads; returns the replayed
    /// count.
    fn heal(&mut self) -> u64;

    /// Injection counters (zero for plain stores).
    fn fault_stats(&self) -> RemoteFaultStats {
        RemoteFaultStats::default()
    }
}

impl FaultRemote for LoopbackTarget {
    fn fresh() -> Self {
        LoopbackTarget::new()
    }

    fn set_partition(&mut self, mode: PartitionMode) -> bool {
        // The plain loopback can only model visible unreachability.
        match mode {
            PartitionMode::Refuse => {
                self.set_reachable(false);
                true
            }
            PartitionMode::QueueForReplay | PartitionMode::DropSilently => false,
        }
    }

    fn heal(&mut self) -> u64 {
        self.set_reachable(true);
        0
    }
}

impl FaultRemote for PermissiveTarget {
    fn fresh() -> Self {
        PermissiveTarget::new()
    }

    fn set_partition(&mut self, mode: PartitionMode) -> bool {
        match mode {
            PartitionMode::Refuse => {
                self.set_reachable(false);
                true
            }
            PartitionMode::QueueForReplay | PartitionMode::DropSilently => false,
        }
    }

    fn heal(&mut self) -> u64 {
        self.set_reachable(true);
        0
    }
}

impl<R: RemoteTarget + FaultRemote> FaultRemote for FaultyRemote<R> {
    fn fresh() -> Self {
        FaultyRemote::new(R::fresh())
    }

    fn set_partition(&mut self, mode: PartitionMode) -> bool {
        self.partition(mode);
        true
    }

    fn heal(&mut self) -> u64 {
        FaultyRemote::heal(self)
    }

    fn fault_stats(&self) -> RemoteFaultStats {
        FaultyRemote::fault_stats(self)
    }
}

/// The wire expression of the fault matrix: every [`PartitionMode`] maps
/// onto a link condition of the NVMe-oE fabric instead of an injected
/// result, so chain gaps and replay are emergent protocol behavior.
///
/// * `Refuse` → uplink blackout, no edge relay: transfers exhaust their
///   stall budget and surface `Unreachable`.
/// * `QueueForReplay` → uplink blackout with a store-and-forward edge
///   relay; heal replays the buffer over the restored wire.
/// * `DropSilently` → the link is fine but the collector acks and loses
///   segments before durability.
impl<R: RemoteTarget + FaultRemote> FaultRemote for WireRemote<R> {
    fn fresh() -> Self {
        WireRemote::new(R::fresh(), LinkConfig::datacenter_10g())
    }

    fn set_partition(&mut self, mode: PartitionMode) -> bool {
        match mode {
            PartitionMode::Refuse => {
                self.set_uplink_down(true);
                self.set_store_and_forward(false);
            }
            PartitionMode::QueueForReplay => {
                self.set_uplink_down(true);
                self.set_store_and_forward(true);
            }
            PartitionMode::DropSilently => self.set_ingest_drop(true),
        }
        true
    }

    fn heal(&mut self) -> u64 {
        WireRemote::heal(self)
    }

    fn fault_stats(&self) -> RemoteFaultStats {
        let s = self.stats();
        RemoteFaultStats {
            offloads_refused: s.transfers_refused,
            offloads_queued: s.relay_acked,
            offloads_replayed: s.relay_replayed,
            offloads_dropped: s.ingest_dropped,
        }
    }
}

/// The geometry scenario members (and their replacements) are built with.
pub(crate) const MEMBER_CAPACITY_BYTES: u64 = 4 * 1024 * 1024;

/// The geometry of *durable* members (spill-enabled cells): one capacity
/// step larger than [`MEMBER_CAPACITY_BYTES`] so the reserved spill blocks
/// come out of extra flash, not out of the allocator pool the baseline
/// members run their workloads in.
pub(crate) const DURABLE_MEMBER_CAPACITY_BYTES: u64 = 8 * 1024 * 1024;

/// NAND blocks durable members reserve as an evidence-spill region.
pub(crate) const MEMBER_SPILL_BLOCKS: u32 = 3;

/// Builds one scenario member: a small RSSD on its own clock over a fresh
/// remote of kind `R`. Used both by the harness to assemble topologies and
/// by [`FaultTarget::revive_dead_shards`] to construct replacements, so the
/// two always agree on geometry. The offload segment is kept small (4
/// retained pages) so the window of pending, fault-vulnerable retention is
/// tight — the scenario matrix measures exactly what that window costs.
pub fn scenario_member<R: FaultRemote>(device_id: u64) -> RssdDevice<R> {
    scenario_member_with(device_id, R::fresh())
}

/// [`scenario_member`] with an explicit, caller-built remote — used by the
/// shared-uplink topology, where every member's [`WireRemote`] must be
/// constructed over a clone of the *same* [`SharedLink`](rssd_net::SharedLink)
/// so their offloads queue behind each other on one wire. Replacement
/// shards built via [`FaultTarget::revive_dead_shards`] still use
/// [`scenario_member`], i.e. a fresh private uplink: a replacement drive
/// gets recabled, not spliced into the dead one's wire.
pub fn scenario_member_with<R: RemoteTarget>(device_id: u64, remote: R) -> RssdDevice<R> {
    RssdDevice::new(
        FlashGeometry::with_capacity(MEMBER_CAPACITY_BYTES),
        NandTiming::instant(),
        SimClock::new(),
        RssdConfig {
            device_id,
            segment_pages: 4,
            ..RssdConfig::default()
        },
        remote,
    )
}

/// A *durable* scenario member: same small segments as [`scenario_member`],
/// plus an FTL-reserved evidence-spill region so sealed segments survive a
/// power cut that lands inside a remote outage. Used by fault plans whose
/// whole point is the outage × cut product ([`FaultPlan::needs_spill`]).
///
/// [`FaultPlan::needs_spill`]: crate::FaultPlan::needs_spill
pub fn scenario_member_durable<R: FaultRemote>(device_id: u64) -> RssdDevice<R> {
    scenario_member_durable_with(device_id, R::fresh())
}

/// [`scenario_member_durable`] with an explicit, caller-built remote (the
/// shared-uplink analogue of [`scenario_member_with`]).
pub fn scenario_member_durable_with<R: RemoteTarget>(device_id: u64, remote: R) -> RssdDevice<R> {
    RssdDevice::new(
        FlashGeometry::with_capacity(DURABLE_MEMBER_CAPACITY_BYTES),
        NandTiming::instant(),
        SimClock::new(),
        RssdConfig {
            device_id,
            segment_pages: 4,
            spill_blocks: MEMBER_SPILL_BLOCKS,
            ..RssdConfig::default()
        },
        remote,
    )
}

/// The full fault surface of a device under test.
pub trait FaultTarget: BlockDevice {
    /// Power-cycles the device: volatile state is dropped (crash) and then
    /// rebuilt from flash and the remote evidence chain (recover).
    ///
    /// # Errors
    ///
    /// [`FaultError::Recovery`] when the remote is unreachable or fails
    /// chain verification.
    fn power_restore(&mut self) -> Result<PowerRestoreReport, FaultError>;

    /// Opens a partition window on the device's remote link(s); `false`
    /// when this device/remote combination cannot model the mode.
    fn set_partition(&mut self, mode: PartitionMode) -> bool;

    /// Heals open partition windows; returns replayed offloads.
    fn heal_partition(&mut self) -> u64;

    /// Kills an array member.
    ///
    /// # Errors
    ///
    /// [`FaultError::Unsupported`] on a bare device;
    /// [`FaultError::Array`] when the member cannot fail (bad index).
    fn kill_shard(&mut self, shard: usize) -> Result<(), FaultError> {
        let _ = shard;
        Err(FaultError::Unsupported("shard death on a bare device"))
    }

    /// Rebuilds every dead shard onto a fresh replacement, optionally to a
    /// point in time. Returns how many shards were revived.
    ///
    /// # Errors
    ///
    /// Propagates array rebuild failures.
    fn revive_dead_shards(&mut self, restore_before_ns: Option<u64>) -> Result<usize, FaultError> {
        let _ = restore_before_ns;
        Ok(0)
    }

    /// Chain-verified history audit (fleet-merged for arrays, ordered by
    /// record time).
    fn history_audit(&mut self) -> HistoryAudit;

    /// Point-in-time recovery: the version of `lpa` valid just before
    /// `before_ns`, wherever it lives.
    fn recover_as_of(&mut self, lpa: u64, before_ns: u64) -> Option<Vec<u8>>;

    /// Offload counters (fleet-merged for arrays).
    fn offload_totals(&self) -> OffloadStats;

    /// Raw NAND counters (fleet-merged for arrays via
    /// [`NandStats::merge`]).
    fn nand_totals(&self) -> NandStats;

    /// FTL counters (fleet-merged for arrays via [`FtlStats::merge`]).
    fn ftl_totals(&self) -> FtlStats;

    /// Device-side latency distribution (fleet-merged for arrays).
    fn latency_totals(&self) -> LatencyStats;

    /// Remote fault-injection counters (fleet-merged for arrays).
    fn remote_fault_totals(&self) -> RemoteFaultStats {
        RemoteFaultStats::default()
    }

    /// Arms a fault schedule, when this target is (or wraps) a
    /// [`FaultInjector`](crate::FaultInjector); `false` otherwise — which
    /// is how the same generic harness drives the direct, injector-free
    /// configuration (only meaningful with the empty schedule).
    fn arm_schedule(&mut self, schedule: &FaultSchedule) -> bool {
        let _ = schedule;
        false
    }

    /// Commands executed so far (0 for targets without an injector).
    fn ops_count(&self) -> u64 {
        0
    }

    /// Power cuts fired so far.
    fn power_cut_count(&self) -> u64 {
        0
    }

    /// Batches torn by mid-batch cuts.
    fn torn_batch_count(&self) -> u64 {
        0
    }

    /// Scheduled events that could not be applied to this topology.
    fn skipped_event_count(&self) -> u64 {
        0
    }

    /// Installs a trace sink across the target's whole stack (FTL, NAND,
    /// offload engine, wire, and — when wrapped by a
    /// [`FaultInjector`](crate::FaultInjector) — fault firings). The
    /// default is a no-op so bare [`BlockDevice`] baselines compile
    /// unchanged.
    fn set_trace_sink(&mut self, sink: rssd_obs::SinkHandle) {
        let _ = sink;
    }
}

impl<R: FaultRemote> FaultTarget for RssdDevice<R> {
    fn power_restore(&mut self) -> Result<PowerRestoreReport, FaultError> {
        // crash() is idempotent while down and always returns the report of
        // the cut that did the damage, so a retry after a failed recovery
        // (e.g. the remote was partitioned on the first attempt) still
        // reports the real losses.
        let crash = self.crash();
        let recovery = self.recover().map_err(FaultError::Recovery)?;
        Ok(PowerRestoreReport {
            pending_records_lost: crash.pending_records_lost,
            pending_preimages_lost: crash.pending_preimages_lost,
            segments_walked: recovery.segments_walked,
            versions_indexed: recovery.versions_indexed,
        })
    }

    fn set_partition(&mut self, mode: PartitionMode) -> bool {
        self.remote_mut().set_partition(mode)
    }

    fn heal_partition(&mut self) -> u64 {
        self.remote_mut().heal()
    }

    fn history_audit(&mut self) -> HistoryAudit {
        self.audit_history()
    }

    fn recover_as_of(&mut self, lpa: u64, before_ns: u64) -> Option<Vec<u8>> {
        self.recover_page_before(lpa, before_ns)
    }

    fn offload_totals(&self) -> OffloadStats {
        self.offload_stats()
    }

    fn nand_totals(&self) -> NandStats {
        self.nand_stats().clone()
    }

    fn ftl_totals(&self) -> FtlStats {
        *self.ftl_stats()
    }

    fn latency_totals(&self) -> LatencyStats {
        self.latency().clone()
    }

    fn remote_fault_totals(&self) -> RemoteFaultStats {
        self.remote().fault_stats()
    }

    fn set_trace_sink(&mut self, sink: rssd_obs::SinkHandle) {
        RssdDevice::set_trace_sink(self, sink);
    }
}

impl<R: FaultRemote> FaultTarget for RssdArray<RssdDevice<R>> {
    fn power_restore(&mut self) -> Result<PowerRestoreReport, FaultError> {
        let crash = self.crash();
        let recovery = self
            .recover()
            .map_err(|e| FaultError::Recovery(e.to_string()))?;
        Ok(PowerRestoreReport {
            pending_records_lost: crash.pending_records_lost,
            pending_preimages_lost: crash.pending_preimages_lost,
            segments_walked: recovery.segments_walked,
            versions_indexed: recovery.versions_indexed,
        })
    }

    fn set_partition(&mut self, mode: PartitionMode) -> bool {
        let mut any = false;
        for shard in 0..self.shard_count() {
            if let Some(member) = self.shard_mut(shard) {
                any |= member.remote_mut().set_partition(mode);
            }
        }
        any
    }

    fn heal_partition(&mut self) -> u64 {
        let mut replayed = 0u64;
        for shard in 0..self.shard_count() {
            if let Some(member) = self.shard_mut(shard) {
                replayed += member.remote_mut().heal();
            }
        }
        replayed
    }

    fn kill_shard(&mut self, shard: usize) -> Result<(), FaultError> {
        match self.fail_shard(shard) {
            Ok(_) => Ok(()),
            // A tampered salvage still leaves the shard degraded (over an
            // empty image) — that *is* the fault being injected, not a
            // harness failure.
            Err(ArrayError::SalvageFailed { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn revive_dead_shards(&mut self, restore_before_ns: Option<u64>) -> Result<usize, FaultError> {
        let shard_pages = self.layout().shard_pages();
        let mut revived = 0usize;
        for shard in 0..self.shard_count() {
            if self.shard_status(shard) != ShardStatus::Degraded {
                continue;
            }
            let replacement: RssdDevice<R> = scenario_member(1000 + shard as u64);
            self.begin_rebuild(shard, replacement, restore_before_ns)
                .map_err(FaultError::Array)?;
            loop {
                let progress = self
                    .rebuild_step(shard, shard_pages.max(1))
                    .map_err(FaultError::Array)?;
                if progress.done {
                    break;
                }
            }
            revived += 1;
        }
        Ok(revived)
    }

    fn history_audit(&mut self) -> HistoryAudit {
        let layout = *self.layout();
        let mut merged = HistoryAudit {
            records: Vec::new(),
            verified: true,
            failure: None,
        };
        for shard in 0..self.shard_count() {
            if let Some(member) = self.shard_mut(shard) {
                let audit = member.audit_history();
                if !audit.verified && merged.failure.is_none() {
                    merged.verified = false;
                    merged.failure = audit.failure.map(|f| format!("shard {shard}: {f}"));
                }
                // Members log member-local page addresses; translate back
                // to array addresses so the merged stream has one namespace
                // (local spaces overlap — shard 0's page 5 and shard 1's
                // page 5 are different array pages and must not collide in
                // the detectors' distinct-page sets).
                merged
                    .records
                    .extend(audit.records.into_iter().map(|mut r| {
                        if r.lpa < layout.shard_pages() {
                            r.lpa = layout.array_lpa(shard, r.lpa);
                        }
                        r
                    }));
            }
            // Degraded members carry no local device; their pre-death
            // records live only in the (already consumed) salvage.
        }
        merged.records.sort_by_key(|r| r.at_ns);
        merged
    }

    fn recover_as_of(&mut self, lpa: u64, before_ns: u64) -> Option<Vec<u8>> {
        self.recover_before(lpa, before_ns)
    }

    fn offload_totals(&self) -> OffloadStats {
        self.offload_stats()
    }

    fn nand_totals(&self) -> NandStats {
        self.nand_stats()
    }

    fn ftl_totals(&self) -> FtlStats {
        self.ftl_stats()
    }

    fn latency_totals(&self) -> LatencyStats {
        self.latency()
    }

    fn remote_fault_totals(&self) -> RemoteFaultStats {
        let mut merged = RemoteFaultStats::default();
        for shard in 0..self.shard_count() {
            if let Some(member) = self.shard(shard) {
                merged.merge(&member.remote().fault_stats());
            }
        }
        merged
    }

    fn set_trace_sink(&mut self, sink: rssd_obs::SinkHandle) {
        // Shards have independent clocks; a per-shard track prefix keeps
        // every track single-clock (and so monotone in simulated time).
        for shard in 0..self.shard_count() {
            if let Some(member) = self.shard_mut(shard) {
                RssdDevice::set_trace_sink(
                    member,
                    sink.with_track_prefix(&format!("shard{shard}/")),
                );
            }
        }
    }
}
