//! The scenario matrix: workload profile × attack actor × fault schedule ×
//! topology, every cell scored.
//!
//! A [`Scenario`] names one cell. Running it is fully deterministic: the
//! workload generator, the attack actors, the simulated clock and the
//! [`FaultSchedule`] are all seeded, so a cell id plus a seed reproduces
//! the exact same torn batch and the exact same scorecard, on every
//! machine, every run.
//!
//! Each cell executes the same four phases:
//!
//! 1. **Benign prefix** — the cell's [`TraceProfile`] replayed through the
//!    NVMe queue layer (queue shape per [`Topology`]).
//! 2. **Corpus** — a [`FileTable`] of known content, the hostages.
//! 3. **Attack under faults** — the cell's fault plan is anchored to the
//!    attack's op window and armed on the [`FaultInjector`]; the actor
//!    runs against the injector. Power cuts interrupt the actor (it
//!    restarts after power returns — malware persists); shard deaths make
//!    it fail onto survivors until the harness revives the dead member.
//! 4. **Audit & scoring** — partitions heal, logs flush, dead shards are
//!    rebuilt to the pre-attack point, and the [`Scorecard`] is computed:
//!    detection (from the chain-derived history), point-in-time recovery
//!    of every victim page, data-loss accounting, and the evidence-chain
//!    verdict.
//!
//! The same generic runner also drives an injector-free device over plain
//! [`LoopbackTarget`]s ([`run_direct`](Scenario::run_direct)) — the
//! pre-existing happy path — which is what pins the harness: a `none`
//! schedule must produce a byte-identical scorecard in both pipelines.

use crate::injector::FaultInjector;
use crate::remote::{FaultyRemote, PartitionMode, PermissiveTarget};
use crate::schedule::{FaultEvent, FaultSchedule};
use crate::target::{
    scenario_member, scenario_member_durable, scenario_member_durable_with, scenario_member_with,
    FaultError, FaultRemote, FaultTarget,
};
use rssd_array::RssdArray;
use rssd_attacks::{ClassicRansomware, FileTable, GcAttack, TimingAttack, TrimAttack};
use rssd_bench::BenchRow;
use rssd_core::{LoopbackTarget, PostAttackAnalyzer, RssdDevice, WireRemote};
use rssd_detect::Verdict;
use rssd_flash::SimClock;
use rssd_net::{LinkConfig, SharedLink};
use rssd_obs::SinkHandle;
use rssd_ssd::{DeviceError, NvmeController, QueueId};
use rssd_trace::{replay_fanout, IoRecord, ReplayOutcome, TraceProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Files in the hostage corpus. Sized so the victim set (files × pages)
/// sits well clear of the long-horizon profiler's 64-page noise floor and
/// of its 10 % coverage saturation point — detection must not hinge on
/// workload-seed luck.
const CORPUS_FILES: usize = 16;
/// Pages per hostage file (victim pages = files × pages).
const PAGES_PER_FILE: u64 = 8;
/// Benign workload records replayed before the corpus lands.
const BENIGN_RECORDS: usize = 240;
/// Simulated gap between phases, so phase boundaries have distinct
/// timestamps even under instant NAND timing.
const PHASE_GAP_NS: u64 = 1_000_000_000;
/// Attack attempts before the harness declares the cell stuck.
const MAX_ATTACK_ATTEMPTS: u32 = 4;

/// How the host drives the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// One device, one depth-1 queue pair (the scalar-compatible path).
    Bare,
    /// One device, several deep queue pairs fanned out round-robin.
    MultiQueue {
        /// Queue pairs.
        queues: usize,
        /// Depth of each pair.
        depth: usize,
    },
    /// A striped array of RSSD members behind the controller.
    Array {
        /// Member count.
        shards: usize,
        /// Stripe width in pages.
        stripe_pages: u64,
    },
    /// A striped array whose members all offload through **one shared
    /// NVMe-oE uplink** to a common remote: N devices funnel into a single
    /// wire, so concurrent offloads queue behind each other's serialization
    /// time. Only runnable through the wire pipeline
    /// ([`Scenario::run_wire`] / [`Scenario::run`]).
    SharedUplink {
        /// Member count.
        shards: usize,
        /// Stripe width in pages.
        stripe_pages: u64,
    },
}

impl Topology {
    /// The topology axis label of a cell id.
    pub fn label(&self) -> String {
        match self {
            Topology::Bare => "bare".to_string(),
            Topology::MultiQueue { queues, depth } => format!("mq{queues}x{depth}"),
            Topology::Array { shards, .. } => format!("array{shards}"),
            Topology::SharedUplink { shards, .. } => format!("uplink{shards}"),
        }
    }

    fn queue_shape(&self) -> (usize, usize) {
        match self {
            Topology::Bare => (1, 1),
            Topology::MultiQueue { queues, depth } => (*queues, *depth),
            Topology::Array { .. } | Topology::SharedUplink { .. } => (2, 8),
        }
    }

    fn shards(&self) -> usize {
        match self {
            Topology::Array { shards, .. } | Topology::SharedUplink { shards, .. } => *shards,
            _ => 1,
        }
    }
}

/// The attack axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActorKind {
    /// No attack: the false-positive baseline.
    None,
    /// Fast read-encrypt-overwrite.
    Classic,
    /// Encrypt, then flood free space to force GC.
    GcFlood,
    /// Rate-limited encryption spread over hours.
    Timing,
    /// Encrypt-to-copy then trim the originals.
    Trim,
}

impl ActorKind {
    /// The actor axis label of a cell id.
    pub fn label(&self) -> &'static str {
        match self {
            ActorKind::None => "none",
            ActorKind::Classic => "classic",
            ActorKind::GcFlood => "gc_flood",
            ActorKind::Timing => "timing",
            ActorKind::Trim => "trim",
        }
    }

    /// Rough command count of one attack run — used only to anchor fault
    /// plans inside the attack window, so precision is not required.
    fn ops_estimate(&self, victim_pages: u64, logical_pages: u64) -> u64 {
        match self {
            ActorKind::None => 0,
            ActorKind::Classic | ActorKind::Timing => 2 * victim_pages,
            ActorKind::GcFlood => 2 * victim_pages + 2 * logical_pages.saturating_sub(victim_pages),
            ActorKind::Trim => victim_pages,
        }
    }
}

/// The fault axis: a phase-relative plan, resolved into an absolute
/// [`FaultSchedule`] once the attack's op window is known.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPlan {
    /// No faults.
    None,
    /// Power dies halfway through the attack (torn batch, crash, recover).
    PowerCutMidAttack,
    /// The remote link partitions for the middle half of the attack;
    /// offloads are queued and replayed in order on heal.
    PartitionQueue,
    /// The remote link partitions late in the attack; offloads are acked
    /// and silently dropped — the chain-gap case.
    PartitionDrop,
    /// A sustained uplink blackout (refused offloads, no relay) covering
    /// the middle 30 % of the attack, with a power cut landing *inside*
    /// the blackout. The compound case the durable evidence spill exists
    /// for: sealed segments cannot leave the device and then the
    /// controller RAM dies — only the FTL spill region carries the staged
    /// evidence across the cut. Cells with this plan run on spill-enabled
    /// members ([`FaultPlan::needs_spill`]).
    BlackoutCut,
    /// One array member dies mid-attack.
    ShardDeath {
        /// The member to kill.
        shard: usize,
    },
    /// Two members die at different points of the attack.
    DoubleFault {
        /// First casualty.
        first: usize,
        /// Second casualty.
        second: usize,
    },
    /// A seeded pseudo-random mixture over the attack window.
    Seeded {
        /// Schedule seed.
        seed: u64,
    },
}

impl FaultPlan {
    /// The fault axis label of a cell id.
    pub fn label(&self) -> String {
        match self {
            FaultPlan::None => "none".to_string(),
            FaultPlan::PowerCutMidAttack => "power_cut".to_string(),
            FaultPlan::PartitionQueue => "partition_queue".to_string(),
            FaultPlan::PartitionDrop => "partition_drop".to_string(),
            FaultPlan::BlackoutCut => "blackout_cut".to_string(),
            FaultPlan::ShardDeath { .. } => "shard_death".to_string(),
            FaultPlan::DoubleFault { .. } => "double_fault".to_string(),
            FaultPlan::Seeded { seed } => format!("seeded_{seed}"),
        }
    }

    /// Resolves the plan against the attack window `[base, base + est)`.
    fn resolve(&self, base: u64, est: u64, shards: usize) -> FaultSchedule {
        let est = est.max(8);
        match self {
            FaultPlan::None => FaultSchedule::none(),
            FaultPlan::PowerCutMidAttack => FaultSchedule::power_cut(base + est / 2),
            FaultPlan::PartitionQueue => FaultSchedule::partition(
                PartitionMode::QueueForReplay,
                base + est / 4,
                base + 3 * est / 4,
            ),
            FaultPlan::PartitionDrop => FaultSchedule::partition(
                PartitionMode::DropSilently,
                base + est / 2,
                base + 3 * est / 4,
            ),
            // Blackout over the middle 30 % of the attack; the cut fires at
            // the same halfway op as `PowerCutMidAttack`, but here recovery
            // has to walk the spill region because the segments sealed
            // since 35 % never reached the remote.
            FaultPlan::BlackoutCut => FaultSchedule::new(
                "blackout_cut",
                vec![
                    FaultEvent::PartitionStart {
                        at_op: base + 7 * est / 20,
                        mode: PartitionMode::Refuse,
                    },
                    FaultEvent::PowerCut {
                        at_op: base + est / 2,
                    },
                    FaultEvent::PartitionHeal {
                        at_op: base + 13 * est / 20,
                    },
                ],
            ),
            // Deaths land late in the attack: retention guards *destroyed*
            // data, so a striped (parity-less) shard death forfeits whatever
            // live data the attack had not yet touched — the later the
            // death, the more the evidence chain covers. The residual loss
            // is the measured cost of striping without redundancy.
            FaultPlan::ShardDeath { shard } => {
                FaultSchedule::shard_death(*shard, base + 3 * est / 4)
            }
            FaultPlan::DoubleFault { first, second } => FaultSchedule::double_fault(
                *first,
                base + 7 * est / 12,
                *second,
                base + 5 * est / 6,
            ),
            FaultPlan::Seeded { seed } => FaultSchedule::seeded(*seed, est, shards).offset(base),
        }
    }

    /// Whether cells with this plan run on spill-enabled (durable) members.
    /// Only plans that combine an offload outage with a power cut need the
    /// FTL spill region; everything else runs on the baseline geometry so
    /// established cell scorecards stay byte-identical.
    #[must_use]
    pub fn needs_spill(&self) -> bool {
        matches!(self, FaultPlan::BlackoutCut)
    }
}

/// Builds one cell member honoring the plan's durability requirement.
fn plan_member<R: FaultRemote>(plan: FaultPlan, device_id: u64) -> RssdDevice<R> {
    if plan.needs_spill() {
        scenario_member_durable(device_id)
    } else {
        scenario_member(device_id)
    }
}

/// One cell of the scenario matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Trace profile name (Figure 2 axis), e.g. `"hm"`.
    pub profile: &'static str,
    /// The attack actor.
    pub actor: ActorKind,
    /// The fault plan.
    pub plan: FaultPlan,
    /// The host/device topology.
    pub topology: Topology,
    /// Master seed (workload, actor keys, corpus content).
    pub seed: u64,
}

impl Scenario {
    /// The cell id: `profile/actor/fault/topology`.
    pub fn cell_id(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.profile,
            self.actor.label(),
            self.plan.label(),
            self.topology.label()
        )
    }

    /// Runs the cell through the fault pipeline: members over
    /// [`FaultyRemote`]<[`PermissiveTarget`]> wrapped in a
    /// [`FaultInjector`].
    ///
    /// # Errors
    ///
    /// [`FaultError`] when the harness itself cannot proceed (never for a
    /// fault the schedule injected — those are scored, not errored).
    pub fn run(&self) -> Result<Scorecard, FaultError> {
        self.run_traced(SinkHandle::disabled())
    }

    /// [`Scenario::run`] with a trace sink installed across the whole cell
    /// stack (NAND, FTL, offload engine, fault injector, detection
    /// verdict). With a disabled sink this *is* `run()`; with a recording
    /// one the scorecard is byte-identical — sink identity is not
    /// simulation state, which the determinism proptests pin.
    pub fn run_traced(&self, sink: SinkHandle) -> Result<Scorecard, FaultError> {
        type Remote = FaultyRemote<PermissiveTarget>;
        match self.topology {
            Topology::Bare | Topology::MultiQueue { .. } => {
                let device: RssdDevice<Remote> = plan_member(self.plan, 1);
                run_cell_traced(
                    FaultInjector::new(device, &FaultSchedule::none()),
                    self,
                    sink,
                )
            }
            Topology::Array {
                shards,
                stripe_pages,
            } => {
                let members: Vec<RssdDevice<Remote>> = (0..shards as u64)
                    .map(|i| plan_member(self.plan, i))
                    .collect();
                let array = RssdArray::new(members, stripe_pages, SimClock::new());
                run_cell_traced(
                    FaultInjector::new(array, &FaultSchedule::none()),
                    self,
                    sink,
                )
            }
            // A shared uplink only exists on the wire.
            Topology::SharedUplink { .. } => {
                self.run_wire_traced(LinkConfig::datacenter_10g(), sink)
            }
        }
    }

    /// Runs the cell through the **wire pipeline**: members over
    /// [`WireRemote`]<[`PermissiveTarget`]> wrapped in a [`FaultInjector`],
    /// so every offloaded segment crosses the simulated NVMe-oE fabric with
    /// `link`'s bandwidth/propagation/loss, and the cell's partition plan
    /// becomes link blackouts and collector drops instead of injected
    /// results. [`Topology::SharedUplink`] members offload through clones
    /// of one [`SharedLink`]; other topologies get private uplinks.
    ///
    /// With [`LinkConfig::ideal`] this pipeline is byte-identical to
    /// [`Scenario::run`] for fault-free cells — the equivalence suite's
    /// anchor.
    ///
    /// # Errors
    ///
    /// [`FaultError`] when the harness itself cannot proceed (never for a
    /// fault the schedule injected — those are scored, not errored).
    pub fn run_wire(&self, link: LinkConfig) -> Result<Scorecard, FaultError> {
        self.run_wire_traced(link, SinkHandle::disabled())
    }

    /// [`Scenario::run_wire`] with a trace sink; the wire pipeline
    /// additionally records link-loss and retransmission instants from the
    /// NVMe-oE fabric.
    pub fn run_wire_traced(
        &self,
        link: LinkConfig,
        sink: SinkHandle,
    ) -> Result<Scorecard, FaultError> {
        type Remote = WireRemote<PermissiveTarget>;
        let durable = self.plan.needs_spill();
        let member = move |id: u64, remote: Remote| {
            if durable {
                scenario_member_durable_with(id, remote)
            } else {
                scenario_member_with(id, remote)
            }
        };
        match self.topology {
            Topology::Bare | Topology::MultiQueue { .. } => {
                let device = member(1, WireRemote::new(PermissiveTarget::new(), link));
                run_cell_traced(
                    FaultInjector::new(device, &FaultSchedule::none()),
                    self,
                    sink,
                )
            }
            Topology::Array {
                shards,
                stripe_pages,
            } => {
                let members: Vec<RssdDevice<Remote>> = (0..shards as u64)
                    .map(|i| member(i, WireRemote::new(PermissiveTarget::new(), link)))
                    .collect();
                let array = RssdArray::new(members, stripe_pages, SimClock::new());
                run_cell_traced(
                    FaultInjector::new(array, &FaultSchedule::none()),
                    self,
                    sink,
                )
            }
            Topology::SharedUplink {
                shards,
                stripe_pages,
            } => {
                let uplink = SharedLink::new(link);
                let members: Vec<RssdDevice<Remote>> = (0..shards as u64)
                    .map(|i| {
                        member(
                            i,
                            WireRemote::with_uplink(PermissiveTarget::new(), uplink.clone(), link),
                        )
                    })
                    .collect();
                let array = RssdArray::new(members, stripe_pages, SimClock::new());
                run_cell_traced(
                    FaultInjector::new(array, &FaultSchedule::none()),
                    self,
                    sink,
                )
            }
        }
    }

    /// Runs the cell through the pre-existing direct pipeline: plain
    /// [`LoopbackTarget`] remotes, no injector, no wrappers. Only valid for
    /// [`FaultPlan::None`] — this is the differential baseline that pins
    /// the harness against the repo's established behavior.
    ///
    /// # Errors
    ///
    /// [`FaultError::Scenario`] when the cell has a fault plan, or any
    /// harness failure.
    pub fn run_direct(&self) -> Result<Scorecard, FaultError> {
        if self.plan != FaultPlan::None {
            return Err(FaultError::Scenario(
                "the direct pipeline cannot inject faults; use run()".to_string(),
            ));
        }
        if matches!(self.topology, Topology::SharedUplink { .. }) {
            return Err(FaultError::Scenario(
                "a shared uplink only exists on the wire; use run_wire()".to_string(),
            ));
        }
        match self.topology {
            Topology::Bare | Topology::MultiQueue { .. } => {
                let device: RssdDevice<LoopbackTarget> = scenario_member(1);
                run_cell(device, self)
            }
            Topology::Array {
                shards,
                stripe_pages,
            } => {
                let members: Vec<RssdDevice<LoopbackTarget>> =
                    (0..shards as u64).map(scenario_member).collect();
                run_cell(RssdArray::new(members, stripe_pages, SimClock::new()), self)
            }
            Topology::SharedUplink { .. } => unreachable!("rejected above"),
        }
    }
}

/// The measured outcome of one scenario cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct Scorecard {
    /// Cell id (`profile/actor/fault/topology`).
    pub cell: String,
    /// Master seed the cell ran under.
    pub seed: u64,
    /// Ensemble verdict over the chain-derived history.
    pub verdict: Verdict,
    /// Combined suspicion score.
    pub detection_score: f64,
    /// Attack classification string.
    pub attack_class: String,
    /// Attack cell flagged (verdict above benign).
    pub true_positive: bool,
    /// Benign cell flagged (false alarm).
    pub false_positive: bool,
    /// Distinct pages the attack destroyed.
    pub victim_pages: u64,
    /// Victim pages whose pre-attack content the defender can produce
    /// (point-in-time recovery or already-restored content).
    pub recovered_pages: u64,
    /// `recovered / victims` (1.0 when nothing was attacked).
    pub recovery_fraction: f64,
    /// Bytes of victim data the defender cannot produce.
    pub data_loss_bytes: u64,
    /// Evidence chain verified end to end with every record accounted for.
    pub chain_verified: bool,
    /// A chain gap or tamper was *detected* (never silent).
    pub chain_gap_detected: bool,
    /// Records the audit examined.
    pub records_audited: u64,
    /// Power cuts the schedule fired.
    pub power_cuts: u64,
    /// Batches torn mid-execution by a cut.
    pub torn_batches: u64,
    /// Times the attack was interrupted (cut or dead shard) and resumed.
    pub attack_interruptions: u64,
    /// Array members revived by rebuild during the cell.
    pub shards_revived: u64,
    /// Segments the device believes durably offloaded.
    pub segments_offloaded: u64,
    /// Offload attempts that failed visibly.
    pub offload_failures: u64,
    /// Sealed segments staged durably in the FTL spill region while the
    /// remote was unreachable.
    pub segments_spilled: u64,
    /// Spilled segments replayed back into the staged queue by post-cut
    /// recovery.
    pub spill_replayed: u64,
    /// Offloads buffered during queue-mode partitions.
    pub offloads_queued: u64,
    /// Buffered offloads replayed in order on heal.
    pub offloads_replayed: u64,
    /// Offloads acked and destroyed by drop-mode partitions.
    pub offloads_dropped: u64,
    /// Scheduled events inapplicable to the topology (should be 0 in a
    /// well-formed matrix).
    pub skipped_events: u64,
}

impl Scorecard {
    /// Deterministic JSON rendering (fixed key order, fixed float format) —
    /// the byte-identity the differential tests compare.
    pub fn to_json(&self) -> String {
        let verdict = match self.verdict {
            Verdict::Benign => "benign",
            Verdict::Suspicious => "suspicious",
            Verdict::Ransomware => "ransomware",
        };
        format!(
            "{{\"cell\": \"{}\", \"seed\": {}, \"verdict\": \"{}\", \
             \"detection_score\": {:.6}, \"attack_class\": \"{}\", \
             \"true_positive\": {}, \"false_positive\": {}, \
             \"victim_pages\": {}, \"recovered_pages\": {}, \
             \"recovery_fraction\": {:.6}, \"data_loss_bytes\": {}, \
             \"chain_verified\": {}, \"chain_gap_detected\": {}, \
             \"records_audited\": {}, \"power_cuts\": {}, \
             \"torn_batches\": {}, \"attack_interruptions\": {}, \
             \"shards_revived\": {}, \"segments_offloaded\": {}, \
             \"offload_failures\": {}, \"segments_spilled\": {}, \
             \"spill_replayed\": {}, \"offloads_queued\": {}, \
             \"offloads_replayed\": {}, \"offloads_dropped\": {}, \
             \"skipped_events\": {}}}",
            self.cell,
            self.seed,
            verdict,
            self.detection_score,
            self.attack_class,
            self.true_positive,
            self.false_positive,
            self.victim_pages,
            self.recovered_pages,
            self.recovery_fraction,
            self.data_loss_bytes,
            self.chain_verified,
            self.chain_gap_detected,
            self.records_audited,
            self.power_cuts,
            self.torn_batches,
            self.attack_interruptions,
            self.shards_revived,
            self.segments_offloaded,
            self.offload_failures,
            self.segments_spilled,
            self.spill_replayed,
            self.offloads_queued,
            self.offloads_replayed,
            self.offloads_dropped,
            self.skipped_events,
        )
    }

    /// The scorecard as a bench row for `BENCH_scenarios.json`.
    pub fn bench_row(&self) -> BenchRow {
        BenchRow {
            config: self.cell.clone(),
            metrics: vec![
                ("true_positive", if self.true_positive { 1.0 } else { 0.0 }),
                (
                    "false_positive",
                    if self.false_positive { 1.0 } else { 0.0 },
                ),
                ("detection_score", self.detection_score),
                ("victim_pages", self.victim_pages as f64),
                ("recovered_pages", self.recovered_pages as f64),
                ("recovery_fraction", self.recovery_fraction),
                ("data_loss_bytes", self.data_loss_bytes as f64),
                (
                    "chain_verified",
                    if self.chain_verified { 1.0 } else { 0.0 },
                ),
                (
                    "chain_gap_detected",
                    if self.chain_gap_detected { 1.0 } else { 0.0 },
                ),
                ("power_cuts", self.power_cuts as f64),
                ("torn_batches", self.torn_batches as f64),
                ("attack_interruptions", self.attack_interruptions as f64),
                ("shards_revived", self.shards_revived as f64),
                ("segments_spilled", self.segments_spilled as f64),
                ("spill_replayed", self.spill_replayed as f64),
                ("offloads_dropped", self.offloads_dropped as f64),
            ],
        }
    }
}

/// The scenario matrix: a named set of cells run under one roof.
#[derive(Clone, Debug)]
pub struct ScenarioMatrix {
    /// The cells.
    pub cells: Vec<Scenario>,
}

impl ScenarioMatrix {
    /// The curated CI matrix: 12 cells spanning 3 topologies, 5 fault
    /// schedules and 5 actors (incl. the benign false-positive baselines),
    /// all seeded, all finishing in seconds. This is the grid the tier-1
    /// test asserts cell by cell.
    pub fn curated() -> Self {
        let array = Topology::Array {
            shards: 3,
            stripe_pages: 4,
        };
        let mq = Topology::MultiQueue {
            queues: 4,
            depth: 8,
        };
        let cell = |profile, actor, plan, topology, seed| Scenario {
            profile,
            actor,
            plan,
            topology,
            seed,
        };
        ScenarioMatrix {
            cells: vec![
                cell("hm", ActorKind::None, FaultPlan::None, Topology::Bare, 11),
                cell(
                    "hm",
                    ActorKind::Classic,
                    FaultPlan::None,
                    Topology::Bare,
                    12,
                ),
                cell(
                    "hm",
                    ActorKind::Classic,
                    FaultPlan::PowerCutMidAttack,
                    Topology::Bare,
                    13,
                ),
                cell(
                    "hm",
                    ActorKind::Classic,
                    FaultPlan::PartitionQueue,
                    Topology::Bare,
                    14,
                ),
                cell(
                    "hm",
                    ActorKind::Trim,
                    FaultPlan::PartitionDrop,
                    Topology::Bare,
                    15,
                ),
                cell("src", ActorKind::GcFlood, FaultPlan::None, mq, 16),
                cell(
                    "src",
                    ActorKind::Timing,
                    FaultPlan::PowerCutMidAttack,
                    mq,
                    17,
                ),
                cell("src", ActorKind::Trim, FaultPlan::None, mq, 18),
                cell("mail", ActorKind::None, FaultPlan::None, array, 19),
                cell("mail", ActorKind::Classic, FaultPlan::None, array, 20),
                cell(
                    "mail",
                    ActorKind::Classic,
                    FaultPlan::ShardDeath { shard: 1 },
                    array,
                    21,
                ),
                cell(
                    "mail",
                    ActorKind::Trim,
                    FaultPlan::DoubleFault {
                        first: 0,
                        second: 2,
                    },
                    array,
                    22,
                ),
                // The degradation acceptance cells: a sustained uplink
                // blackout with a power cut inside it, on spill-enabled
                // members. Appended after the original grid so the
                // determinism tests' positional cell references stay valid.
                cell(
                    "hm",
                    ActorKind::Classic,
                    FaultPlan::BlackoutCut,
                    Topology::Bare,
                    23,
                ),
                cell("src", ActorKind::Timing, FaultPlan::BlackoutCut, mq, 24),
            ],
        }
    }

    /// Runs every cell, in order.
    ///
    /// # Errors
    ///
    /// Propagates the first harness failure (injected faults never error —
    /// they are scored).
    pub fn run(&self) -> Result<Vec<Scorecard>, FaultError> {
        self.cells.iter().map(Scenario::run).collect()
    }

    /// Bench rows for [`rssd_bench::write_bench_json`].
    pub fn bench_rows(cards: &[Scorecard]) -> Vec<BenchRow> {
        cards.iter().map(Scorecard::bench_row).collect()
    }
}

/// Aggregate rollup over a set of scenario [`Scorecard`]s — the matrix's
/// merge API, so examples and harnesses fold cell results through one
/// audited path instead of hand-summing fields (which drifts the moment a
/// counter is added).
///
/// [`MatrixSummary::absorb`] folds one card in; [`MatrixSummary::merge`]
/// combines two summaries. Both are associative with
/// `MatrixSummary::default()` as identity, so a summary built per-shard,
/// per-thread, or per-cell folds to the same totals in any grouping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct MatrixSummary {
    /// Cards absorbed.
    pub cells: u64,
    /// Cards whose cell ran an attack actor.
    pub attacked_cells: u64,
    /// Attacked cards flagged above benign.
    pub true_positives: u64,
    /// Benign cards flagged (false alarms).
    pub false_positives: u64,
    /// Victim pages across all cards.
    pub victim_pages: u64,
    /// Recovered victim pages across all cards.
    pub recovered_pages: u64,
    /// Bytes of victim data no card's defender could produce.
    pub data_loss_bytes: u64,
    /// Power cuts fired across all cards.
    pub power_cuts: u64,
    /// Batches torn mid-execution across all cards.
    pub torn_batches: u64,
    /// Attack interruptions absorbed across all cards.
    pub attack_interruptions: u64,
    /// Array members revived across all cards.
    pub shards_revived: u64,
    /// Segments durably offloaded across all cards.
    pub segments_offloaded: u64,
    /// Offloads dropped by silent partitions across all cards.
    pub offloads_dropped: u64,
    /// Cards whose chain had a *detected* gap.
    pub chain_gaps_detected: u64,
    /// Cards whose chain neither verified nor flagged a gap — must stay 0
    /// (the "no silent gaps" invariant).
    pub silent_chain_gaps: u64,
    /// Fault-free attacked cards (the 100%-recovery obligation set).
    pub fault_free_attacked: u64,
    /// Fault-free attacked cards that recovered every victim page.
    pub fault_free_recovered: u64,
}

impl MatrixSummary {
    /// Folds one cell's scorecard into the summary.
    pub fn absorb(&mut self, card: &Scorecard) {
        self.cells += 1;
        if card.victim_pages > 0 || card.true_positive {
            self.attacked_cells += 1;
        }
        self.true_positives += u64::from(card.true_positive);
        self.false_positives += u64::from(card.false_positive);
        self.victim_pages += card.victim_pages;
        self.recovered_pages += card.recovered_pages;
        self.data_loss_bytes += card.data_loss_bytes;
        self.power_cuts += card.power_cuts;
        self.torn_batches += card.torn_batches;
        self.attack_interruptions += card.attack_interruptions;
        self.shards_revived += card.shards_revived;
        self.segments_offloaded += card.segments_offloaded;
        self.offloads_dropped += card.offloads_dropped;
        self.chain_gaps_detected += u64::from(card.chain_gap_detected);
        self.silent_chain_gaps += u64::from(card.chain_verified == card.chain_gap_detected);
        let fault_free = card.cell.contains("/none/");
        if fault_free && card.victim_pages > 0 {
            self.fault_free_attacked += 1;
            self.fault_free_recovered += u64::from(card.recovery_fraction == 1.0);
        }
    }

    /// Combines another summary into this one (fleet-of-matrices rollup).
    pub fn merge(&mut self, other: &MatrixSummary) {
        self.cells += other.cells;
        self.attacked_cells += other.attacked_cells;
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.victim_pages += other.victim_pages;
        self.recovered_pages += other.recovered_pages;
        self.data_loss_bytes += other.data_loss_bytes;
        self.power_cuts += other.power_cuts;
        self.torn_batches += other.torn_batches;
        self.attack_interruptions += other.attack_interruptions;
        self.shards_revived += other.shards_revived;
        self.segments_offloaded += other.segments_offloaded;
        self.offloads_dropped += other.offloads_dropped;
        self.chain_gaps_detected += other.chain_gaps_detected;
        self.silent_chain_gaps += other.silent_chain_gaps;
        self.fault_free_attacked += other.fault_free_attacked;
        self.fault_free_recovered += other.fault_free_recovered;
    }

    /// Merged recovery fraction over every victim page (1.0 when no card
    /// had victims) — page-weighted, like the fleet WAF.
    #[must_use]
    pub fn recovery_fraction(&self) -> f64 {
        if self.victim_pages == 0 {
            return 1.0;
        }
        self.recovered_pages as f64 / self.victim_pages as f64
    }

    /// The CI invariants, evaluated on merged counters: fault-free attacked
    /// cells all recovered fully, no benign cell false-positived, and no
    /// chain gap went unflagged.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.fault_free_recovered == self.fault_free_attacked
            && self.false_positives == 0
            && self.silent_chain_gaps == 0
    }
}

/// Brings a cut device back. Recovery walks the remote evidence chain, so
/// if the cut landed inside an open partition window the first attempt
/// fails on the unreachable store — a real operator restores the network
/// before power-cycling the array, so the helper heals the link and
/// retries once. (A schedule that *dropped* offloads and crashed after
/// post-gap segments landed leaves the device unrecoverable by policy —
/// recovery refuses to resume over a holed chain — and the error
/// propagates.)
fn restore_power_with_link<D: FaultTarget>(device: &mut D) -> Result<(), FaultError> {
    if device.power_restore().is_err() {
        device.heal_partition();
        let _ = device.power_restore()?;
    }
    Ok(())
}

/// Replays `records` with resume-across-power-cuts: an abort caused by a
/// scheduled cut restores power and continues from the next record; any
/// other abort is a harness failure.
fn replay_resilient<D: FaultTarget>(
    device: &mut D,
    records: Vec<IoRecord>,
    queues: usize,
    depth: usize,
    interruptions: &mut u64,
) -> Result<(), FaultError> {
    let mut remaining = records;
    loop {
        let outcome = {
            let mut controller = NvmeController::new(&mut *device);
            let qids: Vec<QueueId> = (0..queues)
                .map(|_| controller.create_queue_pair(depth))
                .collect();
            replay_fanout(&mut controller, &qids, remaining.clone())
        };
        match outcome {
            ReplayOutcome::Completed(_) => return Ok(()),
            ref aborted @ ReplayOutcome::Aborted { ref error, .. } => {
                match error {
                    DeviceError::PowerLoss => {
                        restore_power_with_link(device)?;
                        *interruptions += 1;
                    }
                    // Writes aimed at a dead member while the benign phase
                    // runs degraded: skip the record, like a stalled write.
                    DeviceError::ShardFailed { .. } => *interruptions += 1,
                    other => {
                        return Err(FaultError::Scenario(format!(
                            "benign replay aborted on unexplained error: {other}"
                        )))
                    }
                }
                let issued = aborted.resume_index().min(remaining.len());
                remaining = remaining.split_off(issued);
                if remaining.is_empty() {
                    return Ok(());
                }
            }
        }
    }
}

/// Runs one attack attempt, returning the destroyed pages on success.
fn attack_once<D: FaultTarget>(
    device: &mut D,
    actor: ActorKind,
    victims: &FileTable,
    seed: u64,
) -> Result<Vec<u64>, DeviceError> {
    let outcome = match actor {
        ActorKind::None => return Ok(Vec::new()),
        ActorKind::Classic => ClassicRansomware::new(seed).execute(device, victims)?,
        ActorKind::GcFlood => GcAttack::new(seed, 2).execute(device, victims)?,
        ActorKind::Timing => {
            TimingAttack::new(seed, 8, 30 * 60 * 1_000_000_000)
                .execute(device, victims, |_| Ok(()))?
        }
        ActorKind::Trim => TrimAttack::new(seed, false).execute(device, victims)?,
    };
    Ok(outcome.victim_lpas)
}

/// The generic cell runner — same code for the faulted and direct
/// pipelines; only the device type differs.
fn run_cell<D: FaultTarget>(device: D, scenario: &Scenario) -> Result<Scorecard, FaultError> {
    run_cell_traced(device, scenario, SinkHandle::disabled())
}

/// [`run_cell`] with a trace sink installed on the device stack before the
/// first command.
fn run_cell_traced<D: FaultTarget>(
    mut device: D,
    scenario: &Scenario,
    sink: SinkHandle,
) -> Result<Scorecard, FaultError> {
    device.set_trace_sink(sink.clone());
    let profile = TraceProfile::by_name(scenario.profile)
        .ok_or_else(|| FaultError::Scenario(format!("unknown profile {}", scenario.profile)))?;
    let logical_pages = device.logical_pages();
    let page_size = device.page_size();
    let (queues, depth) = scenario.topology.queue_shape();
    let mut interruptions = 0u64;

    // Phase 1: benign prefix through the queue layer.
    let records: Vec<IoRecord> = profile
        .workload(logical_pages, page_size, scenario.seed)
        .take(BENIGN_RECORDS)
        .collect();
    replay_resilient(&mut device, records, queues, depth, &mut interruptions)?;
    device.clock().advance(PHASE_GAP_NS);

    // Phase 2: the hostage corpus.
    let victims = FileTable::populate(&mut device, CORPUS_FILES, PAGES_PER_FILE, scenario.seed)
        .map_err(|e| FaultError::Scenario(format!("corpus population failed: {e}")))?;
    device.clock().advance(PHASE_GAP_NS);
    let attack_start = device.clock().now_ns();

    // Phase 3: arm the fault plan against the attack window and attack.
    let est = scenario
        .actor
        .ops_estimate(victims.total_pages(), logical_pages);
    let schedule = scenario
        .plan
        .resolve(device.ops_count(), est, scenario.topology.shards());
    let armed = device.arm_schedule(&schedule);
    if !armed && !schedule.is_none() {
        return Err(FaultError::Scenario(
            "cell has a fault plan but the device cannot arm schedules".to_string(),
        ));
    }

    let victim_lpas: Vec<u64>;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match attack_once(&mut device, scenario.actor, &victims, scenario.seed) {
            Ok(lpas) => {
                victim_lpas = lpas;
                break;
            }
            Err(DeviceError::PowerLoss) if attempts < MAX_ATTACK_ATTEMPTS => {
                restore_power_with_link(&mut device)?;
                interruptions += 1;
            }
            Err(DeviceError::ShardFailed { .. }) if attempts < MAX_ATTACK_ATTEMPTS => {
                // The defender rebuilds the dead member to the pre-attack
                // point; the attacker (persistent malware) retries.
                device.revive_dead_shards(Some(attack_start))?;
                interruptions += 1;
            }
            Err(e) => {
                return Err(FaultError::Scenario(format!(
                    "attack aborted on unexplained error after {attempts} attempts: {e}"
                )))
            }
        }
    }

    // Phase 4: heal, settle, revive, audit, score. Scoring drives reads
    // through the same device, so whatever the schedule still holds (a cut
    // past the attack's actual op count — the estimate is rough) must not
    // fire mid-measurement: disarm first.
    let _ = device.arm_schedule(&FaultSchedule::none());
    device.heal_partition();
    if device.flush().is_err() {
        // flush only fails with PowerLoss here, when a cut fired right at
        // the attack's last op; restore and retry once.
        restore_power_with_link(&mut device)?;
        interruptions += 1;
        let _ = device.flush();
    }
    let revived = device.revive_dead_shards(if scenario.actor == ActorKind::None {
        None
    } else {
        Some(attack_start)
    })? as u64;

    let audit = device.history_audit();
    let analysis = PostAttackAnalyzer::new().analyze(&audit.records, audit.verified);
    if sink.is_enabled() {
        sink.instant(
            "detect",
            "verdict",
            device.clock().now_ns(),
            &[
                ("verdict", format!("{:?}", analysis.verdict)),
                ("score", format!("{:.3}", analysis.score)),
                ("attack_class", analysis.attack_class.to_string()),
            ],
        );
    }

    // Recovery scoring: can the defender produce every victim page's
    // pre-attack content — via point-in-time recovery, or because a rebuild
    // already put it back?
    let mut expected: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
    for (fi, file) in victims.files().iter().enumerate() {
        for (pi, lpa) in file.lpas().enumerate() {
            expected.insert(lpa, (fi, pi as u64));
        }
    }
    let mut distinct_victims: Vec<u64> = victim_lpas
        .iter()
        .copied()
        .filter(|l| expected.contains_key(l))
        .collect();
    distinct_victims.sort_unstable();
    distinct_victims.dedup();
    let mut recovered = 0u64;
    for &lpa in &distinct_victims {
        let (fi, pi) = expected[&lpa];
        let want = victims.files()[fi].expected_page(pi, page_size);
        let via_recovery = device
            .recover_as_of(lpa, attack_start)
            .is_some_and(|data| data == want);
        let via_content = via_recovery || device.read_page(lpa).is_ok_and(|data| data == want);
        if via_content {
            recovered += 1;
        }
    }
    let victim_count = distinct_victims.len() as u64;
    let recovery_fraction = if victim_count == 0 {
        1.0
    } else {
        recovered as f64 / victim_count as f64
    };

    let offload = device.offload_totals();
    let remote_faults = device.remote_fault_totals();
    let attacked = scenario.actor != ActorKind::None;
    Ok(Scorecard {
        cell: scenario.cell_id(),
        seed: scenario.seed,
        verdict: analysis.verdict,
        detection_score: analysis.score,
        attack_class: analysis.attack_class.to_string(),
        true_positive: attacked && analysis.verdict != Verdict::Benign,
        false_positive: !attacked && analysis.verdict != Verdict::Benign,
        victim_pages: victim_count,
        recovered_pages: recovered,
        recovery_fraction,
        data_loss_bytes: (victim_count - recovered) * page_size as u64,
        chain_verified: audit.verified,
        chain_gap_detected: !audit.verified,
        records_audited: audit.records.len() as u64,
        power_cuts: device.power_cut_count(),
        torn_batches: device.torn_batch_count(),
        attack_interruptions: interruptions,
        shards_revived: revived,
        segments_offloaded: offload.segments_offloaded,
        offload_failures: offload.offload_failures,
        segments_spilled: offload.segments_spilled,
        spill_replayed: offload.spill_replayed,
        offloads_queued: remote_faults.offloads_queued,
        offloads_replayed: remote_faults.offloads_replayed,
        offloads_dropped: remote_faults.offloads_dropped,
        skipped_events: device.skipped_event_count(),
    })
}

#[cfg(test)]
mod summary_tests {
    use super::*;

    fn card(cell: &str, victims: u64, recovered: u64, verified: bool, gap: bool) -> Scorecard {
        Scorecard {
            cell: cell.to_string(),
            seed: 1,
            verdict: if victims > 0 {
                Verdict::Ransomware
            } else {
                Verdict::Benign
            },
            detection_score: 0.0,
            attack_class: String::new(),
            true_positive: victims > 0,
            false_positive: false,
            victim_pages: victims,
            recovered_pages: recovered,
            recovery_fraction: if victims == 0 {
                1.0
            } else {
                recovered as f64 / victims as f64
            },
            data_loss_bytes: (victims - recovered) * 4096,
            chain_verified: verified,
            chain_gap_detected: gap,
            records_audited: 10,
            power_cuts: 1,
            torn_batches: 0,
            attack_interruptions: 2,
            shards_revived: 0,
            segments_offloaded: 3,
            offload_failures: 0,
            segments_spilled: 0,
            spill_replayed: 0,
            offloads_queued: 0,
            offloads_replayed: 0,
            offloads_dropped: 1,
            skipped_events: 0,
        }
    }

    #[test]
    fn default_is_identity_for_merge() {
        let mut s = MatrixSummary::default();
        s.absorb(&card("text/none/none/bare", 8, 8, true, false));
        let mut left = s;
        left.merge(&MatrixSummary::default());
        let mut right = MatrixSummary::default();
        right.merge(&s);
        assert_eq!(left, s);
        assert_eq!(right, s);
    }

    #[test]
    fn merge_is_associative_and_matches_absorb_order() {
        let cards = [
            card("text/overwrite/none/bare", 8, 8, true, false),
            card("media/none/cuts/array", 0, 0, true, false),
            card("sql/trim/drop/array", 6, 4, false, true),
        ];
        // One summary absorbing everything...
        let mut whole = MatrixSummary::default();
        for c in &cards {
            whole.absorb(c);
        }
        // ...equals per-card summaries merged in either grouping.
        let parts: Vec<MatrixSummary> = cards
            .iter()
            .map(|c| {
                let mut s = MatrixSummary::default();
                s.absorb(c);
                s
            })
            .collect();
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut tail = parts[1];
        tail.merge(&parts[2]);
        let mut right = parts[0];
        right.merge(&tail);
        assert_eq!(left, whole);
        assert_eq!(right, whole);
    }

    #[test]
    fn invariants_catch_silent_gap_and_lossy_fault_free_cell() {
        let mut clean = MatrixSummary::default();
        clean.absorb(&card("text/overwrite/none/bare", 8, 8, true, false));
        assert!(clean.invariants_hold());
        assert_eq!(clean.fault_free_attacked, 1);
        assert_eq!(clean.recovery_fraction(), 1.0);

        // Chain neither verified nor flagged: silent gap, invariant fails.
        let mut silent = MatrixSummary::default();
        silent.absorb(&card("sql/trim/drop/array", 6, 6, false, false));
        assert!(!silent.invariants_hold());

        // Fault-free cell that lost pages: recovery obligation fails.
        let mut lossy = MatrixSummary::default();
        lossy.absorb(&card("media/random/none/bare", 8, 5, true, false));
        assert!(!lossy.invariants_hold());
        assert!(lossy.recovery_fraction() < 1.0);
    }
}
