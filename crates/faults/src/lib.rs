//! **rssd-faults** — deterministic fault injection and the scenario-matrix
//! harness.
//!
//! The repo's other crates prove RSSD's guarantees on the happy path: the
//! device, its remote store and the array all stay up, every batch
//! completes atomically. This crate breaks things **on purpose and
//! reproducibly**, and then checks that the guarantees hold anyway:
//!
//! * [`FaultSchedule`] ([`schedule`]) — seeded, op-indexed fault plans:
//!   power cuts (torn batches), remote partition windows
//!   (refused / queued-then-replayed / silently dropped offloads), and
//!   shard deaths — pure data, replayable bit-for-bit.
//! * [`FaultInjector`] ([`injector`]) — a [`BlockDevice`](rssd_ssd::BlockDevice)
//!   wrapper that executes a schedule, so faults compose under the NVMe
//!   controller, the replay harnesses, the attack actors and `RssdArray`
//!   unchanged.
//! * [`FaultyRemote`] / [`PermissiveTarget`] ([`remote`]) — network-fault
//!   wrappers for the remote half of the codesign.
//! * [`FaultTarget`] ([`target`]) — the fault surface of a device under
//!   test (crash/recover, partition/heal, kill/revive, chain audit),
//!   implemented for bare devices and arrays, faulted or direct.
//! * [`ScenarioMatrix`] ([`scenario`]) — composes workload profile ×
//!   attack actor × fault schedule × topology into named cells, runs each
//!   under a seed, and scores every cell ([`Scorecard`]): detection
//!   true/false positives, point-in-time recovery fraction, data-loss
//!   bytes, and the evidence-chain verdict.
//!
//! The invariants the matrix enforces (see DESIGN.md §6):
//!
//! 1. **Acked-durable or detectably lost** — every write acknowledged to
//!    the host is durable on flash across a crash; retention metadata that
//!    dies with controller RAM is bounded and visible (chain length vs.
//!    accounted records).
//! 2. **The evidence chain never forks** — a crash truncates the volatile
//!    tail and recovery resumes at the durable head; dropped offloads
//!    surface as verification failures, never as a silently shorter
//!    history.
//! 3. **Fault-free cells lose nothing** — with the `none` schedule, every
//!    cell recovers 100% of attacked data, byte-identical to the direct
//!    (wrapper-free) pipeline.

pub mod injector;
pub mod remote;
pub mod scenario;
pub mod schedule;
pub mod target;

pub use injector::{FaultInjector, TornBatch};
pub use remote::{FaultyRemote, PartitionMode, PermissiveTarget, RemoteFaultStats};
pub use scenario::{
    ActorKind, FaultPlan, MatrixSummary, Scenario, ScenarioMatrix, Scorecard, Topology,
};
pub use schedule::{FaultEvent, FaultSchedule};
pub use target::{
    scenario_member, scenario_member_durable, scenario_member_durable_with, scenario_member_with,
    FaultError, FaultRemote, FaultTarget, PowerRestoreReport,
};

// Re-exported so scorecard consumers can match verdicts without another dep.
pub use rssd_detect::Verdict;
