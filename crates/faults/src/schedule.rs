//! Deterministic, seeded fault schedules.
//!
//! A [`FaultSchedule`] is pure data: an ordered list of [`FaultEvent`]s
//! keyed by the *operation index* at which they fire — the count of
//! commands the device under test has executed, as maintained by the
//! [`FaultInjector`](crate::FaultInjector). Because the whole simulation is
//! deterministic (seeded workloads, seeded attacks, a simulated clock), an
//! op index pins a fault to an exact point in the I/O stream: the same
//! schedule against the same workload reproduces the same torn batch, the
//! same partition window, the same mid-rebuild shard death, every run.

use crate::remote::PartitionMode;
use serde::{Deserialize, Serialize};

/// One scheduled fault. `at_op` counts commands executed by the injector;
/// the event fires immediately *before* the `at_op`-th command executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Power is cut: the command at `at_op` (and everything after it) fails
    /// with `DeviceError::PowerLoss`. A cut landing inside a `submit_batch`
    /// tears the batch — the prefix before `at_op` persists, the suffix is
    /// lost. The device stays down until the harness restores power
    /// (crash + recover).
    PowerCut {
        /// Command index at which the power dies.
        at_op: u64,
    },
    /// The link to the remote store partitions in the given mode.
    PartitionStart {
        /// Command index at which the partition begins.
        at_op: u64,
        /// What happens to offloads attempted during the window.
        mode: PartitionMode,
    },
    /// The partition heals; queued offloads are replayed in order.
    PartitionHeal {
        /// Command index at which the link comes back.
        at_op: u64,
    },
    /// An array member dies (total loss of its local half).
    ShardDeath {
        /// Command index at which the shard dies.
        at_op: u64,
        /// The member to kill.
        shard: usize,
    },
}

impl FaultEvent {
    /// The operation index the event fires at.
    pub fn at_op(&self) -> u64 {
        match self {
            FaultEvent::PowerCut { at_op }
            | FaultEvent::PartitionStart { at_op, .. }
            | FaultEvent::PartitionHeal { at_op }
            | FaultEvent::ShardDeath { at_op, .. } => *at_op,
        }
    }

    fn shifted(self, base: u64) -> Self {
        match self {
            FaultEvent::PowerCut { at_op } => FaultEvent::PowerCut {
                at_op: at_op + base,
            },
            FaultEvent::PartitionStart { at_op, mode } => FaultEvent::PartitionStart {
                at_op: at_op + base,
                mode,
            },
            FaultEvent::PartitionHeal { at_op } => FaultEvent::PartitionHeal {
                at_op: at_op + base,
            },
            FaultEvent::ShardDeath { at_op, shard } => FaultEvent::ShardDeath {
                at_op: at_op + base,
                shard,
            },
        }
    }
}

/// A named, ordered fault schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    name: String,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule: no faults, the happy path.
    pub fn none() -> Self {
        FaultSchedule {
            name: "none".to_string(),
            events: Vec::new(),
        }
    }

    /// A named schedule from explicit events (sorted by firing op).
    pub fn new(name: impl Into<String>, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(FaultEvent::at_op);
        FaultSchedule {
            name: name.into(),
            events,
        }
    }

    /// A single power cut at `at_op`.
    pub fn power_cut(at_op: u64) -> Self {
        Self::new("power_cut", vec![FaultEvent::PowerCut { at_op }])
    }

    /// A remote partition window `[from_op, until_op)` in `mode`.
    pub fn partition(mode: PartitionMode, from_op: u64, until_op: u64) -> Self {
        let name = match mode {
            PartitionMode::Refuse => "partition_refuse",
            PartitionMode::QueueForReplay => "partition_queue",
            PartitionMode::DropSilently => "partition_drop",
        };
        Self::new(
            name,
            vec![
                FaultEvent::PartitionStart {
                    at_op: from_op,
                    mode,
                },
                FaultEvent::PartitionHeal { at_op: until_op },
            ],
        )
    }

    /// One shard dies at `at_op`.
    pub fn shard_death(shard: usize, at_op: u64) -> Self {
        Self::new("shard_death", vec![FaultEvent::ShardDeath { at_op, shard }])
    }

    /// Two shards die, the second while the first is expected to be mid-
    /// rebuild (the harness rebuilds reactively, so any `at_op2 > at_op1`
    /// with recovery traffic in between exercises the double-failure path).
    pub fn double_fault(shard1: usize, at_op1: u64, shard2: usize, at_op2: u64) -> Self {
        Self::new(
            "double_fault",
            vec![
                FaultEvent::ShardDeath {
                    at_op: at_op1,
                    shard: shard1,
                },
                FaultEvent::ShardDeath {
                    at_op: at_op2,
                    shard: shard2,
                },
            ],
        )
    }

    /// A reproducible pseudo-random schedule over a horizon of
    /// `horizon_ops` commands against a device of `shards` members (use 1
    /// for a bare device — shard deaths are then never generated). The same
    /// seed always yields the same schedule.
    pub fn seeded(seed: u64, horizon_ops: u64, shards: usize) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut events = Vec::new();
        let horizon = horizon_ops.max(4);
        let pick = |state: &mut u64, bound: u64| splitmix(state) % bound;

        if pick(&mut state, 2) == 0 {
            events.push(FaultEvent::PowerCut {
                at_op: pick(&mut state, horizon),
            });
        }
        if pick(&mut state, 2) == 0 {
            let from = pick(&mut state, horizon - 2);
            let until = from + 1 + pick(&mut state, horizon - from - 1);
            let mode = match pick(&mut state, 3) {
                0 => PartitionMode::Refuse,
                1 => PartitionMode::QueueForReplay,
                _ => PartitionMode::DropSilently,
            };
            events.push(FaultEvent::PartitionStart { at_op: from, mode });
            events.push(FaultEvent::PartitionHeal { at_op: until });
        }
        if shards > 1 && pick(&mut state, 2) == 0 {
            events.push(FaultEvent::ShardDeath {
                at_op: pick(&mut state, horizon),
                shard: (pick(&mut state, shards as u64)) as usize,
            });
        }
        Self::new(format!("seeded_{seed}"), events)
    }

    /// The schedule's name (the fault axis of a scenario cell id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The events, sorted by firing op.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when the schedule contains no events.
    pub fn is_none(&self) -> bool {
        self.events.is_empty()
    }

    /// The same schedule shifted `base` operations later — how a phase-
    /// relative schedule ("cut 40 ops into the attack") is anchored to the
    /// absolute op counter once the earlier phases' op count is known.
    #[must_use]
    pub fn offset(&self, base: u64) -> Self {
        FaultSchedule {
            name: self.name.clone(),
            events: self.events.iter().map(|e| e.shifted(base)).collect(),
        }
    }
}

/// SplitMix64 — a tiny, dependency-free, reproducible generator. Not used
/// for anything cryptographic; only to scatter fault points.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constructors_sort_events() {
        let s = FaultSchedule::new(
            "x",
            vec![
                FaultEvent::PartitionHeal { at_op: 9 },
                FaultEvent::PowerCut { at_op: 3 },
            ],
        );
        assert_eq!(s.events()[0].at_op(), 3);
        assert_eq!(s.events()[1].at_op(), 9);
    }

    #[test]
    fn none_is_empty() {
        assert!(FaultSchedule::none().is_none());
        assert!(!FaultSchedule::power_cut(5).is_none());
    }

    #[test]
    fn seeded_is_reproducible_and_seed_sensitive() {
        let a = FaultSchedule::seeded(42, 1000, 4);
        let b = FaultSchedule::seeded(42, 1000, 4);
        assert_eq!(a, b);
        let differs = (0..20u64).any(|s| FaultSchedule::seeded(s, 1000, 4) != a);
        assert!(differs, "some seed must yield a different schedule");
    }

    #[test]
    fn seeded_never_kills_shards_on_bare_devices() {
        for seed in 0..50u64 {
            let s = FaultSchedule::seeded(seed, 500, 1);
            assert!(
                !s.events()
                    .iter()
                    .any(|e| matches!(e, FaultEvent::ShardDeath { .. })),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn offset_shifts_every_event() {
        let s = FaultSchedule::partition(PartitionMode::QueueForReplay, 10, 20).offset(100);
        assert_eq!(s.events()[0].at_op(), 110);
        assert_eq!(s.events()[1].at_op(), 120);
        assert_eq!(s.name(), "partition_queue");
    }
}
