//! The fault injector: a [`BlockDevice`] wrapper that executes a
//! [`FaultSchedule`] against the device it wraps.
//!
//! The injector maintains the **operation counter** fault schedules are
//! keyed by: every command it forwards (scalar or batched) increments it,
//! and before each command it fires the events that have come due —
//! partition windows open and heal, shards die, and power cuts land. A cut
//! that falls inside a `submit_batch` **tears the batch**: the prefix
//! before the cut executes through the device's native batched path and
//! persists; the suffix completes with [`DeviceError::PowerLoss`], exactly
//! like commands that were in flight when a real capacitor ran dry.
//!
//! Because the injector is itself a [`BlockDevice`] (and a
//! [`FaultTarget`]), it composes under the NVMe controller, the replay
//! harnesses, the attack actors and `RssdArray` unchanged — faults are a
//! wrapper, never a special code path in the device.

use crate::remote::{PartitionMode, RemoteFaultStats};
use crate::schedule::{FaultEvent, FaultSchedule};
use crate::target::{FaultError, FaultTarget, PowerRestoreReport};
use rssd_core::{HistoryAudit, OffloadStats};
use rssd_flash::SimClock;
use rssd_obs::SinkHandle;
use rssd_ssd::{BlockDevice, CommandResult, DeviceError, IoCommand};
use serde::{Deserialize, Serialize};

/// One torn `submit_batch`: the persisted prefix and the lost suffix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TornBatch {
    /// Commands in the batch.
    pub batch_len: usize,
    /// Commands that executed (and persisted) before the cut.
    pub persisted: usize,
    /// Operation counter at the cut.
    pub at_op: u64,
}

/// A [`BlockDevice`] wrapper executing a [`FaultSchedule`].
#[derive(Debug)]
pub struct FaultInjector<D: FaultTarget> {
    inner: D,
    events: Vec<FaultEvent>,
    next_event: usize,
    ops_executed: u64,
    powered_off: bool,
    power_cuts: u64,
    torn_batches: Vec<TornBatch>,
    /// Events that could not be applied (e.g. a shard death scheduled
    /// against a bare device, or a queue-mode partition over a remote that
    /// cannot buffer). A non-zero count means the schedule and topology
    /// disagree — surfaced instead of silently dropped.
    skipped_events: u64,
    model_name: String,
    /// Trace sink for fault-firing instants on the `faults` track.
    sink: SinkHandle,
}

impl<D: FaultTarget> FaultInjector<D> {
    /// Wraps `inner` with `schedule` armed from operation 0.
    pub fn new(inner: D, schedule: &FaultSchedule) -> Self {
        let model_name = format!("Faulty({})", inner.model_name());
        let mut injector = FaultInjector {
            inner,
            events: Vec::new(),
            next_event: 0,
            ops_executed: 0,
            powered_off: false,
            power_cuts: 0,
            torn_batches: Vec::new(),
            skipped_events: 0,
            model_name,
            sink: SinkHandle::disabled(),
        };
        injector.arm(schedule);
        injector
    }

    /// Replaces the armed schedule. Events already in the past (at_op below
    /// the current counter) are dropped — that is the documented way to run
    /// fault-free phases first and arm an absolute-indexed schedule
    /// afterwards (see [`FaultSchedule::offset`]), so they do *not* count
    /// as [`skipped_events`](Self::skipped_events) (which flags events the
    /// topology could not apply).
    pub fn arm(&mut self, schedule: &FaultSchedule) {
        self.events = schedule.events().to_vec();
        self.next_event = 0;
        while self
            .events
            .get(self.next_event)
            .is_some_and(|e| e.at_op() < self.ops_executed)
        {
            self.next_event += 1;
        }
    }

    /// Commands executed (the schedule's clock).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// `true` after a power cut until [`Self::restore_power`].
    pub fn powered_off(&self) -> bool {
        self.powered_off
    }

    /// Power cuts fired so far.
    pub fn power_cuts(&self) -> u64 {
        self.power_cuts
    }

    /// Batches a power cut tore (prefix persisted, suffix lost).
    pub fn torn_batches(&self) -> &[TornBatch] {
        &self.torn_batches
    }

    /// Scheduled events that could not be applied to this topology.
    pub fn skipped_events(&self) -> u64 {
        self.skipped_events
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the injector.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Brings the device back after a cut: the wrapped device crashes
    /// (dropping volatile state) and recovers from flash plus the remote
    /// evidence chain, then the injector resumes executing commands (and
    /// firing the remaining schedule).
    ///
    /// # Errors
    ///
    /// Propagates the device's recovery failure; the device stays down.
    pub fn restore_power(&mut self) -> Result<PowerRestoreReport, FaultError> {
        let report = self.inner.power_restore()?;
        self.powered_off = false;
        Ok(report)
    }

    /// Fires every event due at the current op counter. Returns `true` when
    /// a power cut landed (the caller must fail the op with `PowerLoss`).
    fn trace_fault(&self, name: &str, at_op: u64, extra: Option<(&str, String)>) {
        if !self.sink.is_enabled() {
            return;
        }
        let mut args = vec![("at_op", at_op.to_string())];
        if let Some((k, v)) = extra {
            args.push((k, v));
        }
        self.sink
            .instant("faults", name, self.inner.clock().now_ns(), &args);
    }

    fn fire_due_events(&mut self) -> bool {
        while let Some(event) = self.events.get(self.next_event).copied() {
            if event.at_op() > self.ops_executed {
                return false;
            }
            self.next_event += 1;
            match event {
                FaultEvent::PowerCut { at_op } => {
                    self.powered_off = true;
                    self.power_cuts += 1;
                    self.trace_fault("power_cut", at_op, None);
                    return true;
                }
                FaultEvent::PartitionStart { mode, at_op } => {
                    self.trace_fault(
                        "partition_start",
                        at_op,
                        Some(("mode", format!("{mode:?}"))),
                    );
                    if !self.inner.set_partition(mode) {
                        self.skipped_events += 1;
                    }
                }
                FaultEvent::PartitionHeal { at_op } => {
                    self.trace_fault("partition_heal", at_op, None);
                    self.inner.heal_partition();
                }
                FaultEvent::ShardDeath { shard, at_op } => {
                    self.trace_fault("shard_death", at_op, Some(("shard", shard.to_string())));
                    if self.inner.kill_shard(shard).is_err() {
                        self.skipped_events += 1;
                    }
                }
            }
        }
        false
    }

    fn pre_op(&mut self) -> Result<(), DeviceError> {
        if self.powered_off {
            return Err(DeviceError::PowerLoss);
        }
        if self.fire_due_events() {
            return Err(DeviceError::PowerLoss);
        }
        Ok(())
    }
}

impl<D: FaultTarget> BlockDevice for FaultInjector<D> {
    fn model_name(&self) -> &str {
        &self.model_name
    }

    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn logical_pages(&self) -> u64 {
        self.inner.logical_pages()
    }

    fn clock(&self) -> &SimClock {
        self.inner.clock()
    }

    fn write_page(&mut self, lpa: u64, data: Vec<u8>) -> Result<(), DeviceError> {
        self.pre_op()?;
        let result = self.inner.write_page(lpa, data);
        self.ops_executed += 1;
        result
    }

    fn read_page(&mut self, lpa: u64) -> Result<Vec<u8>, DeviceError> {
        self.pre_op()?;
        let result = self.inner.read_page(lpa);
        self.ops_executed += 1;
        result
    }

    fn trim_page(&mut self, lpa: u64) -> Result<(), DeviceError> {
        self.pre_op()?;
        let result = self.inner.trim_page(lpa);
        self.ops_executed += 1;
        result
    }

    fn flush(&mut self) -> Result<(), DeviceError> {
        self.pre_op()?;
        let result = self.inner.flush();
        self.ops_executed += 1;
        result
    }

    /// Forwards the batch through the wrapped device's native (pipelined)
    /// batched path, chunked at event boundaries so mid-batch events fire
    /// at their exact op. A power cut mid-batch tears it: the executed
    /// prefix persists (with its real completion times), the rest
    /// completes with `PowerLoss` at the time of the cut.
    fn submit_batch_timed(&mut self, commands: Vec<IoCommand>) -> Vec<(CommandResult, u64)> {
        let total = commands.len();
        let mut results: Vec<(CommandResult, u64)> = Vec::with_capacity(total);
        let mut rest = commands;
        while !rest.is_empty() {
            if self.powered_off || self.fire_due_events() {
                let persisted = results.len();
                if persisted > 0 {
                    self.torn_batches.push(TornBatch {
                        batch_len: total,
                        persisted,
                        at_op: self.ops_executed,
                    });
                }
                let cut_at = self.inner.clock().now_ns();
                results.extend(
                    rest.drain(..)
                        .map(|_| (Err(DeviceError::PowerLoss), cut_at)),
                );
                break;
            }
            let chunk_len = match self.events.get(self.next_event) {
                Some(e) => (e.at_op().saturating_sub(self.ops_executed) as usize).min(rest.len()),
                None => rest.len(),
            };
            debug_assert!(chunk_len > 0, "due events were fired above");
            let chunk: Vec<IoCommand> = rest.drain(..chunk_len).collect();
            let chunk_results = self.inner.submit_batch_timed(chunk);
            self.ops_executed += chunk_results.len() as u64;
            results.extend(chunk_results);
        }
        results
    }

    fn recover_page(&mut self, lpa: u64) -> Option<Vec<u8>> {
        if self.powered_off {
            return None;
        }
        self.inner.recover_page(lpa)
    }
}

impl<D: FaultTarget> FaultTarget for FaultInjector<D> {
    fn power_restore(&mut self) -> Result<PowerRestoreReport, FaultError> {
        self.restore_power()
    }

    fn set_partition(&mut self, mode: PartitionMode) -> bool {
        self.inner.set_partition(mode)
    }

    fn heal_partition(&mut self) -> u64 {
        self.inner.heal_partition()
    }

    fn kill_shard(&mut self, shard: usize) -> Result<(), FaultError> {
        self.inner.kill_shard(shard)
    }

    fn revive_dead_shards(&mut self, restore_before_ns: Option<u64>) -> Result<usize, FaultError> {
        self.inner.revive_dead_shards(restore_before_ns)
    }

    fn history_audit(&mut self) -> HistoryAudit {
        self.inner.history_audit()
    }

    fn recover_as_of(&mut self, lpa: u64, before_ns: u64) -> Option<Vec<u8>> {
        if self.powered_off {
            return None;
        }
        self.inner.recover_as_of(lpa, before_ns)
    }

    fn offload_totals(&self) -> OffloadStats {
        self.inner.offload_totals()
    }

    fn nand_totals(&self) -> rssd_flash::NandStats {
        self.inner.nand_totals()
    }

    fn ftl_totals(&self) -> rssd_ftl::FtlStats {
        self.inner.ftl_totals()
    }

    fn latency_totals(&self) -> rssd_ssd::LatencyStats {
        self.inner.latency_totals()
    }

    fn remote_fault_totals(&self) -> RemoteFaultStats {
        self.inner.remote_fault_totals()
    }

    fn arm_schedule(&mut self, schedule: &FaultSchedule) -> bool {
        self.arm(schedule);
        true
    }

    fn ops_count(&self) -> u64 {
        self.ops_executed
    }

    fn power_cut_count(&self) -> u64 {
        self.power_cuts
    }

    fn torn_batch_count(&self) -> u64 {
        self.torn_batches.len() as u64
    }

    fn skipped_event_count(&self) -> u64 {
        self.skipped_events
    }

    fn set_trace_sink(&mut self, sink: SinkHandle) {
        self.inner.set_trace_sink(sink.clone());
        self.sink = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::FaultyRemote;
    use crate::target::scenario_member;
    use rssd_core::{LoopbackTarget, RssdDevice};

    type Dut = RssdDevice<FaultyRemote<LoopbackTarget>>;

    fn dut() -> Dut {
        scenario_member(1)
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    #[test]
    fn no_schedule_is_transparent() {
        let mut f = FaultInjector::new(dut(), &FaultSchedule::none());
        f.write_page(0, page(1)).unwrap();
        assert_eq!(f.read_page(0).unwrap(), page(1));
        assert_eq!(f.ops_executed(), 2);
        assert_eq!(f.power_cuts(), 0);
    }

    #[test]
    fn power_cut_lands_at_the_exact_op_and_restore_resumes() {
        let mut f = FaultInjector::new(dut(), &FaultSchedule::power_cut(3));
        f.write_page(0, page(1)).unwrap();
        f.write_page(1, page(2)).unwrap();
        f.write_page(2, page(3)).unwrap();
        // Op 3: the cut fires before execution.
        assert!(matches!(
            f.write_page(3, page(4)),
            Err(DeviceError::PowerLoss)
        ));
        assert!(f.powered_off());
        assert!(matches!(f.read_page(0), Err(DeviceError::PowerLoss)));
        let _ = f.restore_power().unwrap();
        // Acked writes survived; the cut one never happened.
        assert_eq!(f.read_page(0).unwrap(), page(1));
        assert_eq!(f.read_page(3).unwrap(), page(0));
        assert_eq!(f.power_cuts(), 1);
    }

    #[test]
    fn mid_batch_cut_tears_the_batch_persisting_the_prefix() {
        let mut f = FaultInjector::new(dut(), &FaultSchedule::power_cut(2));
        let batch: Vec<IoCommand> = (0..5)
            .map(|i| IoCommand::Write {
                lpa: i,
                data: page(i as u8 + 1),
            })
            .collect();
        let results = f.submit_batch(batch);
        assert_eq!(results.len(), 5);
        assert!(results[0].is_ok() && results[1].is_ok());
        for r in &results[2..] {
            assert_eq!(*r, Err(DeviceError::PowerLoss));
        }
        assert_eq!(
            f.torn_batches(),
            &[TornBatch {
                batch_len: 5,
                persisted: 2,
                at_op: 2
            }]
        );
        let _ = f.restore_power().unwrap();
        assert_eq!(f.read_page(0).unwrap(), page(1), "prefix persisted");
        assert_eq!(f.read_page(1).unwrap(), page(2), "prefix persisted");
        assert_eq!(f.read_page(2).unwrap(), page(0), "suffix never executed");
    }

    #[test]
    fn partition_window_opens_and_heals_by_op_index() {
        use crate::schedule::FaultEvent;
        let schedule = FaultSchedule::new(
            "w",
            vec![
                FaultEvent::PartitionStart {
                    at_op: 1,
                    mode: PartitionMode::Refuse,
                },
                FaultEvent::PartitionHeal { at_op: 3 },
            ],
        );
        let mut f = FaultInjector::new(dut(), &schedule);
        f.write_page(0, page(1)).unwrap(); // op 0
        f.write_page(0, page(2)).unwrap(); // op 1: window opens first
        f.flush().unwrap(); // op 2: offload refused, data pinned
        assert!(f.inner().offload_stats().offload_failures > 0);
        f.flush().unwrap(); // op 3: healed first, offload lands
        assert!(f.inner().offload_stats().segments_offloaded > 0);
        assert_eq!(f.skipped_events(), 0);
    }

    #[test]
    fn unsupported_events_are_counted_not_silent() {
        // A shard death against a bare device cannot apply.
        let mut f = FaultInjector::new(dut(), &FaultSchedule::shard_death(1, 0));
        f.write_page(0, page(1)).unwrap();
        assert_eq!(f.skipped_events(), 1);
    }

    #[test]
    fn arm_after_progress_anchors_future_events() {
        let mut f = FaultInjector::new(dut(), &FaultSchedule::none());
        f.write_page(0, page(1)).unwrap();
        f.write_page(1, page(2)).unwrap();
        f.arm(&FaultSchedule::power_cut(1).offset(f.ops_executed()));
        f.write_page(2, page(3)).unwrap(); // op 2 — one more before the cut
        assert!(matches!(
            f.write_page(3, page(4)),
            Err(DeviceError::PowerLoss)
        ));
    }
}
