//! Network-fault wrappers for the remote half of the codesign.
//!
//! [`FaultyRemote`] wraps any [`RemoteTarget`] and injects partition
//! windows in three modes:
//!
//! * [`Refuse`](PartitionMode::Refuse) — offloads fail visibly
//!   (`RemoteError::Unreachable`); the device keeps data pinned locally.
//!   This is the conservative fallback the device already handles.
//! * [`QueueForReplay`](PartitionMode::QueueForReplay) — a store-and-
//!   forward transport: offloads are acknowledged and buffered device-side,
//!   then replayed *in order* into the real store when the link heals.
//! * [`DropSilently`](PartitionMode::DropSilently) — the worst case: the
//!   transport acknowledges and then loses the segment. The device unpins
//!   data it believes durable. The defense is that the loss can never be
//!   *silent* downstream — the evidence chain has a gap that
//!   `verified_history`, `audit_history` and `RebuildImage::harvest` all
//!   refuse to paper over.
//!
//! [`PermissiveTarget`] is a store that skips the chain-continuity ingest
//! check (a naive or compromised collector). Pairing it with a
//! `DropSilently` window is how the gap-detection property is tested: the
//! store accepts the post-gap segments, and verification — not ingest — is
//! what catches the hole.

use rssd_core::{RemoteError, RemoteTarget, SegmentEnvelope, StoreAck};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What happens to offloads attempted during a partition window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionMode {
    /// Offloads fail with `Unreachable`; data stays pinned on-device.
    Refuse,
    /// Offloads are acked and buffered, then replayed in order on heal.
    QueueForReplay,
    /// Offloads are acked and lost — the chain-gap case. The ack looks
    /// genuine, so the drop is **not** detectable at offload time: it
    /// surfaces only when `verified_history`/`audit_history`/harvest walk
    /// the evidence chain and refuse the gap (DESIGN.md §6).
    DropSilently,
}

/// Counters describing what a [`FaultyRemote`] did to the offload stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct RemoteFaultStats {
    /// Offloads refused with `Unreachable` during `Refuse` windows.
    pub offloads_refused: u64,
    /// Offloads acked into the replay buffer during `QueueForReplay`.
    pub offloads_queued: u64,
    /// Buffered offloads delivered in order on heal.
    pub offloads_replayed: u64,
    /// Offloads acked and destroyed during `DropSilently` windows.
    pub offloads_dropped: u64,
}

impl RemoteFaultStats {
    /// Merges another wrapper's counters (fleet view across array members).
    pub fn merge(&mut self, other: &RemoteFaultStats) {
        self.offloads_refused += other.offloads_refused;
        self.offloads_queued += other.offloads_queued;
        self.offloads_replayed += other.offloads_replayed;
        self.offloads_dropped += other.offloads_dropped;
    }
}

/// A [`RemoteTarget`] wrapper that injects partition windows. Composes
/// under [`RssdDevice`](rssd_core::RssdDevice) unchanged: the device's
/// offload engine sees ordinary acks and errors.
#[derive(Clone, Debug)]
pub struct FaultyRemote<R: RemoteTarget> {
    inner: R,
    mode: Option<PartitionMode>,
    /// Segments acked during a `QueueForReplay` window, in arrival order.
    queued: Vec<(SegmentEnvelope, u64)>,
    stats: RemoteFaultStats,
}

impl<R: RemoteTarget> FaultyRemote<R> {
    /// Wraps `inner` with no partition active.
    pub fn new(inner: R) -> Self {
        FaultyRemote {
            inner,
            mode: None,
            queued: Vec::new(),
            stats: RemoteFaultStats::default(),
        }
    }

    /// Starts (or switches) a partition window.
    pub fn partition(&mut self, mode: PartitionMode) {
        self.mode = Some(mode);
    }

    /// `true` while a partition window is open.
    pub fn is_partitioned(&self) -> bool {
        self.mode.is_some()
    }

    /// Heals the link: buffered offloads are replayed into the inner store
    /// in arrival order. Returns how many were delivered. If the inner
    /// store refuses one (it cannot, for in-order replay against an honest
    /// store), the remainder stays buffered and visible via
    /// [`stored_segments`](RemoteTarget::stored_segments).
    pub fn heal(&mut self) -> u64 {
        self.mode = None;
        let mut replayed = 0u64;
        while !self.queued.is_empty() {
            let (envelope, now_ns) = self.queued.remove(0);
            // Envelope clones are refcount bumps on the shared wire image.
            match self.inner.store_segment(envelope.clone(), now_ns) {
                Ok(_) => {
                    replayed += 1;
                    self.stats.offloads_replayed += 1;
                }
                Err(_) => {
                    self.queued.insert(0, (envelope, now_ns));
                    break;
                }
            }
        }
        replayed
    }

    /// Injection counters.
    pub fn fault_stats(&self) -> RemoteFaultStats {
        self.stats
    }

    /// Offloads currently buffered awaiting heal.
    pub fn queued_segments(&self) -> usize {
        self.queued.len()
    }

    /// The wrapped store.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Mutable access to the wrapped store (tamper injection in tests).
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: RemoteTarget> RemoteTarget for FaultyRemote<R> {
    fn store_segment(
        &mut self,
        envelope: SegmentEnvelope,
        now_ns: u64,
    ) -> Result<StoreAck, RemoteError> {
        match self.mode {
            None => self.inner.store_segment(envelope, now_ns),
            Some(PartitionMode::Refuse) => {
                self.stats.offloads_refused += 1;
                Err(RemoteError::Unreachable)
            }
            Some(PartitionMode::QueueForReplay) => {
                let ack = StoreAck {
                    segment_seq: envelope.segment_seq(),
                    durable_at_ns: now_ns,
                };
                self.stats.offloads_queued += 1;
                self.queued.push((envelope, now_ns));
                Ok(ack)
            }
            Some(PartitionMode::DropSilently) => {
                self.stats.offloads_dropped += 1;
                Ok(StoreAck {
                    segment_seq: envelope.segment_seq(),
                    durable_at_ns: now_ns,
                })
            }
        }
    }

    fn fetch_segment(&mut self, segment_seq: u64) -> Result<SegmentEnvelope, RemoteError> {
        if self.mode.is_some() {
            // The link is down: only the device-side replay buffer is
            // reachable.
            return self
                .queued
                .iter()
                .find(|(e, _)| e.segment_seq() == segment_seq)
                .map(|(e, _)| e.clone())
                .ok_or(RemoteError::Unreachable);
        }
        if let Some((e, _)) = self
            .queued
            .iter()
            .find(|(e, _)| e.segment_seq() == segment_seq)
        {
            return Ok(e.clone());
        }
        self.inner.fetch_segment(segment_seq)
    }

    fn stored_segments(&self) -> Vec<u64> {
        // The device's view of what it has been acked for: the store's
        // contents plus the replay buffer.
        let mut seqs = self.inner.stored_segments();
        seqs.extend(self.queued.iter().map(|(e, _)| e.segment_seq()));
        seqs.sort_unstable();
        seqs.dedup();
        seqs
    }

    fn set_trace_sink(&mut self, sink: rssd_obs::SinkHandle) {
        self.inner.set_trace_sink(sink);
    }
}

/// A remote store **without** the chain-continuity ingest check — a naive
/// collector that accepts whatever arrives. Gaps and forks are caught at
/// verification time (`verified_history` / `RebuildImage::harvest`), which
/// is exactly the property the drop-window scenarios prove.
#[derive(Clone, Debug, Default)]
pub struct PermissiveTarget {
    segments: BTreeMap<u64, SegmentEnvelope>,
    reachable: bool,
}

impl PermissiveTarget {
    /// Creates an empty, reachable store.
    pub fn new() -> Self {
        PermissiveTarget {
            segments: BTreeMap::new(),
            reachable: true,
        }
    }

    /// Simulates plain unreachability (independent of [`FaultyRemote`]).
    pub fn set_reachable(&mut self, reachable: bool) {
        self.reachable = reachable;
    }
}

impl RemoteTarget for PermissiveTarget {
    fn store_segment(
        &mut self,
        envelope: SegmentEnvelope,
        now_ns: u64,
    ) -> Result<StoreAck, RemoteError> {
        if !self.reachable {
            return Err(RemoteError::Unreachable);
        }
        let ack = StoreAck {
            segment_seq: envelope.segment_seq(),
            durable_at_ns: now_ns,
        };
        self.segments.insert(envelope.segment_seq(), envelope);
        Ok(ack)
    }

    fn fetch_segment(&mut self, segment_seq: u64) -> Result<SegmentEnvelope, RemoteError> {
        self.segments
            .get(&segment_seq)
            .cloned()
            .ok_or(RemoteError::NoSuchSegment(segment_seq))
    }

    fn stored_segments(&self) -> Vec<u64> {
        self.segments.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rssd_core::LoopbackTarget;
    use rssd_crypto::Digest;

    fn envelope(seq: u64, prev: u8, head: u8) -> SegmentEnvelope {
        let prev = if prev == 0 {
            Digest::ZERO
        } else {
            Digest::from_bytes([prev; 32])
        };
        SegmentEnvelope::new(
            1,
            seq,
            prev,
            Digest::from_bytes([head; 32]),
            0,
            &[seq as u8; 4],
        )
    }

    #[test]
    fn passthrough_when_healthy() {
        let mut r = FaultyRemote::new(LoopbackTarget::new());
        r.store_segment(envelope(0, 0, 1), 10).unwrap();
        assert_eq!(r.stored_segments(), vec![0]);
        assert_eq!(r.fetch_segment(0).unwrap().segment_seq(), 0);
    }

    #[test]
    fn refuse_mode_surfaces_unreachable() {
        let mut r = FaultyRemote::new(LoopbackTarget::new());
        r.partition(PartitionMode::Refuse);
        assert_eq!(
            r.store_segment(envelope(0, 0, 1), 0),
            Err(RemoteError::Unreachable)
        );
        assert_eq!(r.fault_stats().offloads_refused, 1);
    }

    #[test]
    fn queue_mode_acks_buffers_and_replays_in_order() {
        let mut r = FaultyRemote::new(LoopbackTarget::new());
        r.store_segment(envelope(0, 0, 1), 0).unwrap();
        r.partition(PartitionMode::QueueForReplay);
        r.store_segment(envelope(1, 1, 2), 5).unwrap();
        r.store_segment(envelope(2, 2, 3), 6).unwrap();
        // Acked → visible in the device's index; fetchable from the buffer.
        assert_eq!(r.stored_segments(), vec![0, 1, 2]);
        assert_eq!(r.fetch_segment(2).unwrap().segment_seq(), 2);
        // The store itself has not seen them.
        assert_eq!(r.inner().stored_segments(), vec![0]);
        // Old segments are across the dead link.
        assert_eq!(r.fetch_segment(0), Err(RemoteError::Unreachable));

        assert_eq!(r.heal(), 2);
        assert_eq!(r.inner().stored_segments(), vec![0, 1, 2]);
        assert_eq!(r.queued_segments(), 0);
        assert_eq!(r.fault_stats().offloads_replayed, 2);
    }

    #[test]
    fn drop_mode_acks_and_destroys() {
        let mut r = FaultyRemote::new(PermissiveTarget::new());
        r.store_segment(envelope(0, 0, 1), 0).unwrap();
        r.partition(PartitionMode::DropSilently);
        r.store_segment(envelope(1, 1, 2), 0).unwrap();
        r.heal();
        r.store_segment(envelope(2, 2, 3), 0).unwrap();
        // Segment 1 is gone; 0 and 2 stored — the chain now has a hole that
        // verification (not ingest) must catch.
        assert_eq!(r.stored_segments(), vec![0, 2]);
        assert_eq!(r.fault_stats().offloads_dropped, 1);
    }

    #[test]
    fn permissive_store_accepts_discontinuity() {
        let mut p = PermissiveTarget::new();
        p.store_segment(envelope(0, 0, 1), 0).unwrap();
        // A gap the LoopbackTarget would refuse.
        p.store_segment(envelope(5, 9, 10), 0).unwrap();
        assert_eq!(p.stored_segments(), vec![0, 5]);
        p.set_reachable(false);
        assert_eq!(
            p.store_segment(envelope(6, 10, 11), 0),
            Err(RemoteError::Unreachable)
        );
    }
}
