//! The trusted evidence chain primitive.
//!
//! RSSD's post-attack analysis depends on a *trusted evidence chain*: every
//! storage operation the device receives is appended, in arrival order, to a
//! chain of HMAC tags computed inside the (hardware-isolated) controller:
//!
//! ```text
//! tag_0 = HMAC(k, ZERO       || record_0)
//! tag_i = HMAC(k, tag_{i-1}  || record_i)
//! ```
//!
//! A verifier holding `k` and the ordered records can recompute the chain and
//! detect any insertion, deletion, reordering, or mutation — which is what
//! makes the reconstructed I/O history admissible for forensics.

use crate::hmac::HmacSha256;
use crate::sha256::Digest;
use serde::{Deserialize, Serialize};

/// One link of the evidence chain: a sequence number plus the chained tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainLink {
    /// Zero-based position of the record in the chain.
    pub seq: u64,
    /// `HMAC(k, prev_tag || record)`.
    pub tag: Digest,
}

/// Errors from [`HashChain::verify_sequence`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainVerifyError {
    /// The record at `seq` does not reproduce the recorded tag — it was
    /// mutated, or an earlier record was inserted/removed/reordered.
    TagMismatch {
        /// Sequence number of the first non-verifying link.
        seq: u64,
    },
    /// The number of supplied records does not match the number of links.
    LengthMismatch {
        /// Links expected.
        expected: usize,
        /// Records supplied.
        actual: usize,
    },
}

impl std::fmt::Display for ChainVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainVerifyError::TagMismatch { seq } => {
                write!(f, "evidence chain tag mismatch at sequence {seq}")
            }
            ChainVerifyError::LengthMismatch { expected, actual } => write!(
                f,
                "evidence chain length mismatch: {expected} links but {actual} records"
            ),
        }
    }
}

impl std::error::Error for ChainVerifyError {}

/// An appendable chained-HMAC evidence chain.
///
/// # Examples
///
/// ```
/// use rssd_crypto::hashchain::HashChain;
///
/// let mut chain = HashChain::new(b"device-evidence-key");
/// let l0 = chain.append(b"write lba=4 len=8");
/// let l1 = chain.append(b"trim  lba=4 len=8");
/// assert_eq!(l0.seq, 0);
/// assert_eq!(l1.seq, 1);
///
/// let records: Vec<&[u8]> = vec![b"write lba=4 len=8", b"trim  lba=4 len=8"];
/// HashChain::verify_sequence(b"device-evidence-key", &records, &[l0, l1]).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct HashChain {
    key: Vec<u8>,
    head: Digest,
    next_seq: u64,
}

impl HashChain {
    /// Creates an empty chain keyed with `key`, with the all-zero genesis tag.
    pub fn new(key: &[u8]) -> Self {
        HashChain {
            key: key.to_vec(),
            head: Digest::ZERO,
            next_seq: 0,
        }
    }

    /// Resumes a chain from a known head (used when the local log wraps and
    /// earlier links have been offloaded remotely).
    pub fn resume(key: &[u8], head: Digest, next_seq: u64) -> Self {
        HashChain {
            key: key.to_vec(),
            head,
            next_seq,
        }
    }

    /// Appends a record, returning the new link.
    pub fn append(&mut self, record: &[u8]) -> ChainLink {
        let tag = Self::link_tag(&self.key, &self.head, record);
        let link = ChainLink {
            seq: self.next_seq,
            tag,
        };
        self.head = tag;
        self.next_seq += 1;
        link
    }

    /// Current chain head (tag of the most recent record, or `ZERO` if empty).
    pub fn head(&self) -> Digest {
        self.head
    }

    /// Sequence number the next appended record will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of records appended so far (equals [`Self::next_seq`] for chains
    /// started with [`Self::new`]).
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// Returns `true` if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Computes a single link tag.
    pub fn link_tag(key: &[u8], prev: &Digest, record: &[u8]) -> Digest {
        let mut mac = HmacSha256::new(key);
        mac.update(prev.as_bytes());
        mac.update(record);
        mac.finalize()
    }

    /// Verifies that `records`, starting from the zero genesis tag, reproduce
    /// `links` exactly.
    ///
    /// # Errors
    ///
    /// Returns [`ChainVerifyError::LengthMismatch`] when counts differ, or
    /// [`ChainVerifyError::TagMismatch`] identifying the first bad link.
    pub fn verify_sequence<R: AsRef<[u8]>>(
        key: &[u8],
        records: &[R],
        links: &[ChainLink],
    ) -> Result<(), ChainVerifyError> {
        Self::verify_from(key, Digest::ZERO, records, links)
    }

    /// Verifies a chain continuation starting from an arbitrary prior head
    /// (used for verifying one offloaded segment against the previous
    /// segment's final tag).
    ///
    /// # Errors
    ///
    /// Same as [`Self::verify_sequence`].
    pub fn verify_from<R: AsRef<[u8]>>(
        key: &[u8],
        mut head: Digest,
        records: &[R],
        links: &[ChainLink],
    ) -> Result<(), ChainVerifyError> {
        if records.len() != links.len() {
            return Err(ChainVerifyError::LengthMismatch {
                expected: links.len(),
                actual: records.len(),
            });
        }
        for (record, link) in records.iter().zip(links) {
            let expected = Self::link_tag(key, &head, record.as_ref());
            if expected != link.tag {
                return Err(ChainVerifyError::TagMismatch { seq: link.seq });
            }
            head = expected;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(records: &[&[u8]]) -> (HashChain, Vec<ChainLink>) {
        let mut chain = HashChain::new(b"k");
        let links = records.iter().map(|r| chain.append(r)).collect();
        (chain, links)
    }

    #[test]
    fn empty_chain_has_zero_head() {
        let chain = HashChain::new(b"k");
        assert_eq!(chain.head(), Digest::ZERO);
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
    }

    #[test]
    fn append_advances_seq_and_head() {
        let (chain, links) = build(&[b"a", b"b", b"c"]);
        assert_eq!(links[0].seq, 0);
        assert_eq!(links[2].seq, 2);
        assert_eq!(chain.next_seq(), 3);
        assert_eq!(chain.head(), links[2].tag);
        assert_ne!(links[0].tag, links[1].tag);
    }

    #[test]
    fn verify_accepts_honest_sequence() {
        let (_, links) = build(&[b"a", b"b", b"c"]);
        let records: Vec<&[u8]> = vec![b"a", b"b", b"c"];
        assert!(HashChain::verify_sequence(b"k", &records, &links).is_ok());
    }

    #[test]
    fn verify_detects_mutation() {
        let (_, links) = build(&[b"a", b"b", b"c"]);
        let records: Vec<&[u8]> = vec![b"a", b"X", b"c"];
        assert_eq!(
            HashChain::verify_sequence(b"k", &records, &links),
            Err(ChainVerifyError::TagMismatch { seq: 1 })
        );
    }

    #[test]
    fn verify_detects_reordering() {
        let (_, mut links) = build(&[b"a", b"b", b"c"]);
        links.swap(0, 1);
        let records: Vec<&[u8]> = vec![b"b", b"a", b"c"];
        assert!(HashChain::verify_sequence(b"k", &records, &links).is_err());
    }

    #[test]
    fn verify_detects_deletion() {
        let (_, links) = build(&[b"a", b"b", b"c"]);
        let records: Vec<&[u8]> = vec![b"a", b"c"];
        assert_eq!(
            HashChain::verify_sequence(b"k", &records, &links[..2]),
            Err(ChainVerifyError::TagMismatch { seq: 1 })
        );
    }

    #[test]
    fn verify_detects_length_mismatch() {
        let (_, links) = build(&[b"a", b"b"]);
        let records: Vec<&[u8]> = vec![b"a"];
        assert_eq!(
            HashChain::verify_sequence(b"k", &records, &links),
            Err(ChainVerifyError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn wrong_key_fails_verification() {
        let (_, links) = build(&[b"a"]);
        let records: Vec<&[u8]> = vec![b"a"];
        assert!(HashChain::verify_sequence(b"other", &records, &links).is_err());
    }

    #[test]
    fn resume_continues_chain() {
        let mut chain = HashChain::new(b"k");
        let l0 = chain.append(b"a");
        let l1_expected_head = chain.head();

        let mut resumed = HashChain::resume(b"k", l1_expected_head, chain.next_seq());
        let l1 = resumed.append(b"b");
        assert_eq!(l1.seq, 1);

        // Segment verification from the prior head.
        let records: Vec<&[u8]> = vec![b"b"];
        assert!(HashChain::verify_from(b"k", l0.tag, &records, &[l1]).is_ok());
    }

    #[test]
    fn chain_error_display() {
        let e = ChainVerifyError::TagMismatch { seq: 7 };
        assert!(e.to_string().contains("sequence 7"));
    }
}
