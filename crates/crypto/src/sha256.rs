//! FIPS 180-4 SHA-256, implemented from scratch.
//!
//! Used for page-content fingerprints in the hardware-assisted log and as the
//! compression function underneath [`crate::hmac`] and [`crate::hashchain`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit SHA-256 digest.
///
/// # Examples
///
/// ```
/// use rssd_crypto::sha256::{Digest, Sha256};
///
/// let d: Digest = Sha256::digest(b"abc");
/// assert_eq!(
///     d.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Digest([u8; 32]);

impl Digest {
    /// Digest consisting of all zero bytes, used as the genesis link of a
    /// [`crate::hashchain::HashChain`].
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Builds a digest from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Parses a digest from a lowercase hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` if `hex` is not exactly 64 hex characters.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Truncates the digest to a 64-bit fingerprint (for compact log records).
    pub fn fingerprint64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({self})")
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use rssd_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress_blocks(&block);
                self.buffer_len = 0;
            }
        }
        let whole = input.len() - input.len() % 64;
        if whole > 0 {
            self.compress_blocks(&input[..whole]);
            input = &input[whole..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consumes the hasher and returns the final digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0u8]);
        }
        // Manual length append: bypass update's total_len accounting.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress_blocks(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Compresses a whole number of 64-byte blocks.
    ///
    /// Dispatches to the x86 SHA extensions when the CPU has them (the common
    /// case for the machines this simulator profiles on) and to the portable
    /// scalar rounds otherwise; both produce the same FIPS 180-4 digests.
    fn compress_blocks(&mut self, blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY: `available` confirmed the sha/ssse3/sse4.1 features at
            // runtime, and the length is a multiple of the block size.
            unsafe { shani::compress_blocks(&mut self.state, blocks) };
            return;
        }
        for block in blocks.chunks_exact(64) {
            let block: &[u8; 64] = block.try_into().expect("64 bytes");
            self.compress(block);
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        // One FIPS 180-4 round with the working variables passed in rotated
        // roles: unrolling 8 at a time removes the per-round register shuffle
        // (h=g; g=f; ...) without changing the arithmetic.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident,
             $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ ((!$e) & $g);
                let temp1 = $h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[$i])
                    .wrapping_add(w[$i]);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(temp1);
                $h = temp1.wrapping_add(s0.wrapping_add(maj));
            };
        }
        let mut i = 0;
        while i < 64 {
            round!(a, b, c, d, e, f, g, h, i);
            round!(h, a, b, c, d, e, f, g, i + 1);
            round!(g, h, a, b, c, d, e, f, i + 2);
            round!(f, g, h, a, b, c, d, e, i + 3);
            round!(e, f, g, h, a, b, c, d, i + 4);
            round!(d, e, f, g, h, a, b, c, i + 5);
            round!(c, d, e, f, g, h, a, b, i + 6);
            round!(b, c, d, e, f, g, h, a, i + 7);
            i += 8;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// SHA-256 message schedule and rounds on the x86 SHA extensions.
///
/// The state is kept in the two-register ABEF/CDGH layout the `sha256rnds2`
/// instruction expects; four 32-bit schedule words are produced per step with
/// `sha256msg1`/`sha256msg2`. Identical output to the scalar rounds — the
/// NIST vectors in this module's tests cover both paths on capable hosts.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Whether the CPU supports this path (the feature-detection macro caches
    /// the CPUID lookup).
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("sse4.1")
    }

    /// Compresses whole 64-byte blocks into `state`.
    ///
    /// # Safety
    ///
    /// The caller must have checked [`available`], and `blocks.len()` must be
    /// a multiple of 64.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
        // Byte shuffle turning each 32-bit lane big-endian.
        let be_mask = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);

        // Repack [a,b,c,d],[e,f,g,h] into the ABEF/CDGH register layout.
        let tmp = _mm_loadu_si128(state.as_ptr().cast());
        let hi = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let tmp = _mm_shuffle_epi32(tmp, 0xB1);
        let hi = _mm_shuffle_epi32(hi, 0x1B);
        let mut abef = _mm_alignr_epi8(tmp, hi, 8);
        let mut cdgh = _mm_blend_epi16(hi, tmp, 0xF0);

        for block in blocks.chunks_exact(64) {
            let abef_save = abef;
            let cdgh_save = cdgh;

            // m holds the schedule chunks X_g..X_{g+3} (four words each),
            // rotating in place as the rounds consume them.
            let mut m = [
                _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), be_mask),
                _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), be_mask),
                _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), be_mask),
                _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), be_mask),
            ];

            for g in 0..16 {
                let wk = _mm_add_epi32(m[g & 3], _mm_loadu_si128(K.as_ptr().add(g * 4).cast()));
                cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                let wk_hi = _mm_shuffle_epi32(wk, 0x0E);
                abef = _mm_sha256rnds2_epu32(abef, cdgh, wk_hi);
                if g < 12 {
                    // Next schedule chunk, per the FIPS 180-4 recurrence:
                    // X_{g+4} = msg2(msg1(X_g, X_{g+1}) + (W[4g+9..4g+13]), X_{g+3})
                    let x0 = m[g & 3];
                    let x1 = m[(g + 1) & 3];
                    let x2 = m[(g + 2) & 3];
                    let x3 = m[(g + 3) & 3];
                    let partial =
                        _mm_add_epi32(_mm_sha256msg1_epu32(x0, x1), _mm_alignr_epi8(x3, x2, 4));
                    m[g & 3] = _mm_sha256msg2_epu32(partial, x3);
                }
            }

            abef = _mm_add_epi32(abef, abef_save);
            cdgh = _mm_add_epi32(cdgh, cdgh_save);
        }

        // Unpack ABEF/CDGH back to [a..d],[e..h].
        let tmp = _mm_shuffle_epi32(abef, 0x1B);
        let hi = _mm_shuffle_epi32(cdgh, 0xB1);
        let out_lo = _mm_blend_epi16(tmp, hi, 0xF0);
        let out_hi = _mm_alignr_epi8(hi, tmp, 8);
        _mm_storeu_si128(state.as_mut_ptr().cast(), out_lo);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), out_hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.to_string()
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_448_bits() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&Sha256::digest(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_hex_round_trip() {
        let d = Sha256::digest(b"round trip");
        let parsed = Digest::from_hex(&d.to_string()).expect("valid hex");
        assert_eq!(parsed, d);
    }

    #[test]
    fn digest_from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("abc").is_none());
        assert!(Digest::from_hex(&"zz".repeat(32)).is_none());
    }

    #[test]
    fn fingerprint_is_prefix() {
        let d = Sha256::digest(b"fp");
        let fp = d.fingerprint64();
        assert_eq!(&fp.to_be_bytes(), &d.as_bytes()[..8]);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha256::digest(b"a"), Sha256::digest(b"b"));
        assert_ne!(Sha256::digest(b""), Digest::ZERO);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_matches_scalar_rounds() {
        if !shani::available() {
            return;
        }
        let blocks: Vec<u8> = (0..640u32).map(|i| (i as u8).wrapping_mul(37)).collect();
        let mut scalar = Sha256::new();
        for block in blocks.chunks_exact(64) {
            let block: &[u8; 64] = block.try_into().expect("64 bytes");
            scalar.compress(block);
        }
        let mut state = H0;
        // SAFETY: availability checked above; length is 10 whole blocks.
        unsafe { shani::compress_blocks(&mut state, &blocks) };
        assert_eq!(state, scalar.state);
    }
}
