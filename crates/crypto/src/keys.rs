//! Device key hierarchy.
//!
//! In the RSSD prototype the keys live inside the SSD controller and are never
//! visible to the host: the threat model trusts the firmware but not the OS.
//! This module models that hierarchy — a root device key from which
//! purpose-specific subkeys are derived with HMAC-based derivation, so that
//! compromise of one purpose key (e.g. a remote server learning the offload
//! encryption key) does not reveal the evidence-chain key.

use crate::hmac::HmacSha256;
use crate::sha256::Digest;
use serde::{Deserialize, Serialize};

/// What a derived key is used for. Each purpose yields an independent subkey.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyPurpose {
    /// Encrypting retained pages / log segments on the offload path.
    OffloadEncryption,
    /// Authenticating offloaded segments toward the remote server.
    SegmentAuthentication,
    /// The evidence-chain HMAC key.
    EvidenceChain,
    /// Per-session NVMe-oE transport key.
    Transport,
}

impl KeyPurpose {
    fn label(self) -> &'static [u8] {
        match self {
            KeyPurpose::OffloadEncryption => b"rssd/offload-encryption/v1",
            KeyPurpose::SegmentAuthentication => b"rssd/segment-auth/v1",
            KeyPurpose::EvidenceChain => b"rssd/evidence-chain/v1",
            KeyPurpose::Transport => b"rssd/transport/v1",
        }
    }
}

/// Identifier for a derived key: purpose plus epoch (keys can be rotated).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyId {
    /// What the key is used for.
    pub purpose: KeyPurpose,
    /// Rotation epoch; epoch 0 is the key installed at provisioning.
    pub epoch: u32,
}

impl KeyId {
    /// Creates a key id at epoch 0.
    pub fn initial(purpose: KeyPurpose) -> Self {
        KeyId { purpose, epoch: 0 }
    }
}

/// The device key hierarchy rooted in a 256-bit provisioning secret.
///
/// # Examples
///
/// ```
/// use rssd_crypto::keys::{DeviceKeys, KeyPurpose};
///
/// let keys = DeviceKeys::from_root([0x42; 32]);
/// let k1 = keys.derive(KeyPurpose::EvidenceChain, 0);
/// let k2 = keys.derive(KeyPurpose::OffloadEncryption, 0);
/// assert_ne!(k1, k2);
/// ```
#[derive(Clone)]
pub struct DeviceKeys {
    root: [u8; 32],
}

impl std::fmt::Debug for DeviceKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the root secret.
        f.debug_struct("DeviceKeys")
            .field("root", &"<sealed>")
            .finish()
    }
}

impl DeviceKeys {
    /// Builds the hierarchy from the provisioning root secret.
    pub fn from_root(root: [u8; 32]) -> Self {
        DeviceKeys { root }
    }

    /// Derives a deterministic test hierarchy from a small seed. Intended for
    /// simulations and tests; a real device provisions the root in the
    /// factory.
    pub fn for_simulation(seed: u64) -> Self {
        let digest = HmacSha256::mac(b"rssd/sim-root/v1", &seed.to_le_bytes());
        DeviceKeys::from_root(*digest.as_bytes())
    }

    /// Derives the 256-bit subkey for `purpose` at `epoch`.
    pub fn derive(&self, purpose: KeyPurpose, epoch: u32) -> [u8; 32] {
        let mut mac = HmacSha256::new(&self.root);
        mac.update(purpose.label());
        mac.update(&epoch.to_le_bytes());
        *mac.finalize().as_bytes()
    }

    /// Derives the subkey named by `id`.
    pub fn derive_id(&self, id: KeyId) -> [u8; 32] {
        self.derive(id.purpose, id.epoch)
    }

    /// Derives a 96-bit nonce for a given segment sequence number, unique per
    /// (purpose, epoch, segment).
    pub fn segment_nonce(&self, id: KeyId, segment_seq: u64) -> [u8; 12] {
        let mut mac = HmacSha256::new(&self.derive_id(id));
        mac.update(b"rssd/segment-nonce/v1");
        mac.update(&segment_seq.to_le_bytes());
        let digest: Digest = mac.finalize();
        digest.as_bytes()[..12].try_into().expect("12 bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purposes_yield_independent_keys() {
        let keys = DeviceKeys::from_root([1u8; 32]);
        let purposes = [
            KeyPurpose::OffloadEncryption,
            KeyPurpose::SegmentAuthentication,
            KeyPurpose::EvidenceChain,
            KeyPurpose::Transport,
        ];
        for (i, a) in purposes.iter().enumerate() {
            for b in &purposes[i + 1..] {
                assert_ne!(keys.derive(*a, 0), keys.derive(*b, 0), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn epochs_rotate_keys() {
        let keys = DeviceKeys::from_root([1u8; 32]);
        assert_ne!(
            keys.derive(KeyPurpose::Transport, 0),
            keys.derive(KeyPurpose::Transport, 1)
        );
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = DeviceKeys::from_root([7u8; 32]);
        let b = DeviceKeys::from_root([7u8; 32]);
        assert_eq!(
            a.derive(KeyPurpose::EvidenceChain, 3),
            b.derive(KeyPurpose::EvidenceChain, 3)
        );
    }

    #[test]
    fn different_roots_different_keys() {
        let a = DeviceKeys::from_root([7u8; 32]);
        let b = DeviceKeys::from_root([8u8; 32]);
        assert_ne!(
            a.derive(KeyPurpose::EvidenceChain, 0),
            b.derive(KeyPurpose::EvidenceChain, 0)
        );
    }

    #[test]
    fn segment_nonces_unique_per_segment() {
        let keys = DeviceKeys::for_simulation(42);
        let id = KeyId::initial(KeyPurpose::OffloadEncryption);
        assert_ne!(keys.segment_nonce(id, 0), keys.segment_nonce(id, 1));
    }

    #[test]
    fn debug_never_leaks_root() {
        let keys = DeviceKeys::from_root([0xAA; 32]);
        let s = format!("{keys:?}");
        assert!(s.contains("sealed"));
        assert!(!s.contains("170")); // 0xAA
    }

    #[test]
    fn simulation_seed_is_deterministic() {
        assert_eq!(
            DeviceKeys::for_simulation(9).derive(KeyPurpose::Transport, 0),
            DeviceKeys::for_simulation(9).derive(KeyPurpose::Transport, 0)
        );
    }
}
