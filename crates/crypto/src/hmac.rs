//! RFC 2104 / FIPS 198-1 HMAC-SHA-256.
//!
//! HMAC tags authenticate offloaded log segments and form the links of the
//! [`crate::hashchain::HashChain`] evidence chain.

use crate::sha256::{Digest, Sha256};

const BLOCK_SIZE: usize = 64;

/// Incremental HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use rssd_crypto::hmac::HmacSha256;
///
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// assert!(!HmacSha256::verify(b"key", b"tampered", &tag));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_SIZE],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length; keys longer than
    /// the block size are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_SIZE];
        let mut opad = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalizes and returns the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// One-shot MAC over `message` with `key`.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = HmacSha256::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time verification of `tag` over `message` with `key`.
    pub fn verify(key: &[u8], message: &[u8], tag: &Digest) -> bool {
        let expected = Self::mac(key, message);
        // Constant-time compare: accumulate XOR differences.
        let mut diff = 0u8;
        for (a, b) in expected.as_bytes().iter().zip(tag.as_bytes()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Digest;

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            tag.to_string(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_string(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &msg);
        assert_eq!(
            tag.to_string(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25u8).collect();
        let msg = [0xcdu8; 50];
        let tag = HmacSha256::mac(&key, &msg);
        assert_eq!(
            tag.to_string(),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_string(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = HmacSha256::mac(&key, msg);
        assert_eq!(
            tag.to_string(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), HmacSha256::mac(b"key", b"part one part two"));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let tag = HmacSha256::mac(b"key-a", b"msg");
        assert!(!HmacSha256::verify(b"key-b", b"msg", &tag));
    }

    #[test]
    fn verify_rejects_zero_tag() {
        assert!(!HmacSha256::verify(b"key", b"msg", &Digest::ZERO));
    }
}
