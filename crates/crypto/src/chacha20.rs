//! RFC 8439 ChaCha20 stream cipher.
//!
//! RSSD encrypts retained pages and log segments with the device offload key
//! before they cross the NVMe-over-Ethernet link; in the hardware prototype
//! this is an on-controller crypto engine, here it is a from-scratch ChaCha20.

/// ChaCha20 stream cipher keyed with a 256-bit key and a 96-bit nonce.
///
/// Encryption and decryption are the same operation (XOR keystream).
///
/// # Examples
///
/// ```
/// use rssd_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut data = b"retained page payload".to_vec();
/// ChaCha20::new(&key, &nonce).apply_keystream(&mut data);
/// assert_ne!(&data[..], b"retained page payload");
/// ChaCha20::new(&key, &nonce).apply_keystream(&mut data);
/// assert_eq!(&data[..], b"retained page payload");
/// ```
#[derive(Clone, Debug)]
pub struct ChaCha20 {
    state: [u32; 16],
    keystream: [u8; 64],
    keystream_pos: usize,
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

impl ChaCha20 {
    /// Creates a cipher with block counter starting at 0.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        Self::with_counter(key, nonce, 0)
    }

    /// Creates a cipher with an explicit initial block counter (RFC 8439 §2.4
    /// uses counter 1 for AEAD payloads; RSSD seeks into segment keystreams by
    /// page index).
    pub fn with_counter(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] =
                u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha20 {
            state,
            keystream: [0u8; 64],
            keystream_pos: 64,
        }
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    ///
    /// Whole 64-byte blocks are XORed word-wise straight from the block
    /// function without staging through the keystream buffer; partial blocks
    /// at either end go through the buffer so split applications see the
    /// identical stream (same keystream, same position), only the host cost
    /// changes.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let mut i = 0usize;
        // Drain a partially consumed buffered block first.
        if self.keystream_pos < 64 {
            let n = (64 - self.keystream_pos).min(data.len());
            let ks = &self.keystream[self.keystream_pos..self.keystream_pos + n];
            for (byte, k) in data[..n].iter_mut().zip(ks) {
                *byte ^= k;
            }
            self.keystream_pos += n;
            i = n;
        }
        // Four blocks at a time on SSE hosts: the block functions for
        // counters c..c+3 are independent, so they run in parallel lanes.
        #[cfg(target_arch = "x86_64")]
        if self.keystream_pos == 64 && sse::available() {
            while data.len() - i >= 256 {
                // SAFETY: `available` confirmed ssse3; the slice is 256 bytes.
                unsafe { sse::xor_four_blocks(&self.state, &mut data[i..i + 256]) };
                self.state[12] = self.state[12].wrapping_add(4);
                i += 256;
            }
        }
        // Whole blocks: XOR block-function words directly into the data.
        while data.len() - i >= 64 {
            let words = self.next_block_words();
            for (w, chunk) in words.iter().zip(data[i..i + 64].chunks_exact_mut(4)) {
                let x = u32::from_le_bytes(chunk.as_ref().try_into().expect("4 bytes")) ^ w;
                chunk.copy_from_slice(&x.to_le_bytes());
            }
            i += 64;
        }
        // Tail shorter than a block: buffer one block and consume part of it.
        if i < data.len() {
            self.refill();
            let n = data.len() - i;
            for (byte, k) in data[i..].iter_mut().zip(&self.keystream[..n]) {
                *byte ^= k;
            }
            self.keystream_pos = n;
        }
    }

    /// Convenience: encrypt a buffer, returning a new vector (one allocation,
    /// ciphered in place).
    pub fn encrypt(key: &[u8; 32], nonce: &[u8; 12], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len());
        out.extend_from_slice(plaintext);
        ChaCha20::new(key, nonce).apply_keystream(&mut out);
        out
    }

    /// Convenience: decrypt a buffer, returning a new vector.
    pub fn decrypt(key: &[u8; 32], nonce: &[u8; 12], ciphertext: &[u8]) -> Vec<u8> {
        // Symmetric: same keystream XOR.
        Self::encrypt(key, nonce, ciphertext)
    }

    fn refill(&mut self) {
        let words = self.next_block_words();
        for (i, w) in words.iter().enumerate() {
            self.keystream[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        self.keystream_pos = 0;
    }

    /// Runs the ChaCha20 block function on the current state, advances the
    /// block counter, and returns the 16 keystream words.
    ///
    /// The working state lives in named locals so the 20 rounds compile to
    /// register arithmetic instead of array loads and stores.
    #[inline]
    fn next_block_words(&mut self) -> [u32; 16] {
        macro_rules! qr {
            ($a:ident, $b:ident, $c:ident, $d:ident) => {
                $a = $a.wrapping_add($b);
                $d = ($d ^ $a).rotate_left(16);
                $c = $c.wrapping_add($d);
                $b = ($b ^ $c).rotate_left(12);
                $a = $a.wrapping_add($b);
                $d = ($d ^ $a).rotate_left(8);
                $c = $c.wrapping_add($d);
                $b = ($b ^ $c).rotate_left(7);
            };
        }
        let s = &self.state;
        let (mut x0, mut x1, mut x2, mut x3) = (s[0], s[1], s[2], s[3]);
        let (mut x4, mut x5, mut x6, mut x7) = (s[4], s[5], s[6], s[7]);
        let (mut x8, mut x9, mut x10, mut x11) = (s[8], s[9], s[10], s[11]);
        let (mut x12, mut x13, mut x14, mut x15) = (s[12], s[13], s[14], s[15]);
        for _ in 0..10 {
            // Column rounds.
            qr!(x0, x4, x8, x12);
            qr!(x1, x5, x9, x13);
            qr!(x2, x6, x10, x14);
            qr!(x3, x7, x11, x15);
            // Diagonal rounds.
            qr!(x0, x5, x10, x15);
            qr!(x1, x6, x11, x12);
            qr!(x2, x7, x8, x13);
            qr!(x3, x4, x9, x14);
        }
        let words = [
            x0.wrapping_add(s[0]),
            x1.wrapping_add(s[1]),
            x2.wrapping_add(s[2]),
            x3.wrapping_add(s[3]),
            x4.wrapping_add(s[4]),
            x5.wrapping_add(s[5]),
            x6.wrapping_add(s[6]),
            x7.wrapping_add(s[7]),
            x8.wrapping_add(s[8]),
            x9.wrapping_add(s[9]),
            x10.wrapping_add(s[10]),
            x11.wrapping_add(s[11]),
            x12.wrapping_add(s[12]),
            x13.wrapping_add(s[13]),
            x14.wrapping_add(s[14]),
            x15.wrapping_add(s[15]),
        ];
        self.state[12] = self.state[12].wrapping_add(1);
        words
    }
}

/// Four-lane ChaCha20 block function on SSE registers.
///
/// Each of the sixteen state words is held in a 128-bit register whose four
/// lanes belong to four consecutive block counters; the twenty rounds are the
/// same arithmetic as the scalar path, and a 4x4 transpose at the end turns
/// the lane-major words back into the sequential keystream. Output is
/// bit-identical to four scalar block invocations.
#[cfg(target_arch = "x86_64")]
mod sse {
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Whether the CPU has the byte-shuffle rotates this path uses.
    #[inline]
    pub fn available() -> bool {
        is_x86_feature_detected!("ssse3")
    }

    /// XORs the keystream blocks for counters `state[12]..state[12]+3` into
    /// `data`.
    ///
    /// # Safety
    ///
    /// The caller must have checked [`available`]; `data` must be exactly 256
    /// bytes.
    #[target_feature(enable = "sse2,ssse3")]
    pub unsafe fn xor_four_blocks(state: &[u32; 16], data: &mut [u8]) {
        debug_assert_eq!(data.len(), 256);
        // Per-lane rotate-left by 16 and 8 as byte shuffles.
        let rot16 = _mm_set_epi8(13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
        let rot8 = _mm_set_epi8(14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);

        let mut init = [_mm_setzero_si128(); 16];
        for (vec, word) in init.iter_mut().zip(state.iter()) {
            *vec = _mm_set1_epi32(*word as i32);
        }
        init[12] = _mm_add_epi32(init[12], _mm_set_epi32(3, 2, 1, 0));
        let mut v = init;

        macro_rules! qr {
            ($a:expr, $b:expr, $c:expr, $d:expr) => {
                v[$a] = _mm_add_epi32(v[$a], v[$b]);
                v[$d] = _mm_shuffle_epi8(_mm_xor_si128(v[$d], v[$a]), rot16);
                v[$c] = _mm_add_epi32(v[$c], v[$d]);
                let t = _mm_xor_si128(v[$b], v[$c]);
                v[$b] = _mm_or_si128(_mm_slli_epi32(t, 12), _mm_srli_epi32(t, 20));
                v[$a] = _mm_add_epi32(v[$a], v[$b]);
                v[$d] = _mm_shuffle_epi8(_mm_xor_si128(v[$d], v[$a]), rot8);
                v[$c] = _mm_add_epi32(v[$c], v[$d]);
                let t = _mm_xor_si128(v[$b], v[$c]);
                v[$b] = _mm_or_si128(_mm_slli_epi32(t, 7), _mm_srli_epi32(t, 25));
            };
        }
        for _ in 0..10 {
            qr!(0, 4, 8, 12);
            qr!(1, 5, 9, 13);
            qr!(2, 6, 10, 14);
            qr!(3, 7, 11, 15);
            qr!(0, 5, 10, 15);
            qr!(1, 6, 11, 12);
            qr!(2, 7, 8, 13);
            qr!(3, 4, 9, 14);
        }
        for (vec, start) in v.iter_mut().zip(init.iter()) {
            *vec = _mm_add_epi32(*vec, *start);
        }

        // Transpose word-major lanes back to block-major chunks: block j's
        // words 4g..4g+3 live in lane j of v[4g..4g+4].
        for g in 0..4 {
            let t0 = _mm_unpacklo_epi32(v[4 * g], v[4 * g + 1]);
            let t1 = _mm_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
            let t2 = _mm_unpackhi_epi32(v[4 * g], v[4 * g + 1]);
            let t3 = _mm_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
            let rows = [
                _mm_unpacklo_epi64(t0, t1),
                _mm_unpackhi_epi64(t0, t1),
                _mm_unpacklo_epi64(t2, t3),
                _mm_unpackhi_epi64(t2, t3),
            ];
            for (j, row) in rows.into_iter().enumerate() {
                let p = data.as_mut_ptr().add(j * 64 + g * 16).cast::<__m128i>();
                _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), row));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(hex: &str) -> Vec<u8> {
        hex.as_bytes()
            .chunks(2)
            .map(|c| {
                let hi = (c[0] as char).to_digit(16).expect("hex");
                let lo = (c[1] as char).to_digit(16).expect("hex");
                ((hi << 4) | lo) as u8
            })
            .collect()
    }

    // RFC 8439 §2.4.2 test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce_bytes = hex_to_bytes("000000000000004a00000000");
        let nonce: [u8; 12] = nonce_bytes.as_slice().try_into().expect("12 bytes");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let mut data = plaintext.to_vec();
        ChaCha20::with_counter(&key, &nonce, 1).apply_keystream(&mut data);

        let expected = hex_to_bytes(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    // RFC 8439 §2.3.2: first keystream block with counter 1.
    #[test]
    fn rfc8439_block_function_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce_bytes = hex_to_bytes("000000090000004a00000000");
        let nonce: [u8; 12] = nonce_bytes.as_slice().try_into().expect("12 bytes");
        let mut zeros = vec![0u8; 64];
        ChaCha20::with_counter(&key, &nonce, 1).apply_keystream(&mut zeros);
        let expected = hex_to_bytes(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(zeros, expected);
    }

    #[test]
    fn round_trip_at_block_boundaries() {
        let key = [0xabu8; 32];
        let nonce = [0x01u8; 12];
        for len in [0usize, 1, 63, 64, 65, 128, 1000, 4096] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = ChaCha20::encrypt(&key, &nonce, &plaintext);
            if len > 0 {
                assert_ne!(ct, plaintext, "len {len}");
            }
            assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), plaintext, "len {len}");
        }
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let key = [9u8; 32];
        let pt = vec![0u8; 128];
        let a = ChaCha20::encrypt(&key, &[0u8; 12], &pt);
        let b = ChaCha20::encrypt(&key, &[1u8; 12], &pt);
        assert_ne!(a, b);
    }

    #[test]
    fn wide_and_narrow_applications_match() {
        // A single wide application takes the four-block SIMD path where the
        // host has it; 64-byte chunked applications always take the scalar
        // block path. The streams must be identical.
        let key = [0x42u8; 32];
        let nonce = [7u8; 12];
        let data: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();

        let mut wide = data.clone();
        ChaCha20::new(&key, &nonce).apply_keystream(&mut wide);

        let mut narrow = data.clone();
        let mut cipher = ChaCha20::new(&key, &nonce);
        for chunk in narrow.chunks_mut(64) {
            cipher.apply_keystream(chunk);
        }
        assert_eq!(wide, narrow);
        assert_ne!(wide, data);
    }

    #[test]
    fn split_application_matches_contiguous() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        let data: Vec<u8> = (0..300).map(|i| i as u8).collect();

        let whole = ChaCha20::encrypt(&key, &nonce, &data);

        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut split = data.clone();
        let (a, b) = split.split_at_mut(100);
        cipher.apply_keystream(a);
        cipher.apply_keystream(b);
        assert_eq!(split, whole);
    }
}
