//! RFC 8439 ChaCha20 stream cipher.
//!
//! RSSD encrypts retained pages and log segments with the device offload key
//! before they cross the NVMe-over-Ethernet link; in the hardware prototype
//! this is an on-controller crypto engine, here it is a from-scratch ChaCha20.

/// ChaCha20 stream cipher keyed with a 256-bit key and a 96-bit nonce.
///
/// Encryption and decryption are the same operation (XOR keystream).
///
/// # Examples
///
/// ```
/// use rssd_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut data = b"retained page payload".to_vec();
/// ChaCha20::new(&key, &nonce).apply_keystream(&mut data);
/// assert_ne!(&data[..], b"retained page payload");
/// ChaCha20::new(&key, &nonce).apply_keystream(&mut data);
/// assert_eq!(&data[..], b"retained page payload");
/// ```
#[derive(Clone, Debug)]
pub struct ChaCha20 {
    state: [u32; 16],
    keystream: [u8; 64],
    keystream_pos: usize,
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

impl ChaCha20 {
    /// Creates a cipher with block counter starting at 0.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        Self::with_counter(key, nonce, 0)
    }

    /// Creates a cipher with an explicit initial block counter (RFC 8439 §2.4
    /// uses counter 1 for AEAD payloads; RSSD seeks into segment keystreams by
    /// page index).
    pub fn with_counter(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] =
                u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha20 {
            state,
            keystream: [0u8; 64],
            keystream_pos: 64,
        }
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.keystream_pos == 64 {
                self.refill();
            }
            *byte ^= self.keystream[self.keystream_pos];
            self.keystream_pos += 1;
        }
    }

    /// Convenience: encrypt a buffer, returning a new vector.
    pub fn encrypt(key: &[u8; 32], nonce: &[u8; 12], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        ChaCha20::new(key, nonce).apply_keystream(&mut out);
        out
    }

    /// Convenience: decrypt a buffer, returning a new vector.
    pub fn decrypt(key: &[u8; 32], nonce: &[u8; 12], ciphertext: &[u8]) -> Vec<u8> {
        // Symmetric: same keystream XOR.
        Self::encrypt(key, nonce, ciphertext)
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate() {
            let word = w.wrapping_add(self.state[i]);
            self.keystream[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        self.keystream_pos = 0;
    }

    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(hex: &str) -> Vec<u8> {
        hex.as_bytes()
            .chunks(2)
            .map(|c| {
                let hi = (c[0] as char).to_digit(16).expect("hex");
                let lo = (c[1] as char).to_digit(16).expect("hex");
                ((hi << 4) | lo) as u8
            })
            .collect()
    }

    // RFC 8439 §2.4.2 test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce_bytes = hex_to_bytes("000000000000004a00000000");
        let nonce: [u8; 12] = nonce_bytes.as_slice().try_into().expect("12 bytes");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let mut data = plaintext.to_vec();
        ChaCha20::with_counter(&key, &nonce, 1).apply_keystream(&mut data);

        let expected = hex_to_bytes(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    // RFC 8439 §2.3.2: first keystream block with counter 1.
    #[test]
    fn rfc8439_block_function_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce_bytes = hex_to_bytes("000000090000004a00000000");
        let nonce: [u8; 12] = nonce_bytes.as_slice().try_into().expect("12 bytes");
        let mut zeros = vec![0u8; 64];
        ChaCha20::with_counter(&key, &nonce, 1).apply_keystream(&mut zeros);
        let expected = hex_to_bytes(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(zeros, expected);
    }

    #[test]
    fn round_trip_at_block_boundaries() {
        let key = [0xabu8; 32];
        let nonce = [0x01u8; 12];
        for len in [0usize, 1, 63, 64, 65, 128, 1000, 4096] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = ChaCha20::encrypt(&key, &nonce, &plaintext);
            if len > 0 {
                assert_ne!(ct, plaintext, "len {len}");
            }
            assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), plaintext, "len {len}");
        }
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let key = [9u8; 32];
        let pt = vec![0u8; 128];
        let a = ChaCha20::encrypt(&key, &[0u8; 12], &pt);
        let b = ChaCha20::encrypt(&key, &[1u8; 12], &pt);
        assert_ne!(a, b);
    }

    #[test]
    fn split_application_matches_contiguous() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        let data: Vec<u8> = (0..300).map(|i| i as u8).collect();

        let whole = ChaCha20::encrypt(&key, &nonce, &data);

        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut split = data.clone();
        let (a, b) = split.split_at_mut(100);
        cipher.apply_keystream(a);
        cipher.apply_keystream(b);
        assert_eq!(split, whole);
    }
}
