//! Cryptographic primitives for the RSSD reproduction.
//!
//! RSSD's offload path encrypts and authenticates retained pages and log
//! segments before they leave the SSD over NVMe-over-Ethernet, and its
//! post-attack analysis relies on a *trusted evidence chain*: a tamper-evident,
//! time-ordered chain of MACs over every storage operation the device saw.
//!
//! Everything in this crate is implemented from scratch (no external crypto
//! dependencies) and validated against published test vectors:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256.
//! * [`hmac`] — RFC 2104 / FIPS 198-1 HMAC-SHA-256.
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher.
//! * [`hashchain`] — the chained-HMAC evidence chain primitive.
//! * [`keys`] — the device key hierarchy sealed inside the SSD controller.
//!
//! # Examples
//!
//! ```
//! use rssd_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"hello rssd");
//! assert_eq!(digest.as_bytes().len(), 32);
//! ```

pub mod chacha20;
pub mod hashchain;
pub mod hmac;
pub mod keys;
pub mod sha256;

pub use chacha20::ChaCha20;
pub use hashchain::{ChainLink, ChainVerifyError, HashChain};
pub use hmac::HmacSha256;
pub use keys::{DeviceKeys, KeyId, KeyPurpose};
pub use sha256::{Digest, Sha256};
