//! Property tests for the log wire formats and the offload round trip.

use proptest::prelude::*;
use rssd_core::{LogOp, LogRecord, Segment, SegmentEnvelope};
use rssd_crypto::{ChainLink, DeviceKeys, Digest, HashChain};
use rssd_net::SecureSession;

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        prop_oneof![Just(LogOp::Write), Just(LogOp::Trim), Just(LogOp::Read)],
        any::<u64>(),
        proptest::option::of(any::<u64>().prop_map(|v| v % (u64::MAX - 1))),
        any::<u16>(),
        any::<bool>(),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..256)),
    )
        .prop_map(
            |(seq, at_ns, op, lpa, old_page_index, entropy_mil, read_before, old_data)| LogRecord {
                seq,
                at_ns,
                op,
                lpa,
                old_page_index,
                entropy_mil,
                read_before,
                old_data,
            },
        )
}

proptest! {
    #[test]
    fn record_round_trip(record in arb_record()) {
        let bytes = record.to_bytes();
        let (decoded, used) = LogRecord::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded, record);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn record_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = LogRecord::from_bytes(&bytes);
    }

    #[test]
    fn segment_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = Segment::from_bytes(&bytes);
    }

    #[test]
    fn segment_round_trip_with_verified_links(records in proptest::collection::vec(arb_record(), 0..20)) {
        let mut chain = HashChain::new(b"prop-key");
        let links: Vec<ChainLink> = records.iter().map(|r| chain.append(&r.chain_bytes())).collect();
        let seg = Segment { segment_seq: 7, records, links };
        let decoded = Segment::from_bytes(&seg.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &seg);

        let inputs: Vec<Vec<u8>> = decoded.records.iter().map(|r| r.chain_bytes()).collect();
        prop_assert!(HashChain::verify_sequence(b"prop-key", &inputs, &decoded.links).is_ok());
    }

    #[test]
    fn chain_bytes_independent_of_old_data(record in arb_record(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut with = record.clone();
        with.old_data = Some(data);
        let mut without = record;
        without.old_data = None;
        prop_assert_eq!(with.chain_bytes(), without.chain_bytes());
    }

    /// The zero-copy offload pipeline (header written first, payload
    /// compressed into the same buffer, sealed in place, buffer adopted as
    /// the envelope's wire image) must be byte-identical to the naive
    /// compose path (serialize, compress, seal, copy into an envelope) —
    /// same sealed bytes, same wire image, same decoded envelope, and the
    /// same records back out.
    #[test]
    fn zero_copy_assembly_is_byte_identical_to_naive_compose(
        records in proptest::collection::vec(arb_record(), 0..12),
        seed in any::<u64>(),
        segment_seq in any::<u64>(),
        device_id in any::<u64>(),
        prev_byte in any::<u8>(),
        head_byte in any::<u8>(),
    ) {
        let keys = DeviceKeys::for_simulation(seed);
        let session = SecureSession::new(&keys, 0);
        let mut chain = HashChain::new(b"prop-key");
        let links: Vec<ChainLink> =
            records.iter().map(|r| chain.append(&r.chain_bytes())).collect();
        let record_count = records.len() as u32;
        let segment = Segment { segment_seq, records, links };
        let raw = segment.to_bytes();
        let prev = Digest::from_bytes([prev_byte; 32]);
        let head = Digest::from_bytes([head_byte; 32]);

        // Naive compose: each stage allocates and copies.
        let compressed = rssd_compress::compress_adaptive(&raw);
        let sealed = session.seal(segment_seq, &compressed);
        let naive =
            SegmentEnvelope::new(device_id, segment_seq, prev, head, record_count, &sealed);

        // Zero-copy: one buffer from header to sealed payload.
        let mut wire = Vec::new();
        SegmentEnvelope::write_wire_header(
            &mut wire, device_id, segment_seq, &prev, &head, record_count,
        );
        rssd_compress::compress_adaptive_into(&raw, &mut wire);
        session.seal_in_place(segment_seq, &mut wire, SegmentEnvelope::WIRE_HEADER);
        let zero_copy = SegmentEnvelope::from_wire_image(wire).unwrap();

        prop_assert_eq!(zero_copy.sealed_payload(), naive.sealed_payload());
        prop_assert_eq!(&zero_copy.to_wire_bytes(), &naive.to_wire_bytes());
        prop_assert_eq!(&zero_copy, &naive);

        // The sealed image opens back to the exact records that went in.
        let opened = session
            .open(segment_seq, zero_copy.sealed_payload())
            .expect("self-sealed payload opens");
        let decompressed = rssd_compress::decompress(&opened).expect("valid frame");
        prop_assert_eq!(Segment::from_bytes(&decompressed).unwrap(), segment);
    }

    #[test]
    fn truncated_records_always_rejected(record in arb_record()) {
        let bytes = record.to_bytes();
        // Any strict prefix must fail cleanly (never decode to a different
        // record of the same length).
        for cut in 0..bytes.len() {
            prop_assert!(LogRecord::from_bytes(&bytes[..cut]).is_err() ||
                // A prefix may decode if the record has trailing old_data
                // bytes the prefix drops — but then the consumed length must
                // differ from the original.
                LogRecord::from_bytes(&bytes[..cut]).unwrap().1 < bytes.len());
        }
    }
}

#[test]
fn chain_head_commits_to_every_prior_record() {
    let mut a = HashChain::new(b"k");
    let mut b = HashChain::new(b"k");
    for i in 0..10u64 {
        a.append(&i.to_le_bytes());
        // b diverges at record 5.
        let v = if i == 5 { 99 } else { i };
        b.append(&v.to_le_bytes());
    }
    assert_ne!(a.head(), b.head());
}

#[test]
fn digest_zero_is_distinct_from_any_real_tag() {
    let mut chain = HashChain::new(b"k");
    let link = chain.append(b"x");
    assert_ne!(link.tag, Digest::ZERO);
}
