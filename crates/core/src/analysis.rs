//! Trusted post-attack analysis.
//!
//! Given the verified operation history (local pending tail + every
//! offloaded segment, chain-checked end to end), the analyzer reconstructs
//! the I/O timeline, runs the detection ensemble over it, classifies the
//! attack model, and produces the artifacts an investigator needs: the
//! attack window, the set of victim pages, and the per-detector evidence.

use crate::logrec::{LogOp, LogRecord};
use rssd_detect::{Ensemble, Verdict, WriteObservation};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which of the paper's attack models the history exhibits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackClass {
    /// No attack found.
    None,
    /// Fast read-encrypt-overwrite ransomware.
    Classic,
    /// Encryption accompanied by capacity flooding to force GC.
    GcAttack,
    /// Rate-limited encryption spread over a long horizon.
    TimingAttack,
    /// Encryption (or plain destruction) via trim commands.
    TrimmingAttack,
}

impl std::fmt::Display for AttackClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttackClass::None => "none",
            AttackClass::Classic => "classic ransomware",
            AttackClass::GcAttack => "GC attack",
            AttackClass::TimingAttack => "timing attack",
            AttackClass::TrimmingAttack => "trimming attack",
        };
        f.write_str(s)
    }
}

/// The analyzer's findings.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[must_use]
pub struct AnalysisReport {
    /// Ensemble verdict over the whole history.
    pub verdict: Verdict,
    /// Best-effort attack classification.
    pub attack_class: AttackClass,
    /// Combined suspicion score in `[0, 1]`.
    pub score: f64,
    /// Per-detector scores (name, score).
    pub member_scores: Vec<(String, f64)>,
    /// Time of the first operation attributed to the attack.
    pub attack_start_ns: Option<u64>,
    /// Time of the last operation attributed to the attack.
    pub attack_end_ns: Option<u64>,
    /// Logical pages whose content the attack destroyed (encrypted over or
    /// trimmed) — the recovery work list.
    pub victim_lpas: Vec<u64>,
    /// Records examined.
    pub records_examined: u64,
    /// Did the evidence chain verify end to end?
    pub chain_verified: bool,
}

/// Entropy (bits/byte) above which an overwrite is treated as encryption.
const CIPHERTEXT_BITS: f64 = 7.2;

/// Reconstructs observations and classifies attacks from verified history.
#[derive(Debug, Default)]
pub struct PostAttackAnalyzer;

impl PostAttackAnalyzer {
    /// Creates an analyzer.
    pub fn new() -> Self {
        PostAttackAnalyzer
    }

    /// Converts a log record into a detector observation.
    pub fn observation(record: &LogRecord) -> WriteObservation {
        match record.op {
            LogOp::Trim => WriteObservation::trim(record.at_ns, record.lpa),
            _ => WriteObservation {
                at_ns: record.at_ns,
                lpa: record.lpa,
                entropy_bits: record.entropy_bits(),
                overwrote_valid: record.old_page_index.is_some(),
                read_before_overwrite: record.read_before,
                is_trim: false,
            },
        }
    }

    /// Analyzes a verified history (as returned by
    /// [`crate::RssdDevice::verified_history`]).
    pub fn analyze(&self, history: &[LogRecord], chain_verified: bool) -> AnalysisReport {
        let mut ensemble = Ensemble::new();
        let mut victim_lpas: BTreeSet<u64> = BTreeSet::new();
        let mut malicious_times: Vec<u64> = Vec::new();
        let mut fresh_write_pages = 0u64;
        let mut trimmed_victims = 0u64;

        for record in history {
            if record.op == LogOp::Read {
                continue;
            }
            let obs = Self::observation(record);
            ensemble.observe(&obs);

            match record.op {
                LogOp::Trim => {
                    victim_lpas.insert(record.lpa);
                    malicious_times.push(record.at_ns);
                    trimmed_victims += 1;
                }
                LogOp::Write => {
                    if record.old_page_index.is_some() && record.entropy_bits() >= CIPHERTEXT_BITS {
                        victim_lpas.insert(record.lpa);
                        malicious_times.push(record.at_ns);
                    } else {
                        // Benign rewrite releases the page from the victim
                        // set (the user replaced the content themselves).
                        victim_lpas.remove(&record.lpa);
                        if record.old_page_index.is_none() {
                            fresh_write_pages += 1;
                        }
                    }
                }
                LogOp::Read => unreachable!("filtered above"),
            }
        }

        let verdict = ensemble.verdict();
        let attack_start_ns = malicious_times.iter().copied().min();
        let attack_end_ns = malicious_times.iter().copied().max();

        let attack_class = if verdict == Verdict::Benign || victim_lpas.is_empty() {
            AttackClass::None
        } else if trimmed_victims as f64 >= 0.5 * victim_lpas.len() as f64 {
            AttackClass::TrimmingAttack
        } else {
            let span_ns = attack_end_ns
                .unwrap_or(0)
                .saturating_sub(attack_start_ns.unwrap_or(0));
            let span_hours = span_ns as f64 / 3.6e12;
            let encrypted = malicious_times.len() as f64;
            let rate_per_hour = if span_hours > 0.0 {
                encrypted / span_hours
            } else {
                f64::INFINITY
            };
            // Rate-limited encryption over a long horizon is the timing
            // attack; a short, intense encryption accompanied by a flood of
            // fresh writes (to force GC) is the GC attack.
            if span_hours > 24.0 && rate_per_hour < 100.0 {
                AttackClass::TimingAttack
            } else if fresh_write_pages > 4 * victim_lpas.len() as u64 && fresh_write_pages > 1000 {
                AttackClass::GcAttack
            } else {
                AttackClass::Classic
            }
        };

        AnalysisReport {
            verdict,
            attack_class,
            score: ensemble.score(),
            member_scores: ensemble
                .member_scores()
                .into_iter()
                .map(|(n, s)| (n.to_string(), s))
                .collect(),
            attack_start_ns,
            attack_end_ns,
            victim_lpas: victim_lpas.into_iter().collect(),
            records_examined: history.len() as u64,
            chain_verified,
        }
    }

    /// Backtracks the operations that touched `lpa`, newest first — the
    /// "evidence chain for one file" an investigator pulls.
    pub fn backtrack_lpa(history: &[LogRecord], lpa: u64) -> Vec<&LogRecord> {
        let mut ops: Vec<&LogRecord> = history.iter().filter(|r| r.lpa == lpa).collect();
        ops.reverse();
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(
        seq: u64,
        at_ns: u64,
        lpa: u64,
        entropy: f64,
        old: bool,
        read_before: bool,
    ) -> LogRecord {
        LogRecord {
            seq,
            at_ns,
            op: LogOp::Write,
            lpa,
            old_page_index: old.then_some(lpa * 10),
            entropy_mil: (entropy * 1000.0) as u16,
            read_before,
            old_data: None,
        }
    }

    fn trim(seq: u64, at_ns: u64, lpa: u64) -> LogRecord {
        LogRecord {
            seq,
            at_ns,
            op: LogOp::Trim,
            lpa,
            old_page_index: Some(lpa * 10),
            entropy_mil: 0,
            read_before: false,
            old_data: None,
        }
    }

    #[test]
    fn benign_history_classifies_none() {
        let history: Vec<LogRecord> = (0..500)
            .map(|i| write(i, i * 1_000, i % 100, 4.0, i % 3 == 0, false))
            .collect();
        let report = PostAttackAnalyzer::new().analyze(&history, true);
        assert_eq!(report.verdict, Verdict::Benign);
        assert_eq!(report.attack_class, AttackClass::None);
        assert!(report.victim_lpas.is_empty());
    }

    #[test]
    fn classic_attack_classified_with_window_and_victims() {
        let mut history: Vec<LogRecord> = (0..100)
            .map(|i| write(i, i * 1_000, 1000 + i, 4.0, false, false))
            .collect();
        // Burst of read-encrypt-overwrites at t=10^9.
        for k in 0..300u64 {
            history.push(write(100 + k, 1_000_000_000 + k, k, 7.9, true, true));
        }
        let report = PostAttackAnalyzer::new().analyze(&history, true);
        assert_eq!(report.verdict, Verdict::Ransomware);
        assert_eq!(report.attack_class, AttackClass::Classic);
        assert_eq!(report.victim_lpas.len(), 300);
        assert_eq!(report.attack_start_ns, Some(1_000_000_000));
        assert_eq!(report.attack_end_ns, Some(1_000_000_299));
    }

    #[test]
    fn trimming_attack_classified() {
        let mut history: Vec<LogRecord> = (0..100)
            .map(|i| write(i, i, 1000 + i, 4.0, false, false))
            .collect();
        for k in 0..200u64 {
            history.push(trim(100 + k, 2_000_000 + k, k));
        }
        let report = PostAttackAnalyzer::new().analyze(&history, true);
        assert_eq!(report.attack_class, AttackClass::TrimmingAttack);
        assert_eq!(report.victim_lpas.len(), 200);
    }

    #[test]
    fn timing_attack_classified() {
        let hour = 3_600_000_000_000u64;
        let mut history: Vec<LogRecord> = (0..20_000)
            .map(|i| write(i, i, 10_000 + i, 4.0, false, false))
            .collect();
        // 8 pages/hour over 200 hours.
        for h in 0..200u64 {
            for k in 0..8u64 {
                history.push(write(
                    20_000 + h * 8 + k,
                    h * hour,
                    h * 8 + k,
                    7.9,
                    true,
                    false,
                ));
            }
        }
        history.sort_by_key(|r| r.at_ns);
        let report = PostAttackAnalyzer::new().analyze(&history, true);
        assert_eq!(report.verdict, Verdict::Ransomware);
        assert_eq!(report.attack_class, AttackClass::TimingAttack);
        assert_eq!(report.victim_lpas.len(), 1600);
    }

    #[test]
    fn gc_attack_classified() {
        let mut history: Vec<LogRecord> = Vec::new();
        // Encrypt a modest victim set...
        for k in 0..300u64 {
            history.push(write(k, 1_000 + k, k, 7.9, true, true));
        }
        // ...then flood with fresh data to force GC.
        for k in 0..10_000u64 {
            history.push(write(300 + k, 2_000 + k, 50_000 + k, 5.0, false, false));
        }
        let report = PostAttackAnalyzer::new().analyze(&history, true);
        assert_eq!(report.attack_class, AttackClass::GcAttack);
    }

    #[test]
    fn benign_rewrite_clears_victims() {
        let mut history = vec![write(0, 0, 5, 7.9, true, true); 1];
        history.push(write(1, 10, 5, 3.0, true, false));
        let report = PostAttackAnalyzer::new().analyze(&history, true);
        assert!(report.victim_lpas.is_empty());
    }

    #[test]
    fn backtrack_returns_newest_first() {
        let history = vec![
            write(0, 0, 5, 4.0, false, false),
            write(1, 10, 6, 4.0, false, false),
            write(2, 20, 5, 7.9, true, true),
        ];
        let ops = PostAttackAnalyzer::backtrack_lpa(&history, 5);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].seq, 2);
        assert_eq!(ops[1].seq, 0);
    }

    #[test]
    fn reads_are_skipped_but_counted() {
        let history = vec![LogRecord {
            seq: 0,
            at_ns: 0,
            op: LogOp::Read,
            lpa: 1,
            old_page_index: None,
            entropy_mil: 0,
            read_before: false,
            old_data: None,
        }];
        let report = PostAttackAnalyzer::new().analyze(&history, true);
        assert_eq!(report.records_examined, 1);
        assert_eq!(report.attack_class, AttackClass::None);
    }
}
