//! **RSSD** — the ransomware-aware SSD (the paper's primary contribution).
//!
//! [`RssdDevice`] implements the same host-facing
//! [`BlockDevice`](rssd_ssd::BlockDevice) interface as the baselines in
//! `rssd-ssd`, and adds, entirely below that interface (hardware-isolated in
//! the prototype, structurally private here):
//!
//! * **Hardware-assisted logging** ([`logrec`]) — every storage operation is
//!   appended, in arrival order, to a log whose records are chained with
//!   HMACs ([`rssd_crypto::HashChain`]): the *trusted evidence chain*.
//! * **Conservative stale-data retention** — every page invalidated by an
//!   overwrite or trim is pinned against garbage collection until it has
//!   been offloaded remotely; nothing a ransomware encrypts or erases is
//!   ever physically lost. This is the *zero data loss* guarantee.
//! * **Enhanced trim** — trim commands remap rather than release: reads
//!   return zeroes (host semantics preserved) while the trimmed data joins
//!   the retained log, neutralizing the trimming attack.
//! * **Hardware-isolated NVMe-oE offload** ([`device`], via [`rssd_net`]) —
//!   retained pages and log records leave the device compressed
//!   ([`rssd_compress`]) and encrypted+MAC'd ([`rssd_net::SecureSession`])
//!   toward a [`RemoteTarget`], expanding retention capacity from the SSD's
//!   spare area to the remote budget (Figure 2's 200+ days).
//! * **Zero-data-loss recovery** ([`recovery`]) and **trusted post-attack
//!   analysis** ([`analysis`]) over the combined local + remote log.
//! * **Remote-assisted rebuild** ([`rebuild`]) — when the local half of the
//!   codesign is lost entirely, [`RebuildImage`] reconstructs every
//!   retained page version from the surviving remote evidence chain (the
//!   foundation of `rssd-array`'s fleet-level fault tolerance).
//!
//! # Examples
//!
//! ```
//! use rssd_core::{LoopbackTarget, RssdConfig, RssdDevice};
//! use rssd_flash::{FlashGeometry, NandTiming, SimClock};
//! use rssd_ssd::BlockDevice;
//!
//! let mut dev = RssdDevice::new(
//!     FlashGeometry::small_test(),
//!     NandTiming::instant(),
//!     SimClock::new(),
//!     RssdConfig::default(),
//!     LoopbackTarget::new(),
//! );
//! dev.write_page(7, vec![1; 4096])?;
//! dev.write_page(7, vec![2; 4096])?; // "ransomware" overwrites
//! assert_eq!(dev.recover_page(7).unwrap(), vec![1; 4096]);
//! # Ok::<(), rssd_ssd::DeviceError>(())
//! ```

pub mod analysis;
pub mod config;
pub mod device;
pub mod logrec;
pub mod rebuild;
pub mod recovery;
pub mod remote_target;
pub mod wire;

pub use analysis::{AnalysisReport, AttackClass, PostAttackAnalyzer};
pub use config::RssdConfig;
pub use device::{
    CrashRecovery, CrashReport, HistoryAudit, OffloadHealth, OffloadStats, RssdDevice,
};
pub use logrec::{LogOp, LogRecord, Segment, SegmentEnvelope, WireError};
pub use rebuild::{HarvestReport, RebuildImage};
pub use recovery::{RecoveryEngine, RecoveryReport};
pub use remote_target::{LoopbackTarget, RemoteError, RemoteTarget, StoreAck};
pub use wire::{WireRemote, WireRemoteStats};
