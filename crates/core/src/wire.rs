//! The offload path on the wire: a [`RemoteTarget`] adapter that carries
//! every segment envelope over the simulated NVMe-oE fabric.
//!
//! [`WireRemote`] is the controller-side bridge between the offload engine
//! and the network stack. Where [`LoopbackTarget`](crate::LoopbackTarget)
//! hands envelopes to the store by function call, `WireRemote` serializes
//! them with [`SegmentEnvelope::to_wire_bytes`], fragments them into NVMe-oE
//! capsules, and pushes them through `Nic` → `SimLink` → remote NIC with
//! go-back-N retransmission — so link bandwidth, propagation delay, loss and
//! queueing consume real nanoseconds on the device's simulated timeline.
//! The sealed payload inside the envelope was already encrypted and MAC'd by
//! the device's `SecureSession` before it got here; the wire never carries
//! plaintext log data.
//!
//! Network faults are expressed as *link conditions*, not injected results:
//!
//! * [`WireRemote::set_uplink_down`] blackholes frames; the transport
//!   exhausts its stall budget and the offload engine sees
//!   [`RemoteError::Unreachable`] — exactly what `FaultyRemote`'s `Refuse`
//!   mode used to fake.
//! * With [`WireRemote::set_store_and_forward`], a down link instead acks
//!   and buffers at the edge; [`WireRemote::heal`] replays the buffer over
//!   the restored wire in order (`QueueForReplay`).
//! * [`WireRemote::set_ingest_drop`] models a collector that acknowledges
//!   the transfer but loses the segment before durability
//!   (`DropSilently`) — the chain gap surfaces only at
//!   `verified_history`/rebuild time.
//!
//! Hardware isolation stays structural: this type lives behind the
//! [`RemoteTarget`] trait inside the controller. The host-facing
//! `BlockDevice` API exposes neither `WireRemote` nor any `rssd-net` type.

use crate::logrec::SegmentEnvelope;
use crate::remote_target::{RemoteError, RemoteTarget, StoreAck};
use rssd_net::{LinkConfig, NvmeOeEndpoint, SharedLink, TransferStats};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Wire-level fault/outcome counters, mirroring `RemoteFaultStats` so the
/// scenario matrix can score wire-expressed faults with the same
/// invariants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct WireRemoteStats {
    /// Transfers that exhausted the stall budget with store-and-forward
    /// disabled: surfaced to the engine as [`RemoteError::Unreachable`].
    pub transfers_refused: u64,
    /// Envelopes acked at the edge and buffered while the link was down.
    pub relay_acked: u64,
    /// Buffered envelopes successfully replayed over the healed wire.
    pub relay_replayed: u64,
    /// Envelopes the collector acked in transport but lost before
    /// durability.
    pub ingest_dropped: u64,
}

/// A [`RemoteTarget`] whose every segment crosses the simulated NVMe-oE
/// fabric before reaching the wrapped target `R`.
///
/// The inner target receives exactly the bytes the wire delivered — decoded
/// back into a [`SegmentEnvelope`] — at the simulated time the transfer
/// completed, so offload acks carry real network latency back to the
/// device clock.
#[derive(Clone, Debug)]
pub struct WireRemote<R: RemoteTarget> {
    fabric: NvmeOeEndpoint,
    remote: R,
    max_stall_rounds: u32,
    /// Store-and-forward buffer: `(envelope, enqueue_ns)` in arrival order.
    relay: VecDeque<(SegmentEnvelope, u64)>,
    relay_enabled: bool,
    ingest_drop: bool,
    stats: WireRemoteStats,
}

impl<R: RemoteTarget> WireRemote<R> {
    /// Consecutive no-progress retransmission rounds before a transfer is
    /// declared failed (each round waits out one RTO).
    pub const DEFAULT_MAX_STALL_ROUNDS: u32 = 4;

    /// Wraps `remote` behind a private fabric with symmetric `link`s.
    pub fn new(remote: R, link: LinkConfig) -> Self {
        Self::with_fabric(remote, NvmeOeEndpoint::new(link))
    }

    /// Wraps `remote` behind a fabric whose device → remote direction is
    /// the (possibly shared) `uplink`. N devices built over clones of the
    /// same uplink queue behind each other's serialization time — the
    /// shared-uplink array topology.
    pub fn with_uplink(remote: R, uplink: SharedLink, return_link: LinkConfig) -> Self {
        Self::with_fabric(remote, NvmeOeEndpoint::with_uplink(uplink, return_link))
    }

    /// Wraps `remote` behind an existing fabric.
    pub fn with_fabric(remote: R, fabric: NvmeOeEndpoint) -> Self {
        WireRemote {
            fabric,
            remote,
            max_stall_rounds: Self::DEFAULT_MAX_STALL_ROUNDS,
            relay: VecDeque::new(),
            relay_enabled: false,
            ingest_drop: false,
            stats: WireRemoteStats::default(),
        }
    }

    /// Overrides the stall budget.
    pub fn set_max_stall_rounds(&mut self, rounds: u32) {
        self.max_stall_rounds = rounds.max(1);
    }

    /// Takes the uplink down (`true`) or restores it (`false`). While
    /// down, transfers serialize into the void until the stall budget
    /// exhausts — the wire expression of a network partition.
    pub fn set_uplink_down(&mut self, down: bool) {
        self.fabric.set_link_down(down);
    }

    /// Whether the uplink is currently down.
    pub fn is_uplink_down(&self) -> bool {
        self.fabric.is_link_down()
    }

    /// Enables store-and-forward: failed transfers are acked at the edge
    /// and buffered for [`WireRemote::heal`] instead of surfacing
    /// [`RemoteError::Unreachable`].
    pub fn set_store_and_forward(&mut self, enabled: bool) {
        self.relay_enabled = enabled;
    }

    /// Simulates a collector that acks the transport but loses segments
    /// before durability. Drops are detectable only at
    /// `verified_history`/rebuild time — the transport ack looks genuine.
    pub fn set_ingest_drop(&mut self, drop: bool) {
        self.ingest_drop = drop;
    }

    /// Restores the link, clears fault modes, and replays the
    /// store-and-forward buffer over the live wire in order. Stops (and
    /// re-buffers the remainder) on the first failure. Returns the number
    /// replayed. Safe no-op when healthy with an empty buffer.
    pub fn heal(&mut self) -> u64 {
        self.fabric.set_link_down(false);
        self.relay_enabled = false;
        self.ingest_drop = false;
        let mut replayed = 0u64;
        while let Some((envelope, now_ns)) = self.relay.pop_front() {
            match self.transfer_and_store(&envelope, now_ns) {
                Ok(_) => {
                    replayed += 1;
                    self.stats.relay_replayed += 1;
                }
                Err(_) => {
                    self.relay.push_front((envelope, now_ns));
                    break;
                }
            }
        }
        replayed
    }

    /// Wire-level fault/outcome counters.
    pub fn stats(&self) -> WireRemoteStats {
        self.stats
    }

    /// Protocol counters from the underlying fabric (capsules,
    /// retransmissions, goodput).
    pub fn transfer_stats(&self) -> TransferStats {
        self.fabric.stats()
    }

    /// A handle to the device → remote uplink (cloning shares the wire).
    pub fn uplink(&self) -> SharedLink {
        self.fabric.uplink()
    }

    /// Envelopes currently buffered awaiting heal.
    pub fn queued_segments(&self) -> usize {
        self.relay.len()
    }

    /// The wrapped target.
    pub fn inner(&self) -> &R {
        &self.remote
    }

    /// Mutable access to the wrapped target.
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.remote
    }

    /// Carries `envelope` over the fabric and stores whatever the wire
    /// delivered into the inner target at the delivery time.
    ///
    /// Zero-copy end to end: the envelope *is* its wire image, so handing
    /// the fabric `to_wire_bytes()` is a refcount bump (every transfer
    /// attempt used to re-serialize a full clone of the envelope), and the
    /// delivered bytes are adopted back into an envelope without copying.
    fn transfer_and_store(
        &mut self,
        envelope: &SegmentEnvelope,
        now_ns: u64,
    ) -> Result<StoreAck, RemoteError> {
        let segment_seq = envelope.segment_seq();
        let (arrival_ns, delivered) = self
            .fabric
            .try_transfer_segment(
                segment_seq,
                envelope.to_wire_bytes(),
                now_ns,
                self.max_stall_rounds,
            )
            .map_err(|_| RemoteError::Unreachable)?;
        let delivered = SegmentEnvelope::from_wire_bytes(delivered)
            .expect("reliable fabric delivers the encoded envelope intact");
        if self.ingest_drop {
            // The transport acked; the collector lost the segment before
            // durability. The device unpins its local copy believing the
            // evidence is safe — the gap emerges at verification time.
            self.stats.ingest_dropped += 1;
            return Ok(StoreAck {
                segment_seq,
                durable_at_ns: arrival_ns,
            });
        }
        self.remote.store_segment(delivered, arrival_ns)
    }
}

impl<R: RemoteTarget> RemoteTarget for WireRemote<R> {
    fn store_segment(
        &mut self,
        envelope: SegmentEnvelope,
        now_ns: u64,
    ) -> Result<StoreAck, RemoteError> {
        let segment_seq = envelope.segment_seq();
        match self.transfer_and_store(&envelope, now_ns) {
            Ok(ack) => Ok(ack),
            Err(RemoteError::Unreachable) if self.relay_enabled => {
                // Edge relay: ack now (by move — no clone), deliver after
                // heal.
                self.stats.relay_acked += 1;
                self.relay.push_back((envelope, now_ns));
                Ok(StoreAck {
                    segment_seq,
                    durable_at_ns: now_ns,
                })
            }
            Err(RemoteError::Unreachable) => {
                self.stats.transfers_refused += 1;
                Err(RemoteError::Unreachable)
            }
            Err(other) => Err(other),
        }
    }

    fn fetch_segment(&mut self, segment_seq: u64) -> Result<SegmentEnvelope, RemoteError> {
        // Read-back is bulk recovery traffic; we model it as instantaneous
        // (the recovery window is dominated by the offload direction).
        if let Some((envelope, _)) = self
            .relay
            .iter()
            .find(|(e, _)| e.segment_seq() == segment_seq)
        {
            return Ok(envelope.clone());
        }
        if self.is_uplink_down() {
            return Err(RemoteError::Unreachable);
        }
        self.remote.fetch_segment(segment_seq)
    }

    fn stored_segments(&self) -> Vec<u64> {
        let mut seqs = self.remote.stored_segments();
        seqs.extend(self.relay.iter().map(|(e, _)| e.segment_seq()));
        seqs.sort_unstable();
        seqs.dedup();
        seqs
    }

    fn set_trace_sink(&mut self, sink: rssd_obs::SinkHandle) {
        self.fabric.set_trace_sink(sink.clone());
        self.remote.set_trace_sink(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote_target::LoopbackTarget;
    use rssd_crypto::Digest;

    fn digest(b: u8) -> Digest {
        Digest::from_bytes([b; 32])
    }

    fn envelope(seq: u64, prev: Digest, head: Digest) -> SegmentEnvelope {
        SegmentEnvelope::new(1, seq, prev, head, 3, &[seq as u8; 2048])
    }

    fn chain(n: u64) -> Vec<SegmentEnvelope> {
        (0..n)
            .map(|i| {
                let prev = if i == 0 {
                    Digest::ZERO
                } else {
                    digest(i as u8)
                };
                envelope(i, prev, digest(i as u8 + 1))
            })
            .collect()
    }

    #[test]
    fn ideal_link_matches_direct_path_exactly() {
        let mut direct = LoopbackTarget::new();
        let mut wired = WireRemote::new(LoopbackTarget::new(), LinkConfig::ideal());
        for (i, env) in chain(5).into_iter().enumerate() {
            let now = 1_000 * i as u64;
            let a = direct.store_segment(env.clone(), now).unwrap();
            let b = wired.store_segment(env, now).unwrap();
            assert_eq!(a, b, "ideal wire must be invisible in acks");
        }
        assert_eq!(direct.stored_segments(), wired.stored_segments());
        for seq in direct.stored_segments() {
            assert_eq!(
                direct.fetch_segment(seq).unwrap(),
                wired.fetch_segment(seq).unwrap()
            );
        }
        assert_eq!(wired.transfer_stats().segments, 5);
        assert_eq!(wired.transfer_stats().retransmissions, 0);
    }

    #[test]
    fn real_link_time_lands_in_the_ack() {
        let mut wired = WireRemote::new(LoopbackTarget::new(), LinkConfig::datacenter_10g());
        let ack = wired.store_segment(chain(1).remove(0), 0).unwrap();
        // 2 kB + capsule/frame overhead at 1.25 GB/s ≥ 1.6 us, plus
        // propagation both ways.
        assert!(ack.durable_at_ns >= 1_600, "ack at {}", ack.durable_at_ns);
    }

    #[test]
    fn down_link_is_unreachable_without_relay() {
        let mut wired = WireRemote::new(LoopbackTarget::new(), LinkConfig::datacenter_10g());
        wired.set_uplink_down(true);
        let err = wired.store_segment(chain(1).remove(0), 0).unwrap_err();
        assert_eq!(err, RemoteError::Unreachable);
        assert_eq!(wired.stats().transfers_refused, 1);
        assert!(wired.stored_segments().is_empty());
        assert!(
            wired.uplink().frames_blackholed() > 0,
            "frames hit the void"
        );
        assert_eq!(
            wired.fetch_segment(0),
            Err(RemoteError::Unreachable),
            "fetch during partition fails too"
        );
    }

    #[test]
    fn store_and_forward_buffers_then_replays_over_healed_wire() {
        let mut wired = WireRemote::new(LoopbackTarget::new(), LinkConfig::datacenter_10g());
        wired.set_uplink_down(true);
        wired.set_store_and_forward(true);
        let envs = chain(3);
        for (i, env) in envs.iter().enumerate() {
            let ack = wired.store_segment(env.clone(), i as u64).unwrap();
            assert_eq!(ack.durable_at_ns, i as u64, "edge ack carries no wire time");
        }
        assert_eq!(wired.queued_segments(), 3);
        assert_eq!(wired.stats().relay_acked, 3);
        assert!(
            wired.inner().stored_segments().is_empty(),
            "nothing crossed"
        );
        // Buffered segments are visible and fetchable during the partition.
        assert_eq!(wired.stored_segments(), vec![0, 1, 2]);
        assert_eq!(wired.fetch_segment(1).unwrap(), envs[1]);

        assert_eq!(wired.heal(), 3);
        assert_eq!(wired.stats().relay_replayed, 3);
        assert_eq!(wired.queued_segments(), 0);
        assert_eq!(wired.inner().stored_segments(), vec![0, 1, 2]);
        assert!(
            wired.transfer_stats().segments >= 3,
            "replay went over the real wire"
        );
    }

    #[test]
    fn ingest_drop_acks_but_loses_the_segment() {
        let mut wired = WireRemote::new(LoopbackTarget::new(), LinkConfig::datacenter_10g());
        let envs = chain(2);
        wired.set_ingest_drop(true);
        wired.store_segment(envs[0].clone(), 0).unwrap();
        wired.set_ingest_drop(false);
        wired.store_segment(envs[1].clone(), 1).unwrap();
        assert_eq!(wired.stats().ingest_dropped, 1);
        // Segment 0 vanished after a genuine-looking ack; the hole is only
        // observable downstream (verification / rebuild walk).
        assert_eq!(wired.stored_segments(), vec![1]);
        assert_eq!(wired.fetch_segment(0), Err(RemoteError::NoSuchSegment(0)));
    }

    #[test]
    fn heal_is_a_safe_noop_when_healthy() {
        let mut wired = WireRemote::new(LoopbackTarget::new(), LinkConfig::datacenter_10g());
        assert_eq!(wired.heal(), 0);
        wired.store_segment(chain(1).remove(0), 0).unwrap();
        assert_eq!(wired.heal(), 0);
        assert_eq!(wired.stored_segments(), vec![0]);
    }

    mod device_over_wire {
        use super::*;
        use crate::config::RssdConfig;
        use crate::device::RssdDevice;
        use rssd_flash::{FlashGeometry, NandTiming, SimClock};
        use rssd_ssd::{BlockDevice, DeviceError};

        fn device(link: LinkConfig) -> RssdDevice<WireRemote<LoopbackTarget>> {
            RssdDevice::new(
                FlashGeometry::small_test(),
                NandTiming::instant(),
                SimClock::new(),
                RssdConfig {
                    segment_pages: 8,
                    ..RssdConfig::default()
                },
                WireRemote::new(LoopbackTarget::new(), link),
            )
        }

        fn page(b: u8) -> Vec<u8> {
            vec![b; 4096]
        }

        #[test]
        fn offload_works_end_to_end_over_the_wire() {
            let mut d = device(LinkConfig::datacenter_10g());
            d.write_page(3, page(1)).unwrap();
            d.write_page(3, page(2)).unwrap();
            d.flush_log().unwrap();
            assert!(d.offload_stats().segments_offloaded > 0);
            assert!(
                d.remote().transfer_stats().payload_bytes > 0,
                "segments crossed as capsules, not function calls"
            );
            assert_eq!(d.recover_page(3).unwrap(), page(1));
        }

        #[test]
        fn slow_uplink_backpressure_is_host_visible() {
            let slow = LinkConfig {
                bandwidth_bytes_per_sec: 1_000_000, // 1 MB/s
                propagation_delay_ns: 0,
                loss_period: 0,
            };
            let mut fast_dev = device(LinkConfig::ideal());
            let mut slow_dev = device(slow);
            for d in [&mut fast_dev, &mut slow_dev] {
                d.write_page(3, page(1)).unwrap();
                d.write_page(3, page(2)).unwrap();
                d.flush_log().unwrap();
            }
            let sealed = slow_dev.offload_stats().sealed_bytes;
            assert!(sealed > 0);
            // 1 MB/s ⇒ each sealed byte costs ≥ 1 us of simulated time,
            // and that time must land on the device clock.
            let min_wire_ns = sealed * 1_000;
            let slow_now = slow_dev.clock().now_ns();
            let fast_now = fast_dev.clock().now_ns();
            assert!(
                slow_now >= fast_now + min_wire_ns,
                "slow uplink must cost the device clock: slow {slow_now} \
                 fast {fast_now} wire {min_wire_ns}"
            );
        }

        #[test]
        fn dead_uplink_stalls_writes_instead_of_dropping_evidence() {
            let mut d = device(LinkConfig::datacenter_10g());
            d.remote_mut().set_max_stall_rounds(1);
            d.remote_mut().set_uplink_down(true);
            let mut stalled = false;
            // Fill the small device; with the remote unreachable the pinned
            // pages can never drain, so the write path must stall rather
            // than drop retained data.
            for i in 0..4096u64 {
                match d.write_page(i % 64, page((i % 251) as u8)) {
                    Ok(_) => {}
                    Err(DeviceError::Stalled) => {
                        stalled = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            }
            assert!(stalled, "dead wire must surface as backpressure");
            assert!(d.offload_stats().offload_failures > 0);
            assert!(d.remote().stats().transfers_refused > 0);
            assert!(d.remote().inner().stored_segments().is_empty());
        }
    }

    #[test]
    fn chain_discontinuity_passes_through_the_wire() {
        let mut wired = WireRemote::new(LoopbackTarget::new(), LinkConfig::datacenter_10g());
        wired
            .store_segment(envelope(0, Digest::ZERO, digest(1)), 0)
            .unwrap();
        let err = wired
            .store_segment(envelope(1, digest(9), digest(2)), 1)
            .unwrap_err();
        assert!(matches!(err, RemoteError::ChainDiscontinuity { .. }));
    }
}
