//! RSSD device configuration.

use serde::{Deserialize, Serialize};

/// Tuning knobs for [`crate::RssdDevice`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RssdConfig {
    /// Device identity carried in every offloaded segment envelope.
    pub device_id: u64,
    /// Seed for the device key hierarchy (factory provisioning stand-in).
    pub key_seed: u64,
    /// Build and offload a segment once this many retained pages are
    /// buffered.
    pub segment_pages: usize,
    /// Also offload whenever the pinned fraction of blocks exceeds this
    /// (capacity-pressure trigger — the GC attack pushes on this).
    pub pinned_fraction_watermark: f64,
    /// Log host reads into the evidence chain (metadata only). Costs log
    /// volume, buys read-before-overwrite evidence for forensics.
    pub log_reads: bool,
    /// NAND blocks reserved as a durable evidence-spill region: sealed
    /// segments stage here while the remote is unreachable, so evidence
    /// survives a power cut mid-outage. Zero (the default) disables the
    /// region — staged segments then live in controller RAM only.
    pub spill_blocks: u32,
}

impl Default for RssdConfig {
    fn default() -> Self {
        RssdConfig {
            device_id: 1,
            key_seed: 0x5553_5344, // "USSD"
            segment_pages: 64,
            pinned_fraction_watermark: 0.25,
            log_reads: true,
            spill_blocks: 0,
        }
    }
}

impl RssdConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.segment_pages == 0 {
            return Err("segment_pages must be at least 1".to_string());
        }
        if !(0.0..1.0).contains(&self.pinned_fraction_watermark) {
            return Err(format!(
                "pinned_fraction_watermark {} outside [0, 1)",
                self.pinned_fraction_watermark
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RssdConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_segment() {
        let c = RssdConfig {
            segment_pages: 0,
            ..RssdConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_watermark() {
        let c = RssdConfig {
            pinned_fraction_watermark: 1.5,
            ..RssdConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
