//! The RSSD device.

use crate::config::RssdConfig;
use crate::logrec::{LogOp, LogRecord, Segment, SegmentEnvelope, WireError};
use crate::remote_target::{RemoteError, RemoteTarget};
use rssd_compress::shannon_entropy;
use rssd_crypto::{ChainLink, DeviceKeys, Digest, HashChain, KeyPurpose};
use rssd_flash::{FlashGeometry, NandArray, NandTiming, SimClock};
use rssd_ftl::{Ftl, FtlConfig, FtlError, FtlStats, InvalidateCause};
use rssd_net::SecureSession;
use rssd_obs::{ProfilerHandle, SinkHandle};
use rssd_ssd::{BlockDevice, CommandOutcome, CommandResult, DeviceError, IoCommand, LatencyStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Offload-path health: a hysteresis state machine over backlog depth
/// (RAM-staged segments, spill-region occupancy) and consecutive ship
/// failures. The device degrades along this slope instead of falling off a
/// cliff when the remote disappears: `Healthy` ships inline, `Buffering`
/// stages sealed segments locally, `Throttled` charges writes a
/// backlog-proportional latency penalty, and only `Stalled` refuses writes
/// outright — after one last drain attempt.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum OffloadHealth {
    /// No backlog, no recent failures: segments ship as they seal.
    #[default]
    Healthy,
    /// Sealed segments are staged locally (remote slow or unreachable), but
    /// backlog pressure is low; host I/O is unaffected.
    Buffering,
    /// Backlog pressure is high (or failures persistent): writes pay a
    /// backlog-proportional simulated latency penalty — admission control.
    Throttled,
    /// Backlog is essentially full: writes are refused with
    /// [`DeviceError::Stalled`] after a final drain attempt.
    Stalled,
}

impl OffloadHealth {
    /// Stable lowercase label (trace events, metrics, bench rows).
    pub fn as_str(self) -> &'static str {
        match self {
            OffloadHealth::Healthy => "healthy",
            OffloadHealth::Buffering => "buffering",
            OffloadHealth::Throttled => "throttled",
            OffloadHealth::Stalled => "stalled",
        }
    }

    /// Numeric severity (0 = healthy … 3 = stalled), for metrics gauges.
    pub fn severity(self) -> u8 {
        match self {
            OffloadHealth::Healthy => 0,
            OffloadHealth::Buffering => 1,
            OffloadHealth::Throttled => 2,
            OffloadHealth::Stalled => 3,
        }
    }
}

impl std::fmt::Display for OffloadHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Offload-path counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct OffloadStats {
    /// Segments durably acknowledged by the remote.
    pub segments_offloaded: u64,
    /// Log records shipped.
    pub records_offloaded: u64,
    /// Retained page versions shipped (and unpinned locally).
    pub retained_pages_offloaded: u64,
    /// Plaintext bytes before compression.
    pub raw_bytes: u64,
    /// Sealed bytes after compress+encrypt+MAC (what crossed the wire).
    pub sealed_bytes: u64,
    /// Offload attempts that failed (remote unreachable); data stayed
    /// pinned locally.
    pub offload_failures: u64,
    /// Host writes that had to wait for a synchronous offload because the
    /// device was full of pinned data (backpressure, not data loss).
    pub sync_offloads: u64,
    /// Segments sealed (compress + encrypt + MAC). Each segment is sealed
    /// exactly once, however many ship attempts it takes: the gap between
    /// this and `segments_offloaded` is the staged backlog, and this never
    /// increases on a retry.
    pub segments_sealed: u64,
    /// Sealed segments persisted to the NAND spill region while the remote
    /// was unreachable (evidence made locally durable mid-outage).
    pub segments_spilled: u64,
    /// Spilled segments replayed from NAND by crash recovery.
    pub spill_replayed: u64,
    /// Writes admitted under `Throttled` (each paid a latency penalty).
    pub throttled_writes: u64,
    /// Total simulated latency charged to throttled writes.
    pub throttle_penalty_ns: u64,
    /// Current offload health state (fleet merge keeps the most degraded).
    pub health: OffloadHealth,
    /// Worst health state the device has ever been in — latches across
    /// heals, so a post-outage snapshot still shows how far the device
    /// degraded (fleet merge keeps the most degraded).
    pub health_peak: OffloadHealth,
}

impl OffloadStats {
    /// Effective compression ratio achieved on the offload path.
    pub fn compression_ratio(&self) -> f64 {
        if self.sealed_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.sealed_bytes as f64
    }

    /// Merges another device's offload counters into this one — the fleet
    /// view an array front end reports across its member devices.
    pub fn merge(&mut self, other: &OffloadStats) {
        self.segments_offloaded += other.segments_offloaded;
        self.records_offloaded += other.records_offloaded;
        self.retained_pages_offloaded += other.retained_pages_offloaded;
        self.raw_bytes += other.raw_bytes;
        self.sealed_bytes += other.sealed_bytes;
        self.offload_failures += other.offload_failures;
        self.sync_offloads += other.sync_offloads;
        self.segments_sealed += other.segments_sealed;
        self.segments_spilled += other.segments_spilled;
        self.spill_replayed += other.spill_replayed;
        self.throttled_writes += other.throttled_writes;
        self.throttle_penalty_ns += other.throttle_penalty_ns;
        self.health = self.health.max(other.health);
        self.health_peak = self.health_peak.max(other.health_peak);
    }
}

#[derive(Clone, Copy, Debug)]
struct RemoteVersion {
    segment_seq: u64,
    invalidated_at_ns: u64,
    record_seq: u64,
}

/// A sealed segment awaiting remote acknowledgement. The envelope *is* the
/// wire image (refcounted `Bytes`), built exactly once at seal time and
/// reused verbatim by every ship retry, the NAND spill, and crash replay.
#[derive(Clone, Debug)]
struct StagedSegment {
    envelope: SegmentEnvelope,
    /// The segment's records with `old_data` stripped (the pre-images live
    /// inside the sealed envelope; these drive chain verification and the
    /// recovery index).
    records: Vec<LogRecord>,
    links: Vec<ChainLink>,
    retained_pages: u64,
    raw_bytes: u64,
    /// Persisted to the NAND spill region: the evidence survives a power
    /// cut, and the retained pre-image pins have been released.
    spilled: bool,
}

/// What a power cut destroyed. The flash contents (every acknowledged host
/// write) and the remote store survive; everything in controller RAM — the
/// pending log tail, its retention pins, the read-correlation window and the
/// remote version index — does not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct CrashReport {
    /// Log records that had not been offloaded and died with the RAM.
    pub pending_records_lost: u64,
    /// Retained pre-images whose only reference was a pending record; their
    /// pinned flash pages become collectible garbage.
    pub pending_preimages_lost: u64,
    /// Evidence-chain length at the moment of the cut (for fork audits: the
    /// recovered chain resumes strictly below this).
    pub chain_len_at_crash: u64,
}

impl CrashReport {
    /// Folds another member's crash report into this one — the
    /// enclosure/fleet rollup. Associative and commutative, with
    /// `CrashReport::default()` as identity.
    pub fn merge(&mut self, other: &CrashReport) {
        self.pending_records_lost += other.pending_records_lost;
        self.pending_preimages_lost += other.pending_preimages_lost;
        self.chain_len_at_crash += other.chain_len_at_crash;
    }
}

/// Outcome of post-crash recovery: the volatile state rebuilt from the two
/// durable halves (local flash, remote evidence chain).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct CrashRecovery {
    /// Offloaded segments walked and chain-verified.
    pub segments_walked: u64,
    /// Records re-indexed from the remote chain.
    pub records_indexed: u64,
    /// Retained page versions re-indexed (recoverable again).
    pub versions_indexed: u64,
    /// Evidence-chain sequence the device resumed appending at. Equals the
    /// durable (offloaded) record count: the lost pending tail is *not*
    /// resequenced, so the remote store only ever sees one continuation of
    /// any head — the chain cannot fork.
    pub resumed_seq: u64,
}

impl CrashRecovery {
    /// Folds another member's recovery counters into this one — the
    /// enclosure/fleet rollup (`resumed_seq` adds, i.e. total durable
    /// records resumed across members). Associative and commutative, with
    /// `CrashRecovery::default()` as identity.
    pub fn merge(&mut self, other: &CrashRecovery) {
        self.segments_walked += other.segments_walked;
        self.records_indexed += other.records_indexed;
        self.versions_indexed += other.versions_indexed;
        self.resumed_seq += other.resumed_seq;
    }
}

/// A fault-tolerant read of the operation history: the longest verifiable
/// prefix of the evidence chain plus the pending tail when it still extends
/// that prefix. Unlike [`RssdDevice::verified_history`], a gap or tamper
/// does not discard the trustworthy prefix — it is reported alongside.
#[derive(Clone, Debug)]
#[must_use]
pub struct HistoryAudit {
    /// Chain-verified records, in chain order.
    pub records: Vec<LogRecord>,
    /// `true` when the full history verified end to end and every appended
    /// record is accounted for.
    pub verified: bool,
    /// Description of the first verification failure or detected gap.
    pub failure: Option<String>,
}

/// The ransomware-aware SSD: conservative retention + hardware-assisted
/// logging + NVMe-oE offload + recovery + forensics, behind the plain
/// [`BlockDevice`] interface.
///
/// The generic parameter `R` is the remote half of the codesign; hosts only
/// ever see the `BlockDevice` methods — `R`, the keys, the chain and the log
/// are structurally unreachable from host code, mirroring the hardware
/// isolation of the prototype.
#[derive(Debug)]
pub struct RssdDevice<R: RemoteTarget> {
    ftl: Ftl,
    config: RssdConfig,
    keys: DeviceKeys,
    chain: HashChain,
    session: SecureSession,
    remote: R,
    /// Records not yet offloaded, in chain order.
    pending: Vec<LogRecord>,
    pending_links: Vec<ChainLink>,
    /// Sealed segments awaiting remote acknowledgement, FIFO in chain
    /// order. Spilled segments always form a prefix of this queue, so a
    /// power cut truncates the staged history cleanly at the last spilled
    /// segment — never a hole in the middle of the chain.
    staged: std::collections::VecDeque<StagedSegment>,
    /// Offload health-state machine (see [`OffloadHealth`]).
    health: OffloadHealth,
    /// Ship failures since the last acknowledged segment.
    consecutive_failures: u32,
    /// Background ship attempts are deferred until this simulated time
    /// (capped exponential backoff). Forced attempts (flush, sync
    /// backpressure, stalled-write drains) always go through.
    next_retry_at_ns: u64,
    /// Current backoff step, doubled per failure up to the cap.
    retry_backoff_ns: u64,
    /// Chain head before the first pending record.
    prev_segment_head: Digest,
    /// Pending records whose old page is pinned locally.
    pending_retained: usize,
    next_segment_seq: u64,
    /// Device-RAM index of offloaded old versions per LPA (newest last).
    remote_index: HashMap<u64, Vec<RemoteVersion>>,
    /// Last host read time per LPA (read-before-overwrite evidence).
    recent_reads: HashMap<u64, u64>,
    read_window_ns: u64,
    latency: LatencyStats,
    stats: OffloadStats,
    /// Power lost: volatile state dropped, I/O refused until [`Self::recover`].
    crashed: bool,
    /// What the most recent crash destroyed (see [`Self::crash`]).
    last_crash: CrashReport,
    /// Trace sink for offload lifecycle events on the `offload` track.
    sink: SinkHandle,
    /// Host-side profiler; offload work is charged to the `wire` phase.
    profiler: ProfilerHandle,
}

impl<R: RemoteTarget> RssdDevice<R> {
    /// Read-before-overwrite correlation window recorded in log metadata.
    pub const READ_WINDOW_NS: u64 = 600 * 1_000_000_000;

    /// Soft cap on RAM-staged sealed segments; the backlog-pressure
    /// denominator when no spill region is configured.
    pub const RAM_STAGE_SOFT_CAP: usize = 32;
    /// Initial background-retry backoff after a ship failure (10 ms).
    pub const RETRY_BACKOFF_BASE_NS: u64 = 10_000_000;
    /// Backoff ceiling across a sustained outage (5 s).
    pub const RETRY_BACKOFF_CAP_NS: u64 = 5_000_000_000;
    /// Simulated latency a `Throttled` write pays per staged segment —
    /// admission control's slope (40 µs per backlogged segment). Tuned so
    /// a mid-outage device still delivers ≥ 25 % of healthy throughput
    /// (the degradation bench gates this) while the slope stays steep
    /// enough that hosts feel the backlog long before the Stalled cliff.
    pub const THROTTLE_PENALTY_PER_STAGED_NS: u64 = 40_000;
    /// Backlog pressure at which `Throttled` engages / releases.
    const THROTTLE_ENTER: f64 = 0.50;
    const THROTTLE_EXIT: f64 = 0.35;
    /// Backlog pressure at which `Stalled` engages / releases.
    const STALL_ENTER: f64 = 0.92;
    const STALL_EXIT: f64 = 0.70;
    /// Consecutive ship failures that force `Throttled` regardless of
    /// backlog depth (a persistently failing wire deserves the slope too).
    const THROTTLE_FAILURE_STREAK: u32 = 16;

    /// Builds an RSSD over fresh NAND.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(
        geometry: FlashGeometry,
        timing: NandTiming,
        clock: SimClock,
        config: RssdConfig,
        remote: R,
    ) -> Self {
        config.validate().expect("invalid RssdConfig");
        let nand = NandArray::with_clock(geometry, timing, clock);
        let ftl = Ftl::new(
            nand,
            FtlConfig {
                spill_blocks: config.spill_blocks,
                ..FtlConfig::default()
            },
        );
        let keys = DeviceKeys::for_simulation(config.key_seed);
        let chain_key = keys.derive(KeyPurpose::EvidenceChain, 0);
        let session = SecureSession::new(&keys, 0);
        RssdDevice {
            ftl,
            keys,
            chain: HashChain::new(&chain_key),
            session,
            remote,
            pending: Vec::new(),
            pending_links: Vec::new(),
            staged: std::collections::VecDeque::new(),
            health: OffloadHealth::Healthy,
            consecutive_failures: 0,
            next_retry_at_ns: 0,
            retry_backoff_ns: Self::RETRY_BACKOFF_BASE_NS,
            prev_segment_head: Digest::ZERO,
            pending_retained: 0,
            next_segment_seq: 0,
            remote_index: HashMap::new(),
            recent_reads: HashMap::new(),
            read_window_ns: Self::READ_WINDOW_NS,
            latency: LatencyStats::new(),
            stats: OffloadStats::default(),
            crashed: false,
            last_crash: CrashReport::default(),
            sink: SinkHandle::disabled(),
            profiler: ProfilerHandle::disabled(),
            config,
        }
    }

    /// Installs a trace sink across the whole device stack: the FTL's GC
    /// spans, the NAND array's per-unit operation spans, the offload
    /// engine's segment lifecycle events, and (through the remote target)
    /// the wire's loss/retransmission instants all share `sink`'s buffer.
    pub fn set_trace_sink(&mut self, sink: SinkHandle) {
        self.ftl.set_trace_sink(sink.clone());
        self.remote.set_trace_sink(sink.clone());
        self.sink = sink;
    }

    /// Installs a phase profiler: segment sealing, compression and wire
    /// transfer time is charged to the `wire` phase.
    pub fn set_profiler(&mut self, profiler: ProfilerHandle) {
        self.profiler = profiler;
    }

    /// Simulated power loss. Everything in controller RAM is dropped: the
    /// pending log tail and its retention pins, the read-correlation window
    /// and the remote version index. Flash contents — every host write that
    /// was acknowledged — and the remote store are durable and survive.
    /// All I/O fails with [`DeviceError::PowerLoss`] until [`Self::recover`]
    /// runs.
    ///
    /// Pre-images referenced only by pending (never-offloaded) records are
    /// unpinned: with the records gone no recovery path can name them, and a
    /// real controller's pin table is RAM too. They are *detectably* lost —
    /// the remote chain head shows exactly where the durable log ends.
    ///
    /// Returns the report of the cut that did the damage; crashing an
    /// already-crashed device destroys nothing further and returns the
    /// original report (see [`Self::last_crash_report`]).
    pub fn crash(&mut self) -> CrashReport {
        let geometry = self.ftl.geometry();
        let mut preimages = 0u64;
        let mut lost_records = self.pending.len() as u64;
        for rec in &self.pending {
            if let Some(idx) = rec.old_page_index {
                self.ftl.unpin_page(geometry.page_from_index(idx));
                preimages += 1;
            }
        }
        // Staged segments: a spilled one is durable on NAND (its wire image
        // replays at recovery — nothing lost); a RAM-only one dies with its
        // pins exactly like the pending tail.
        for seg in &self.staged {
            if seg.spilled {
                continue;
            }
            lost_records += seg.records.len() as u64;
            for rec in &seg.records {
                if let Some(idx) = rec.old_page_index {
                    self.ftl.unpin_page(geometry.page_from_index(idx));
                    preimages += 1;
                }
            }
        }
        let report = CrashReport {
            pending_records_lost: lost_records,
            pending_preimages_lost: preimages,
            chain_len_at_crash: self.chain.len(),
        };
        self.pending.clear();
        self.pending_links.clear();
        self.staged.clear();
        self.pending_retained = 0;
        self.recent_reads.clear();
        self.remote_index.clear();
        if !self.crashed {
            // A second crash() while already down destroys nothing further;
            // keep the report of the cut that did the damage.
            self.last_crash = report;
        }
        self.crashed = true;
        self.last_crash
    }

    /// `true` while the device is down after [`Self::crash`].
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// What the most recent crash destroyed — stable across failed
    /// [`Self::recover`] attempts (e.g. while the remote is partitioned),
    /// so a retrying operator still gets honest loss accounting.
    pub fn last_crash_report(&self) -> CrashReport {
        self.last_crash
    }

    /// Post-crash recovery: walks the remote evidence chain (verifying it
    /// end to end), rebuilds the remote version index, and resumes the
    /// evidence chain *at the durable head* — the sequence right after the
    /// last offloaded record. The lost pending tail is never resequenced or
    /// re-signed, so any verifier (including the remote store's continuity
    /// check) only ever sees one continuation of any chain head: a crash
    /// cannot fork the chain, only truncate its volatile tail.
    ///
    /// # Errors
    ///
    /// Errors when the remote is unreachable, when its chain fails
    /// verification, or when the store holds fewer segments than the
    /// device was acknowledged for (a transport that acked and dropped
    /// offloads, then a crash destroying the only other witness — the
    /// in-RAM chain) — recovering on top of a tampered or holed store
    /// would launder the loss into trusted state.
    pub fn recover(&mut self) -> Result<CrashRecovery, String> {
        if !self.crashed {
            return Err("device is powered and running; nothing to recover".to_string());
        }
        // The acked-segment counter is the one durable witness that
        // survives both the drop (it counted the fake ack) and the crash
        // (telemetry is persisted): a store with fewer segments than the
        // device was acknowledged for lost offloads in transit.
        let stored = self.remote.stored_segments().len() as u64;
        if self.stats.segments_offloaded > stored {
            return Err(format!(
                "chain gap: device was acknowledged {} offloaded segments but \
                 the store holds {stored} — acknowledged offloads were lost in \
                 transit; refusing to resume over a holed history",
                self.stats.segments_offloaded
            ));
        }
        let chain_key = self.keys.derive(KeyPurpose::EvidenceChain, 0);
        let mut index: HashMap<u64, Vec<RemoteVersion>> = HashMap::new();
        let mut records = 0u64;
        let mut versions = 0u64;
        let head = crate::rebuild::walk_verified_segments(
            &chain_key,
            &self.session,
            &mut self.remote,
            |segment_seq, record| {
                records += 1;
                if record.old_data.is_some() {
                    versions += 1;
                    index.entry(record.lpa).or_default().push(RemoteVersion {
                        segment_seq,
                        invalidated_at_ns: record.at_ns,
                        record_seq: record.seq,
                    });
                }
            },
        )?;
        let segments = self.remote.stored_segments();

        // Replay the NAND spill region: sealed segments that were staged
        // mid-outage survived the power cut on real flash. Entries already
        // acknowledged remotely are skipped; the rest are re-staged in
        // order, each verified to extend the recovered chain head, so the
        // backlog drains exactly as if the cut never happened.
        let mut head = head;
        let mut records_total = records;
        let mut versions_total = versions;
        let last_remote_seq = segments.last().copied();
        let mut staged = std::collections::VecDeque::new();
        let spill_entries = self
            .ftl
            .spill_scan()
            .map_err(|e| format!("spill region unreadable: {e}"))?;
        for bytes in spill_entries {
            let Some(envelope) = SegmentEnvelope::from_wire_image(bytes) else {
                break;
            };
            if last_remote_seq.is_some_and(|s| envelope.segment_seq() <= s) {
                continue; // acked before the cut; the remote copy is canonical
            }
            if envelope.prev_chain_head() != head {
                break; // does not extend the recovered chain: unusable tail
            }
            let Ok(segment) = open_envelope(&self.session, &envelope) else {
                break;
            };
            let raw_bytes = segment.to_bytes().len() as u64;
            let Segment {
                mut records, links, ..
            } = segment;
            let mut retained = 0u64;
            for rec in &mut records {
                if rec.old_page_index.is_some() {
                    retained += 1;
                    versions_total += 1;
                }
                rec.old_data = None;
            }
            records_total += records.len() as u64;
            head = envelope.chain_head();
            self.stats.spill_replayed += 1;
            staged.push_back(StagedSegment {
                envelope,
                records,
                links,
                retained_pages: retained,
                raw_bytes,
                spilled: true,
            });
        }

        let next_segment_seq = staged
            .back()
            .map(|s: &StagedSegment| s.envelope.segment_seq() + 1)
            .or(last_remote_seq.map(|s| s + 1))
            .unwrap_or(0);
        let segments_walked = segments.len() as u64 + staged.len() as u64;
        self.staged = staged;
        self.remote_index = index;
        self.prev_segment_head = head;
        self.chain = HashChain::resume(&chain_key, head, records_total);
        self.next_segment_seq = next_segment_seq;
        self.crashed = false;
        self.consecutive_failures = 0;
        self.retry_backoff_ns = Self::RETRY_BACKOFF_BASE_NS;
        self.next_retry_at_ns = 0;
        self.update_health();
        Ok(CrashRecovery {
            segments_walked,
            records_indexed: records_total,
            versions_indexed: versions_total,
            resumed_seq: records_total,
        })
    }

    /// Offload-path counters.
    pub fn offload_stats(&self) -> OffloadStats {
        let mut stats = self.stats;
        stats.health = self.health;
        stats
    }

    /// Current offload health state.
    pub fn offload_health(&self) -> OffloadHealth {
        self.health
    }

    /// Sealed segments staged locally awaiting remote acknowledgement.
    pub fn staged_segments(&self) -> usize {
        self.staged.len()
    }

    /// Bytes of the NAND spill region currently holding staged evidence.
    pub fn spill_used_bytes(&self) -> u64 {
        self.ftl.spill_used_bytes()
    }

    /// Capacity of the NAND spill region (zero when not configured).
    pub fn spill_capacity_bytes(&self) -> u64 {
        self.ftl.spill_capacity_bytes()
    }

    /// Backlog pressure in `[0, 1+]`: spill-region occupancy when a spill
    /// region exists, RAM-staged depth against the soft cap otherwise
    /// (whichever is higher — a full spill with a RAM tail is still full).
    pub fn backlog_pressure(&self) -> f64 {
        let ram = self.staged.iter().filter(|s| !s.spilled).count() as f64
            / Self::RAM_STAGE_SOFT_CAP as f64;
        let capacity = self.ftl.spill_capacity_bytes();
        let spill = if capacity == 0 {
            0.0
        } else {
            self.ftl.spill_used_bytes() as f64 / capacity as f64
        };
        ram.max(spill)
    }

    /// Recomputes the health state from backlog pressure and the failure
    /// streak, with hysteresis on the downward transitions, and emits a
    /// trace instant when the state changes.
    fn update_health(&mut self) {
        let pressure = self.backlog_pressure();
        let streak = self.consecutive_failures;
        let raw = if pressure >= Self::STALL_ENTER {
            OffloadHealth::Stalled
        } else if pressure >= Self::THROTTLE_ENTER || streak >= Self::THROTTLE_FAILURE_STREAK {
            OffloadHealth::Throttled
        } else if !self.staged.is_empty() || streak > 0 {
            OffloadHealth::Buffering
        } else {
            OffloadHealth::Healthy
        };
        let current = self.health;
        // Escalations apply immediately; de-escalations wait for the exit
        // threshold so the state doesn't flap around a boundary.
        let next = if raw >= current {
            raw
        } else {
            match current {
                OffloadHealth::Stalled if pressure > Self::STALL_EXIT => current,
                OffloadHealth::Throttled
                    if pressure >= Self::THROTTLE_EXIT
                        && streak < Self::THROTTLE_FAILURE_STREAK =>
                {
                    current
                }
                _ => raw,
            }
        };
        if next != current {
            self.health = next;
            self.stats.health = next;
            self.stats.health_peak = self.stats.health_peak.max(next);
            if self.sink.is_enabled() {
                self.sink.instant(
                    "offload",
                    "health_transition",
                    self.ftl.clock().now_ns(),
                    &[
                        ("from", current.as_str().to_string()),
                        ("to", next.as_str().to_string()),
                        ("pressure", format!("{pressure:.3}")),
                        ("staged", self.staged.len().to_string()),
                        ("consecutive_failures", streak.to_string()),
                    ],
                );
            }
        }
    }

    /// Per-request latency distribution.
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// FTL statistics (WAF, GC work).
    pub fn ftl_stats(&self) -> &FtlStats {
        self.ftl.stats()
    }

    /// Raw NAND statistics.
    pub fn nand_stats(&self) -> &rssd_flash::NandStats {
        self.ftl.nand_stats()
    }

    /// Records appended to the evidence chain so far.
    pub fn chain_len(&self) -> u64 {
        self.chain.len()
    }

    /// Current evidence-chain head.
    pub fn chain_head(&self) -> Digest {
        self.chain.head()
    }

    /// Records buffered locally awaiting offload.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// Access to the remote target (the "investigator's console" — not part
    /// of the host-facing interface).
    pub fn remote(&self) -> &R {
        &self.remote
    }

    /// Mutable access to the remote target (network fault injection).
    pub fn remote_mut(&mut self) -> &mut R {
        &mut self.remote
    }

    /// Consumes the device and returns its remote target — modeling a total
    /// loss of the local hardware (controller, NAND, pending log) while the
    /// hardware-isolated remote half of the codesign survives. Everything
    /// still pinned locally and every record not yet offloaded is gone;
    /// what remains is exactly what [`crate::RebuildImage::harvest`] can
    /// reconstruct from the remote evidence chain.
    pub fn into_remote(self) -> R {
        self.remote
    }

    /// The device key hierarchy, as escrowed to an investigator. Needed by
    /// [`crate::PostAttackAnalyzer`] to verify the evidence chain and open
    /// segments.
    pub fn escrow_keys(&self) -> DeviceKeys {
        self.keys.clone()
    }

    /// Forces an offload of everything pending (e.g. on shutdown).
    ///
    /// # Errors
    ///
    /// Propagates [`RemoteError`] if the remote is unreachable.
    pub fn flush_log(&mut self) -> Result<(), RemoteError> {
        if self.pending.is_empty() && self.staged.is_empty() {
            return Ok(());
        }
        self.offload_segment()
    }

    /// The full verified operation history: every offloaded segment plus
    /// the pending tail, chain-verified end to end. Additionally checks
    /// that every record the device ever appended is accounted for
    /// (offloaded or pending) — an offload that was acknowledged in transit
    /// but never reached the store surfaces here as a chain gap instead of
    /// silently shortening the history.
    ///
    /// # Errors
    ///
    /// Returns an error string describing the first verification failure —
    /// a non-verifying history means tampering, remote corruption, or lost
    /// acknowledged offloads, and is itself forensic signal.
    pub fn verified_history(&mut self) -> Result<Vec<LogRecord>, String> {
        let chain_key = self.keys.derive(KeyPurpose::EvidenceChain, 0);
        let mut out = Vec::new();
        let mut head = crate::rebuild::walk_verified_segments(
            &chain_key,
            &self.session,
            &mut self.remote,
            |_seq, record| out.push(record),
        )?;
        // Staged (sealed but not yet acknowledged) segments, in queue order.
        let mut staged_records = 0usize;
        for seg in &self.staged {
            let inputs: Vec<Vec<u8>> = seg.records.iter().map(|r| r.chain_bytes()).collect();
            HashChain::verify_from(&chain_key, head, &inputs, &seg.links).map_err(|e| {
                format!(
                    "chain gap: staged segment {} does not extend the verified \
                     prefix ({e}) — acknowledged offloads were lost upstream \
                     or the staged links were tampered with",
                    seg.envelope.segment_seq()
                )
            })?;
            head = seg.envelope.chain_head();
            staged_records += seg.records.len();
        }
        // Pending tail.
        let inputs: Vec<Vec<u8>> = self.pending.iter().map(|r| r.chain_bytes()).collect();
        HashChain::verify_from(&chain_key, head, &inputs, &self.pending_links)
            .map_err(|e| format!("pending tail: {e}"))?;
        // The accounting check compares against the in-RAM chain length,
        // which is stale (it still counts the lost volatile tail) while the
        // device sits crashed: a crash truncation is a documented loss, not
        // transit loss, so the check only applies to a running device.
        let accounted = (out.len() + staged_records + self.pending.len()) as u64;
        if !self.crashed && accounted != self.chain.len() {
            return Err(format!(
                "chain gap: device appended {} records but only {accounted} are \
                 accounted for (offloaded + staged + pending) — acknowledged \
                 offloads were lost in transit",
                self.chain.len()
            ));
        }
        for seg in &self.staged {
            out.extend(seg.records.iter().cloned());
        }
        out.extend(self.pending.iter().cloned());
        Ok(out)
    }

    /// Fault-tolerant history read: the longest chain-verified prefix plus
    /// the pending tail when it extends that prefix, with the first failure
    /// (if any) reported instead of discarding the trustworthy records.
    /// This is the investigator's entry point after a fault — detection can
    /// still run over the verified prefix while the gap itself is evidence.
    ///
    /// Call after [`Self::recover`] when the device has crashed; while
    /// crashed the accounting check is skipped (the in-RAM chain length is
    /// stale).
    pub fn audit_history(&mut self) -> HistoryAudit {
        let chain_key = self.keys.derive(KeyPurpose::EvidenceChain, 0);
        let mut records: Vec<LogRecord> = Vec::new();
        let (mut head, mut failure) = crate::rebuild::walk_segments_tolerant(
            &chain_key,
            &self.session,
            &mut self.remote,
            |_seq, record| records.push(record),
        );
        if failure.is_none() {
            for seg in &self.staged {
                let inputs: Vec<Vec<u8>> = seg.records.iter().map(|r| r.chain_bytes()).collect();
                match HashChain::verify_from(&chain_key, head, &inputs, &seg.links) {
                    Ok(()) => {
                        head = seg.envelope.chain_head();
                        records.extend(seg.records.iter().cloned());
                    }
                    Err(e) => {
                        failure = Some(format!(
                            "chain gap: staged segment {} does not extend the \
                             verified prefix ({e})",
                            seg.envelope.segment_seq()
                        ));
                        break;
                    }
                }
            }
        }
        if failure.is_none() {
            let inputs: Vec<Vec<u8>> = self.pending.iter().map(|r| r.chain_bytes()).collect();
            match HashChain::verify_from(&chain_key, head, &inputs, &self.pending_links) {
                Ok(()) => records.extend(self.pending.iter().cloned()),
                Err(e) => failure = Some(format!("pending tail: {e}")),
            }
        }
        if failure.is_none() && !self.crashed && records.len() as u64 != self.chain.len() {
            failure = Some(format!(
                "chain gap: device appended {} records but only {} are accounted for",
                self.chain.len(),
                records.len()
            ));
        }
        HistoryAudit {
            verified: failure.is_none(),
            failure,
            records,
        }
    }

    /// Recovers the newest retained pre-image of `lpa` that was valid
    /// strictly before `before_ns` (point-in-time recovery). Looks in the
    /// local pending log first, then the remote store.
    pub fn recover_page_before(&mut self, lpa: u64, before_ns: u64) -> Option<Vec<u8>> {
        // A version invalidated at time t was valid until t; the version
        // valid just before `before_ns` is the one with the smallest
        // invalidation (time, seq) key at or after before_ns.
        self.recover_version(lpa, |key, best| {
            key.0 >= before_ns && best.map_or(true, |b| key < b)
        })
    }

    /// Recovers the newest retained pre-image of `lpa` (the version the most
    /// recent overwrite/trim destroyed). Ordering follows the evidence
    /// chain's sequence numbers, the device's total operation order.
    pub fn recover_newest(&mut self, lpa: u64) -> Option<Vec<u8>> {
        self.recover_version(lpa, |key, best| best.map_or(true, |b| key > b))
    }

    fn recover_version(
        &mut self,
        lpa: u64,
        better: impl Fn((u64, u64), Option<(u64, u64)>) -> bool,
    ) -> Option<Vec<u8>> {
        let mut best: Option<((u64, u64), Source)> = None;
        for (i, rec) in self.pending.iter().enumerate() {
            if rec.lpa == lpa && rec.old_page_index.is_some() {
                let key = (rec.at_ns, rec.seq);
                if better(key, best.as_ref().map(|(b, _)| *b)) {
                    best = Some((key, Source::Pending(i)));
                }
            }
        }
        for (qi, seg) in self.staged.iter().enumerate() {
            for rec in &seg.records {
                if rec.lpa == lpa && rec.old_page_index.is_some() {
                    let key = (rec.at_ns, rec.seq);
                    if better(key, best.as_ref().map(|(b, _)| *b)) {
                        best = Some((
                            key,
                            Source::Staged {
                                queue_index: qi,
                                record_seq: rec.seq,
                            },
                        ));
                    }
                }
            }
        }
        if let Some(versions) = self.remote_index.get(&lpa) {
            for v in versions {
                let key = (v.invalidated_at_ns, v.record_seq);
                if better(key, best.as_ref().map(|(b, _)| *b)) {
                    best = Some((key, Source::Remote(*v)));
                }
            }
        }
        match best? {
            (_, Source::Pending(i)) => {
                let page_index = self.pending[i].old_page_index.expect("filtered");
                let ppa = self.ftl.geometry().page_from_index(page_index);
                self.ftl
                    .read_physical_background(ppa)
                    .ok()
                    .map(|(data, _)| data)
            }
            (
                _,
                Source::Staged {
                    queue_index,
                    record_seq,
                },
            ) => {
                // The pre-image lives inside the staged segment's sealed
                // envelope (whether the segment is RAM-only or spilled to
                // NAND) — open it locally, no remote involved.
                let envelope = self.staged[queue_index].envelope.clone();
                let segment = open_envelope(&self.session, &envelope).ok()?;
                segment
                    .records
                    .into_iter()
                    .find(|r| r.seq == record_seq)
                    .and_then(|r| r.old_data)
            }
            (_, Source::Remote(v)) => self.fetch_remote_version(v),
        }
    }

    fn fetch_remote_version(&mut self, v: RemoteVersion) -> Option<Vec<u8>> {
        let envelope = self.remote.fetch_segment(v.segment_seq).ok()?;
        let segment = open_envelope(&self.session, &envelope).ok()?;
        segment
            .records
            .into_iter()
            .find(|r| r.seq == v.record_seq)
            .and_then(|r| r.old_data)
    }

    fn log_operation(
        &mut self,
        op: LogOp,
        lpa: u64,
        old_page_index: Option<u64>,
        entropy_mil: u16,
        read_before: bool,
    ) {
        let record = LogRecord {
            seq: self.chain.next_seq(),
            at_ns: self.ftl.clock().now_ns(),
            op,
            lpa,
            old_page_index,
            entropy_mil,
            read_before,
            old_data: None,
        };
        let link = self.chain.append(&record.chain_bytes());
        if old_page_index.is_some() {
            self.pending_retained += 1;
        }
        self.pending.push(record);
        self.pending_links.push(link);
    }

    fn absorb_stale_events(&mut self, entropy_mil: u16, read_before: bool) {
        for event in self.ftl.drain_stale_events() {
            match event.cause {
                InvalidateCause::Overwrite => {
                    self.ftl.pin_page(event.ppa);
                    let idx = self.ftl.geometry().page_index(event.ppa);
                    self.log_operation(
                        LogOp::Write,
                        event.lpa,
                        Some(idx),
                        entropy_mil,
                        read_before,
                    );
                }
                InvalidateCause::Trim => {
                    self.ftl.pin_page(event.ppa);
                    let idx = self.ftl.geometry().page_index(event.ppa);
                    self.log_operation(LogOp::Trim, event.lpa, Some(idx), 0, false);
                }
                // Migrated content survives at its new location.
                InvalidateCause::GcMigration => {}
            }
        }
    }

    fn should_offload(&self) -> bool {
        self.pending_retained >= self.config.segment_pages
            || self.pending.len() >= self.config.segment_pages * 8
            || self.ftl.pinned_block_fraction() > self.config.pinned_fraction_watermark
    }

    /// Forced offload: seals whatever is pending and attempts to drain the
    /// staged backlog regardless of the retry backoff. Used by flushes,
    /// sync backpressure, and the stalled-write drain.
    fn offload_segment(&mut self) -> Result<(), RemoteError> {
        if self.pending.is_empty() && self.staged.is_empty() {
            return Ok(());
        }
        self.profiler.enter("wire");
        let result = {
            self.seal_pending();
            self.drain_staged(true)
        };
        self.profiler.exit();
        result
    }

    /// Background offload: seals pending work (evidence leaves the volatile
    /// pending tail at the same op boundary whether or not the wire is up)
    /// but defers the ship attempt while the retry backoff is armed, so a
    /// dead link is not hammered on every threshold crossing.
    fn offload_segment_background(&mut self) {
        if self.pending.is_empty() && self.staged.is_empty() {
            return;
        }
        self.profiler.enter("wire");
        self.seal_pending();
        let _ = self.drain_staged(false);
        self.profiler.exit();
    }

    /// Is a deferred background retry due for the staged backlog?
    fn staged_retry_due(&self) -> bool {
        !self.staged.is_empty() && self.ftl.clock().now_ns() >= self.next_retry_at_ns
    }

    /// Seals the pending tail into a staged segment: attaches retained
    /// pre-images via background reads, builds the wire image once
    /// (header + compress + seal in place), and advances the segment
    /// cursor. This is the *only* place a segment is serialized or sealed;
    /// every retry, spill, and replay reuses the refcounted image.
    fn seal_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Attach retained contents via background reads. These dispatch
        // onto the unit pipelines — the offload engine genuinely occupies
        // planes and channels, which is RSSD's real (small, bounded)
        // foreground overhead — but nothing blocks on them.
        let geometry = self.ftl.geometry();
        let mut retained_pages = 0u64;
        for rec in &mut self.pending {
            if let Some(idx) = rec.old_page_index {
                let ppa = geometry.page_from_index(idx);
                let (data, _) = self
                    .ftl
                    .read_physical_offload(ppa)
                    .expect("pinned page readable");
                rec.old_data = Some(data);
                retained_pages += 1;
            }
        }

        let segment = Segment {
            segment_seq: self.next_segment_seq,
            records: std::mem::take(&mut self.pending),
            links: std::mem::take(&mut self.pending_links),
        };
        let raw = segment.to_bytes();
        // Zero-copy assembly: build the envelope's wire image directly in
        // one buffer — header, then the compressed payload appended in
        // place, then sealed in place. The resulting `Bytes` is shared by
        // refcount through capsules, frames, retransmissions, the NAND
        // spill and the remote store; nothing downstream re-serializes or
        // copies it.
        let chain_head = self.chain.head();
        let mut wire = Vec::with_capacity(SegmentEnvelope::WIRE_HEADER + raw.len() / 2 + 64);
        SegmentEnvelope::write_wire_header(
            &mut wire,
            self.config.device_id,
            segment.segment_seq,
            &self.prev_segment_head,
            &chain_head,
            segment.records.len() as u32,
        );
        self.profiler.enter("compress");
        rssd_compress::compress_adaptive_into(&raw, &mut wire);
        self.profiler.exit();
        self.session
            .seal_in_place(segment.segment_seq, &mut wire, SegmentEnvelope::WIRE_HEADER);
        let envelope = SegmentEnvelope::from_wire_image(wire)
            .expect("header plus sealed payload is a complete wire image");
        if self.sink.is_enabled() {
            self.sink.instant(
                "offload",
                "segment_sealed",
                self.ftl.clock().now_ns(),
                &[
                    ("segment_seq", segment.segment_seq.to_string()),
                    ("records", segment.records.len().to_string()),
                    ("raw_bytes", raw.len().to_string()),
                    ("sealed_bytes", envelope.sealed_payload().len().to_string()),
                ],
            );
        }
        let Segment {
            mut records, links, ..
        } = segment;
        // The pre-images now live inside the sealed envelope; the RAM copy
        // of the records goes back to metadata-only.
        for rec in &mut records {
            rec.old_data = None;
        }
        self.staged.push_back(StagedSegment {
            envelope,
            records,
            links,
            retained_pages,
            raw_bytes: raw.len() as u64,
            spilled: false,
        });
        self.stats.segments_sealed += 1;
        self.prev_segment_head = chain_head;
        self.pending_retained = 0;
        self.next_segment_seq += 1;
        self.update_health();
    }

    /// Ships the staged backlog FIFO. `forced` ignores the retry backoff.
    /// On a ship failure the unshipped tail is spilled to the NAND region
    /// (if configured), the backoff doubles, and the health state is
    /// recomputed — the error is returned for forced callers that need it.
    fn drain_staged(&mut self, forced: bool) -> Result<(), RemoteError> {
        if self.staged.is_empty() {
            self.update_health();
            return Ok(());
        }
        if !forced && self.ftl.clock().now_ns() < self.next_retry_at_ns {
            // Deferred, not failed: make the backlog durable while waiting.
            self.spill_staged_tail();
            self.update_health();
            return Ok(());
        }
        while let Some(front) = self.staged.front() {
            let envelope = front.envelope.clone();
            let segment_seq = envelope.segment_seq();
            let sealed_len = envelope.sealed_payload().len() as u64;
            let now = self.ftl.clock().now_ns();
            match self.remote.store_segment(envelope, now) {
                Ok(ack) => {
                    // The ack's durability time carries any wire latency
                    // (serialization, propagation, retransmission) back
                    // onto the device timeline: offloading over a slow
                    // link costs simulated nanoseconds the host can
                    // observe. Loopback acks land at `now`, so this is a
                    // no-op off the wire.
                    self.ftl.clock().advance_to(ack.durable_at_ns);
                    let seg = self.staged.pop_front().expect("front exists");
                    let geometry = self.ftl.geometry();
                    // Durable remotely: unpin (unless the spill already
                    // released the pins), index, account.
                    for rec in &seg.records {
                        if let Some(idx) = rec.old_page_index {
                            if !seg.spilled {
                                self.ftl.unpin_page(geometry.page_from_index(idx));
                            }
                            self.remote_index
                                .entry(rec.lpa)
                                .or_default()
                                .push(RemoteVersion {
                                    segment_seq,
                                    invalidated_at_ns: rec.at_ns,
                                    record_seq: rec.seq,
                                });
                        }
                    }
                    self.stats.segments_offloaded += 1;
                    self.stats.records_offloaded += seg.records.len() as u64;
                    self.stats.retained_pages_offloaded += seg.retained_pages;
                    self.stats.raw_bytes += seg.raw_bytes;
                    self.stats.sealed_bytes += sealed_len;
                    self.consecutive_failures = 0;
                    self.retry_backoff_ns = Self::RETRY_BACKOFF_BASE_NS;
                    self.next_retry_at_ns = 0;
                    if self.sink.is_enabled() {
                        self.sink.span(
                            "offload",
                            "segment_transfer",
                            now,
                            ack.durable_at_ns,
                            &[
                                ("segment_seq", segment_seq.to_string()),
                                ("sealed_bytes", sealed_len.to_string()),
                            ],
                        );
                        self.sink.instant(
                            "offload",
                            "segment_ack",
                            ack.durable_at_ns,
                            &[("segment_seq", segment_seq.to_string())],
                        );
                    }
                }
                Err(e) => {
                    // Conservative: the segment stays staged (sealed image
                    // intact — no re-read, no re-compress, no re-seal) and
                    // the whole unshipped tail is made locally durable.
                    self.stats.offload_failures += 1;
                    self.consecutive_failures += 1;
                    if self.sink.is_enabled() {
                        self.sink.instant(
                            "offload",
                            "offload_failed",
                            now,
                            &[
                                ("segment_seq", segment_seq.to_string()),
                                (
                                    "consecutive_failures",
                                    self.consecutive_failures.to_string(),
                                ),
                            ],
                        );
                    }
                    self.spill_staged_tail();
                    self.next_retry_at_ns = now + self.retry_backoff_ns;
                    self.retry_backoff_ns =
                        (self.retry_backoff_ns * 2).min(Self::RETRY_BACKOFF_CAP_NS);
                    self.update_health();
                    return Err(e);
                }
            }
        }
        // Fully drained: everything is durable remotely, so the local
        // spill copies are dead weight — reclaim the region.
        if self.ftl.spill_used_bytes() > 0 {
            let _ = self.ftl.spill_reset();
        }
        self.update_health();
        Ok(())
    }

    /// Persists every not-yet-spilled staged segment to the NAND spill
    /// region, in FIFO order (spilled segments always form a queue
    /// prefix). A spilled segment's evidence is durable across a power
    /// cut, so its retained pre-image pins are released — the same
    /// release point a successful offload would have used. Stops at the
    /// first failure (region full): those segments stay RAM-staged with
    /// their pins held, the conservative fallback.
    fn spill_staged_tail(&mut self) {
        if self.ftl.spill_capacity_bytes() == 0 {
            return;
        }
        let geometry = self.ftl.geometry();
        for i in 0..self.staged.len() {
            if self.staged[i].spilled {
                continue;
            }
            let wire = self.staged[i].envelope.wire().clone();
            if self.ftl.spill_append(&wire).is_err() {
                break;
            }
            self.staged[i].spilled = true;
            self.stats.segments_spilled += 1;
            for rec in &self.staged[i].records {
                if let Some(idx) = rec.old_page_index {
                    self.ftl.unpin_page(geometry.page_from_index(idx));
                }
            }
            if self.sink.is_enabled() {
                self.sink.instant(
                    "offload",
                    "segment_spilled",
                    self.ftl.clock().now_ns(),
                    &[
                        (
                            "segment_seq",
                            self.staged[i].envelope.segment_seq().to_string(),
                        ),
                        ("wire_bytes", wire.len().to_string()),
                    ],
                );
            }
        }
    }

    fn read_before(&self, lpa: u64, now: u64) -> bool {
        self.recent_reads
            .get(&lpa)
            .is_some_and(|&t| now.saturating_sub(t) <= self.read_window_ns)
    }

    /// Write path shared by the scalar and batched interfaces, returning
    /// the flash completion time. With `defer_offload` the background
    /// offload-threshold check is skipped so a batch can coalesce it into
    /// one check (the sync-offload backpressure loop still runs —
    /// correctness never waits for a batch boundary). With `block` the
    /// clock advances to the completion before the log record is stamped —
    /// the scalar semantics; the batched path leaves the clock still and
    /// dispatches everything from the batch's start time.
    fn write_page_inner(
        &mut self,
        lpa: u64,
        data: Vec<u8>,
        defer_offload: bool,
        block: bool,
    ) -> Result<u64, DeviceError> {
        if self.crashed {
            return Err(DeviceError::PowerLoss);
        }
        // Admission control along the degradation slope. Stalled gets one
        // forced drain first — with a frozen backlog the only way out is an
        // attempt, and a healed link recovers on the very next write.
        match self.health {
            OffloadHealth::Stalled => {
                let _ = self.offload_segment();
                if self.health == OffloadHealth::Stalled {
                    return Err(DeviceError::Stalled);
                }
            }
            OffloadHealth::Throttled => {
                let penalty = Self::THROTTLE_PENALTY_PER_STAGED_NS * self.staged.len() as u64;
                self.ftl.clock().advance(penalty);
                self.stats.throttled_writes += 1;
                self.stats.throttle_penalty_ns += penalty;
            }
            _ => {}
        }
        let start = self.ftl.clock().now_ns();
        let entropy_mil = (shannon_entropy(&data) * 1000.0) as u16;
        let read_before = self.read_before(lpa, start);

        let mut sync_tried = 0u32;
        let mut payload = Some(data);
        let ticket = loop {
            let buf = payload.take().expect("payload present on every attempt");
            match self.ftl.write_async_reclaim(lpa, buf) {
                Ok(ticket) => break ticket,
                Err((FtlError::DeviceFull, reclaimed)) if sync_tried < 4 => {
                    // Backpressure: synchronously offload pinned data, then
                    // retry with the reclaimed buffer — `DeviceFull` is
                    // raised before the NAND consumes the payload, so no
                    // clone is ever needed. RSSD never *drops* retained
                    // data — if neither the remote nor the spill region can
                    // absorb it the device stalls instead.
                    payload = reclaimed;
                    sync_tried += 1;
                    self.stats.sync_offloads += 1;
                    let pinned_before = self.ftl.pinned_pages();
                    let shipped = self.offload_segment().is_ok();
                    if !shipped && self.ftl.pinned_pages() >= pinned_before {
                        // Neither the wire nor the spill freed anything.
                        return Err(DeviceError::Stalled);
                    }
                    if payload.is_none() {
                        return Err(DeviceError::Stalled);
                    }
                }
                Err((FtlError::DeviceFull, _)) => return Err(DeviceError::Stalled),
                Err((e, _)) => return Err(e.into()),
            }
        };
        if block {
            self.ftl.clock().advance_to(ticket.done_ns);
        }

        let had_old = {
            // Absorb events; detect whether an old version was retained so
            // fresh writes still get a metadata-only log record.
            let before = self.chain.next_seq();
            self.absorb_stale_events(entropy_mil, read_before);
            self.chain.next_seq() != before
        };
        if !had_old {
            self.log_operation(LogOp::Write, lpa, None, entropy_mil, read_before);
        }
        if !defer_offload && (self.should_offload() || self.staged_retry_due()) {
            // Background offload: failures are tolerated (the sealed
            // segment stays staged — and spilled to NAND if configured)
            // and retries honor the adaptive backoff.
            self.offload_segment_background();
        }
        self.latency.record(ticket.done_ns.saturating_sub(start));
        Ok(ticket.done_ns)
    }

    fn read_page_inner(
        &mut self,
        lpa: u64,
        defer_offload: bool,
        block: bool,
    ) -> Result<(Vec<u8>, u64), DeviceError> {
        if self.crashed {
            return Err(DeviceError::PowerLoss);
        }
        let start = self.ftl.clock().now_ns();
        self.recent_reads.insert(lpa, start);
        let (data, ticket) = self.ftl.read_async(lpa)?;
        if block {
            self.ftl.clock().advance_to(ticket.done_ns);
        }
        let out = match data {
            Some(data) => data,
            None => vec![0u8; self.page_size()],
        };
        if self.config.log_reads {
            self.log_operation(LogOp::Read, lpa, None, 0, false);
            if !defer_offload && self.pending.len() >= self.config.segment_pages * 8 {
                self.offload_segment_background();
            }
        }
        self.latency.record(ticket.done_ns.saturating_sub(start));
        Ok((out, ticket.done_ns))
    }

    fn trim_page_inner(&mut self, lpa: u64, defer_offload: bool) -> Result<u64, DeviceError> {
        if self.crashed {
            return Err(DeviceError::PowerLoss);
        }
        // Enhanced trim: host semantics preserved (reads return zeroes), but
        // the trimmed version is retained and logged like any overwrite.
        // Pure mapping-table work: no flash op, no simulated time.
        self.ftl.trim(lpa)?;
        self.absorb_stale_events(0, false);
        if !defer_offload && self.should_offload() {
            self.offload_segment_background();
        }
        Ok(self.ftl.clock().now_ns())
    }
}

enum Source {
    Pending(usize),
    Staged { queue_index: usize, record_seq: u64 },
    Remote(RemoteVersion),
}

pub(crate) fn open_envelope(
    session: &SecureSession,
    envelope: &SegmentEnvelope,
) -> Result<Segment, WireError> {
    let compressed = session
        .open(envelope.segment_seq(), envelope.sealed_payload())
        .map_err(|_| WireError::BadPayload)?;
    let raw = rssd_compress::decompress(&compressed).map_err(|_| WireError::BadPayload)?;
    Segment::from_bytes(&raw)
}

impl<R: RemoteTarget> BlockDevice for RssdDevice<R> {
    fn model_name(&self) -> &str {
        "RSSD"
    }

    fn page_size(&self) -> usize {
        self.ftl.geometry().page_size
    }

    fn logical_pages(&self) -> u64 {
        self.ftl.logical_pages()
    }

    fn clock(&self) -> &SimClock {
        self.ftl.clock()
    }

    fn write_page(&mut self, lpa: u64, data: Vec<u8>) -> Result<(), DeviceError> {
        self.write_page_inner(lpa, data, false, true).map(|_| ())
    }

    fn read_page(&mut self, lpa: u64) -> Result<Vec<u8>, DeviceError> {
        self.read_page_inner(lpa, false, true).map(|(data, _)| data)
    }

    fn trim_page(&mut self, lpa: u64) -> Result<(), DeviceError> {
        self.trim_page_inner(lpa, false).map(|_| ())
    }

    /// Native batched entry point: executes the commands in order with the
    /// same logging, retention and backpressure semantics as the scalar
    /// methods, but pipelined and amortized:
    ///
    /// * every flash operation is *dispatched* onto the device's unit
    ///   pipelines (writes stripe across channels, reads ride the units
    ///   their pages live on), completion times come back per command and
    ///   out of order, and the clock advances once — to the batch's latest
    ///   completion — when the batch returns;
    /// * instead of testing the offload thresholds (and potentially
    ///   sealing, compressing and shipping a segment) after every command,
    ///   the whole batch is covered by a single threshold check and at most
    ///   one coalesced segment flush. Synchronous backpressure offloads (a
    ///   full device mid batch) still happen immediately; only the
    ///   *background* flush is deferred.
    ///
    /// Host-visible state — contents, retained versions, the evidence
    /// chain — is identical to the scalar loop; only timing differs.
    fn submit_batch_timed(&mut self, commands: Vec<IoCommand>) -> Vec<(CommandResult, u64)> {
        let mut results = Vec::with_capacity(commands.len());
        let mut horizon = self.ftl.clock().now_ns();
        for command in commands {
            let dispatched = self.ftl.clock().now_ns();
            let (result, done) = match command {
                IoCommand::Read { lpa } => match self.read_page_inner(lpa, true, false) {
                    Ok((data, done)) => (Ok(CommandOutcome::Read(data)), done),
                    Err(e) => (Err(e), dispatched),
                },
                IoCommand::Write { lpa, data } => {
                    match self.write_page_inner(lpa, data, true, false) {
                        Ok(done) => (Ok(CommandOutcome::Written), done),
                        Err(e) => (Err(e), dispatched),
                    }
                }
                IoCommand::Trim { lpa } => match self.trim_page_inner(lpa, true) {
                    Ok(done) => (Ok(CommandOutcome::Trimmed), done),
                    Err(e) => (Err(e), dispatched),
                },
                IoCommand::Flush => match self.flush() {
                    Ok(()) => (Ok(CommandOutcome::Flushed), self.ftl.clock().now_ns()),
                    Err(e) => (Err(e), dispatched),
                },
            };
            horizon = horizon.max(done);
            results.push((result, done));
        }
        if self.should_offload() || self.staged_retry_due() {
            // One coalesced background offload for the whole batch (the
            // seal covers everything pending in a single segment, so one
            // call settles any threshold crossed above).
            self.offload_segment_background();
        }
        self.ftl.clock().advance_to(horizon);
        results
    }

    fn flush(&mut self) -> Result<(), DeviceError> {
        if self.crashed {
            return Err(DeviceError::PowerLoss);
        }
        match self.flush_log() {
            Ok(()) => Ok(()),
            // Conservative retention holds the data; flush is best-effort.
            Err(_) => Ok(()),
        }
    }

    fn recover_page(&mut self, lpa: u64) -> Option<Vec<u8>> {
        if self.crashed {
            return None;
        }
        self.recover_newest(lpa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote_target::LoopbackTarget;

    fn device() -> RssdDevice<LoopbackTarget> {
        RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
            RssdConfig {
                segment_pages: 8,
                ..RssdConfig::default()
            },
            LoopbackTarget::new(),
        )
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = device();
        d.write_page(0, page(1)).unwrap();
        assert_eq!(d.read_page(0).unwrap(), page(1));
    }

    #[test]
    fn overwrite_recoverable_from_local_pending() {
        let mut d = device();
        d.write_page(3, page(1)).unwrap();
        d.write_page(3, page(2)).unwrap();
        assert_eq!(d.recover_page(3).unwrap(), page(1));
    }

    #[test]
    fn overwrite_recoverable_after_offload() {
        let mut d = device();
        d.write_page(3, page(1)).unwrap();
        d.write_page(3, page(2)).unwrap();
        d.flush_log().unwrap();
        assert_eq!(d.pending_records(), 0);
        assert!(d.offload_stats().segments_offloaded > 0);
        assert_eq!(d.recover_page(3).unwrap(), page(1));
    }

    #[test]
    fn trim_is_retained_and_recoverable() {
        let mut d = device();
        d.write_page(3, page(7)).unwrap();
        d.trim_page(3).unwrap();
        assert_eq!(d.read_page(3).unwrap(), page(0), "host sees zeroes");
        assert_eq!(d.recover_page(3).unwrap(), page(7), "device retains");
        d.flush_log().unwrap();
        assert_eq!(d.recover_page(3).unwrap(), page(7), "retained remotely too");
    }

    #[test]
    fn point_in_time_recovery_selects_correct_version() {
        let clock = SimClock::new();
        let mut d = RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            clock.clone(),
            RssdConfig::default(),
            LoopbackTarget::new(),
        );
        d.write_page(3, page(1)).unwrap();
        clock.advance(1_000_000);
        let t1 = clock.now_ns();
        d.write_page(3, page(2)).unwrap();
        clock.advance(1_000_000);
        let t2 = clock.now_ns();
        d.write_page(3, page(3)).unwrap();

        // Valid content just before t1 was version 1; before t2 version 2.
        assert_eq!(d.recover_page_before(3, t1).unwrap(), page(1));
        assert_eq!(d.recover_page_before(3, t2).unwrap(), page(2));
        // Newest retained pre-image overall is version 2.
        assert_eq!(d.recover_page(3).unwrap(), page(2));
    }

    #[test]
    fn chain_grows_with_operations() {
        let mut d = device();
        d.write_page(0, page(1)).unwrap();
        d.read_page(0).unwrap();
        d.write_page(0, page(2)).unwrap();
        d.trim_page(0).unwrap();
        assert_eq!(d.chain_len(), 4);
    }

    #[test]
    fn verified_history_round_trips() {
        let mut d = device();
        for i in 0..30u64 {
            d.write_page(i % 5, page(i as u8)).unwrap();
        }
        d.flush_log().unwrap();
        for i in 0..3u64 {
            d.write_page(i, page(99)).unwrap();
        }
        let history = d.verified_history().unwrap();
        assert_eq!(history.len() as u64, d.chain_len());
        // In chain order.
        for w in history.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        // Overwrites carried retained data after offload.
        assert!(history
            .iter()
            .any(|r| r.op == LogOp::Write && r.old_data.is_some()));
    }

    #[test]
    fn read_before_overwrite_is_recorded() {
        let mut d = device();
        d.write_page(3, page(1)).unwrap();
        d.read_page(3).unwrap();
        d.write_page(3, page(2)).unwrap();
        let history = d.verified_history().unwrap();
        let overwrite = history
            .iter()
            .find(|r| r.op == LogOp::Write && r.old_page_index.is_some())
            .expect("overwrite logged");
        assert!(overwrite.read_before);
    }

    #[test]
    fn unreachable_remote_keeps_data_pinned_not_lost() {
        let mut d = device();
        d.remote_mut().set_reachable(false);
        for i in 0..40u64 {
            d.write_page(i % 4, page(i as u8)).unwrap();
        }
        assert!(d.offload_stats().offload_failures > 0);
        assert_eq!(d.offload_stats().segments_offloaded, 0);
        // Everything still recoverable locally: lpa 0 was last overwritten
        // at i=36, whose retained pre-image is the i=32 version.
        assert_eq!(d.recover_page(0).unwrap(), page(32));
        // Remote comes back: flush succeeds.
        d.remote_mut().set_reachable(true);
        d.flush_log().unwrap();
        assert!(d.offload_stats().segments_offloaded > 0);
    }

    #[test]
    fn gc_flood_cannot_evict_retained_data() {
        let mut d = device();
        // Victim: encrypt-style overwrite.
        d.write_page(0, page(0xAA)).unwrap();
        d.read_page(0).unwrap();
        d.write_page(0, page(0xEE)).unwrap();
        // GC attack: flood the device far beyond capacity.
        let logical = d.logical_pages();
        for round in 0..5u8 {
            for lpa in 1..logical {
                d.write_page(lpa, page(round)).unwrap();
            }
        }
        // The original data survived (remotely or locally).
        assert_eq!(d.recover_page(0).unwrap(), page(0xAA));
    }

    #[test]
    fn offload_compresses_and_encrypts() {
        let mut d = device();
        for i in 0..20u64 {
            d.write_page(i % 4, page((i % 7) as u8)).unwrap();
        }
        d.flush_log().unwrap();
        let stats = d.offload_stats();
        assert!(stats.raw_bytes > 0);
        assert!(
            stats.compression_ratio() > 2.0,
            "constant pages compress well, got {}",
            stats.compression_ratio()
        );
    }

    #[test]
    fn fresh_write_logged_without_retention() {
        let mut d = device();
        d.write_page(9, page(1)).unwrap();
        let history = d.verified_history().unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].op, LogOp::Write);
        assert_eq!(history[0].old_page_index, None);
    }

    #[test]
    fn recover_unknown_page_is_none() {
        let mut d = device();
        assert_eq!(d.recover_page(5), None);
        d.write_page(5, page(1)).unwrap();
        assert_eq!(d.recover_page(5), None, "no old version yet");
    }

    #[test]
    fn batched_submission_matches_scalar_semantics() {
        let commands = |n: u64| -> Vec<IoCommand> {
            let mut cmds = Vec::new();
            for i in 0..n {
                cmds.push(IoCommand::Write {
                    lpa: i % 5,
                    data: page(i as u8),
                });
                if i % 3 == 0 {
                    cmds.push(IoCommand::Read { lpa: i % 5 });
                }
                if i % 7 == 6 {
                    cmds.push(IoCommand::Trim { lpa: (i + 1) % 5 });
                }
            }
            cmds
        };
        let mut scalar = device();
        let scalar_results: Vec<_> = commands(25)
            .into_iter()
            .map(|c| scalar.execute(c))
            .collect();
        let mut batched = device();
        let batch_results = batched.submit_batch(commands(25));

        assert_eq!(scalar_results, batch_results);
        assert_eq!(scalar.chain_head(), batched.chain_head());
        assert_eq!(scalar.chain_len(), batched.chain_len());
        for lpa in 0..5u64 {
            assert_eq!(
                scalar.read_page(lpa).unwrap(),
                batched.read_page(lpa).unwrap()
            );
            assert_eq!(scalar.recover_page(lpa), batched.recover_page(lpa));
        }
    }

    #[test]
    fn batch_coalesces_background_offload_flushes() {
        // 64 overwrites with segment_pages=8: the scalar path seals a
        // segment every ~8 retained pages, the batched path at most once.
        let fill = |d: &mut RssdDevice<LoopbackTarget>| {
            for i in 0..16u64 {
                d.write_page(i % 4, page(i as u8)).unwrap();
            }
        };
        let mut scalar = device();
        fill(&mut scalar);
        for i in 16..80u64 {
            scalar.write_page(i % 4, page(i as u8)).unwrap();
        }
        let mut batched = device();
        fill(&mut batched);
        let cmds: Vec<IoCommand> = (16..80u64)
            .map(|i| IoCommand::Write {
                lpa: i % 4,
                data: page(i as u8),
            })
            .collect();
        for r in batched.submit_batch(cmds) {
            r.unwrap();
        }
        assert!(
            batched.offload_stats().segments_offloaded < scalar.offload_stats().segments_offloaded,
            "batch path must coalesce segment flushes ({} vs {})",
            batched.offload_stats().segments_offloaded,
            scalar.offload_stats().segments_offloaded
        );
        // Same recoverable state regardless of flush coalescing.
        for lpa in 0..4u64 {
            assert_eq!(scalar.recover_page(lpa), batched.recover_page(lpa));
        }
    }

    #[test]
    fn crash_refuses_io_until_recover() {
        let mut d = device();
        d.write_page(0, page(1)).unwrap();
        let _ = d.crash();
        assert!(d.is_crashed());
        assert!(matches!(
            d.write_page(0, page(2)),
            Err(DeviceError::PowerLoss)
        ));
        assert!(matches!(d.read_page(0), Err(DeviceError::PowerLoss)));
        assert!(matches!(d.trim_page(0), Err(DeviceError::PowerLoss)));
        assert!(matches!(d.flush(), Err(DeviceError::PowerLoss)));
        assert_eq!(d.recover_page(0), None);
        let _ = d.recover().unwrap();
        assert!(!d.is_crashed());
        assert_eq!(d.read_page(0).unwrap(), page(1), "acked write durable");
    }

    #[test]
    fn crashed_device_history_reports_truncation_not_transit_loss() {
        // While crashed, the in-RAM chain length still counts the lost
        // volatile tail; the accounting check must not misread that
        // documented truncation as acknowledged offloads lost in transit.
        let mut d = device();
        for i in 0..20u64 {
            d.write_page(i % 4, page(i as u8)).unwrap();
        }
        d.flush_log().unwrap();
        let offloaded = d.chain_len();
        d.write_page(0, page(0xEE)).unwrap(); // pending tail, will be lost
        let _ = d.crash();
        let history = d.verified_history().expect("no false chain-gap signal");
        assert_eq!(history.len() as u64, offloaded);
        let audit = d.audit_history();
        assert!(audit.verified, "{:?}", audit.failure);
        // Once recovered, the accounting check is live again and passes.
        let _ = d.recover().unwrap();
        assert!(d.verified_history().is_ok());
    }

    #[test]
    fn recover_requires_a_crash() {
        let mut d = device();
        assert!(d.recover().is_err());
    }

    /// A transport that acknowledges and then destroys segments — the
    /// Byzantine worst case. When a crash then destroys the in-RAM chain
    /// (the other witness to the dropped records), the acked-segment
    /// counter is what must keep the loss from being silently repaired.
    struct AckAndDrop {
        inner: LoopbackTarget,
        dropping: bool,
    }

    impl RemoteTarget for AckAndDrop {
        fn store_segment(
            &mut self,
            envelope: SegmentEnvelope,
            now_ns: u64,
        ) -> Result<crate::remote_target::StoreAck, crate::remote_target::RemoteError> {
            if self.dropping {
                Ok(crate::remote_target::StoreAck {
                    segment_seq: envelope.segment_seq(),
                    durable_at_ns: now_ns,
                })
            } else {
                self.inner.store_segment(envelope, now_ns)
            }
        }

        fn fetch_segment(
            &mut self,
            segment_seq: u64,
        ) -> Result<SegmentEnvelope, crate::remote_target::RemoteError> {
            self.inner.fetch_segment(segment_seq)
        }

        fn stored_segments(&self) -> Vec<u64> {
            self.inner.stored_segments()
        }
    }

    #[test]
    fn crash_after_dropped_offloads_refuses_silent_chain_repair() {
        let mut d = RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
            RssdConfig {
                segment_pages: 4,
                ..RssdConfig::default()
            },
            AckAndDrop {
                inner: LoopbackTarget::new(),
                dropping: false,
            },
        );
        for i in 0..16u64 {
            d.write_page(i % 4, page(i as u8)).unwrap();
        }
        d.flush_log().unwrap();
        // The transport turns Byzantine: acks and destroys.
        d.remote_mut().dropping = true;
        for i in 0..16u64 {
            d.write_page(i % 4, page(0x80 | i as u8)).unwrap();
        }
        d.flush_log().unwrap();
        let acked = d.offload_stats().segments_offloaded;
        assert!(acked as usize > d.remote().stored_segments().len());
        // Power cut: the in-RAM chain — the only other witness to the
        // dropped records — dies. Recovery must refuse to resume over the
        // clean-looking prefix rather than silently repair the chain.
        let _ = d.crash();
        let err = d.recover().unwrap_err();
        assert!(err.contains("lost in transit"), "{err}");
        assert!(d.is_crashed(), "the device stays down by policy");
    }

    #[test]
    fn crash_loses_pending_tail_but_not_offloaded_evidence() {
        let mut d = device();
        for i in 0..40u64 {
            d.write_page(i % 4, page(i as u8)).unwrap();
        }
        d.flush_log().unwrap();
        let durable_len = d.chain_len() - d.pending_records() as u64;
        // Build a fresh pending tail that will die with the RAM.
        d.write_page(0, page(0xAA)).unwrap();
        d.write_page(0, page(0xBB)).unwrap();
        assert!(d.pending_records() > 0);
        let report = d.crash();
        assert!(report.pending_records_lost > 0);
        assert_eq!(
            report.chain_len_at_crash,
            durable_len + report.pending_records_lost
        );

        let recovery = d.recover().unwrap();
        assert_eq!(recovery.resumed_seq, recovery.records_indexed);
        assert_eq!(d.chain_len(), recovery.records_indexed);
        // The chain resumed below the crashed head: no fork, only a
        // truncated volatile tail. New appends verify end to end.
        d.write_page(2, page(0xCC)).unwrap();
        let history = d.verified_history().unwrap();
        assert_eq!(history.len() as u64, d.chain_len());
        for w in history.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        // Offloaded pre-images are recoverable again (index rebuilt). The
        // newest *durable* retained version of lpa 0 is the i=32 one (the
        // i=36 overwrite shipped it before the flush); the 0xAA/0xBB
        // pre-images were pending-only and died with the RAM.
        assert_eq!(d.recover_page(0).unwrap(), page(32));
    }

    #[test]
    fn entropy_recorded_in_log() {
        let mut d = device();
        d.write_page(0, page(0)).unwrap(); // zero page: entropy 0
        let history = d.verified_history().unwrap();
        assert_eq!(history[0].entropy_mil, 0);
    }

    fn spill_device() -> RssdDevice<LoopbackTarget> {
        RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
            RssdConfig {
                segment_pages: 8,
                spill_blocks: 2,
                ..RssdConfig::default()
            },
            LoopbackTarget::new(),
        )
    }

    #[test]
    fn retries_reuse_the_sealed_wire_image_without_resealing() {
        let mut d = device();
        d.remote_mut().set_reachable(false);
        for i in 0..20u64 {
            d.write_page(i % 4, page(i as u8)).unwrap();
        }
        assert!(d.flush_log().is_err());
        let s = d.offload_stats();
        let sealed = s.segments_sealed;
        let failures = s.offload_failures;
        assert!(sealed > 0);
        assert!(failures > 0);
        // Forced retries must not compress or seal anything again: the
        // staged wire images are reused byte-identically on every attempt.
        for _ in 0..5 {
            assert!(d.flush_log().is_err());
        }
        let s = d.offload_stats();
        assert_eq!(s.segments_sealed, sealed, "a retry re-sealed a segment");
        assert_eq!(s.segments_offloaded, 0);
        assert!(
            s.offload_failures >= failures + 5,
            "each retry is an attempt"
        );
        // Heal: every staged segment ships exactly once.
        d.remote_mut().set_reachable(true);
        d.flush_log().unwrap();
        let s = d.offload_stats();
        assert_eq!(s.segments_offloaded, s.segments_sealed);
        assert_eq!(d.staged_segments(), 0);
        assert_eq!(s.health, OffloadHealth::Healthy);
    }

    #[test]
    fn health_machine_degrades_under_outage_and_recovers_on_heal() {
        let mut d = RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
            RssdConfig {
                segment_pages: 1,
                ..RssdConfig::default()
            },
            LoopbackTarget::new(),
        );
        assert_eq!(d.offload_health(), OffloadHealth::Healthy);
        d.write_page(0, page(0)).unwrap();
        d.remote_mut().set_reachable(false);
        let mut seen = Vec::new();
        let mut stalled = false;
        for i in 1..=200u64 {
            match d.write_page(0, page(i as u8)) {
                Ok(_) => {
                    let h = d.offload_health();
                    if seen.last() != Some(&h) {
                        seen.push(h);
                    }
                }
                Err(DeviceError::Stalled) => {
                    stalled = true;
                    break;
                }
                Err(e) => panic!("unexpected error during outage: {e:?}"),
            }
        }
        assert!(stalled, "sustained outage must end in a Stalled refusal");
        assert_eq!(d.offload_health(), OffloadHealth::Stalled);
        // The device walked the slope rather than jumping to refusal.
        assert!(seen.contains(&OffloadHealth::Buffering), "{seen:?}");
        assert!(seen.contains(&OffloadHealth::Throttled), "{seen:?}");
        let s = d.offload_stats();
        assert!(s.throttled_writes > 0, "Throttled admission saw traffic");
        assert!(s.throttle_penalty_ns > 0, "throttled writes pay latency");
        assert_eq!(s.health, OffloadHealth::Stalled);

        // Heal: the very next write force-drains the backlog, is admitted,
        // and the machine returns to Healthy.
        d.remote_mut().set_reachable(true);
        d.write_page(0, page(0xFF)).unwrap();
        assert_eq!(d.offload_health(), OffloadHealth::Healthy);
        assert_eq!(d.staged_segments(), 0);
        let s = d.offload_stats();
        assert_eq!(s.segments_offloaded, s.segments_sealed);
        // Nothing was lost while riding the outage: the full history still
        // verifies end to end.
        let history = d.verified_history().unwrap();
        assert_eq!(history.len() as u64, d.chain_len());
    }

    #[test]
    fn spilled_evidence_survives_power_cut_mid_outage() {
        let mut d = spill_device();
        assert!(d.spill_capacity_bytes() > 0);
        for i in 0..20u64 {
            d.write_page(i % 4, page(i as u8)).unwrap();
        }
        d.flush_log().unwrap();
        let remote_before = d.offload_stats().segments_offloaded;

        d.remote_mut().set_reachable(false);
        for i in 20..60u64 {
            d.write_page(i % 4, page(i as u8)).unwrap();
        }
        assert!(d.flush_log().is_err());
        let s = d.offload_stats();
        assert!(s.segments_spilled > 0, "outage must spill staged segments");
        assert!(d.spill_used_bytes() > 0);
        let chain_at_cut = d.chain_len();

        // Power cut while the uplink is still dark: sealed evidence was
        // spilled to NAND, so nothing dies with the controller RAM.
        let report = d.crash();
        assert_eq!(report.pending_records_lost, 0, "all evidence was spilled");

        d.remote_mut().set_reachable(true);
        let recovery = d.recover().unwrap();
        assert!(d.offload_stats().spill_replayed > 0, "spill replay ran");
        assert_eq!(d.chain_len(), chain_at_cut, "chain resumed unforked");
        assert_eq!(recovery.records_indexed, chain_at_cut);

        // Heal: the replayed backlog drains and the spill region is
        // reclaimed for the next outage.
        d.flush_log().unwrap();
        let s = d.offload_stats();
        assert!(s.segments_offloaded > remote_before);
        assert_eq!(d.staged_segments(), 0);
        assert_eq!(d.spill_used_bytes(), 0, "spill reclaimed after drain");

        // Every acked pre-image is recoverable; the chain verifies end to
        // end. lpa 0 was last overwritten at i=56, destroying the i=52 data.
        assert_eq!(d.recover_page(0).unwrap(), page(52));
        let history = d.verified_history().unwrap();
        assert_eq!(history.len() as u64, d.chain_len());
    }

    #[test]
    fn spilled_segments_serve_recovery_without_the_remote() {
        let mut d = spill_device();
        d.write_page(3, page(1)).unwrap();
        d.remote_mut().set_reachable(false);
        d.write_page(3, page(2)).unwrap();
        let _ = d.flush_log(); // seals + spills; the wire attempt fails
        assert!(d.offload_stats().segments_spilled > 0);
        // The pre-image lives only in the sealed (spilled) segment now, and
        // recovery opens it locally — no uplink required.
        assert_eq!(d.recover_page(3).unwrap(), page(1));
    }
}
