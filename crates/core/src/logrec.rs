//! The hardware-assisted log: records, segments, and their wire format.
//!
//! Every host-visible operation becomes a [`LogRecord`]. Records are chained
//! (HMAC over the previous tag and the record's canonical bytes) as they are
//! appended, then packed into [`Segment`]s for offload. A [`SegmentEnvelope`]
//! is what actually crosses the NVMe-oE wire: plaintext routing metadata
//! (sequence numbers, chain heads for continuity verification) around a
//! compressed, encrypted, MAC'd payload.
//!
//! Serialization is a hand-rolled binary format (no serde data format crate
//! is used in this workspace); every decoder is total — malformed input
//! yields [`WireError`], never a panic.

use bytes::Bytes;
use rssd_crypto::{ChainLink, Digest};
use serde::{Deserialize, Serialize};

/// Operation class of a log record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogOp {
    /// Host write that created a page version (may have invalidated an
    /// older one, in which case the old version is retained).
    Write,
    /// Host trim; the trimmed (old) version is retained.
    Trim,
    /// Host read (metadata only; evidence of read-before-encrypt).
    Read,
}

impl LogOp {
    fn id(self) -> u8 {
        match self {
            LogOp::Write => 1,
            LogOp::Trim => 2,
            LogOp::Read => 3,
        }
    }

    fn from_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(LogOp::Write),
            2 => Some(LogOp::Trim),
            3 => Some(LogOp::Read),
            _ => None,
        }
    }
}

/// One entry of the hardware-assisted log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Evidence-chain sequence number (total order of operations).
    pub seq: u64,
    /// Simulated time the operation was processed.
    pub at_ns: u64,
    /// Operation class.
    pub op: LogOp,
    /// Logical page touched.
    pub lpa: u64,
    /// Global page index of the invalidated (old) physical page, if any.
    pub old_page_index: Option<u64>,
    /// Entropy of the newly written payload, millibits/byte (writes only).
    pub entropy_mil: u16,
    /// Was this LPA read within the correlation window before the write?
    pub read_before: bool,
    /// Retained content of the old page version. Absent in the in-device
    /// chain (integrity of content is protected by the segment MAC instead);
    /// attached when the record is packed for offload.
    pub old_data: Option<Vec<u8>>,
}

impl LogRecord {
    /// Entropy in bits/byte.
    pub fn entropy_bits(&self) -> f64 {
        f64::from(self.entropy_mil) / 1000.0
    }

    /// Canonical bytes covered by the evidence chain MAC. Excludes
    /// `old_data` (see field docs) so the tag is stable whether or not the
    /// content has been attached yet.
    pub fn chain_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.push(self.op.id());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.at_ns.to_le_bytes());
        out.extend_from_slice(&self.lpa.to_le_bytes());
        out.extend_from_slice(&self.old_page_index.unwrap_or(u64::MAX).to_le_bytes());
        out.extend_from_slice(&self.entropy_mil.to_le_bytes());
        out.push(u8::from(self.read_before));
        out
    }

    /// Full wire encoding (chain bytes + optional content).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.chain_bytes();
        match &self.old_data {
            None => out.extend_from_slice(&u32::MAX.to_le_bytes()),
            Some(data) => {
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
        }
        out
    }

    /// Decodes one record from the front of `data`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or unknown fields.
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), WireError> {
        const FIXED: usize = 1 + 8 + 8 + 8 + 8 + 2 + 1 + 4;
        if data.len() < FIXED {
            return Err(WireError::Truncated);
        }
        let op = LogOp::from_id(data[0]).ok_or(WireError::UnknownOp(data[0]))?;
        let seq = u64::from_le_bytes(data[1..9].try_into().expect("8"));
        let at_ns = u64::from_le_bytes(data[9..17].try_into().expect("8"));
        let lpa = u64::from_le_bytes(data[17..25].try_into().expect("8"));
        let old_raw = u64::from_le_bytes(data[25..33].try_into().expect("8"));
        let entropy_mil = u16::from_le_bytes(data[33..35].try_into().expect("2"));
        let read_before = data[35] != 0;
        let len_raw = u32::from_le_bytes(data[36..40].try_into().expect("4"));
        let (old_data, consumed) = if len_raw == u32::MAX {
            (None, FIXED)
        } else {
            let len = len_raw as usize;
            if data.len() < FIXED + len {
                return Err(WireError::Truncated);
            }
            (Some(data[FIXED..FIXED + len].to_vec()), FIXED + len)
        };
        Ok((
            LogRecord {
                seq,
                at_ns,
                op,
                lpa,
                old_page_index: (old_raw != u64::MAX).then_some(old_raw),
                entropy_mil,
                read_before,
                old_data,
            },
            consumed,
        ))
    }
}

/// Wire decoding errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the encoding requires.
    Truncated,
    /// Unknown [`LogOp`] id.
    UnknownOp(u8),
    /// Segment payload failed to decompress or decrypt.
    BadPayload,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated log encoding"),
            WireError::UnknownOp(id) => write!(f, "unknown log op id {id}"),
            WireError::BadPayload => write!(f, "segment payload undecodable"),
        }
    }
}

impl std::error::Error for WireError {}

/// A batch of consecutive log records plus their chain links, as packed for
/// offload.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Monotone per-device segment number.
    pub segment_seq: u64,
    /// Records in chain order.
    pub records: Vec<LogRecord>,
    /// Chain links, one per record.
    pub links: Vec<ChainLink>,
}

impl Segment {
    /// Serializes records + links (the plaintext that gets compressed,
    /// sealed and shipped).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.segment_seq.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.to_bytes());
        }
        for l in &self.links {
            out.extend_from_slice(&l.seq.to_le_bytes());
            out.extend_from_slice(l.tag.as_bytes());
        }
        out
    }

    /// Decodes a segment.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input.
    pub fn from_bytes(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 12 {
            return Err(WireError::Truncated);
        }
        let segment_seq = u64::from_le_bytes(data[..8].try_into().expect("8"));
        let count = u32::from_le_bytes(data[8..12].try_into().expect("4")) as usize;
        // Every record is at least 40 bytes and every link exactly 40, so a
        // count the remaining bytes cannot possibly hold is malformed input
        // (and must not drive preallocation).
        if count > data.len().saturating_sub(12) / 80 {
            return Err(WireError::Truncated);
        }
        let mut offset = 12;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let (rec, used) = LogRecord::from_bytes(&data[offset..])?;
            records.push(rec);
            offset += used;
        }
        let mut links = Vec::with_capacity(count);
        for _ in 0..count {
            if data.len() < offset + 40 {
                return Err(WireError::Truncated);
            }
            let seq = u64::from_le_bytes(data[offset..offset + 8].try_into().expect("8"));
            let tag: [u8; 32] = data[offset + 8..offset + 40].try_into().expect("32");
            links.push(ChainLink {
                seq,
                tag: Digest::from_bytes(tag),
            });
            offset += 40;
        }
        Ok(Segment {
            segment_seq,
            records,
            links,
        })
    }
}

/// What crosses the wire: plaintext routing/continuity metadata around the
/// sealed payload.
///
/// Backed by its own canonical wire image — one reference-counted buffer
/// `[84-byte header | sealed payload]` built exactly once at seal time.
/// Construction *is* serialization: [`SegmentEnvelope::to_wire_bytes`] and
/// `clone()` are refcount bumps, and [`SegmentEnvelope::from_wire_bytes`]
/// adopts a received buffer without copying. Field reads decode from the
/// header in place (a few little-endian loads).
#[derive(Clone, PartialEq, Eq)]
pub struct SegmentEnvelope {
    /// The canonical wire encoding. Invariant: at least
    /// [`SegmentEnvelope::WIRE_HEADER`] bytes long.
    wire: Bytes,
}

impl SegmentEnvelope {
    /// Fixed header size of the canonical wire encoding:
    /// `device_id (8) + segment_seq (8) + prev_chain_head (32) +
    /// chain_head (32) + record_count (4)`.
    pub const WIRE_HEADER: usize = 8 + 8 + 32 + 32 + 4;

    /// Builds an envelope from its parts, serializing header + payload into
    /// one buffer. For the zero-copy path, assemble the buffer yourself with
    /// [`SegmentEnvelope::write_wire_header`] and adopt it via
    /// [`SegmentEnvelope::from_wire_image`].
    pub fn new(
        device_id: u64,
        segment_seq: u64,
        prev_chain_head: Digest,
        chain_head: Digest,
        record_count: u32,
        sealed_payload: &[u8],
    ) -> SegmentEnvelope {
        let mut out = Vec::with_capacity(Self::WIRE_HEADER + sealed_payload.len());
        Self::write_wire_header(
            &mut out,
            device_id,
            segment_seq,
            &prev_chain_head,
            &chain_head,
            record_count,
        );
        out.extend_from_slice(sealed_payload);
        SegmentEnvelope {
            wire: Bytes::from(out),
        }
    }

    /// Appends the canonical 84-byte envelope header to `out`. The offload
    /// engine writes this first, compresses and seals the payload in place
    /// after it, then adopts the finished buffer with
    /// [`SegmentEnvelope::from_wire_image`] — the single serialization point
    /// of the whole offload path.
    pub fn write_wire_header(
        out: &mut Vec<u8>,
        device_id: u64,
        segment_seq: u64,
        prev_chain_head: &Digest,
        chain_head: &Digest,
        record_count: u32,
    ) {
        out.reserve(Self::WIRE_HEADER);
        out.extend_from_slice(&device_id.to_le_bytes());
        out.extend_from_slice(&segment_seq.to_le_bytes());
        out.extend_from_slice(prev_chain_head.as_bytes());
        out.extend_from_slice(chain_head.as_bytes());
        out.extend_from_slice(&record_count.to_le_bytes());
    }

    /// Adopts a fully assembled wire image (header + sealed payload) without
    /// copying. Returns `None` if shorter than the header.
    pub fn from_wire_image(wire: impl Into<Bytes>) -> Option<SegmentEnvelope> {
        let wire = wire.into();
        (wire.len() >= Self::WIRE_HEADER).then_some(SegmentEnvelope { wire })
    }

    /// Decodes the canonical wire encoding — an alias of
    /// [`SegmentEnvelope::from_wire_image`], kept for the receive-path
    /// reading: `None` if `data` is shorter than
    /// [`SegmentEnvelope::WIRE_HEADER`]. The sealed payload is *not*
    /// authenticated here — tampering is caught by the secure session's MAC
    /// when the payload is opened.
    pub fn from_wire_bytes(data: impl Into<Bytes>) -> Option<SegmentEnvelope> {
        Self::from_wire_image(data)
    }

    /// Originating device.
    pub fn device_id(&self) -> u64 {
        u64::from_le_bytes(self.wire[..8].try_into().expect("8"))
    }

    /// Segment number (also the seal nonce input).
    pub fn segment_seq(&self) -> u64 {
        u64::from_le_bytes(self.wire[8..16].try_into().expect("8"))
    }

    /// Evidence-chain head *before* this segment's first record.
    pub fn prev_chain_head(&self) -> Digest {
        Digest::from_bytes(self.wire[16..48].try_into().expect("32"))
    }

    /// Evidence-chain head after this segment's last record.
    pub fn chain_head(&self) -> Digest {
        Digest::from_bytes(self.wire[48..80].try_into().expect("32"))
    }

    /// Number of records inside.
    pub fn record_count(&self) -> u32 {
        u32::from_le_bytes(self.wire[80..84].try_into().expect("4"))
    }

    /// compress → encrypt → MAC output.
    pub fn sealed_payload(&self) -> &[u8] {
        &self.wire[Self::WIRE_HEADER..]
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.wire.len()
    }

    /// Canonical wire encoding: the [`SegmentEnvelope::WIRE_HEADER`] fields
    /// little-endian, followed by the sealed payload. This is the byte
    /// stream that NVMe-oE capsules fragment and carry — both `WireRemote`
    /// on the device side and the remote log server speak exactly this.
    /// A refcount bump: the envelope *is* its wire image.
    pub fn to_wire_bytes(&self) -> Bytes {
        self.wire.clone()
    }

    /// Borrows the wire image.
    pub fn wire(&self) -> &Bytes {
        &self.wire
    }
}

impl std::fmt::Debug for SegmentEnvelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentEnvelope")
            .field("device_id", &self.device_id())
            .field("segment_seq", &self.segment_seq())
            .field("prev_chain_head", &self.prev_chain_head())
            .field("chain_head", &self.chain_head())
            .field("record_count", &self.record_count())
            .field("sealed_len", &self.sealed_payload().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rssd_crypto::HashChain;

    fn record(seq: u64, with_data: bool) -> LogRecord {
        LogRecord {
            seq,
            at_ns: 123_456 + seq,
            op: LogOp::Write,
            lpa: 42 + seq,
            old_page_index: Some(7),
            entropy_mil: 7900,
            read_before: true,
            old_data: with_data.then(|| vec![0xAB; 64]),
        }
    }

    #[test]
    fn record_round_trip_with_and_without_data() {
        for with_data in [false, true] {
            let r = record(5, with_data);
            let bytes = r.to_bytes();
            let (decoded, used) = LogRecord::from_bytes(&bytes).unwrap();
            assert_eq!(decoded, r);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn chain_bytes_stable_under_data_attachment() {
        let bare = record(5, false);
        let full = record(5, true);
        assert_eq!(bare.chain_bytes(), full.chain_bytes());
    }

    #[test]
    fn record_rejects_truncation() {
        let bytes = record(5, true).to_bytes();
        for cut in [0, 10, 39, bytes.len() - 1] {
            assert_eq!(
                LogRecord::from_bytes(&bytes[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn record_rejects_unknown_op() {
        let mut bytes = record(5, false).to_bytes();
        bytes[0] = 77;
        assert_eq!(LogRecord::from_bytes(&bytes), Err(WireError::UnknownOp(77)));
    }

    #[test]
    fn entropy_scaling() {
        assert!((record(0, false).entropy_bits() - 7.9).abs() < 1e-9);
    }

    #[test]
    fn segment_round_trip() {
        let mut chain = HashChain::new(b"k");
        let records: Vec<LogRecord> = (0..5).map(|i| record(i, i % 2 == 0)).collect();
        let links: Vec<ChainLink> = records
            .iter()
            .map(|r| chain.append(&r.chain_bytes()))
            .collect();
        let seg = Segment {
            segment_seq: 9,
            records,
            links,
        };
        let decoded = Segment::from_bytes(&seg.to_bytes()).unwrap();
        assert_eq!(decoded, seg);
    }

    #[test]
    fn segment_rejects_truncation() {
        let seg = Segment {
            segment_seq: 1,
            records: vec![record(0, true)],
            links: vec![ChainLink {
                seq: 0,
                tag: Digest::ZERO,
            }],
        };
        let bytes = seg.to_bytes();
        assert_eq!(
            Segment::from_bytes(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated)
        );
        assert_eq!(Segment::from_bytes(&[1, 2]), Err(WireError::Truncated));
    }

    #[test]
    fn decoded_links_verify_against_records() {
        let mut chain = HashChain::new(b"k");
        let records: Vec<LogRecord> = (0..4).map(|i| record(i, true)).collect();
        let links: Vec<ChainLink> = records
            .iter()
            .map(|r| chain.append(&r.chain_bytes()))
            .collect();
        let seg = Segment {
            segment_seq: 0,
            records,
            links,
        };
        let decoded = Segment::from_bytes(&seg.to_bytes()).unwrap();
        let chain_inputs: Vec<Vec<u8>> = decoded.records.iter().map(|r| r.chain_bytes()).collect();
        HashChain::verify_sequence(b"k", &chain_inputs, &decoded.links).unwrap();
    }

    #[test]
    fn envelope_wire_round_trip() {
        let envelope = SegmentEnvelope::new(
            7,
            42,
            Digest::from_bytes([0xAA; 32]),
            Digest::from_bytes([0xBB; 32]),
            9,
            &[1, 2, 3, 4, 5],
        );
        assert_eq!(envelope.device_id(), 7);
        assert_eq!(envelope.segment_seq(), 42);
        assert_eq!(envelope.prev_chain_head(), Digest::from_bytes([0xAA; 32]));
        assert_eq!(envelope.chain_head(), Digest::from_bytes([0xBB; 32]));
        assert_eq!(envelope.record_count(), 9);
        assert_eq!(envelope.sealed_payload(), &[1, 2, 3, 4, 5]);
        let wire = envelope.to_wire_bytes();
        assert_eq!(wire.len(), envelope.wire_bytes());
        assert_eq!(SegmentEnvelope::from_wire_bytes(wire).unwrap(), envelope);
    }

    #[test]
    fn envelope_clone_and_wire_share_the_image() {
        let envelope = SegmentEnvelope::new(1, 2, Digest::ZERO, Digest::ZERO, 3, &[9; 100]);
        let wire = envelope.to_wire_bytes();
        assert_eq!(
            wire.as_ref().as_ptr(),
            envelope.wire().as_ref().as_ptr(),
            "to_wire_bytes must be a refcount bump, not a copy"
        );
        let clone = envelope.clone();
        assert_eq!(
            clone.wire().as_ref().as_ptr(),
            envelope.wire().as_ref().as_ptr(),
            "clone must share the wire image"
        );
    }

    #[test]
    fn envelope_zero_copy_assembly_matches_new() {
        let payload = [7u8; 33];
        let built = SegmentEnvelope::new(
            5,
            6,
            Digest::from_bytes([1; 32]),
            Digest::from_bytes([2; 32]),
            4,
            &payload,
        );
        let mut wire = Vec::new();
        SegmentEnvelope::write_wire_header(
            &mut wire,
            5,
            6,
            &Digest::from_bytes([1; 32]),
            &Digest::from_bytes([2; 32]),
            4,
        );
        assert_eq!(wire.len(), SegmentEnvelope::WIRE_HEADER);
        wire.extend_from_slice(&payload);
        let adopted = SegmentEnvelope::from_wire_image(wire).unwrap();
        assert_eq!(adopted, built);
    }

    #[test]
    fn envelope_wire_rejects_short_input() {
        assert!(
            SegmentEnvelope::from_wire_bytes(&[0u8; SegmentEnvelope::WIRE_HEADER - 1][..])
                .is_none()
        );
        let empty = SegmentEnvelope::new(
            0,
            0,
            Digest::from_bytes([0; 32]),
            Digest::from_bytes([0; 32]),
            0,
            &[],
        );
        // A header with no payload is the minimum valid envelope.
        let decoded = SegmentEnvelope::from_wire_bytes(empty.to_wire_bytes()).unwrap();
        assert!(decoded.sealed_payload().is_empty());
    }
}
