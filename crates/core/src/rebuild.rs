//! Remote-assisted rebuild of a lost device.
//!
//! The paper's codesign splits the defense across two failure domains: the
//! SSD (local flash, pending log, pinned pages) and the hardware-isolated
//! remote retention store. When the local half is lost entirely — a died
//! shard in an array, a stolen machine, firmware bricked by the attacker —
//! the remote half still holds every offloaded segment, chained and sealed.
//!
//! [`RebuildImage::harvest`] walks that surviving evidence chain with the
//! escrowed device keys, verifies it end to end (a non-verifying chain is
//! itself forensic signal and aborts the harvest), and indexes every
//! retained page version by LPA. The image then answers the two questions a
//! rebuild needs:
//!
//! * [`newest`](RebuildImage::newest) — the most recent retained pre-image
//!   of a page (degraded-mode reads while a replacement is being built), and
//! * [`version_before`](RebuildImage::version_before) — the version valid
//!   just before a cut-off time (point-in-time rebuild to pre-attack state).
//!
//! What the image *cannot* contain is honest by construction: a page whose
//! only version was written fresh and never overwritten has no retained
//! pre-image in the log, and records still pending on the device at the
//! moment of loss died with it. The zero-data-loss guarantee covers what
//! ransomware destroys — destruction creates retained versions, and
//! retention offloads them — not data that existed nowhere but the lost
//! flash.

use crate::device::open_envelope;
use crate::logrec::{LogOp, LogRecord};
use crate::remote_target::RemoteTarget;
use rssd_crypto::{DeviceKeys, Digest, HashChain, KeyPurpose};
use rssd_net::SecureSession;
use std::collections::HashMap;

/// Walks every segment stored on `remote` in chain order, verifying
/// continuity and per-record HMAC links, and hands each decoded record
/// (with the sequence of the segment that carried it) to `sink`. Returns
/// the verified chain head. Shared by
/// [`RssdDevice::verified_history`](crate::RssdDevice::verified_history)
/// (which appends its pending tail afterwards),
/// [`RssdDevice::recover`](crate::RssdDevice::recover) (which rebuilds the
/// crashed controller's remote version index) and
/// [`RebuildImage::harvest`] (which has no device left to ask).
pub(crate) fn walk_verified_segments<R: RemoteTarget>(
    chain_key: &[u8],
    session: &SecureSession,
    remote: &mut R,
    sink: impl FnMut(u64, LogRecord),
) -> Result<Digest, String> {
    match walk_segments_tolerant(chain_key, session, remote, sink) {
        (head, None) => Ok(head),
        (_, Some(failure)) => Err(failure),
    }
}

/// The fault-tolerant walk underneath [`walk_verified_segments`]: stops at
/// the first verification failure instead of erroring, returning the head
/// of the verified prefix and the failure (if any). Records are only ever
/// delivered to `sink` from fully verified segments, so everything sunk is
/// trustworthy even when the walk stops early. Used directly by
/// [`RssdDevice::audit_history`](crate::RssdDevice::audit_history), which
/// must keep the verified prefix as evidence while reporting the gap.
pub(crate) fn walk_segments_tolerant<R: RemoteTarget>(
    chain_key: &[u8],
    session: &SecureSession,
    remote: &mut R,
    mut sink: impl FnMut(u64, LogRecord),
) -> (Digest, Option<String>) {
    let mut head = Digest::ZERO;
    for seq in remote.stored_segments() {
        let envelope = match remote.fetch_segment(seq) {
            Ok(envelope) => envelope,
            Err(e) => return (head, Some(format!("fetch segment {seq}: {e}"))),
        };
        let segment = match open_envelope(session, &envelope) {
            Ok(segment) => segment,
            Err(e) => return (head, Some(format!("open segment {seq}: {e}"))),
        };
        if envelope.prev_chain_head() != head {
            return (
                head,
                Some(format!("segment {seq} does not extend the chain")),
            );
        }
        let inputs: Vec<Vec<u8>> = segment.records.iter().map(|r| r.chain_bytes()).collect();
        if let Err(e) = HashChain::verify_from(chain_key, head, &inputs, &segment.links) {
            return (head, Some(format!("segment {seq}: {e}")));
        }
        head = envelope.chain_head();
        for record in segment.records {
            sink(seq, record);
        }
    }
    (head, None)
}

/// One retained page version recovered from the remote store, keyed by the
/// moment the on-device original was invalidated.
#[derive(Clone, Debug)]
struct HarvestedVersion {
    /// Clock time the version's content was written (the version did not
    /// exist before this).
    created_at_ns: u64,
    /// Clock time the version was invalidated (overwritten or trimmed).
    invalidated_at_ns: u64,
    /// Evidence-chain sequence of the invalidating record (total order
    /// tie-breaker for same-timestamp operations).
    record_seq: u64,
    /// The retained page content.
    data: Vec<u8>,
}

/// Counters describing one harvest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct HarvestReport {
    /// Offloaded segments walked and chain-verified.
    pub segments: u64,
    /// Log records examined.
    pub records: u64,
    /// Retained page versions indexed.
    pub versions: u64,
    /// Distinct logical pages with at least one retained version.
    pub lpas_covered: u64,
}

/// The rebuildable state of a lost device, reconstructed entirely from its
/// remote retention store.
#[derive(Clone, Debug)]
pub struct RebuildImage {
    /// Versions per LPA, sorted ascending by (invalidated_at_ns, record_seq).
    versions: HashMap<u64, Vec<HarvestedVersion>>,
    report: HarvestReport,
}

impl RebuildImage {
    /// An image retaining nothing — the degraded state a shard falls back
    /// to when its remote store fails verification (a tampered chain must
    /// not launder data into recovery).
    pub fn empty() -> Self {
        RebuildImage {
            versions: HashMap::new(),
            report: HarvestReport::default(),
        }
    }

    /// Walks every segment stored on `remote`, verifies the evidence chain
    /// end to end with the escrowed `keys`, and indexes all retained page
    /// versions.
    ///
    /// # Errors
    ///
    /// Returns a description of the first verification failure — a chain
    /// that does not verify means remote tampering, and rebuilding from it
    /// would launder the tamper into "recovered" data.
    pub fn harvest<R: RemoteTarget>(keys: &DeviceKeys, remote: &mut R) -> Result<Self, String> {
        let chain_key = keys.derive(KeyPurpose::EvidenceChain, 0);
        let session = SecureSession::new(keys, 0);
        let mut versions: HashMap<u64, Vec<HarvestedVersion>> = HashMap::new();
        let mut report = HarvestReport::default();
        // Creation time of each page's *current* content while walking the
        // log in chain order: a retained version's content was written by
        // the last Write record for that LPA before the invalidating one.
        // (Offloaded history is a prefix of the log, so the creating write
        // is always in the prefix when its invalidation is.)
        let mut content_written_at: HashMap<u64, u64> = HashMap::new();
        walk_verified_segments(&chain_key, &session, remote, |_seq, record| {
            report.records += 1;
            if let Some(data) = &record.old_data {
                report.versions += 1;
                versions
                    .entry(record.lpa)
                    .or_default()
                    .push(HarvestedVersion {
                        created_at_ns: content_written_at.get(&record.lpa).copied().unwrap_or(0),
                        invalidated_at_ns: record.at_ns,
                        record_seq: record.seq,
                        data: data.clone(),
                    });
            }
            match record.op {
                LogOp::Write => {
                    content_written_at.insert(record.lpa, record.at_ns);
                }
                // A trim leaves the page with no content until rewritten.
                LogOp::Trim => {
                    content_written_at.remove(&record.lpa);
                }
                LogOp::Read => {}
            }
        })?;
        report.segments = remote.stored_segments().len() as u64;
        for list in versions.values_mut() {
            list.sort_by_key(|v| (v.invalidated_at_ns, v.record_seq));
        }
        report.lpas_covered = versions.len() as u64;
        Ok(RebuildImage { versions, report })
    }

    /// Harvest counters.
    pub fn report(&self) -> HarvestReport {
        self.report
    }

    /// Logical pages with at least one retained version, ascending.
    pub fn lpas(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.versions.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// `true` when `lpa` has at least one retained version.
    pub fn covers(&self, lpa: u64) -> bool {
        self.versions.contains_key(&lpa)
    }

    /// The newest retained version of `lpa` (the content the most recent
    /// logged overwrite/trim destroyed), if any.
    pub fn newest(&self, lpa: u64) -> Option<&[u8]> {
        self.versions
            .get(&lpa)
            .and_then(|list| list.last())
            .map(|v| v.data.as_slice())
    }

    /// The version of `lpa` that was valid at `before_ns`: written strictly
    /// before it and invalidated at or after it. `None` when the page held
    /// no content at that time — never written yet, or sitting trimmed —
    /// so a point-in-time rebuild cannot resurrect content created *after*
    /// the cut-off (a page born mid-attack must come back empty, not
    /// holding mid-attack data).
    pub fn version_before(&self, lpa: u64, before_ns: u64) -> Option<&[u8]> {
        self.versions.get(&lpa).and_then(|list| {
            list.iter()
                .find(|v| v.invalidated_at_ns >= before_ns)
                .filter(|v| v.created_at_ns < before_ns)
                .map(|v| v.data.as_slice())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RssdConfig;
    use crate::device::RssdDevice;
    use crate::logrec::SegmentEnvelope;
    use crate::remote_target::LoopbackTarget;
    use rssd_flash::{FlashGeometry, NandTiming, SimClock};
    use rssd_ssd::BlockDevice;

    fn device(clock: SimClock) -> RssdDevice<LoopbackTarget> {
        RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            clock,
            RssdConfig {
                segment_pages: 4,
                ..RssdConfig::default()
            },
            LoopbackTarget::new(),
        )
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    #[test]
    fn harvest_rebuilds_overwritten_state_without_the_device() {
        let clock = SimClock::new();
        let mut d = device(clock.clone());
        for lpa in 0..8u64 {
            d.write_page(lpa, page(lpa as u8)).unwrap();
        }
        clock.advance(1_000_000);
        let attack_start = clock.now_ns();
        for lpa in 0..8u64 {
            d.write_page(lpa, page(0xEE)).unwrap(); // "ciphertext"
        }
        d.flush_log().unwrap();

        // The device dies; only keys + remote survive.
        let keys = d.escrow_keys();
        let mut remote = d.into_remote();
        let image = RebuildImage::harvest(&keys, &mut remote).unwrap();

        assert_eq!(image.report().lpas_covered, 8);
        assert!(image.report().segments > 0);
        for lpa in 0..8u64 {
            assert!(image.covers(lpa));
            assert_eq!(image.newest(lpa).unwrap(), page(lpa as u8).as_slice());
            assert_eq!(
                image.version_before(lpa, attack_start).unwrap(),
                page(lpa as u8).as_slice()
            );
        }
        assert_eq!(image.lpas(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn version_before_selects_point_in_time() {
        let clock = SimClock::new();
        let mut d = device(clock.clone());
        d.write_page(3, page(1)).unwrap();
        clock.advance(1_000_000);
        let t1 = clock.now_ns();
        d.write_page(3, page(2)).unwrap();
        clock.advance(1_000_000);
        let t2 = clock.now_ns();
        d.write_page(3, page(3)).unwrap();
        d.flush_log().unwrap();

        let keys = d.escrow_keys();
        let mut remote = d.into_remote();
        let image = RebuildImage::harvest(&keys, &mut remote).unwrap();
        assert_eq!(image.version_before(3, t1).unwrap(), page(1).as_slice());
        assert_eq!(image.version_before(3, t2).unwrap(), page(2).as_slice());
        assert_eq!(image.newest(3).unwrap(), page(2).as_slice());
    }

    #[test]
    fn version_before_does_not_resurrect_pages_born_after_the_cutoff() {
        let clock = SimClock::new();
        let mut d = device(clock.clone());
        clock.advance(1_000);
        let cutoff = clock.now_ns();
        clock.advance(1_000);
        // Page first written after the cutoff, then overwritten (so a
        // retained version exists — created mid-"attack").
        d.write_page(4, page(0xAB)).unwrap();
        clock.advance(1_000);
        d.write_page(4, page(0xCD)).unwrap();
        d.flush_log().unwrap();
        let keys = d.escrow_keys();
        let mut remote = d.into_remote();
        let image = RebuildImage::harvest(&keys, &mut remote).unwrap();
        assert_eq!(image.newest(4).unwrap(), page(0xAB).as_slice());
        assert_eq!(
            image.version_before(4, cutoff),
            None,
            "the page held nothing at the cutoff; restoring 0xAB would \
             resurrect post-cutoff content"
        );
    }

    #[test]
    fn version_before_respects_trim_gaps() {
        let clock = SimClock::new();
        let mut d = device(clock.clone());
        d.write_page(2, page(1)).unwrap();
        clock.advance(1_000);
        d.trim_page(2).unwrap();
        clock.advance(1_000);
        let mid_gap = clock.now_ns();
        clock.advance(1_000);
        d.write_page(2, page(3)).unwrap();
        clock.advance(1_000);
        d.write_page(2, page(4)).unwrap();
        d.flush_log().unwrap();
        let keys = d.escrow_keys();
        let mut remote = d.into_remote();
        let image = RebuildImage::harvest(&keys, &mut remote).unwrap();
        // At mid_gap the page sat trimmed: nothing to restore.
        assert_eq!(image.version_before(2, mid_gap), None);
        // Before the trim, version 1 was live.
        assert_eq!(image.version_before(2, 500).unwrap(), page(1).as_slice());
        // Newest retained is the post-gap content the last write destroyed.
        assert_eq!(image.newest(2).unwrap(), page(3).as_slice());
    }

    #[test]
    fn fresh_never_overwritten_pages_are_honestly_absent() {
        let mut d = device(SimClock::new());
        d.write_page(5, page(9)).unwrap();
        d.flush_log().unwrap();
        let keys = d.escrow_keys();
        let mut remote = d.into_remote();
        let image = RebuildImage::harvest(&keys, &mut remote).unwrap();
        assert!(!image.covers(5), "fresh write has no retained pre-image");
        assert_eq!(image.newest(5), None);
    }

    #[test]
    fn pending_unoffloaded_records_die_with_the_device() {
        let mut d = device(SimClock::new());
        d.write_page(0, page(1)).unwrap();
        d.write_page(0, page(2)).unwrap();
        // No flush_log: the retained pre-image is pinned locally only.
        let keys = d.escrow_keys();
        let mut remote = d.into_remote();
        let image = RebuildImage::harvest(&keys, &mut remote).unwrap();
        assert!(!image.covers(0));
    }

    #[test]
    fn tampered_remote_fails_harvest() {
        let mut d = device(SimClock::new());
        for lpa in 0..4u64 {
            d.write_page(lpa, page(1)).unwrap();
            d.write_page(lpa, page(2)).unwrap();
        }
        d.flush_log().unwrap();
        let keys = d.escrow_keys();
        let mut remote = d.into_remote();
        // Corrupt one stored payload byte.
        let seq = remote.stored_segments()[0];
        let clean = remote.fetch_segment(seq).unwrap();
        // The envelope shares its wire image by refcount, so tampering
        // means rebuilding it around a flipped payload copy.
        let mut payload = clean.sealed_payload().to_vec();
        payload[0] ^= 0xFF;
        let envelope = SegmentEnvelope::new(
            clean.device_id(),
            clean.segment_seq(),
            clean.prev_chain_head(),
            clean.chain_head(),
            clean.record_count(),
            &payload,
        );
        // Rebuild the store with the tampered envelope (LoopbackTarget has
        // no in-place mutation; store into a fresh one, chain check off by
        // replaying in order with matching heads).
        let mut tampered = LoopbackTarget::new();
        for s in remote.stored_segments() {
            let e = if s == seq {
                envelope.clone()
            } else {
                remote.fetch_segment(s).unwrap()
            };
            tampered.store_segment(e, 0).unwrap();
        }
        let err = RebuildImage::harvest(&keys, &mut tampered).unwrap_err();
        assert!(err.contains("open segment"), "{err}");
    }
}
