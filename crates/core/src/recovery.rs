//! Zero-data-loss recovery.
//!
//! Drives the restore after an attack: given the analyzer's victim list (or
//! an explicit LPA set) and a cut-off time, rolls every victim page back to
//! its newest pre-attack version and writes it back through the normal
//! write path (so recovery itself is logged in the evidence chain).

use crate::device::RssdDevice;
use crate::remote_target::RemoteTarget;
use rssd_ssd::BlockDevice;
use serde::{Deserialize, Serialize};

/// Result of a recovery run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct RecoveryReport {
    /// Pages successfully restored.
    pub pages_restored: u64,
    /// Pages for which no retained version existed (must be zero for RSSD —
    /// that is the zero-data-loss claim).
    pub pages_unrecoverable: u64,
    /// Bytes restored.
    pub bytes_restored: u64,
    /// Simulated time the recovery took.
    pub duration_ns: u64,
}

impl RecoveryReport {
    /// Fraction of requested pages recovered.
    pub fn recovery_rate(&self) -> f64 {
        let total = self.pages_restored + self.pages_unrecoverable;
        if total == 0 {
            return 1.0;
        }
        self.pages_restored as f64 / total as f64
    }
}

/// Restores victim pages on an [`RssdDevice`].
#[derive(Debug, Default)]
pub struct RecoveryEngine;

impl RecoveryEngine {
    /// Creates an engine.
    pub fn new() -> Self {
        RecoveryEngine
    }

    /// Restores each page in `victim_lpas` to the newest version that was
    /// valid strictly before `attack_start_ns`, writing the recovered
    /// content back through the device.
    pub fn restore_before<R: RemoteTarget>(
        &self,
        device: &mut RssdDevice<R>,
        victim_lpas: &[u64],
        attack_start_ns: u64,
    ) -> RecoveryReport {
        let start = device.clock().now_ns();
        let mut report = RecoveryReport::default();
        for &lpa in victim_lpas {
            match device.recover_page_before(lpa, attack_start_ns) {
                Some(data) => {
                    report.bytes_restored += data.len() as u64;
                    device
                        .write_page(lpa, data)
                        .expect("restore write must succeed");
                    report.pages_restored += 1;
                }
                None => report.pages_unrecoverable += 1,
            }
        }
        report.duration_ns = device.clock().now_ns().saturating_sub(start);
        report
    }

    /// Restores each victim page to its newest retained pre-image (used when
    /// the attack overwrote each page exactly once).
    pub fn restore_newest<R: RemoteTarget>(
        &self,
        device: &mut RssdDevice<R>,
        victim_lpas: &[u64],
    ) -> RecoveryReport {
        let start = device.clock().now_ns();
        let mut report = RecoveryReport::default();
        for &lpa in victim_lpas {
            match device.recover_newest(lpa) {
                Some(data) => {
                    report.bytes_restored += data.len() as u64;
                    device
                        .write_page(lpa, data)
                        .expect("restore write must succeed");
                    report.pages_restored += 1;
                }
                None => report.pages_unrecoverable += 1,
            }
        }
        report.duration_ns = device.clock().now_ns().saturating_sub(start);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RssdConfig;
    use crate::remote_target::LoopbackTarget;
    use rssd_flash::{FlashGeometry, NandTiming, SimClock};

    fn device(clock: SimClock) -> RssdDevice<LoopbackTarget> {
        RssdDevice::new(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            clock,
            RssdConfig {
                segment_pages: 8,
                ..RssdConfig::default()
            },
            LoopbackTarget::new(),
        )
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    #[test]
    fn full_restore_after_encryption() {
        let clock = SimClock::new();
        let mut d = device(clock.clone());
        for lpa in 0..20u64 {
            d.write_page(lpa, page(lpa as u8)).unwrap();
        }
        clock.advance(1_000_000);
        let attack_start = clock.now_ns();
        for lpa in 0..20u64 {
            d.write_page(lpa, page(0xEE)).unwrap(); // "ciphertext"
        }
        let victims: Vec<u64> = (0..20).collect();
        let report = RecoveryEngine::new().restore_before(&mut d, &victims, attack_start);
        assert_eq!(report.pages_restored, 20);
        assert_eq!(report.pages_unrecoverable, 0);
        assert_eq!(report.recovery_rate(), 1.0);
        for lpa in 0..20u64 {
            assert_eq!(d.read_page(lpa).unwrap(), page(lpa as u8));
        }
    }

    #[test]
    fn restore_after_offload_pulls_from_remote() {
        let clock = SimClock::new();
        let mut d = device(clock.clone());
        for lpa in 0..10u64 {
            d.write_page(lpa, page(lpa as u8)).unwrap();
        }
        clock.advance(1_000);
        let attack_start = clock.now_ns();
        for lpa in 0..10u64 {
            d.write_page(lpa, page(0xEE)).unwrap();
        }
        d.flush_log().unwrap();
        let victims: Vec<u64> = (0..10).collect();
        let report = RecoveryEngine::new().restore_before(&mut d, &victims, attack_start);
        assert_eq!(report.pages_restored, 10);
        for lpa in 0..10u64 {
            assert_eq!(d.read_page(lpa).unwrap(), page(lpa as u8));
        }
    }

    #[test]
    fn restore_after_trim_attack() {
        let clock = SimClock::new();
        let mut d = device(clock.clone());
        for lpa in 0..10u64 {
            d.write_page(lpa, page(7)).unwrap();
        }
        clock.advance(1_000);
        let attack_start = clock.now_ns();
        for lpa in 0..10u64 {
            d.trim_page(lpa).unwrap();
        }
        let victims: Vec<u64> = (0..10).collect();
        let report = RecoveryEngine::new().restore_before(&mut d, &victims, attack_start);
        assert_eq!(report.pages_restored, 10);
        assert_eq!(d.read_page(3).unwrap(), page(7));
    }

    #[test]
    fn unrecoverable_counted_for_never_written_pages() {
        let clock = SimClock::new();
        let mut d = device(clock);
        let report = RecoveryEngine::new().restore_newest(&mut d, &[99]);
        assert_eq!(report.pages_unrecoverable, 1);
        assert_eq!(report.pages_restored, 0);
        assert_eq!(report.recovery_rate(), 0.0);
    }

    #[test]
    fn empty_victim_list_is_perfect() {
        let clock = SimClock::new();
        let mut d = device(clock);
        let report = RecoveryEngine::new().restore_newest(&mut d, &[]);
        assert_eq!(report.recovery_rate(), 1.0);
    }

    #[test]
    fn recovery_is_itself_logged() {
        let clock = SimClock::new();
        let mut d = device(clock.clone());
        d.write_page(0, page(1)).unwrap();
        clock.advance(1_000);
        let attack_start = clock.now_ns();
        d.write_page(0, page(2)).unwrap();
        let before = d.chain_len();
        let _ = RecoveryEngine::new().restore_before(&mut d, &[0], attack_start);
        assert!(d.chain_len() > before, "restore writes are chained too");
    }
}
