//! The device's view of the remote side of the codesign.

use crate::logrec::SegmentEnvelope;
use rssd_crypto::Digest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Remote-side failures as seen by the offload engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteError {
    /// The remote refused the segment: its chain head does not extend the
    /// last stored head (an attacker replaying or dropping segments).
    ChainDiscontinuity {
        /// Head the server expected the envelope to extend.
        expected: Digest,
        /// Head the envelope claimed to extend.
        got: Digest,
    },
    /// No stored segment with that sequence number.
    NoSuchSegment(u64),
    /// The remote is unreachable; the device must keep data pinned locally
    /// (the conservative fallback).
    Unreachable,
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::ChainDiscontinuity { .. } => {
                write!(f, "segment does not extend the stored evidence chain")
            }
            RemoteError::NoSuchSegment(seq) => write!(f, "no stored segment {seq}"),
            RemoteError::Unreachable => write!(f, "remote target unreachable"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// Acknowledgement of a durably stored segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreAck {
    /// The acknowledged segment.
    pub segment_seq: u64,
    /// Simulated time the segment was durable remotely.
    pub durable_at_ns: u64,
}

/// The remote log store the device offloads to. [`LoopbackTarget`] provides
/// an in-process implementation for tests;
/// [`WireRemote`](crate::wire::WireRemote) carries every segment over the
/// simulated NVMe-oE fabric to whatever target it wraps (including the real
/// log server in `rssd-remote`).
pub trait RemoteTarget {
    /// Durably stores an envelope after verifying chain continuity.
    ///
    /// # Errors
    ///
    /// [`RemoteError::ChainDiscontinuity`] if the envelope does not extend
    /// the stored chain; [`RemoteError::Unreachable`] on (simulated) network
    /// failure.
    fn store_segment(
        &mut self,
        envelope: SegmentEnvelope,
        now_ns: u64,
    ) -> Result<StoreAck, RemoteError>;

    /// Fetches a stored envelope for recovery/analysis.
    ///
    /// # Errors
    ///
    /// [`RemoteError::NoSuchSegment`] when absent.
    fn fetch_segment(&mut self, segment_seq: u64) -> Result<SegmentEnvelope, RemoteError>;

    /// Sequence numbers currently stored, in order.
    fn stored_segments(&self) -> Vec<u64>;

    /// Installs a trace sink on whatever transport sits under this target.
    /// The default is a no-op: in-process targets have no wire to observe.
    /// [`WireRemote`](crate::wire::WireRemote) forwards the sink to its
    /// fabric so link losses and retransmissions become trace instants.
    fn set_trace_sink(&mut self, _sink: rssd_obs::SinkHandle) {}
}

/// In-process remote target with perfect availability and zero latency.
/// Verifies chain continuity exactly like the real server.
#[derive(Clone, Debug, Default)]
pub struct LoopbackTarget {
    segments: BTreeMap<u64, SegmentEnvelope>,
    last_head: Option<Digest>,
    reachable: bool,
}

impl LoopbackTarget {
    /// Creates an empty, reachable target.
    pub fn new() -> Self {
        LoopbackTarget {
            segments: BTreeMap::new(),
            last_head: None,
            reachable: true,
        }
    }

    /// Simulates a network partition (offload attempts fail until restored).
    pub fn set_reachable(&mut self, reachable: bool) {
        self.reachable = reachable;
    }

    /// Total sealed bytes stored.
    pub fn stored_bytes(&self) -> u64 {
        self.segments
            .values()
            .map(|e| e.sealed_payload().len() as u64)
            .sum()
    }
}

impl RemoteTarget for LoopbackTarget {
    fn store_segment(
        &mut self,
        envelope: SegmentEnvelope,
        now_ns: u64,
    ) -> Result<StoreAck, RemoteError> {
        if !self.reachable {
            return Err(RemoteError::Unreachable);
        }
        if let Some(expected) = self.last_head {
            if envelope.prev_chain_head() != expected {
                return Err(RemoteError::ChainDiscontinuity {
                    expected,
                    got: envelope.prev_chain_head(),
                });
            }
        }
        self.last_head = Some(envelope.chain_head());
        let ack = StoreAck {
            segment_seq: envelope.segment_seq(),
            durable_at_ns: now_ns,
        };
        self.segments.insert(envelope.segment_seq(), envelope);
        Ok(ack)
    }

    fn fetch_segment(&mut self, segment_seq: u64) -> Result<SegmentEnvelope, RemoteError> {
        self.segments
            .get(&segment_seq)
            .cloned()
            .ok_or(RemoteError::NoSuchSegment(segment_seq))
    }

    fn stored_segments(&self) -> Vec<u64> {
        self.segments.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(seq: u64, prev: Digest, head: Digest) -> SegmentEnvelope {
        SegmentEnvelope::new(1, seq, prev, head, 0, &[seq as u8; 8])
    }

    fn digest(b: u8) -> Digest {
        Digest::from_bytes([b; 32])
    }

    #[test]
    fn stores_and_fetches() {
        let mut t = LoopbackTarget::new();
        t.store_segment(envelope(0, Digest::ZERO, digest(1)), 100)
            .unwrap();
        let fetched = t.fetch_segment(0).unwrap();
        assert_eq!(fetched.segment_seq(), 0);
        assert_eq!(t.stored_segments(), vec![0]);
        assert_eq!(t.stored_bytes(), 8);
    }

    #[test]
    fn enforces_chain_continuity() {
        let mut t = LoopbackTarget::new();
        t.store_segment(envelope(0, Digest::ZERO, digest(1)), 0)
            .unwrap();
        // Extending from the stored head works.
        t.store_segment(envelope(1, digest(1), digest(2)), 0)
            .unwrap();
        // A forged/rewound head is rejected.
        let err = t
            .store_segment(envelope(2, digest(9), digest(3)), 0)
            .unwrap_err();
        assert!(matches!(err, RemoteError::ChainDiscontinuity { .. }));
    }

    #[test]
    fn missing_segment_errors() {
        let mut t = LoopbackTarget::new();
        assert_eq!(t.fetch_segment(4), Err(RemoteError::NoSuchSegment(4)));
    }

    #[test]
    fn partition_is_simulated() {
        let mut t = LoopbackTarget::new();
        t.set_reachable(false);
        assert_eq!(
            t.store_segment(envelope(0, Digest::ZERO, digest(1)), 0),
            Err(RemoteError::Unreachable)
        );
        t.set_reachable(true);
        t.store_segment(envelope(0, Digest::ZERO, digest(1)), 0)
            .unwrap();
    }
}
