//! Stripe address translation.
//!
//! The array exports one flat logical page space and spreads it across its
//! members in round-robin stripes of `stripe_pages` consecutive pages:
//! stripe *s* lives on shard `s % shard_count` at local stripe
//! `s / shard_count`. The translation is a bijection between array LPAs and
//! `(shard, local LPA)` pairs — property-tested in `tests/stripe_props.rs` —
//! so no two array pages alias one device page and no device page is
//! unreachable.

/// Striping geometry: how the array's logical page space maps onto its
/// member devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeLayout {
    shard_count: usize,
    stripe_pages: u64,
    /// Logical pages used per shard (a whole number of stripes).
    shard_pages: u64,
}

impl StripeLayout {
    /// Builds a layout over `shard_count` members, striping `stripe_pages`
    /// consecutive pages at a time, with `shard_pages` usable pages per
    /// member.
    ///
    /// # Panics
    ///
    /// Panics when any parameter is zero or `shard_pages` is not a whole
    /// number of stripes (partial trailing stripes would break the
    /// bijection).
    pub fn new(shard_count: usize, stripe_pages: u64, shard_pages: u64) -> Self {
        assert!(shard_count > 0, "array needs at least one shard");
        assert!(stripe_pages > 0, "stripe size must be at least one page");
        assert!(shard_pages > 0, "shards must export at least one page");
        assert!(
            shard_pages % stripe_pages == 0,
            "shard_pages ({shard_pages}) must be a whole number of stripes \
             (stripe_pages {stripe_pages})"
        );
        StripeLayout {
            shard_count,
            stripe_pages,
            shard_pages,
        }
    }

    /// Number of member devices.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Consecutive pages per stripe.
    pub fn stripe_pages(&self) -> u64 {
        self.stripe_pages
    }

    /// Usable logical pages per member.
    pub fn shard_pages(&self) -> u64 {
        self.shard_pages
    }

    /// Logical pages the array exports.
    pub fn logical_pages(&self) -> u64 {
        self.shard_pages * self.shard_count as u64
    }

    /// Translates an array LPA to its `(shard, local LPA)` home.
    ///
    /// # Panics
    ///
    /// Panics when `lpa` is beyond [`logical_pages`](Self::logical_pages)
    /// (the array checks ranges before translating).
    pub fn locate(&self, lpa: u64) -> (usize, u64) {
        assert!(lpa < self.logical_pages(), "lpa {lpa} beyond array");
        let stripe = lpa / self.stripe_pages;
        let offset = lpa % self.stripe_pages;
        let shard = (stripe % self.shard_count as u64) as usize;
        let local = (stripe / self.shard_count as u64) * self.stripe_pages + offset;
        (shard, local)
    }

    /// Inverse of [`locate`](Self::locate): the array LPA of a member page.
    ///
    /// # Panics
    ///
    /// Panics when `shard` or `local` is out of range.
    pub fn array_lpa(&self, shard: usize, local: u64) -> u64 {
        assert!(shard < self.shard_count, "shard {shard} beyond array");
        assert!(local < self.shard_pages, "local lpa {local} beyond shard");
        let local_stripe = local / self.stripe_pages;
        let offset = local % self.stripe_pages;
        let stripe = local_stripe * self.shard_count as u64 + shard as u64;
        stripe * self.stripe_pages + offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_across_shards() {
        let l = StripeLayout::new(3, 2, 4);
        // Stripes of 2 pages rotate over shards 0,1,2.
        assert_eq!(l.locate(0), (0, 0));
        assert_eq!(l.locate(1), (0, 1));
        assert_eq!(l.locate(2), (1, 0));
        assert_eq!(l.locate(3), (1, 1));
        assert_eq!(l.locate(4), (2, 0));
        assert_eq!(l.locate(5), (2, 1));
        // Second rotation lands on each shard's second stripe.
        assert_eq!(l.locate(6), (0, 2));
        assert_eq!(l.locate(11), (2, 3));
        assert_eq!(l.logical_pages(), 12);
    }

    #[test]
    fn locate_and_array_lpa_invert() {
        let l = StripeLayout::new(4, 8, 64);
        for lpa in 0..l.logical_pages() {
            let (shard, local) = l.locate(lpa);
            assert_eq!(l.array_lpa(shard, local), lpa);
        }
    }

    #[test]
    fn single_shard_is_identity() {
        let l = StripeLayout::new(1, 16, 64);
        for lpa in 0..64 {
            assert_eq!(l.locate(lpa), (0, lpa));
        }
    }

    #[test]
    #[should_panic(expected = "whole number of stripes")]
    fn partial_trailing_stripe_rejected() {
        let _ = StripeLayout::new(2, 8, 12);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = StripeLayout::new(0, 8, 8);
    }
}
