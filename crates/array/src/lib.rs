//! **rssd-array** — a striped multi-device RSSD array with fleet-wide
//! detection and remote-assisted rebuild.
//!
//! The paper's RSSD is one device; its codesign (local flash plus a
//! hardware-isolated remote retention store per device) is exactly what a
//! fleet needs. This crate adds the scale axis:
//!
//! * [`StripeLayout`] — bijective translation between the array's flat
//!   logical page space and `(shard, local LPA)` homes.
//! * [`RssdArray`] — implements [`BlockDevice`](rssd_ssd::BlockDevice), so
//!   it drops behind the existing `NvmeController`, replay harnesses and
//!   attack actors unchanged; `submit_batch` splits each batch per shard
//!   and dispatches natively so member-level amortizations (RSSD's
//!   coalesced offload flushes) survive striping. Members run on their own
//!   clocks, modeled as parallel: a batch costs its slowest shard, not the
//!   sum.
//! * [`ArrayDetector`] — per-shard detection for attribution plus a merged
//!   fleet-wide stream for the binding verdict: a campaign spread thin
//!   enough to look benign on every shard still trips the aggregate.
//! * **Remote-assisted rebuild** — [`RssdArray::fail_shard`] models losing
//!   a member's entire local half; the surviving remote evidence chain is
//!   harvested ([`rssd_core::RebuildImage`]) and serves degraded reads
//!   while [`RssdArray::rebuild_step`] incrementally restores a
//!   replacement, optionally to a pre-attack point in time. The paper's
//!   post-attack recovery becomes fleet-level fault tolerance.
//!
//! # Examples
//!
//! ```
//! use rssd_array::RssdArray;
//! use rssd_core::{LoopbackTarget, RssdConfig, RssdDevice};
//! use rssd_flash::{FlashGeometry, NandTiming, SimClock};
//! use rssd_ssd::BlockDevice;
//!
//! let shards: Vec<_> = (0..3)
//!     .map(|i| {
//!         RssdDevice::new(
//!             FlashGeometry::small_test(),
//!             NandTiming::instant(),
//!             SimClock::new(), // each member owns its clock
//!             RssdConfig { device_id: i, ..RssdConfig::default() },
//!             LoopbackTarget::new(),
//!         )
//!     })
//!     .collect();
//! let mut array = RssdArray::new(shards, 4, SimClock::new());
//! array.write_page(7, vec![1; array.page_size()])?;
//! array.write_page(7, vec![2; array.page_size()])?; // "ransomware" overwrites
//! assert_eq!(array.recover_page(7).unwrap(), vec![1; array.page_size()]);
//! # Ok::<(), rssd_ssd::DeviceError>(())
//! ```

pub mod array;
pub mod detector;
pub mod layout;

pub use array::{ArrayError, RebuildProgress, RssdArray, ShardStatus};
pub use detector::{ArrayDetector, FleetReport};
pub use layout::StripeLayout;
