//! Fleet-wide detection over a striped array.
//!
//! Striping gives an attacker a new evasion: a campaign spread evenly
//! across N shards shows each per-shard detector only 1/N of the signal —
//! below the noise floors every detector needs to avoid false positives on
//! benign traffic (the entropy window's minimum sample count, the timing
//! profiler's minimum distinct-page floor). [`ArrayDetector`] closes the
//! gap by running the same [`Ensemble`] twice: once per shard (for
//! attribution — *which member* is being hit) and once over the merged
//! fleet-wide observation stream, where the campaign's full volume is
//! visible. The fleet verdict is the binding one: a campaign that looks
//! benign on every shard must still trip the aggregate.

use rssd_detect::{merge_time_ordered, Ensemble, Verdict, WriteObservation};

/// Per-shard plus fleet-level detection state.
#[derive(Debug)]
pub struct ArrayDetector {
    fleet: Ensemble,
    per_shard: Vec<Ensemble>,
}

/// Snapshot of every verdict the detector holds.
#[derive(Clone, Debug)]
#[must_use]
pub struct FleetReport {
    /// Verdict over the merged fleet-wide stream — the binding one.
    pub fleet_verdict: Verdict,
    /// Combined fleet score in `[0, 1]`.
    pub fleet_score: f64,
    /// Per-shard `(verdict, score)`, indexed by shard.
    pub shard_verdicts: Vec<(Verdict, f64)>,
    /// Observations consumed fleet-wide.
    pub observations: u64,
}

impl FleetReport {
    /// Shards whose own detector already reached `Ransomware` — the
    /// attribution list for an operator.
    pub fn implicated_shards(&self) -> Vec<usize> {
        self.shard_verdicts
            .iter()
            .enumerate()
            .filter(|(_, (v, _))| *v == Verdict::Ransomware)
            .map(|(i, _)| i)
            .collect()
    }
}

impl ArrayDetector {
    /// Builds a detector for `shard_count` members.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count.
    pub fn new(shard_count: usize) -> Self {
        assert!(shard_count > 0, "array needs at least one shard");
        ArrayDetector {
            fleet: Ensemble::new(),
            per_shard: (0..shard_count).map(|_| Ensemble::new()).collect(),
        }
    }

    /// Number of members tracked.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// Feeds one observation attributed to `shard`. Callers observing live
    /// traffic call this in global time order (the order the array executes
    /// commands), which keeps the fleet ensemble's windows honest.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn observe(&mut self, shard: usize, obs: &WriteObservation) {
        self.per_shard[shard].observe(obs);
        self.fleet.observe(obs);
    }

    /// Offline path: merges complete per-shard observation streams (e.g.
    /// reconstructed from each member's evidence chain) into global time
    /// order and feeds both levels.
    ///
    /// # Panics
    ///
    /// Panics when the stream count differs from the shard count.
    pub fn observe_streams(&mut self, streams: &[Vec<WriteObservation>]) {
        assert_eq!(
            streams.len(),
            self.per_shard.len(),
            "one stream per shard required"
        );
        for (shard, stream) in streams.iter().enumerate() {
            self.per_shard[shard].observe_all(stream);
        }
        for obs in merge_time_ordered(streams) {
            self.fleet.observe(&obs);
        }
    }

    /// Verdict over the merged fleet-wide stream.
    pub fn fleet_verdict(&self) -> Verdict {
        self.fleet.verdict()
    }

    /// Combined fleet score.
    pub fn fleet_score(&self) -> f64 {
        self.fleet.score()
    }

    /// Verdict of one member's own detector.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn shard_verdict(&self, shard: usize) -> Verdict {
        self.per_shard[shard].verdict()
    }

    /// Full snapshot for reporting.
    pub fn report(&self) -> FleetReport {
        FleetReport {
            fleet_verdict: self.fleet.verdict(),
            fleet_score: self.fleet.score(),
            shard_verdicts: self
                .per_shard
                .iter()
                .map(|e| (e.verdict(), e.score()))
                .collect(),
            observations: self.fleet.observations(),
        }
    }

    /// Resets both levels.
    pub fn reset(&mut self) {
        self.fleet.reset();
        for e in &mut self.per_shard {
            e.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A striped campaign: round-robin one encrypting overwrite per shard,
    /// interleaved with benign traffic, thin enough that no single shard's
    /// detector crosses its noise floors.
    fn striped_campaign(detector: &mut ArrayDetector, shards: usize, per_shard: usize) {
        let mut t = 0u64;
        for round in 0..per_shard {
            for shard in 0..shards {
                let lpa = (round * shards + shard) as u64;
                // The attacker's one encrypting overwrite on this shard...
                detector.observe(shard, &WriteObservation::overwrite(t, lpa, 7.9, false));
                t += 1_000;
                // ...hidden in ordinary traffic (fresh writes don't count
                // toward the entropy window, keeping per-shard samples low).
                for k in 0..6u64 {
                    detector.observe(
                        shard,
                        &WriteObservation::fresh_write(t, 1_000_000 + lpa * 8 + k, 4.0),
                    );
                    t += 1_000;
                }
            }
        }
    }

    #[test]
    fn per_shard_benign_campaign_trips_the_fleet() {
        let shards = 4;
        let mut d = ArrayDetector::new(shards);
        // 20 encrypted overwrites per shard: under the entropy window's
        // 32-sample floor and the timing profiler's 64-page floor per
        // shard, but 80 fleet-wide — over both.
        striped_campaign(&mut d, shards, 20);
        for shard in 0..shards {
            assert_eq!(
                d.shard_verdict(shard),
                Verdict::Benign,
                "shard {shard} must stay under its noise floors"
            );
        }
        assert_eq!(
            d.fleet_verdict(),
            Verdict::Ransomware,
            "fleet score {}",
            d.fleet_score()
        );
        let report = d.report();
        assert_eq!(report.fleet_verdict, Verdict::Ransomware);
        assert!(report.implicated_shards().is_empty());
        assert_eq!(report.observations, (20 * shards * 7) as u64);
    }

    #[test]
    fn concentrated_attack_is_attributed_to_its_shard() {
        let mut d = ArrayDetector::new(3);
        for i in 0..200u64 {
            d.observe(1, &WriteObservation::overwrite(i * 1_000, i, 7.9, true));
        }
        assert_eq!(d.shard_verdict(1), Verdict::Ransomware);
        assert_eq!(d.shard_verdict(0), Verdict::Benign);
        assert_eq!(d.fleet_verdict(), Verdict::Ransomware);
        assert_eq!(d.report().implicated_shards(), vec![1]);
    }

    #[test]
    fn observe_streams_matches_streaming_observation() {
        let shards = 4;
        let mut streamed = ArrayDetector::new(shards);
        striped_campaign(&mut streamed, shards, 20);

        // Rebuild the same campaign as per-shard streams.
        let mut streams: Vec<Vec<WriteObservation>> = vec![Vec::new(); shards];
        let mut t = 0u64;
        for round in 0..20usize {
            for (shard, stream) in streams.iter_mut().enumerate() {
                let lpa = (round * shards + shard) as u64;
                stream.push(WriteObservation::overwrite(t, lpa, 7.9, false));
                t += 1_000;
                for k in 0..6u64 {
                    stream.push(WriteObservation::fresh_write(
                        t,
                        1_000_000 + lpa * 8 + k,
                        4.0,
                    ));
                    t += 1_000;
                }
            }
        }
        let mut offline = ArrayDetector::new(shards);
        offline.observe_streams(&streams);
        assert_eq!(offline.fleet_verdict(), streamed.fleet_verdict());
        assert!((offline.fleet_score() - streamed.fleet_score()).abs() < 1e-12);
        for shard in 0..shards {
            assert_eq!(offline.shard_verdict(shard), streamed.shard_verdict(shard));
        }
    }

    #[test]
    fn benign_fleet_stays_benign_and_reset_clears() {
        let mut d = ArrayDetector::new(2);
        for i in 0..2_000u64 {
            d.observe(
                (i % 2) as usize,
                &WriteObservation::fresh_write(i * 1_000, i, 4.0),
            );
        }
        assert_eq!(d.fleet_verdict(), Verdict::Benign);
        d.reset();
        assert_eq!(d.report().observations, 0);
    }
}
