//! The striped array device.
//!
//! [`RssdArray`] stripes one flat logical page space across N member
//! devices ([`StripeLayout`]) and implements [`BlockDevice`] itself, so it
//! drops behind the existing `NvmeController` — and every replay harness,
//! attack actor and example — unchanged. [`submit_batch`](BlockDevice::submit_batch)
//! is overridden to
//! split each arbitration batch per shard and dispatch the sub-batches
//! through the members' own `submit_batch`, so per-shard background work
//! (RSSD's coalesced offload flushes) still amortizes across the batch.
//!
//! # Time model
//!
//! Real array members execute in parallel. To model that on one logical
//! timeline, every member must own its **own** [`SimClock`]: before a
//! dispatch the array fast-forwards each participating member to the array
//! clock, lets the sub-batches execute (each member's clock advances
//! independently), then advances the array clock to the *maximum* member
//! time — the batch takes as long as its slowest shard, not the sum.
//! Members sharing one clock still compute correctly but serialize, hiding
//! the scaling the array exists to provide (see the `array_scaling` bench).
//!
//! # Failure and rebuild
//!
//! For arrays of RSSD members, [`fail_shard`](RssdArray::fail_shard) models
//! the total loss of one member's local half (controller, NAND, pending
//! log). The member's hardware-isolated remote retention store survives;
//! the array harvests it into a chain-verified
//! [`RebuildImage`] and then:
//!
//! * serves **degraded reads** of the failed shard from the image — the
//!   newest retained version of each page (zeroes where nothing is
//!   retained). For a page the attack destroyed once that is its
//!   pre-attack content; a page hit *again* after the encrypting write
//!   serves the attacker's ciphertext, so point-in-time access goes
//!   through [`recover_before`](RssdArray::recover_before) —
//! * refuses writes and trims with [`DeviceError::ShardFailed`] until the
//!   shard is back, and
//! * [`begin_rebuild`](RssdArray::begin_rebuild) /
//!   [`rebuild_step`](RssdArray::rebuild_step) incrementally restore a
//!   replacement member from the image — optionally to a pre-attack
//!   point in time — bringing pages online in ascending order so the host
//!   regains write access region by region while reads of the uncopied
//!   tail keep coming from the remote image.

use crate::layout::StripeLayout;
use rssd_core::{
    CrashRecovery, CrashReport, HarvestReport, OffloadStats, RebuildImage, RemoteTarget, RssdDevice,
};
use rssd_flash::{NandStats, SimClock};
use rssd_ftl::FtlStats;
use rssd_ssd::{BlockDevice, CommandOutcome, CommandResult, DeviceError, IoCommand, LatencyStats};

/// Typed failures of the array lifecycle operations. Every condition the
/// fault injector can provoke — a second shard dying mid-rebuild, a
/// replacement refusing a restore write, a tampered salvage — surfaces as a
/// variant instead of a panic or an opaque string.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ArrayError {
    /// Shard index beyond the member count.
    NoSuchShard {
        /// The offending index.
        shard: usize,
        /// Members in the array.
        shards: usize,
    },
    /// The operation needs a live shard (e.g. failing it).
    ShardNotLive {
        /// The shard in question.
        shard: usize,
    },
    /// The operation needs a degraded shard (e.g. starting a rebuild).
    ShardNotDegraded {
        /// The shard in question.
        shard: usize,
    },
    /// The operation needs a rebuilding shard (e.g. stepping a rebuild).
    ShardNotRebuilding {
        /// The shard in question.
        shard: usize,
    },
    /// The failed member's surviving evidence chain did not verify; the
    /// shard went degraded over an *empty* image (a tampered store must not
    /// launder data into recovery).
    SalvageFailed {
        /// The shard whose salvage failed.
        shard: usize,
        /// First verification failure.
        detail: String,
    },
    /// The replacement device does not match the array geometry.
    ReplacementMismatch {
        /// What differs.
        detail: String,
    },
    /// The replacement refused a restore write mid-rebuild (e.g. its own
    /// remote is unreachable and it stalled). The shard stays `Rebuilding`
    /// at its current progress; the step can be retried once the cause
    /// clears, or the shard failed again.
    RestoreWriteFailed {
        /// The rebuilding shard.
        shard: usize,
        /// Member-local page whose restore failed.
        local_lpa: u64,
        /// The device error the replacement returned.
        error: DeviceError,
    },
    /// A member failed post-crash recovery (unreachable or tampered remote).
    MemberRecoveryFailed {
        /// The crashed member.
        shard: usize,
        /// The member's recovery error.
        detail: String,
    },
}

impl std::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayError::NoSuchShard { shard, shards } => {
                write!(f, "no shard {shard} (array has {shards} members)")
            }
            ArrayError::ShardNotLive { shard } => write!(f, "shard {shard} is not live"),
            ArrayError::ShardNotDegraded { shard } => {
                write!(f, "shard {shard} is not degraded")
            }
            ArrayError::ShardNotRebuilding { shard } => {
                write!(f, "shard {shard} is not rebuilding")
            }
            ArrayError::SalvageFailed { shard, detail } => {
                write!(f, "salvage of shard {shard} failed verification: {detail}")
            }
            ArrayError::ReplacementMismatch { detail } => {
                write!(f, "replacement does not fit the array: {detail}")
            }
            ArrayError::RestoreWriteFailed {
                shard,
                local_lpa,
                error,
            } => write!(
                f,
                "shard {shard} rebuild: replacement refused restore write of \
                 local page {local_lpa}: {error}"
            ),
            ArrayError::MemberRecoveryFailed { shard, detail } => {
                write!(f, "shard {shard} failed post-crash recovery: {detail}")
            }
        }
    }
}

impl std::error::Error for ArrayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArrayError::RestoreWriteFailed { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// The surviving half of a failed member: the chain-verified image of its
/// remote retention store.
#[derive(Debug)]
struct SalvagedShard {
    image: RebuildImage,
}

impl SalvagedShard {
    /// Degraded read: the newest retained version, zeroes where the remote
    /// retains nothing (matching unmapped-read semantics).
    ///
    /// "Newest retained" equals the pre-attack content only for pages the
    /// attack destroyed exactly once; a page overwritten or trimmed *again*
    /// after the encrypting write has the attacker's ciphertext as its
    /// newest retained version. Point-in-time service of such pages goes
    /// through [`RssdArray::recover_before`] (and rebuilds pass a cut-off
    /// for the same reason).
    fn read(&self, local: u64, page_size: usize) -> Vec<u8> {
        self.image
            .newest(local)
            .map(<[u8]>::to_vec)
            .unwrap_or_else(|| vec![0u8; page_size])
    }
}

/// One member's lifecycle state.
#[derive(Debug)]
enum ShardState<D> {
    /// Healthy: all I/O goes to the device.
    Live(D),
    /// Local half lost; reads served from the salvaged remote image.
    Degraded(SalvagedShard),
    /// A replacement device is being restored from the salvage. Local LPAs
    /// below `copied` are online (reads and writes hit `device`); the rest
    /// still read from the salvage and refuse writes.
    Rebuilding {
        device: D,
        salvage: SalvagedShard,
        copied: u64,
        restored: u64,
        restore_before_ns: Option<u64>,
    },
}

/// Externally visible member state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStatus {
    /// Healthy.
    Live,
    /// Failed; serving degraded reads from the remote image.
    Degraded,
    /// Replacement being restored; `copied` of `total` local pages online.
    Rebuilding {
        /// Local pages brought online so far.
        copied: u64,
        /// Local pages per shard.
        total: u64,
    },
}

/// Progress of an incremental rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct RebuildProgress {
    /// Local pages brought online so far (cumulative).
    pub copied_pages: u64,
    /// Local pages per shard.
    pub total_pages: u64,
    /// Pages whose salvaged content was written into the replacement
    /// (cumulative; pages the remote retained nothing for come online
    /// empty).
    pub restored_pages: u64,
    /// `true` once the shard is live again.
    pub done: bool,
}

/// A striped array of block devices behind the single-device interface.
#[derive(Debug)]
pub struct RssdArray<D: BlockDevice> {
    shards: Vec<ShardState<D>>,
    layout: StripeLayout,
    clock: SimClock,
    page_size: usize,
    model_name: String,
}

impl<D: BlockDevice> RssdArray<D> {
    /// Assembles an array striping `stripe_pages` consecutive pages at a
    /// time across `shards`, on the array-level `clock`.
    ///
    /// Every member must export the same page size. The per-shard usable
    /// space is the smallest member's logical page count rounded down to a
    /// whole number of stripes. For the parallel time model each member
    /// should own its own [`SimClock`] (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics on an empty shard list, mismatched page sizes, a zero stripe
    /// size, or members too small to hold one stripe.
    pub fn new(shards: Vec<D>, stripe_pages: u64, clock: SimClock) -> Self {
        assert!(!shards.is_empty(), "array needs at least one shard");
        let page_size = shards[0].page_size();
        let mut min_pages = u64::MAX;
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(
                shard.page_size(),
                page_size,
                "shard {i} page size differs from shard 0"
            );
            min_pages = min_pages.min(shard.logical_pages());
            // The array timeline starts no earlier than any member's.
            clock.advance_to(shard.clock().now_ns());
        }
        let shard_pages = (min_pages / stripe_pages.max(1)) * stripe_pages.max(1);
        assert!(
            shard_pages > 0,
            "members too small: {min_pages} pages per shard cannot hold a \
             {stripe_pages}-page stripe"
        );
        let layout = StripeLayout::new(shards.len(), stripe_pages, shard_pages);
        let model_name = format!("RssdArray[{}x{}]", shards.len(), shards[0].model_name());
        RssdArray {
            shards: shards.into_iter().map(ShardState::Live).collect(),
            layout,
            clock,
            page_size,
            model_name,
        }
    }

    /// The stripe address translation in force.
    pub fn layout(&self) -> &StripeLayout {
        &self.layout
    }

    /// Number of members.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lifecycle state of member `shard`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn shard_status(&self, shard: usize) -> ShardStatus {
        match &self.shards[shard] {
            ShardState::Live(_) => ShardStatus::Live,
            ShardState::Degraded(_) => ShardStatus::Degraded,
            ShardState::Rebuilding { copied, .. } => ShardStatus::Rebuilding {
                copied: *copied,
                total: self.layout.shard_pages(),
            },
        }
    }

    /// `true` when every member is live.
    pub fn is_fully_live(&self) -> bool {
        self.shards.iter().all(|s| matches!(s, ShardState::Live(_)))
    }

    /// Shared access to a live member (the operator's console; `None` while
    /// the member is failed or rebuilding).
    pub fn shard(&self, shard: usize) -> Option<&D> {
        match &self.shards[shard] {
            ShardState::Live(d) => Some(d),
            _ => None,
        }
    }

    /// Mutable access to a live member (fault injection, per-shard stats).
    pub fn shard_mut(&mut self, shard: usize) -> Option<&mut D> {
        match &mut self.shards[shard] {
            ShardState::Live(d) => Some(d),
            _ => None,
        }
    }

    fn check_range(&self, lpa: u64) -> Result<(), DeviceError> {
        if lpa >= self.layout.logical_pages() {
            return Err(DeviceError::OutOfRange {
                lpa,
                logical_pages: self.layout.logical_pages(),
            });
        }
        Ok(())
    }

    /// Executes already-translated commands on one member, fast-forwarding
    /// it to `start_ns` first. Returns per-command `(result,
    /// completion_time)` pairs — member completion times are on the shared
    /// timeline because the member was fast-forwarded — and the member's
    /// end time (`start_ns` for salvage-served commands, which model a
    /// remote round trip outside the flash timeline).
    fn execute_local(
        state: &mut ShardState<D>,
        shard: usize,
        commands: Vec<IoCommand>,
        page_size: usize,
        start_ns: u64,
    ) -> (Vec<(CommandResult, u64)>, u64) {
        match state {
            ShardState::Live(device) => {
                device.clock().advance_to(start_ns);
                let results = device.submit_batch_timed(commands);
                let end = device.clock().now_ns();
                (results, end)
            }
            ShardState::Degraded(salvage) => {
                let results = commands
                    .into_iter()
                    .map(|command| {
                        let result = match command {
                            IoCommand::Read { lpa } => {
                                Ok(CommandOutcome::Read(salvage.read(lpa, page_size)))
                            }
                            IoCommand::Flush => Ok(CommandOutcome::Flushed),
                            IoCommand::Write { .. } | IoCommand::Trim { .. } => {
                                Err(DeviceError::ShardFailed { shard })
                            }
                        };
                        (result, start_ns)
                    })
                    .collect();
                (results, start_ns)
            }
            ShardState::Rebuilding {
                device,
                salvage,
                copied,
                ..
            } => {
                device.clock().advance_to(start_ns);
                // Online-region commands (and Flush barriers) keep their
                // relative order in one native device batch, preserving the
                // member's batch amortization through the rebuild window.
                // Offline commands are answered from the salvage image,
                // which is immutable and disjoint from the online region
                // (writes beyond `copied` are refused), so extracting them
                // does not reorder anything observable.
                let mut results: Vec<Option<(CommandResult, u64)>> =
                    Vec::with_capacity(commands.len());
                let mut online_slots = Vec::new();
                let mut online_commands = Vec::new();
                for (slot, command) in commands.into_iter().enumerate() {
                    let online = match command.lpa() {
                        Some(local) => local < *copied,
                        None => true, // Flush is the device's barrier
                    };
                    if online {
                        results.push(None);
                        online_slots.push(slot);
                        online_commands.push(command);
                    } else {
                        let result = match command {
                            IoCommand::Read { lpa } => {
                                Ok(CommandOutcome::Read(salvage.read(lpa, page_size)))
                            }
                            _ => Err(DeviceError::ShardFailed { shard }),
                        };
                        results.push(Some((result, start_ns)));
                    }
                }
                if !online_commands.is_empty() {
                    let online_results = device.submit_batch_timed(online_commands);
                    debug_assert_eq!(online_results.len(), online_slots.len());
                    for (slot, result) in online_slots.into_iter().zip(online_results) {
                        results[slot] = Some(result);
                    }
                }
                let results = results
                    .into_iter()
                    .map(|r| r.expect("every slot filled"))
                    .collect();
                let end = device.clock().now_ns();
                (results, end)
            }
        }
    }

    /// Dispatches the per-shard buckets accumulated by `submit_batch_timed`
    /// "in parallel": every participating member starts at the same array
    /// time, per-command completion times are the members' own (so
    /// commands complete out of order across shards), and the array clock
    /// advances to the slowest member's end.
    fn dispatch(
        &mut self,
        pending: &mut [Vec<(usize, IoCommand)>],
        results: &mut [Option<(CommandResult, u64)>],
    ) {
        let start = self.clock.now_ns();
        let page_size = self.page_size;
        let mut end = start;
        for (shard, bucket) in pending.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let (slots, commands): (Vec<usize>, Vec<IoCommand>) =
                std::mem::take(bucket).into_iter().unzip();
            let (shard_results, shard_end) =
                Self::execute_local(&mut self.shards[shard], shard, commands, page_size, start);
            debug_assert_eq!(shard_results.len(), slots.len());
            for (slot, result) in slots.into_iter().zip(shard_results) {
                results[slot] = Some(result);
            }
            end = end.max(shard_end);
        }
        self.clock.advance_to(end);
    }

    /// Swaps `shard`'s state out for a transition, leaving an empty
    /// degraded placeholder behind; callers install the real successor
    /// state immediately.
    fn take_state(&mut self, shard: usize) -> ShardState<D> {
        std::mem::replace(
            &mut self.shards[shard],
            ShardState::Degraded(SalvagedShard {
                image: RebuildImage::empty(),
            }),
        )
    }

    /// Translates an array command to its member-local form.
    fn to_local(command: IoCommand, local: u64) -> IoCommand {
        match command {
            IoCommand::Read { .. } => IoCommand::Read { lpa: local },
            IoCommand::Write { data, .. } => IoCommand::Write { lpa: local, data },
            IoCommand::Trim { .. } => IoCommand::Trim { lpa: local },
            IoCommand::Flush => IoCommand::Flush,
        }
    }
}

impl<D: BlockDevice> BlockDevice for RssdArray<D> {
    fn model_name(&self) -> &str {
        &self.model_name
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn logical_pages(&self) -> u64 {
        self.layout.logical_pages()
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn write_page(&mut self, lpa: u64, data: Vec<u8>) -> Result<(), DeviceError> {
        self.check_range(lpa)?;
        let (shard, local) = self.layout.locate(lpa);
        let start = self.clock.now_ns();
        let (mut results, end) = Self::execute_local(
            &mut self.shards[shard],
            shard,
            vec![IoCommand::Write { lpa: local, data }],
            self.page_size,
            start,
        );
        self.clock.advance_to(end);
        let (result, _) = results.pop().expect("one command, one result");
        result.map(|_| ())
    }

    fn read_page(&mut self, lpa: u64) -> Result<Vec<u8>, DeviceError> {
        self.check_range(lpa)?;
        let (shard, local) = self.layout.locate(lpa);
        let start = self.clock.now_ns();
        let (mut results, end) = Self::execute_local(
            &mut self.shards[shard],
            shard,
            vec![IoCommand::Read { lpa: local }],
            self.page_size,
            start,
        );
        self.clock.advance_to(end);
        let (result, _) = results.pop().expect("one command, one result");
        match result? {
            CommandOutcome::Read(data) => Ok(data),
            other => unreachable!("read completed as {other:?}"),
        }
    }

    fn trim_page(&mut self, lpa: u64) -> Result<(), DeviceError> {
        self.check_range(lpa)?;
        let (shard, local) = self.layout.locate(lpa);
        let start = self.clock.now_ns();
        let (mut results, end) = Self::execute_local(
            &mut self.shards[shard],
            shard,
            vec![IoCommand::Trim { lpa: local }],
            self.page_size,
            start,
        );
        self.clock.advance_to(end);
        let (result, _) = results.pop().expect("one command, one result");
        result.map(|_| ())
    }

    fn flush(&mut self) -> Result<(), DeviceError> {
        // Barrier across every reachable member, in parallel time.
        let start = self.clock.now_ns();
        let mut end = start;
        let mut first_err = None;
        for state in &mut self.shards {
            match state {
                ShardState::Live(device) | ShardState::Rebuilding { device, .. } => {
                    device.clock().advance_to(start);
                    if let (Err(e), None) = (device.flush(), first_err.as_ref()) {
                        first_err = Some(e);
                    }
                    end = end.max(device.clock().now_ns());
                }
                // A failed member has nothing buffered to flush.
                ShardState::Degraded(_) => {}
            }
        }
        self.clock.advance_to(end);
        first_err.map_or(Ok(()), Err)
    }

    /// Splits the batch per shard (preserving per-shard command order) and
    /// dispatches the sub-batches through each member's native
    /// `submit_batch_timed`, so member-level pipelining and batching
    /// amortizations still apply; completion times are the members' own,
    /// so commands complete out of order across (and within) shards.
    /// `Flush` is a barrier: buckets accumulated so far are dispatched,
    /// then every member flushes, then splitting resumes.
    fn submit_batch_timed(&mut self, commands: Vec<IoCommand>) -> Vec<(CommandResult, u64)> {
        let total = commands.len();
        let mut results: Vec<Option<(CommandResult, u64)>> = (0..total).map(|_| None).collect();
        let mut pending: Vec<Vec<(usize, IoCommand)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (slot, command) in commands.into_iter().enumerate() {
            match command.lpa() {
                None => {
                    self.dispatch(&mut pending, &mut results);
                    let flushed = self.flush().map(|()| CommandOutcome::Flushed);
                    results[slot] = Some((flushed, self.clock.now_ns()));
                }
                Some(lpa) => {
                    if let Err(e) = self.check_range(lpa) {
                        results[slot] = Some((Err(e), self.clock.now_ns()));
                        continue;
                    }
                    let (shard, local) = self.layout.locate(lpa);
                    pending[shard].push((slot, Self::to_local(command, local)));
                }
            }
        }
        self.dispatch(&mut pending, &mut results);
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    fn recover_page(&mut self, lpa: u64) -> Option<Vec<u8>> {
        if lpa >= self.layout.logical_pages() {
            return None;
        }
        let (shard, local) = self.layout.locate(lpa);
        match &mut self.shards[shard] {
            ShardState::Live(device) => device.recover_page(local),
            ShardState::Degraded(salvage) => salvage.image.newest(local).map(<[u8]>::to_vec),
            ShardState::Rebuilding {
                device, salvage, ..
            } => device
                .recover_page(local)
                .or_else(|| salvage.image.newest(local).map(<[u8]>::to_vec)),
        }
    }
}

impl<R: RemoteTarget> RssdArray<RssdDevice<R>> {
    fn check_shard(&self, shard: usize) -> Result<(), ArrayError> {
        if shard >= self.shards.len() {
            return Err(ArrayError::NoSuchShard {
                shard,
                shards: self.shards.len(),
            });
        }
        Ok(())
    }

    /// Kills member `shard`: its local half (controller, NAND, pinned pages,
    /// pending log) is gone. The member's remote retention store is
    /// harvested into a chain-verified [`RebuildImage`] and the shard goes
    /// degraded — reads served from the image, writes refused.
    ///
    /// A *rebuilding* shard can fail again (the double-failure case the
    /// fault injector provokes): the replacement is lost and the shard
    /// falls back to degraded service over its original salvage image —
    /// progress is discarded, data is not.
    ///
    /// # Errors
    ///
    /// [`ArrayError::ShardNotLive`] when the shard is already degraded, or
    /// [`ArrayError::SalvageFailed`] when the surviving evidence chain fails
    /// verification (the shard still goes degraded, but over an empty
    /// image: a tampered store must not launder data into recovery).
    pub fn fail_shard(&mut self, shard: usize) -> Result<HarvestReport, ArrayError> {
        self.check_shard(shard)?;
        match self.shards[shard] {
            ShardState::Live(_) => {
                let ShardState::Live(device) = self.take_state(shard) else {
                    unreachable!("liveness checked above")
                };
                let keys = device.escrow_keys();
                let mut remote = device.into_remote();
                let image = RebuildImage::harvest(&keys, &mut remote)
                    .map_err(|detail| ArrayError::SalvageFailed { shard, detail })?;
                let report = image.report();
                self.shards[shard] = ShardState::Degraded(SalvagedShard { image });
                Ok(report)
            }
            ShardState::Rebuilding { .. } => {
                // Second failure mid-rebuild: the replacement dies too. The
                // original salvage image still covers everything the first
                // failure salvaged, so degraded reads keep flowing from it.
                let ShardState::Rebuilding { salvage, .. } = self.take_state(shard) else {
                    unreachable!("rebuilding state matched above")
                };
                let report = salvage.image.report();
                self.shards[shard] = ShardState::Degraded(salvage);
                Ok(report)
            }
            ShardState::Degraded(_) => Err(ArrayError::ShardNotLive { shard }),
        }
    }

    /// Simulated power loss of the whole enclosure: every reachable member
    /// crashes (volatile controller state dropped — see
    /// [`RssdDevice::crash`]). Degraded members have no local half left to
    /// crash; their salvage images are remote-derived and survive. Returns
    /// the fleet-summed crash report.
    pub fn crash(&mut self) -> CrashReport {
        let mut merged = CrashReport::default();
        for state in &mut self.shards {
            if let ShardState::Live(d) | ShardState::Rebuilding { device: d, .. } = state {
                merged.merge(&d.crash());
            }
        }
        merged
    }

    /// Recovers every crashed member (see [`RssdDevice::recover`]),
    /// returning fleet-summed recovery counters.
    ///
    /// # Errors
    ///
    /// [`ArrayError::MemberRecoveryFailed`] naming the first member whose
    /// remote was unreachable or failed chain verification; members before
    /// it are recovered, members after it remain crashed.
    pub fn recover(&mut self) -> Result<CrashRecovery, ArrayError> {
        let mut merged = CrashRecovery::default();
        for (shard, state) in self.shards.iter_mut().enumerate() {
            if let ShardState::Live(d) | ShardState::Rebuilding { device: d, .. } = state {
                if !d.is_crashed() {
                    continue;
                }
                let r = d
                    .recover()
                    .map_err(|detail| ArrayError::MemberRecoveryFailed { shard, detail })?;
                merged.merge(&r);
            }
        }
        Ok(merged)
    }

    /// Starts rebuilding a degraded shard onto `replacement` (a fresh RSSD
    /// member with its own clock and remote target). With
    /// `restore_before_ns` the shard is restored to the state valid just
    /// before that time (point-in-time, pre-attack); otherwise each page
    /// gets its newest retained version.
    ///
    /// # Errors
    ///
    /// [`ArrayError::ShardNotDegraded`] when the shard is live or already
    /// rebuilding, [`ArrayError::ReplacementMismatch`] when the replacement
    /// does not match the array geometry.
    pub fn begin_rebuild(
        &mut self,
        shard: usize,
        replacement: RssdDevice<R>,
        restore_before_ns: Option<u64>,
    ) -> Result<(), ArrayError> {
        self.check_shard(shard)?;
        if !matches!(self.shards[shard], ShardState::Degraded(_)) {
            return Err(ArrayError::ShardNotDegraded { shard });
        }
        if replacement.page_size() != self.page_size {
            return Err(ArrayError::ReplacementMismatch {
                detail: format!(
                    "page size {} differs from the array's {}",
                    replacement.page_size(),
                    self.page_size
                ),
            });
        }
        if replacement.logical_pages() < self.layout.shard_pages() {
            return Err(ArrayError::ReplacementMismatch {
                detail: format!(
                    "exports {} pages, shard needs {}",
                    replacement.logical_pages(),
                    self.layout.shard_pages()
                ),
            });
        }
        replacement.clock().advance_to(self.clock.now_ns());
        let ShardState::Degraded(salvage) = self.take_state(shard) else {
            unreachable!("degradedness checked above")
        };
        self.shards[shard] = ShardState::Rebuilding {
            device: replacement,
            salvage,
            copied: 0,
            restored: 0,
            restore_before_ns,
        };
        Ok(())
    }

    /// Restores up to `pages` more local pages of a rebuilding shard, in
    /// ascending order. Restored regions come online immediately (reads and
    /// writes hit the replacement); the uncopied tail keeps serving
    /// degraded reads. When the last page is copied the shard goes live.
    ///
    /// The restore writes go through the replacement's normal write path,
    /// so the rebuild itself is logged in the new member's evidence chain.
    ///
    /// # Errors
    ///
    /// [`ArrayError::ShardNotRebuilding`] when no rebuild is in progress,
    /// or [`ArrayError::RestoreWriteFailed`] when the replacement refuses a
    /// restore write (it may have stalled on its own unreachable remote).
    /// After the latter the shard *stays* rebuilding at its last good page —
    /// the step is retryable, or the shard can be failed again.
    pub fn rebuild_step(
        &mut self,
        shard: usize,
        pages: u64,
    ) -> Result<RebuildProgress, ArrayError> {
        self.check_shard(shard)?;
        let total = self.layout.shard_pages();
        let start = self.clock.now_ns();
        let progress = match &mut self.shards[shard] {
            ShardState::Rebuilding {
                device,
                salvage,
                copied,
                restored,
                restore_before_ns,
            } => {
                device.clock().advance_to(start);
                let target = (*copied + pages).min(total);
                let mut failed = None;
                while *copied < target {
                    let local = *copied;
                    let data = match restore_before_ns {
                        Some(t) => salvage.image.version_before(local, *t),
                        None => salvage.image.newest(local),
                    };
                    if let Some(data) = data {
                        if let Err(error) = device.write_page(local, data.to_vec()) {
                            failed = Some(ArrayError::RestoreWriteFailed {
                                shard,
                                local_lpa: local,
                                error,
                            });
                            break;
                        }
                        *restored += 1;
                    }
                    *copied += 1;
                }
                self.clock.advance_to(device.clock().now_ns());
                if let Some(e) = failed {
                    return Err(e);
                }
                RebuildProgress {
                    copied_pages: *copied,
                    total_pages: total,
                    restored_pages: *restored,
                    done: *copied == total,
                }
            }
            _ => return Err(ArrayError::ShardNotRebuilding { shard }),
        };
        if progress.done {
            let ShardState::Rebuilding { device, .. } = self.take_state(shard) else {
                unreachable!("rebuilding state matched above")
            };
            self.shards[shard] = ShardState::Live(device);
        }
        Ok(progress)
    }

    /// One-shot rebuild: [`begin_rebuild`](Self::begin_rebuild) plus steps
    /// to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`begin_rebuild`](Self::begin_rebuild) errors.
    pub fn rebuild(
        &mut self,
        shard: usize,
        replacement: RssdDevice<R>,
        restore_before_ns: Option<u64>,
    ) -> Result<RebuildProgress, ArrayError> {
        self.begin_rebuild(shard, replacement, restore_before_ns)?;
        self.rebuild_step(shard, self.layout.shard_pages())
    }

    /// Point-in-time recovery across the whole array: the version of `lpa`
    /// valid just before `before_ns`, wherever it lives — a live member's
    /// local+remote index, or a failed member's salvaged image.
    pub fn recover_before(&mut self, lpa: u64, before_ns: u64) -> Option<Vec<u8>> {
        if lpa >= self.layout.logical_pages() {
            return None;
        }
        let (shard, local) = self.layout.locate(lpa);
        match &mut self.shards[shard] {
            ShardState::Live(device) => device.recover_page_before(local, before_ns),
            ShardState::Degraded(salvage) | ShardState::Rebuilding { salvage, .. } => salvage
                .image
                .version_before(local, before_ns)
                .map(<[u8]>::to_vec),
        }
    }

    /// Fleet-wide offload counters, merged across reachable members.
    pub fn offload_stats(&self) -> OffloadStats {
        let mut merged = OffloadStats::default();
        for state in &self.shards {
            if let ShardState::Live(d) | ShardState::Rebuilding { device: d, .. } = state {
                merged.merge(&d.offload_stats());
            }
        }
        merged
    }

    /// Total evidence-chain records across reachable members.
    pub fn chain_len(&self) -> u64 {
        self.shards
            .iter()
            .map(|state| match state {
                ShardState::Live(d) | ShardState::Rebuilding { device: d, .. } => d.chain_len(),
                ShardState::Degraded(_) => 0,
            })
            .sum()
    }

    /// Fleet-wide NAND counters, merged across reachable members via
    /// [`NandStats::merge`] — each member's channel-busy vector adds by
    /// channel index, so per-channel utilization stays meaningful for a
    /// homogeneous array.
    pub fn nand_stats(&self) -> NandStats {
        let mut merged = NandStats::default();
        for state in &self.shards {
            if let ShardState::Live(d) | ShardState::Rebuilding { device: d, .. } = state {
                merged.merge(d.nand_stats());
            }
        }
        merged
    }

    /// Fleet-wide FTL counters, merged across reachable members via
    /// [`FtlStats::merge`]; the merged write-amplification is the
    /// page-weighted aggregate.
    pub fn ftl_stats(&self) -> FtlStats {
        let mut merged = FtlStats::default();
        for state in &self.shards {
            if let ShardState::Live(d) | ShardState::Rebuilding { device: d, .. } = state {
                merged.merge(d.ftl_stats());
            }
        }
        merged
    }

    /// Fleet-wide device-side latency distribution, merged across reachable
    /// members.
    pub fn latency(&self) -> LatencyStats {
        let mut merged = LatencyStats::new();
        for state in &self.shards {
            if let ShardState::Live(d) | ShardState::Rebuilding { device: d, .. } = state {
                merged.merge(d.latency());
            }
        }
        merged
    }
}
