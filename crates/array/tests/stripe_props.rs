//! Property tests for the stripe address translation and batch splitting.
//!
//! The two load-bearing invariants of the array:
//!
//! 1. LPA ↔ (shard, local LPA) is a **bijection** for arbitrary shard
//!    counts and stripe sizes — no two array pages alias one device page,
//!    no device page is unreachable.
//! 2. `submit_batch` splitting preserves **per-shard command order** and is
//!    semantically identical to the scalar loop.

use proptest::prelude::*;
use rssd_array::{RssdArray, StripeLayout};
use rssd_flash::{FlashGeometry, NandTiming, SimClock};
use rssd_ssd::{BlockDevice, CommandResult, DeviceError, IoCommand, PlainSsd};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

fn plain_shards(n: usize) -> Vec<PlainSsd> {
    (0..n)
        .map(|_| {
            PlainSsd::new(
                FlashGeometry::small_test(),
                NandTiming::instant(),
                SimClock::new(),
            )
        })
        .collect()
}

/// Wraps a device and records, per shard, the order of page-addressed
/// commands it actually executes.
struct OrderProbe {
    inner: PlainSsd,
    log: Arc<Mutex<Vec<(usize, char, u64)>>>,
    shard: usize,
}

impl BlockDevice for OrderProbe {
    fn model_name(&self) -> &str {
        "OrderProbe"
    }
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn logical_pages(&self) -> u64 {
        self.inner.logical_pages()
    }
    fn clock(&self) -> &SimClock {
        self.inner.clock()
    }
    fn write_page(&mut self, lpa: u64, data: Vec<u8>) -> Result<(), DeviceError> {
        self.log.lock().unwrap().push((self.shard, 'w', lpa));
        self.inner.write_page(lpa, data)
    }
    fn read_page(&mut self, lpa: u64) -> Result<Vec<u8>, DeviceError> {
        self.log.lock().unwrap().push((self.shard, 'r', lpa));
        self.inner.read_page(lpa)
    }
    fn trim_page(&mut self, lpa: u64) -> Result<(), DeviceError> {
        self.log.lock().unwrap().push((self.shard, 't', lpa));
        self.inner.trim_page(lpa)
    }
}

proptest! {
    #[test]
    fn lpa_translation_is_a_bijection(
        shard_count in 1usize..9,
        stripe_pages in 1u64..17,
        shard_stripes in 1u64..33,
    ) {
        let shard_pages = stripe_pages * shard_stripes;
        let layout = StripeLayout::new(shard_count, stripe_pages, shard_pages);
        let mut seen: HashSet<(usize, u64)> = HashSet::new();
        for lpa in 0..layout.logical_pages() {
            let (shard, local) = layout.locate(lpa);
            // Into range...
            prop_assert!(shard < shard_count);
            prop_assert!(local < shard_pages);
            // ...injective...
            prop_assert!(seen.insert((shard, local)), "aliased at lpa {lpa}");
            // ...and inverted exactly.
            prop_assert_eq!(layout.array_lpa(shard, local), lpa);
        }
        // Surjective: every (shard, local) pair was hit.
        prop_assert_eq!(seen.len() as u64, shard_count as u64 * shard_pages);
    }

    #[test]
    fn batch_split_matches_scalar_loop(
        shard_count in 1usize..5,
        stripe_pages in 1u64..9,
        ops in proptest::collection::vec((0u8..3, 0u64..256, 0u8..255), 1..120),
    ) {
        let commands: Vec<IoCommand> = ops
            .iter()
            .map(|&(op, lpa, fill)| match op {
                0 => IoCommand::Write { lpa, data: vec![fill; 4096] },
                1 => IoCommand::Read { lpa },
                _ => IoCommand::Trim { lpa },
            })
            .collect();

        let mut batched = RssdArray::new(plain_shards(shard_count), stripe_pages, SimClock::new());
        let batch_results = batched.submit_batch(commands.clone());

        let mut scalar = RssdArray::new(plain_shards(shard_count), stripe_pages, SimClock::new());
        let scalar_results: Vec<CommandResult> =
            commands.into_iter().map(|c| scalar.execute(c)).collect();

        prop_assert_eq!(batch_results, scalar_results);
        // Same final contents, page by page.
        for lpa in 0..batched.logical_pages() {
            prop_assert_eq!(
                batched.read_page(lpa).unwrap(),
                scalar.read_page(lpa).unwrap(),
                "contents diverged at lpa {}", lpa
            );
        }
    }

    #[test]
    fn batch_split_preserves_per_shard_command_order(
        shard_count in 1usize..5,
        stripe_pages in 1u64..9,
        ops in proptest::collection::vec((0u8..3, 0u64..256), 1..100),
    ) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let shards: Vec<OrderProbe> = (0..shard_count)
            .map(|shard| OrderProbe {
                inner: PlainSsd::new(
                    FlashGeometry::small_test(),
                    NandTiming::instant(),
                    SimClock::new(),
                ),
                log: Arc::clone(&log),
                shard,
            })
            .collect();
        let mut array = RssdArray::new(shards, stripe_pages, SimClock::new());
        let layout = *array.layout();

        let commands: Vec<IoCommand> = ops
            .iter()
            .map(|&(op, lpa)| {
                let lpa = lpa % layout.logical_pages();
                match op {
                    0 => IoCommand::Write { lpa, data: vec![1; 4096] },
                    1 => IoCommand::Read { lpa },
                    _ => IoCommand::Trim { lpa },
                }
            })
            .collect();

        // Expected per-shard order: the original sequence, filtered.
        let mut expected: Vec<Vec<(char, u64)>> = vec![Vec::new(); shard_count];
        for c in &commands {
            let lpa = c.lpa().unwrap();
            let (shard, local) = layout.locate(lpa);
            let op = match c {
                IoCommand::Write { .. } => 'w',
                IoCommand::Read { .. } => 'r',
                _ => 't',
            };
            expected[shard].push((op, local));
        }

        for r in array.submit_batch(commands) {
            let _ = r; // errors impossible here; order is what's under test
        }
        let observed = log.lock().unwrap();
        let mut per_shard: Vec<Vec<(char, u64)>> = vec![Vec::new(); shard_count];
        for &(shard, op, local) in observed.iter() {
            per_shard[shard].push((op, local));
        }
        prop_assert_eq!(per_shard, expected);
    }
}
