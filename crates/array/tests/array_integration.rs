//! End-to-end array scenarios: striped RSSD I/O, shard loss, degraded
//! reads, incremental remote-assisted rebuild, and the parallel time model
//! (aggregate throughput must scale with shard count).

use rssd_array::{ArrayError, RssdArray, ShardStatus};
use rssd_core::{LoopbackTarget, RssdConfig, RssdDevice};
use rssd_flash::{FlashGeometry, NandTiming, SimClock};
use rssd_ssd::{BlockDevice, DeviceError, IoCommand};

fn rssd_shard(device_id: u64, timing: NandTiming) -> RssdDevice<LoopbackTarget> {
    RssdDevice::new(
        FlashGeometry::small_test(),
        timing,
        SimClock::new(), // each member owns its clock: the parallel model
        RssdConfig {
            device_id,
            segment_pages: 4,
            ..RssdConfig::default()
        },
        LoopbackTarget::new(),
    )
}

fn rssd_array(shards: usize, timing: NandTiming) -> RssdArray<RssdDevice<LoopbackTarget>> {
    let members = (0..shards as u64).map(|i| rssd_shard(i, timing)).collect();
    RssdArray::new(members, 4, SimClock::new())
}

fn page(b: u8) -> Vec<u8> {
    vec![b; 4096]
}

#[test]
fn striped_io_round_trips_and_recovers_through_the_array() {
    let mut array = rssd_array(3, NandTiming::instant());
    for lpa in 0..24u64 {
        array.write_page(lpa, page(lpa as u8)).unwrap();
    }
    for lpa in 0..24u64 {
        assert_eq!(array.read_page(lpa).unwrap(), page(lpa as u8));
    }
    // Overwrite → per-shard retention still reachable through the array.
    array.write_page(5, page(0xEE)).unwrap();
    assert_eq!(array.recover_page(5).unwrap(), page(5));
    // Fleet-wide merged accounting sees all shards: 25 writes + 24 logged
    // reads across the three evidence chains.
    assert_eq!(array.chain_len(), 49);
    assert!(array.latency().count() > 0);
}

#[test]
fn shard_loss_serves_degraded_reads_and_refuses_writes() {
    let mut array = rssd_array(3, NandTiming::instant());
    let corpus: Vec<u64> = (0..36).collect();
    for &lpa in &corpus {
        array.write_page(lpa, page(lpa as u8)).unwrap();
    }
    // "Ransomware" encrypts everything, then the host flushes (barrier →
    // every retained pre-image offloads).
    for &lpa in &corpus {
        array.write_page(lpa, page(0xEE)).unwrap();
    }
    array.flush().unwrap();

    let report = array.fail_shard(1).unwrap();
    assert!(report.versions > 0, "salvage must carry retained versions");
    assert_eq!(array.shard_status(1), ShardStatus::Degraded);
    assert!(!array.is_fully_live());

    let layout = *array.layout();
    for &lpa in &corpus {
        let (shard, _) = layout.locate(lpa);
        if shard == 1 {
            // Degraded read: the newest retained version — the pre-attack
            // content the encrypting overwrite destroyed.
            assert_eq!(array.read_page(lpa).unwrap(), page(lpa as u8));
            assert!(matches!(
                array.write_page(lpa, page(1)),
                Err(DeviceError::ShardFailed { shard: 1 })
            ));
            assert!(matches!(
                array.trim_page(lpa),
                Err(DeviceError::ShardFailed { shard: 1 })
            ));
        } else {
            // Surviving shards still serve the live (encrypted) content.
            assert_eq!(array.read_page(lpa).unwrap(), page(0xEE));
        }
    }
}

#[test]
fn unoffloaded_tail_dies_with_the_shard() {
    let mut array = rssd_array(2, NandTiming::instant());
    array.write_page(0, page(1)).unwrap();
    array.write_page(0, page(2)).unwrap();
    // No flush: the lpa-0 pre-image is pinned on shard 0 only.
    let _ = array.fail_shard(0).unwrap();
    assert_eq!(
        array.read_page(0).unwrap(),
        page(0),
        "nothing offloaded, nothing salvaged: honest zeroes"
    );
}

#[test]
fn incremental_rebuild_brings_regions_online_and_restores_point_in_time() {
    let mut array = rssd_array(2, NandTiming::instant());
    let shard_pages = array.layout().shard_pages();
    let layout = *array.layout();
    // Corpus across both shards, then an attack overwrites it all.
    let corpus: Vec<u64> = (0..2 * shard_pages.min(32)).collect();
    for &lpa in &corpus {
        array.write_page(lpa, page(lpa as u8)).unwrap();
    }
    let clock_probe = array.clock().clone();
    clock_probe.advance(1_000_000);
    let attack_start = clock_probe.now_ns();
    for &lpa in &corpus {
        array.write_page(lpa, page(0xEE)).unwrap();
    }
    array.flush().unwrap();
    let _ = array.fail_shard(0).unwrap();

    // Begin rebuilding onto a fresh member, restoring pre-attack state.
    array
        .begin_rebuild(0, rssd_shard(7, NandTiming::instant()), Some(attack_start))
        .unwrap();
    let half = shard_pages / 2;
    let progress = array.rebuild_step(0, half).unwrap();
    assert!(!progress.done);
    assert_eq!(progress.copied_pages, half);
    assert_eq!(
        array.shard_status(0),
        ShardStatus::Rebuilding {
            copied: half,
            total: shard_pages
        }
    );

    // Online region: writes accepted; offline tail: salvage reads, writes
    // refused.
    let online = layout.array_lpa(0, 0);
    array.write_page(online, page(0x55)).unwrap();
    assert_eq!(array.read_page(online).unwrap(), page(0x55));
    let offline = layout.array_lpa(0, shard_pages - 1);
    assert!(matches!(
        array.write_page(offline, page(1)),
        Err(DeviceError::ShardFailed { shard: 0 })
    ));

    // Finish; the shard is live and pre-attack content is back.
    let done = array.rebuild_step(0, shard_pages).unwrap();
    assert!(done.done);
    assert_eq!(array.shard_status(0), ShardStatus::Live);
    assert!(array.is_fully_live());
    for &lpa in &corpus {
        let (shard, _) = layout.locate(lpa);
        if shard == 0 && lpa != online {
            assert_eq!(
                array.read_page(lpa).unwrap(),
                page(lpa as u8),
                "rebuilt shard must serve pre-attack content at lpa {lpa}"
            );
        }
    }
    // The rebuild itself is evidence: the replacement logged its restore
    // writes.
    assert!(array.shard(0).unwrap().chain_len() > 0);
}

#[test]
fn lifecycle_misuse_yields_typed_errors_not_panics() {
    let mut array = rssd_array(2, NandTiming::instant());
    assert_eq!(
        array.fail_shard(9).unwrap_err(),
        ArrayError::NoSuchShard {
            shard: 9,
            shards: 2
        }
    );
    assert_eq!(
        array
            .begin_rebuild(0, rssd_shard(5, NandTiming::instant()), None)
            .unwrap_err(),
        ArrayError::ShardNotDegraded { shard: 0 }
    );
    assert_eq!(
        array.rebuild_step(0, 8).unwrap_err(),
        ArrayError::ShardNotRebuilding { shard: 0 }
    );
    let _ = array.fail_shard(0).unwrap();
    assert_eq!(
        array.fail_shard(0).unwrap_err(),
        ArrayError::ShardNotLive { shard: 0 }
    );
}

#[test]
fn second_shard_death_mid_rebuild_is_survivable() {
    // The double-failure case the fault injector provokes: shard 0 dies and
    // is rebuilding when shard 1 dies too. Historically this path was only
    // reachable through panicking code; now every transition is a typed
    // result and the array keeps serving whatever the remotes retained.
    let mut array = rssd_array(3, NandTiming::instant());
    let corpus: Vec<u64> = (0..36).collect();
    for &lpa in &corpus {
        array.write_page(lpa, page(lpa as u8)).unwrap();
    }
    for &lpa in &corpus {
        array.write_page(lpa, page(0xEE)).unwrap();
    }
    array.flush().unwrap();
    let layout = *array.layout();

    let _ = array.fail_shard(0).unwrap();
    array
        .begin_rebuild(0, rssd_shard(7, NandTiming::instant()), None)
        .unwrap();
    let _ = array.rebuild_step(0, 4).unwrap();

    // Second failure while shard 0 is mid-rebuild.
    let report = array.fail_shard(1).unwrap();
    assert!(report.versions > 0);
    assert_eq!(array.shard_status(1), ShardStatus::Degraded);
    assert!(matches!(
        array.shard_status(0),
        ShardStatus::Rebuilding { .. }
    ));
    // Stepping the *dead* shard is a typed error; the rebuilding one works.
    assert_eq!(
        array.rebuild_step(1, 4).unwrap_err(),
        ArrayError::ShardNotRebuilding { shard: 1 }
    );
    // Both failed shards serve degraded/salvage reads of retained content.
    for &lpa in &corpus {
        let (shard, _) = layout.locate(lpa);
        if shard != 2 {
            assert_eq!(array.read_page(lpa).unwrap(), page(lpa as u8));
        }
    }
    // Both recover: finish shard 0, then rebuild shard 1.
    let shard_pages = layout.shard_pages();
    assert!(array.rebuild_step(0, shard_pages).unwrap().done);
    let _ = array
        .rebuild(1, rssd_shard(8, NandTiming::instant()), None)
        .unwrap();
    assert!(array.is_fully_live());
}

#[test]
fn rebuilding_replacement_can_fail_again_and_fall_back_to_salvage() {
    let mut array = rssd_array(2, NandTiming::instant());
    let corpus: Vec<u64> = (0..16).collect();
    for &lpa in &corpus {
        array.write_page(lpa, page(lpa as u8)).unwrap();
    }
    for &lpa in &corpus {
        array.write_page(lpa, page(0xEE)).unwrap();
    }
    array.flush().unwrap();
    let layout = *array.layout();

    let _ = array.fail_shard(0).unwrap();
    array
        .begin_rebuild(0, rssd_shard(7, NandTiming::instant()), None)
        .unwrap();
    let _ = array.rebuild_step(0, 2).unwrap();
    // The replacement dies mid-rebuild: back to degraded over the original
    // salvage — progress lost, retained data not.
    let report = array.fail_shard(0).unwrap();
    assert!(
        report.versions > 0,
        "original salvage still backs the shard"
    );
    assert_eq!(array.shard_status(0), ShardStatus::Degraded);
    for &lpa in &corpus {
        if layout.locate(lpa).0 == 0 {
            assert_eq!(array.read_page(lpa).unwrap(), page(lpa as u8));
        }
    }
    // A second replacement completes.
    let _ = array
        .rebuild(0, rssd_shard(9, NandTiming::instant()), None)
        .unwrap();
    assert!(array.is_fully_live());
}

#[test]
fn enclosure_crash_and_recover_preserves_acked_state_on_every_member() {
    let mut array = rssd_array(3, NandTiming::instant());
    for lpa in 0..24u64 {
        array.write_page(lpa, page(lpa as u8)).unwrap();
    }
    for lpa in 0..24u64 {
        array.write_page(lpa, page(0xEE)).unwrap();
    }
    array.flush().unwrap();
    // Unoffloaded tail on top.
    array.write_page(0, page(0x77)).unwrap();

    let report = array.crash();
    assert!(report.pending_records_lost > 0);
    assert!(matches!(
        array.write_page(1, page(1)),
        Err(DeviceError::PowerLoss)
    ));
    let recovery = array.recover().unwrap();
    assert!(recovery.segments_walked > 0);
    // Every acknowledged write is durable on flash across all members.
    assert_eq!(array.read_page(0).unwrap(), page(0x77));
    for lpa in 1..24u64 {
        assert_eq!(array.read_page(lpa).unwrap(), page(0xEE));
    }
    // Offloaded pre-images recoverable again after the index rebuild.
    assert_eq!(array.recover_page(5).unwrap(), page(5));
}

#[test]
fn recover_before_spans_live_and_failed_shards() {
    let mut array = rssd_array(2, NandTiming::instant());
    let clock = array.clock().clone();
    for lpa in 0..16u64 {
        array.write_page(lpa, page(lpa as u8)).unwrap();
    }
    clock.advance(1_000);
    let attack_start = clock.now_ns();
    for lpa in 0..16u64 {
        array.write_page(lpa, page(0xEE)).unwrap();
    }
    array.flush().unwrap();
    let _ = array.fail_shard(1).unwrap();
    for lpa in 0..16u64 {
        assert_eq!(
            array.recover_before(lpa, attack_start).unwrap(),
            page(lpa as u8),
            "pre-attack version reachable wherever lpa {lpa} lives"
        );
    }
}

#[test]
fn multi_host_fanout_replay_drives_the_array() {
    use rssd_ssd::{NvmeController, QueueId};
    use rssd_trace::{replay_fanout, WorkloadBuilder};

    let mut array = rssd_array(4, NandTiming::instant());
    let span = array.logical_pages();
    let records: Vec<_> = WorkloadBuilder::new(span)
        .seed(29)
        .read_fraction(0.25)
        .trim_fraction(0.05)
        .build()
        .take(600)
        .collect();
    let mut controller = NvmeController::new(&mut array);
    let queues: Vec<QueueId> = (0..4).map(|_| controller.create_queue_pair(16)).collect();
    let stats = replay_fanout(&mut controller, &queues, records).expect_completed();
    assert_eq!(stats.records, 600);
    assert!(stats.pages_written > 0 && stats.pages_read > 0);
    // Merged host-side accounting across the four host queues.
    let mut merged = controller.stats(queues[0]).clone();
    for &q in &queues[1..] {
        merged.merge(controller.stats(q));
    }
    assert_eq!(
        merged.completed,
        stats.pages_written + stats.pages_read + stats.pages_trimmed
    );
    drop(controller);
    // Every shard saw traffic: the stripe fan-out reached all members.
    for shard in 0..4 {
        assert!(
            array.shard(shard).unwrap().chain_len() > 0,
            "shard {shard} untouched"
        );
    }
}

#[test]
fn aggregate_throughput_scales_with_shard_count() {
    // The same write workload, one batch, against 1 / 2 / 4 shards with
    // real MLC timing: members execute in parallel, so the simulated
    // completion time must shrink — aggregate throughput must rise —
    // monotonically.
    let ops = 192u64;
    let mut end_times = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut array = rssd_array(shards, NandTiming::mlc_default());
        let span = array.logical_pages();
        let commands: Vec<IoCommand> = (0..ops)
            .map(|i| IoCommand::Write {
                lpa: i % span,
                data: page(i as u8),
            })
            .collect();
        for r in array.submit_batch(commands) {
            r.unwrap();
        }
        end_times.push(array.clock().now_ns());
    }
    assert!(
        end_times[0] > end_times[1] && end_times[1] > end_times[2],
        "sim completion time must shrink with shards: {end_times:?}"
    );
}
