//! Operation counters for the NAND array.

use serde::{Deserialize, Serialize};

/// Counters of raw NAND operations and the simulated time they consumed.
///
/// The lifetime experiment (E4) reads erase counts from here; the performance
/// experiment (E3) compares busy time between device models; the queue-depth
/// sweep reports per-channel utilization (busy_ns / wall_ns) from the
/// channel-busy vector.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct NandStats {
    reads: u64,
    programs: u64,
    erases: u64,
    background_reads: u64,
    read_time_ns: u64,
    program_time_ns: u64,
    erase_time_ns: u64,
    /// Per-channel busy time: nanoseconds during which *any* unit of the
    /// channel (bus or a plane) was occupied (interval union, so pipelined
    /// overlap is not double-counted).
    channel_busy_ns: Vec<u64>,
}

impl NandStats {
    /// Creates counters for a device with `channels` channels.
    pub fn for_channels(channels: u32) -> Self {
        NandStats {
            channel_busy_ns: vec![0; channels as usize],
            ..NandStats::default()
        }
    }

    /// Number of page reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of page programs performed.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Number of block erases performed.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// Cumulative simulated time spent in reads.
    pub fn read_time_ns(&self) -> u64 {
        self.read_time_ns
    }

    /// Cumulative simulated time spent in programs.
    pub fn program_time_ns(&self) -> u64 {
        self.program_time_ns
    }

    /// Cumulative simulated time spent in erases.
    pub fn erase_time_ns(&self) -> u64 {
        self.erase_time_ns
    }

    /// Total simulated device busy time (sum of nominal op latencies; with
    /// pipelining this exceeds wall time when units overlap).
    pub fn total_busy_ns(&self) -> u64 {
        self.read_time_ns + self.program_time_ns + self.erase_time_ns
    }

    /// Background (offload-engine) page reads, scheduled into idle windows.
    pub fn background_reads(&self) -> u64 {
        self.background_reads
    }

    /// Per-channel busy time (interval union over the channel's units).
    pub fn channel_busy_ns(&self) -> &[u64] {
        &self.channel_busy_ns
    }

    /// Per-channel utilization over a wall-clock window of `wall_ns`
    /// simulated nanoseconds: busy_ns / wall_ns, each in `0.0..=1.0`.
    /// Empty when `wall_ns` is zero.
    pub fn channel_utilization(&self, wall_ns: u64) -> Vec<f64> {
        if wall_ns == 0 {
            return Vec::new();
        }
        self.channel_busy_ns
            .iter()
            .map(|&busy| (busy as f64 / wall_ns as f64).min(1.0))
            .collect()
    }

    /// Folds another device's counters into this one — the fleet rollup.
    ///
    /// Scalar counters and cumulative op times add. `channel_busy_ns` adds
    /// element-wise by channel index (the vector grows to the wider of the
    /// two devices): each entry is already an interval *union* over one
    /// device's own timeline, and two share-nothing devices live on
    /// independent simulated timelines, so there is no cross-device overlap
    /// to union away — the sum is the fleet's total busy time on channel
    /// `i`, and `merge` stays associative and commutative with
    /// [`NandStats::default`] as identity. (Within one device the union is
    /// computed at record time by the unit pipelines; `merge` must never be
    /// used to combine two snapshots of the *same* device's channels, which
    /// would double-count their shared timeline.)
    pub fn merge(&mut self, other: &NandStats) {
        self.reads += other.reads;
        self.programs += other.programs;
        self.erases += other.erases;
        self.background_reads += other.background_reads;
        self.read_time_ns += other.read_time_ns;
        self.program_time_ns += other.program_time_ns;
        self.erase_time_ns += other.erase_time_ns;
        if self.channel_busy_ns.len() < other.channel_busy_ns.len() {
            self.channel_busy_ns.resize(other.channel_busy_ns.len(), 0);
        }
        for (slot, &busy) in self.channel_busy_ns.iter_mut().zip(&other.channel_busy_ns) {
            *slot += busy;
        }
    }

    pub(crate) fn record_background_read(&mut self) {
        self.background_reads += 1;
    }

    pub(crate) fn record_read(&mut self, latency_ns: u64) {
        self.reads += 1;
        self.read_time_ns += latency_ns;
    }

    pub(crate) fn record_program(&mut self, latency_ns: u64) {
        self.programs += 1;
        self.program_time_ns += latency_ns;
    }

    pub(crate) fn record_erase(&mut self, latency_ns: u64) {
        self.erases += 1;
        self.erase_time_ns += latency_ns;
    }

    pub(crate) fn record_channel_busy(&mut self, channel: u32, covered_ns: u64) {
        if let Some(slot) = self.channel_busy_ns.get_mut(channel as usize) {
            *slot += covered_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NandStats::default();
        s.record_read(10);
        s.record_read(10);
        s.record_program(100);
        s.record_erase(1000);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.programs(), 1);
        assert_eq!(s.erases(), 1);
        assert_eq!(s.total_busy_ns(), 10 + 10 + 100 + 1000);
    }

    #[test]
    fn channel_busy_accumulates_per_channel() {
        let mut s = NandStats::for_channels(2);
        s.record_channel_busy(0, 100);
        s.record_channel_busy(0, 50);
        s.record_channel_busy(1, 10);
        assert_eq!(s.channel_busy_ns(), &[150, 10]);
        let util = s.channel_utilization(300);
        assert!((util[0] - 0.5).abs() < 1e-12);
        assert!((util[1] - 10.0 / 300.0).abs() < 1e-12);
        assert!(s.channel_utilization(0).is_empty());
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut s = NandStats::for_channels(1);
        s.record_channel_busy(0, 500);
        assert_eq!(s.channel_utilization(100), vec![1.0]);
    }

    fn sample(channels: u32, base: u64) -> NandStats {
        let mut s = NandStats::for_channels(channels);
        s.record_read(base);
        s.record_program(base * 2);
        s.record_erase(base * 3);
        s.record_background_read();
        for c in 0..channels {
            s.record_channel_busy(c, base + u64::from(c));
        }
        s
    }

    #[test]
    fn merge_identity() {
        let a = sample(4, 100);
        let mut merged = a.clone();
        merged.merge(&NandStats::default());
        assert_eq!(merged, a);
        let mut from_empty = NandStats::default();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (sample(2, 10), sample(4, 100), sample(3, 1_000));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge must be commutative");
    }

    #[test]
    fn merge_widens_the_channel_vector() {
        let mut narrow = sample(1, 10);
        let wide = sample(3, 100);
        narrow.merge(&wide);
        assert_eq!(narrow.channel_busy_ns(), &[110, 101, 102]);
        assert_eq!(narrow.reads(), 2);
        assert_eq!(narrow.total_busy_ns(), 6 * 10 + 6 * 100);
    }
}
