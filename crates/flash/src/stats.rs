//! Operation counters for the NAND array.

use serde::{Deserialize, Serialize};

/// Counters of raw NAND operations and the simulated time they consumed.
///
/// The lifetime experiment (E4) reads erase counts from here; the performance
/// experiment (E3) compares busy time between device models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct NandStats {
    reads: u64,
    programs: u64,
    erases: u64,
    background_reads: u64,
    read_time_ns: u64,
    program_time_ns: u64,
    erase_time_ns: u64,
}

impl NandStats {
    /// Number of page reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of page programs performed.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Number of block erases performed.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// Cumulative simulated time spent in reads.
    pub fn read_time_ns(&self) -> u64 {
        self.read_time_ns
    }

    /// Cumulative simulated time spent in programs.
    pub fn program_time_ns(&self) -> u64 {
        self.program_time_ns
    }

    /// Cumulative simulated time spent in erases.
    pub fn erase_time_ns(&self) -> u64 {
        self.erase_time_ns
    }

    /// Total simulated device busy time.
    pub fn total_busy_ns(&self) -> u64 {
        self.read_time_ns + self.program_time_ns + self.erase_time_ns
    }

    /// Background (offload-engine) page reads, scheduled into idle windows.
    pub fn background_reads(&self) -> u64 {
        self.background_reads
    }

    pub(crate) fn record_background_read(&mut self) {
        self.background_reads += 1;
    }

    pub(crate) fn record_read(&mut self, latency_ns: u64) {
        self.reads += 1;
        self.read_time_ns += latency_ns;
    }

    pub(crate) fn record_program(&mut self, latency_ns: u64) {
        self.programs += 1;
        self.program_time_ns += latency_ns;
    }

    pub(crate) fn record_erase(&mut self, latency_ns: u64) {
        self.erases += 1;
        self.erase_time_ns += latency_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NandStats::default();
        s.record_read(10);
        s.record_read(10);
        s.record_program(100);
        s.record_erase(1000);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.programs(), 1);
        assert_eq!(s.erases(), 1);
        assert_eq!(s.total_busy_ns(), 10 + 10 + 100 + 1000);
    }
}
