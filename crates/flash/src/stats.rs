//! Operation counters for the NAND array.

use serde::{Deserialize, Serialize};

/// Counters of raw NAND operations and the simulated time they consumed.
///
/// The lifetime experiment (E4) reads erase counts from here; the performance
/// experiment (E3) compares busy time between device models; the queue-depth
/// sweep reports per-channel utilization (busy_ns / wall_ns) from the
/// channel-busy vector.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct NandStats {
    reads: u64,
    programs: u64,
    erases: u64,
    background_reads: u64,
    read_time_ns: u64,
    program_time_ns: u64,
    erase_time_ns: u64,
    /// Per-channel busy time: nanoseconds during which *any* unit of the
    /// channel (bus or a plane) was occupied (interval union, so pipelined
    /// overlap is not double-counted).
    channel_busy_ns: Vec<u64>,
}

impl NandStats {
    /// Creates counters for a device with `channels` channels.
    pub fn for_channels(channels: u32) -> Self {
        NandStats {
            channel_busy_ns: vec![0; channels as usize],
            ..NandStats::default()
        }
    }

    /// Number of page reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of page programs performed.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Number of block erases performed.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// Cumulative simulated time spent in reads.
    pub fn read_time_ns(&self) -> u64 {
        self.read_time_ns
    }

    /// Cumulative simulated time spent in programs.
    pub fn program_time_ns(&self) -> u64 {
        self.program_time_ns
    }

    /// Cumulative simulated time spent in erases.
    pub fn erase_time_ns(&self) -> u64 {
        self.erase_time_ns
    }

    /// Total simulated device busy time (sum of nominal op latencies; with
    /// pipelining this exceeds wall time when units overlap).
    pub fn total_busy_ns(&self) -> u64 {
        self.read_time_ns + self.program_time_ns + self.erase_time_ns
    }

    /// Background (offload-engine) page reads, scheduled into idle windows.
    pub fn background_reads(&self) -> u64 {
        self.background_reads
    }

    /// Per-channel busy time (interval union over the channel's units).
    pub fn channel_busy_ns(&self) -> &[u64] {
        &self.channel_busy_ns
    }

    /// Per-channel utilization over a wall-clock window of `wall_ns`
    /// simulated nanoseconds: busy_ns / wall_ns, each in `0.0..=1.0`.
    /// Empty when `wall_ns` is zero.
    pub fn channel_utilization(&self, wall_ns: u64) -> Vec<f64> {
        if wall_ns == 0 {
            return Vec::new();
        }
        self.channel_busy_ns
            .iter()
            .map(|&busy| (busy as f64 / wall_ns as f64).min(1.0))
            .collect()
    }

    pub(crate) fn record_background_read(&mut self) {
        self.background_reads += 1;
    }

    pub(crate) fn record_read(&mut self, latency_ns: u64) {
        self.reads += 1;
        self.read_time_ns += latency_ns;
    }

    pub(crate) fn record_program(&mut self, latency_ns: u64) {
        self.programs += 1;
        self.program_time_ns += latency_ns;
    }

    pub(crate) fn record_erase(&mut self, latency_ns: u64) {
        self.erases += 1;
        self.erase_time_ns += latency_ns;
    }

    pub(crate) fn record_channel_busy(&mut self, channel: u32, covered_ns: u64) {
        if let Some(slot) = self.channel_busy_ns.get_mut(channel as usize) {
            *slot += covered_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NandStats::default();
        s.record_read(10);
        s.record_read(10);
        s.record_program(100);
        s.record_erase(1000);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.programs(), 1);
        assert_eq!(s.erases(), 1);
        assert_eq!(s.total_busy_ns(), 10 + 10 + 100 + 1000);
    }

    #[test]
    fn channel_busy_accumulates_per_channel() {
        let mut s = NandStats::for_channels(2);
        s.record_channel_busy(0, 100);
        s.record_channel_busy(0, 50);
        s.record_channel_busy(1, 10);
        assert_eq!(s.channel_busy_ns(), &[150, 10]);
        let util = s.channel_utilization(300);
        assert!((util[0] - 0.5).abs() < 1e-12);
        assert!((util[1] - 10.0 / 300.0).abs() < 1e-12);
        assert!(s.channel_utilization(0).is_empty());
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut s = NandStats::for_channels(1);
        s.record_channel_busy(0, 500);
        assert_eq!(s.channel_utilization(100), vec![1.0]);
    }
}
