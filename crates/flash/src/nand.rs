//! The NAND array proper: page/block state machines and physical constraints.

use crate::clock::SimClock;
use crate::geometry::{FlashGeometry, Ppa};
use crate::stats::NandStats;
use crate::timing::{NandTiming, OpTicket, UnitPipelines};
use rssd_obs::SinkHandle;
use serde::{Deserialize, Serialize};

/// Per-page out-of-band metadata, written atomically with the page data.
///
/// Real NAND pages carry a spare area; FTLs use it for reverse-mapping and
/// power-fail recovery. RSSD additionally relies on it to reconstruct the
/// time order of operations: `seq` is a device-global monotone counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageOob {
    /// Logical page address this physical page was written for.
    pub lpa: u64,
    /// Simulated time of the program operation.
    pub timestamp_ns: u64,
    /// Device-global write sequence number (total order of programs).
    pub seq: u64,
}

/// State of one physical page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Erased and programmable.
    Free,
    /// Programmed and holding data.
    Programmed,
}

/// State of one erase block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// All pages erased; programming starts at page 0.
    Erased,
    /// Some pages programmed; `write_pointer` pages used so far.
    Open,
    /// Every page programmed.
    Full,
    /// Worn out (exceeded its P/E budget); unusable.
    Bad,
}

/// Errors surfaced by raw NAND operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NandError {
    /// Address outside the configured geometry.
    AddressOutOfRange(Ppa),
    /// Attempt to program a page that is not the block's next free page.
    /// NAND requires strictly sequential programming within a block.
    NonSequentialProgram {
        /// The requested page address.
        requested: Ppa,
        /// The page index the block's write pointer expects next.
        expected_page: u32,
    },
    /// Attempt to program a page that is already programmed (no overwrite
    /// in place — the property all retention defenses build on).
    ProgramOnProgrammed(Ppa),
    /// Attempt to read an erased page.
    ReadOnErased(Ppa),
    /// Operation on a block that has worn out.
    BadBlock(Ppa),
    /// Payload length does not match the geometry's page size.
    WrongPageSize {
        /// Bytes supplied.
        got: usize,
        /// Bytes the geometry requires.
        expected: usize,
    },
}

impl std::fmt::Display for NandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NandError::AddressOutOfRange(ppa) => write!(f, "address {ppa} out of range"),
            NandError::NonSequentialProgram {
                requested,
                expected_page,
            } => write!(
                f,
                "non-sequential program at {requested}, block expects page {expected_page}"
            ),
            NandError::ProgramOnProgrammed(ppa) => {
                write!(f, "program on already-programmed page {ppa}")
            }
            NandError::ReadOnErased(ppa) => write!(f, "read on erased page {ppa}"),
            NandError::BadBlock(ppa) => write!(f, "block containing {ppa} is worn out"),
            NandError::WrongPageSize { got, expected } => {
                write!(f, "payload of {got} bytes, page size is {expected}")
            }
        }
    }
}

impl std::error::Error for NandError {}

#[derive(Clone, Debug)]
struct Block {
    state: BlockState,
    write_pointer: u32,
    pe_cycles: u32,
    pages: Vec<Option<(Box<[u8]>, PageOob)>>,
}

impl Block {
    fn new(pages_per_block: u32) -> Self {
        Block {
            state: BlockState::Erased,
            write_pointer: 0,
            pe_cycles: 0,
            pages: vec![None; pages_per_block as usize],
        }
    }
}

/// The simulated NAND flash array.
///
/// Enforces the physical constraints (erase-before-program, sequential
/// in-block programming, block-granularity erase, wear-out) and schedules
/// simulated time on the per-channel/per-plane unit pipelines (see
/// [`crate::timing`]).
///
/// Every operation has two forms: the `*_async` form *dispatches* it — the
/// state change commits immediately, the returned [`OpTicket`] says when
/// the hardware would complete it, and the shared [`SimClock`] does **not**
/// move — and the scalar form, which dispatches and then blocks (advances
/// the clock to the ticket). Batched device paths use the async forms so
/// independent channels, chips and planes overlap; scalar host paths keep
/// the historical one-op-at-a-time timing.
#[derive(Clone, Debug)]
pub struct NandArray {
    geometry: FlashGeometry,
    timing: NandTiming,
    clock: SimClock,
    blocks: Vec<Block>,
    pipelines: UnitPipelines,
    stats: NandStats,
    seq_counter: u64,
    max_pe_cycles: u32,
    sink: SinkHandle,
}

impl NandArray {
    /// Default P/E endurance budget per block (MLC-class).
    pub const DEFAULT_MAX_PE_CYCLES: u32 = 3_000;

    /// Creates an erased array with default timing and a fresh clock.
    pub fn new(geometry: FlashGeometry) -> Self {
        Self::with_clock(geometry, NandTiming::default(), SimClock::new())
    }

    /// Creates an erased array with explicit timing and a shared clock.
    pub fn with_clock(geometry: FlashGeometry, timing: NandTiming, clock: SimClock) -> Self {
        let blocks = (0..geometry.total_blocks())
            .map(|_| Block::new(geometry.pages_per_block))
            .collect();
        NandArray {
            geometry,
            timing,
            clock: clock.clone(),
            blocks,
            pipelines: UnitPipelines::new(
                geometry.channels,
                geometry.chips_per_channel,
                geometry.planes_per_chip,
            ),
            stats: NandStats::for_channels(geometry.channels),
            seq_counter: 0,
            max_pe_cycles: Self::DEFAULT_MAX_PE_CYCLES,
            sink: SinkHandle::disabled(),
        }
    }

    /// Attaches a trace sink: every dispatched NAND op is recorded as a
    /// span on its unit's track (`nand/ch{c}/pl{p}`), spanning the op's
    /// pipeline occupancy. Disabled by default; observation never feeds
    /// back into timing or state.
    pub fn set_trace_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Track name for the unit serving `ppa` (chips share a channel bus;
    /// one track per plane keeps overlap visible).
    fn unit_track(&self, ppa: Ppa) -> String {
        let plane = ppa.chip * self.geometry.planes_per_chip + ppa.plane;
        format!("nand/ch{}/pl{}", ppa.channel, plane)
    }

    fn trace_op(&self, name: &str, ppa: Ppa, ticket: OpTicket, lpa: u64) {
        if !self.sink.is_enabled() {
            return;
        }
        self.sink.span(
            &self.unit_track(ppa),
            name,
            ticket.start_ns,
            ticket.done_ns,
            &[
                ("lpa", lpa.to_string()),
                ("block", self.geometry.block_index(ppa).to_string()),
                ("page", ppa.page.to_string()),
            ],
        );
    }

    /// Overrides the per-block endurance budget (for wear-out tests).
    pub fn set_max_pe_cycles(&mut self, cycles: u32) {
        self.max_pe_cycles = cycles;
    }

    /// The configured geometry.
    pub fn geometry(&self) -> FlashGeometry {
        self.geometry
    }

    /// The timing model in use.
    pub fn timing(&self) -> NandTiming {
        self.timing
    }

    /// Handle to the simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Operation counters.
    pub fn stats(&self) -> &NandStats {
        &self.stats
    }

    /// State of the block containing `ppa`.
    pub fn block_state(&self, ppa: Ppa) -> Result<BlockState, NandError> {
        self.check_address(ppa)?;
        Ok(self.blocks[self.geometry.block_index(ppa) as usize].state)
    }

    /// The next programmable page index of the block containing `ppa`
    /// (its write pointer).
    pub fn write_pointer(&self, ppa: Ppa) -> Result<u32, NandError> {
        self.check_address(ppa)?;
        Ok(self.blocks[self.geometry.block_index(ppa) as usize].write_pointer)
    }

    /// P/E cycles consumed by the block containing `ppa`.
    pub fn pe_cycles(&self, ppa: Ppa) -> Result<u32, NandError> {
        self.check_address(ppa)?;
        Ok(self.blocks[self.geometry.block_index(ppa) as usize].pe_cycles)
    }

    /// State of the page at `ppa`.
    pub fn page_state(&self, ppa: Ppa) -> Result<PageState, NandError> {
        self.check_address(ppa)?;
        let block = &self.blocks[self.geometry.block_index(ppa) as usize];
        Ok(if block.pages[ppa.page as usize].is_some() {
            PageState::Programmed
        } else {
            PageState::Free
        })
    }

    /// Programs `data` + `oob` into the page at `ppa`, blocking (the clock
    /// advances to the completion). Returns the device-global sequence
    /// number assigned to this program.
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range, the payload is the wrong size,
    /// the block is bad, the page is already programmed, or programming is
    /// not at the block's write pointer.
    pub fn program(&mut self, ppa: Ppa, data: Vec<u8>, oob: PageOob) -> Result<u64, NandError> {
        let (seq, ticket) = self.program_async(ppa, data, oob)?;
        self.clock.advance_to(ticket.done_ns);
        Ok(seq)
    }

    /// Dispatches a program without advancing the clock: the page state
    /// commits immediately, the ticket says when the hardware completes
    /// (transfer staged on the channel bus, cell phase on the plane —
    /// sibling planes overlap, multi-plane style).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::program`].
    pub fn program_async(
        &mut self,
        ppa: Ppa,
        data: Vec<u8>,
        oob: PageOob,
    ) -> Result<(u64, OpTicket), NandError> {
        let now = self.clock.now_ns();
        self.program_async_after(ppa, data, oob, now)
    }

    /// Like [`Self::program_async`], but the operation may not start before
    /// `not_before_ns` — the dependency hook GC copy-backs use so a
    /// migration program waits for its source read to complete.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::program`].
    pub fn program_async_after(
        &mut self,
        ppa: Ppa,
        data: Vec<u8>,
        mut oob: PageOob,
        not_before_ns: u64,
    ) -> Result<(u64, OpTicket), NandError> {
        self.check_address(ppa)?;
        if data.len() != self.geometry.page_size {
            return Err(NandError::WrongPageSize {
                got: data.len(),
                expected: self.geometry.page_size,
            });
        }
        let block_idx = self.geometry.block_index(ppa) as usize;
        let block = &mut self.blocks[block_idx];
        match block.state {
            BlockState::Bad => return Err(NandError::BadBlock(ppa)),
            BlockState::Full => return Err(NandError::ProgramOnProgrammed(ppa)),
            BlockState::Erased | BlockState::Open => {}
        }
        if block.pages[ppa.page as usize].is_some() {
            return Err(NandError::ProgramOnProgrammed(ppa));
        }
        if ppa.page != block.write_pointer {
            return Err(NandError::NonSequentialProgram {
                requested: ppa,
                expected_page: block.write_pointer,
            });
        }

        let seq = self.seq_counter;
        self.seq_counter += 1;
        oob.seq = seq;
        oob.timestamp_ns = self.clock.now_ns();

        block.pages[ppa.page as usize] = Some((data.into_boxed_slice(), oob));
        block.write_pointer += 1;
        block.state = if block.write_pointer == self.geometry.pages_per_block {
            BlockState::Full
        } else {
            BlockState::Open
        };

        let earliest = self.clock.now_ns().max(not_before_ns);
        let (ticket, covered) = self.pipelines.dispatch_program(
            ppa.channel,
            ppa.chip,
            ppa.plane,
            earliest,
            self.timing.program_ns,
            self.timing.transfer_latency(self.geometry.page_size),
        );
        self.stats
            .record_program(self.timing.program_latency(self.geometry.page_size));
        self.stats.record_channel_busy(ppa.channel, covered);
        self.trace_op("program", ppa, ticket, oob.lpa);
        Ok((seq, ticket))
    }

    /// Reads the page at `ppa`, blocking (the clock advances to the
    /// completion).
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range, the block is bad, or the page is
    /// erased.
    pub fn read(&mut self, ppa: Ppa) -> Result<(Vec<u8>, PageOob), NandError> {
        let (data, oob, ticket) = self.read_async(ppa)?;
        self.clock.advance_to(ticket.done_ns);
        Ok((data, oob))
    }

    /// Dispatches a read without advancing the clock: returns the data (the
    /// simulator state is authoritative) plus the ticket for when the
    /// hardware would deliver it (cell phase on the plane, data out over
    /// the channel bus).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn read_async(&mut self, ppa: Ppa) -> Result<(Vec<u8>, PageOob, OpTicket), NandError> {
        self.check_address(ppa)?;
        let block_idx = self.geometry.block_index(ppa) as usize;
        let block = &self.blocks[block_idx];
        if block.state == BlockState::Bad {
            return Err(NandError::BadBlock(ppa));
        }
        let (data, oob) = block.pages[ppa.page as usize]
            .as_ref()
            .ok_or(NandError::ReadOnErased(ppa))?;
        let out = (data.to_vec(), *oob);

        let (ticket, covered) = self.pipelines.dispatch_read(
            ppa.channel,
            ppa.chip,
            ppa.plane,
            self.clock.now_ns(),
            self.timing.read_ns,
            self.timing.transfer_latency(self.geometry.page_size),
        );
        self.stats
            .record_read(self.timing.read_latency(self.geometry.page_size));
        self.stats.record_channel_busy(ppa.channel, covered);
        self.trace_op("read", ppa, ticket, out.1.lpa);
        Ok((out.0, out.1, ticket))
    }

    /// Reads only the OOB metadata of a programmed page (cheaper than a full
    /// page read; used by log reconstruction). Charges read latency without
    /// the data transfer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn read_oob(&mut self, ppa: Ppa) -> Result<PageOob, NandError> {
        self.check_address(ppa)?;
        let block_idx = self.geometry.block_index(ppa) as usize;
        let block = &self.blocks[block_idx];
        if block.state == BlockState::Bad {
            return Err(NandError::BadBlock(ppa));
        }
        let (_, oob) = block.pages[ppa.page as usize]
            .as_ref()
            .ok_or(NandError::ReadOnErased(ppa))?;
        let oob = *oob;

        // Cell read without the data transfer (OOB bytes are negligible).
        let (ticket, covered) = self.pipelines.dispatch_read(
            ppa.channel,
            ppa.chip,
            ppa.plane,
            self.clock.now_ns(),
            self.timing.read_ns,
            0,
        );
        self.clock.advance_to(ticket.done_ns);
        self.stats.record_read(self.timing.read_ns);
        self.stats.record_channel_busy(ppa.channel, covered);
        Ok(oob)
    }

    /// Erases the block containing `ppa`, blocking (the clock advances to
    /// the completion), consuming one P/E cycle. The block becomes
    /// [`BlockState::Bad`] once its endurance budget is exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range or the block is already bad.
    pub fn erase_block(&mut self, ppa: Ppa) -> Result<(), NandError> {
        let ticket = self.erase_block_async(ppa)?;
        self.clock.advance_to(ticket.done_ns);
        Ok(())
    }

    /// Dispatches a block erase without advancing the clock. The plane's
    /// busy horizon orders it after every dispatched read of the block's
    /// pages (they share the plane), so GC can erase a victim while other
    /// channels keep serving the host.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::erase_block`].
    pub fn erase_block_async(&mut self, ppa: Ppa) -> Result<OpTicket, NandError> {
        self.check_address(ppa)?;
        let block_idx = self.geometry.block_index(ppa) as usize;
        let max_pe = self.max_pe_cycles;
        let block = &mut self.blocks[block_idx];
        if block.state == BlockState::Bad {
            return Err(NandError::BadBlock(ppa));
        }
        block.pages.iter_mut().for_each(|p| *p = None);
        block.write_pointer = 0;
        block.pe_cycles += 1;
        block.state = if block.pe_cycles >= max_pe {
            BlockState::Bad
        } else {
            BlockState::Erased
        };

        let (ticket, covered) = self.pipelines.dispatch_erase(
            ppa.channel,
            ppa.chip,
            ppa.plane,
            self.clock.now_ns(),
            self.timing.erase_latency(),
        );
        self.stats.record_erase(self.timing.erase_latency());
        self.stats.record_channel_busy(ppa.channel, covered);
        if self.sink.is_enabled() {
            self.sink.span(
                &self.unit_track(ppa),
                "erase",
                ticket.start_ns,
                ticket.done_ns,
                &[("block", self.geometry.block_index(ppa).to_string())],
            );
        }
        Ok(ticket)
    }

    /// Iterates the OOB metadata of every programmed page in the block
    /// containing `ppa`, in page order (no latency charged; helper for GC
    /// victim scanning, which real FTLs do from in-DRAM summaries).
    pub fn block_oobs(&self, ppa: Ppa) -> Result<Vec<(u32, PageOob)>, NandError> {
        self.check_address(ppa)?;
        let block = &self.blocks[self.geometry.block_index(ppa) as usize];
        Ok(block
            .pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|(_, oob)| (i as u32, *oob)))
            .collect())
    }

    /// Dispatches a *background* read onto the unit pipelines without
    /// advancing the clock: the op occupies its plane and channel like any
    /// read (so it genuinely competes with foreground I/O for the units —
    /// the real, bounded cost of RSSD's offload engine), but nothing blocks
    /// on it. Counted as a background read in the stats.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn read_background_async(
        &mut self,
        ppa: Ppa,
    ) -> Result<(Vec<u8>, PageOob, OpTicket), NandError> {
        self.check_address(ppa)?;
        let block = &self.blocks[self.geometry.block_index(ppa) as usize];
        if block.state == BlockState::Bad {
            return Err(NandError::BadBlock(ppa));
        }
        let (data, oob) = block.pages[ppa.page as usize]
            .as_ref()
            .ok_or(NandError::ReadOnErased(ppa))?;
        let out = (data.to_vec(), *oob);
        let (ticket, covered) = self.pipelines.dispatch_read(
            ppa.channel,
            ppa.chip,
            ppa.plane,
            self.clock.now_ns(),
            self.timing.read_ns,
            self.timing.transfer_latency(self.geometry.page_size),
        );
        self.stats.record_background_read();
        self.stats.record_channel_busy(ppa.channel, covered);
        self.trace_op("offload_read", ppa, ticket, out.1.lpa);
        Ok((out.0, out.1, ticket))
    }

    /// Reads page data + OOB without charging any latency at all — no
    /// pipeline occupation, no clock movement. This is the investigator's
    /// / recovery path (post-incident forensics outside the device's
    /// foreground timeline); the *offload engine* uses
    /// [`Self::read_background_async`], which does occupy units. Counted
    /// separately in the stats.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn read_background(&mut self, ppa: Ppa) -> Result<(Vec<u8>, PageOob), NandError> {
        self.check_address(ppa)?;
        let block = &self.blocks[self.geometry.block_index(ppa) as usize];
        if block.state == BlockState::Bad {
            return Err(NandError::BadBlock(ppa));
        }
        let (data, oob) = block.pages[ppa.page as usize]
            .as_ref()
            .ok_or(NandError::ReadOnErased(ppa))?;
        self.stats.record_background_read();
        Ok((data.to_vec(), *oob))
    }

    /// OOB metadata of `ppa` without charging latency (FTLs keep this in a
    /// DRAM summary; the simulator reads it straight from the model).
    pub fn peek_oob(&self, ppa: Ppa) -> Result<Option<PageOob>, NandError> {
        self.check_address(ppa)?;
        let block = &self.blocks[self.geometry.block_index(ppa) as usize];
        Ok(block.pages[ppa.page as usize].as_ref().map(|(_, oob)| *oob))
    }

    /// Global write sequence counter value (next program gets this number).
    pub fn next_seq(&self) -> u64 {
        self.seq_counter
    }

    /// Blocks until every dispatched operation has completed: advances the
    /// clock to the pipelines' horizon and returns the new time. The batch
    /// paths call this (or advance to their own max ticket) once per batch
    /// — the only places the clock moves under pipelined execution.
    pub fn sync(&mut self) -> u64 {
        self.clock.advance_to(self.pipelines.horizon_ns())
    }

    /// Earliest time a new cell operation could start on `channel` (its
    /// freest plane's horizon).
    pub fn channel_next_free_ns(&self, channel: u32) -> u64 {
        self.pipelines.channel_next_free_ns(channel)
    }

    /// The channel whose freest plane goes idle soonest — where GC places
    /// copy-backs so they ride idle units instead of queueing behind host
    /// I/O.
    pub fn least_busy_channel(&self) -> u32 {
        (0..self.geometry.channels)
            .min_by_key(|&ch| self.pipelines.channel_next_free_ns(ch))
            .unwrap_or(0)
    }

    fn check_address(&self, ppa: Ppa) -> Result<(), NandError> {
        if self.geometry.contains(ppa) {
            Ok(())
        } else {
            Err(NandError::AddressOutOfRange(ppa))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant_array() -> NandArray {
        NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::instant(),
            SimClock::new(),
        )
    }

    fn page(data: u8) -> Vec<u8> {
        vec![data; 4096]
    }

    fn oob(lpa: u64) -> PageOob {
        PageOob {
            lpa,
            timestamp_ns: 0,
            seq: 0,
        }
    }

    #[test]
    fn program_read_round_trip() {
        let mut nand = instant_array();
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        nand.program(ppa, page(0xCD), oob(7)).unwrap();
        let (data, meta) = nand.read(ppa).unwrap();
        assert_eq!(data, page(0xCD));
        assert_eq!(meta.lpa, 7);
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut nand = instant_array();
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        let s0 = nand.program(ppa, page(1), oob(0)).unwrap();
        let s1 = nand.program(ppa.with_page(1), page(2), oob(1)).unwrap();
        assert_eq!(s0 + 1, s1);
        assert_eq!(nand.next_seq(), 2);
    }

    #[test]
    fn no_overwrite_in_place() {
        let mut nand = instant_array();
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        nand.program(ppa, page(1), oob(0)).unwrap();
        assert_eq!(
            nand.program(ppa, page(2), oob(0)),
            Err(NandError::ProgramOnProgrammed(ppa))
        );
    }

    #[test]
    fn programming_must_be_sequential_within_block() {
        let mut nand = instant_array();
        let ppa = Ppa::new(0, 0, 0, 0, 3);
        assert_eq!(
            nand.program(ppa, page(1), oob(0)),
            Err(NandError::NonSequentialProgram {
                requested: ppa,
                expected_page: 0
            })
        );
    }

    #[test]
    fn read_erased_fails() {
        let mut nand = instant_array();
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        assert_eq!(nand.read(ppa), Err(NandError::ReadOnErased(ppa)));
    }

    #[test]
    fn erase_frees_whole_block() {
        let mut nand = instant_array();
        let base = Ppa::new(0, 0, 0, 0, 0);
        for p in 0..8 {
            nand.program(base.with_page(p), page(p as u8), oob(p as u64))
                .unwrap();
        }
        assert_eq!(nand.block_state(base).unwrap(), BlockState::Full);
        nand.erase_block(base).unwrap();
        assert_eq!(nand.block_state(base).unwrap(), BlockState::Erased);
        assert_eq!(nand.page_state(base).unwrap(), PageState::Free);
        // Reprogrammable from page 0 again.
        nand.program(base, page(9), oob(9)).unwrap();
    }

    #[test]
    fn erase_counts_wear_and_block_goes_bad() {
        let mut nand = instant_array();
        nand.set_max_pe_cycles(2);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        nand.erase_block(ppa).unwrap();
        assert_eq!(nand.pe_cycles(ppa).unwrap(), 1);
        nand.erase_block(ppa).unwrap();
        assert_eq!(nand.block_state(ppa).unwrap(), BlockState::Bad);
        assert_eq!(nand.erase_block(ppa), Err(NandError::BadBlock(ppa)));
        assert_eq!(
            nand.program(ppa, page(0), oob(0)),
            Err(NandError::BadBlock(ppa))
        );
    }

    #[test]
    fn wrong_page_size_rejected() {
        let mut nand = instant_array();
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        assert_eq!(
            nand.program(ppa, vec![0; 100], oob(0)),
            Err(NandError::WrongPageSize {
                got: 100,
                expected: 4096
            })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut nand = instant_array();
        let ppa = Ppa::new(9, 0, 0, 0, 0);
        assert_eq!(nand.read(ppa), Err(NandError::AddressOutOfRange(ppa)));
    }

    #[test]
    fn timing_advances_clock() {
        let clock = SimClock::new();
        let mut nand = NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::mlc_default(),
            clock.clone(),
        );
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        nand.program(ppa, page(1), oob(0)).unwrap();
        let after_program = clock.now_ns();
        assert_eq!(
            after_program,
            NandTiming::mlc_default().program_latency(4096)
        );
        nand.read(ppa).unwrap();
        assert!(clock.now_ns() > after_program);
    }

    #[test]
    fn async_dispatch_leaves_clock_still_until_sync() {
        let clock = SimClock::new();
        let mut nand = NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::mlc_default(),
            clock.clone(),
        );
        let t = NandTiming::mlc_default();
        // Two programs on different channels dispatched back to back.
        let (_, a) = nand
            .program_async(Ppa::new(0, 0, 0, 0, 0), page(1), oob(0))
            .unwrap();
        let (_, b) = nand
            .program_async(Ppa::new(1, 0, 0, 0, 0), page(2), oob(1))
            .unwrap();
        assert_eq!(clock.now_ns(), 0, "dispatch must not advance the clock");
        assert_eq!(a.done_ns, t.program_latency(4096));
        assert_eq!(b.done_ns, a.done_ns, "independent channels overlap");
        let end = nand.sync();
        assert_eq!(end, a.done_ns, "sync blocks on the horizon");
    }

    #[test]
    fn same_channel_chips_overlap_cell_phases() {
        let mut nand = NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::mlc_default(),
            SimClock::new(),
        );
        let t = NandTiming::mlc_default();
        // Chip 0 and chip 1 of channel 0: transfers serialize on the bus,
        // cell phases overlap.
        let (_, a) = nand
            .program_async(Ppa::new(0, 0, 0, 0, 0), page(1), oob(0))
            .unwrap();
        let (_, b) = nand
            .program_async(Ppa::new(0, 1, 0, 0, 0), page(2), oob(1))
            .unwrap();
        assert_eq!(a.done_ns, t.program_latency(4096));
        assert_eq!(b.done_ns, 2 * t.transfer_latency(4096) + t.program_ns);
        assert!(
            b.done_ns < 2 * t.program_latency(4096),
            "pipelined, not serial"
        );
    }

    #[test]
    fn program_async_after_defers_the_start() {
        let mut nand = NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::mlc_default(),
            SimClock::new(),
        );
        let (_, t) = nand
            .program_async_after(Ppa::new(0, 0, 0, 0, 0), page(1), oob(0), 1_000_000)
            .unwrap();
        assert_eq!(t.start_ns, 1_000_000);
    }

    #[test]
    fn channel_busy_stats_accumulate() {
        let mut nand = NandArray::with_clock(
            FlashGeometry::small_test(),
            NandTiming::mlc_default(),
            SimClock::new(),
        );
        nand.program(Ppa::new(0, 0, 0, 0, 0), page(1), oob(0))
            .unwrap();
        let busy = nand.stats().channel_busy_ns();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0], NandTiming::mlc_default().program_latency(4096));
        assert_eq!(busy[1], 0);
        let wall = nand.clock().now_ns();
        let util = nand.stats().channel_utilization(wall);
        assert!((util[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oob_carries_timestamp_and_seq() {
        let clock = SimClock::starting_at(1234);
        let mut nand =
            NandArray::with_clock(FlashGeometry::small_test(), NandTiming::instant(), clock);
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        nand.program(ppa, page(1), oob(5)).unwrap();
        let meta = nand.read_oob(ppa).unwrap();
        assert_eq!(meta.lpa, 5);
        assert_eq!(meta.timestamp_ns, 1234);
        assert_eq!(meta.seq, 0);
    }

    #[test]
    fn block_oobs_lists_programmed_pages() {
        let mut nand = instant_array();
        let base = Ppa::new(0, 0, 0, 0, 0);
        nand.program(base, page(1), oob(10)).unwrap();
        nand.program(base.with_page(1), page(2), oob(11)).unwrap();
        let oobs = nand.block_oobs(base).unwrap();
        assert_eq!(oobs.len(), 2);
        assert_eq!(oobs[0].1.lpa, 10);
        assert_eq!(oobs[1].1.lpa, 11);
    }

    #[test]
    fn stats_count_operations() {
        let mut nand = instant_array();
        let ppa = Ppa::new(0, 0, 0, 0, 0);
        nand.program(ppa, page(1), oob(0)).unwrap();
        nand.read(ppa).unwrap();
        nand.erase_block(ppa).unwrap();
        assert_eq!(nand.stats().programs(), 1);
        assert_eq!(nand.stats().reads(), 1);
        assert_eq!(nand.stats().erases(), 1);
    }
}
