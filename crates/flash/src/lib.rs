//! NAND flash array simulator — the lowest substrate of the RSSD stack.
//!
//! The paper prototypes RSSD on a Cosmos+ OpenSSD FPGA board; this crate is
//! the software stand-in for that board's flash subsystem (Figure 1's flash
//! controllers + flash chips). It models the properties every flash-aware
//! defense — FlashGuard, LocalSSD retention, and RSSD itself — relies on:
//!
//! * **Out-of-place update**: a programmed page cannot be reprogrammed; the
//!   old version physically remains until its *block* is erased. This is the
//!   intrinsic property that makes stale-data retention possible at all.
//! * **Erase-before-program** at block granularity, sequential page
//!   programming within a block, and per-block P/E wear.
//! * **Out-of-band (OOB) metadata** per page, where the FTL stores the
//!   logical address, timestamp and sequence number — the raw material of
//!   RSSD's hardware-assisted log.
//! * A **timing model** (read/program/erase latencies, per-channel bus
//!   transfer) with genuine device-internal parallelism: per-channel bus
//!   and per-plane cell pipelines, async dispatch (`*_async` returning
//!   [`OpTicket`]s), and a clock that only advances when a caller blocks
//!   on a completion.
//!
//! # Examples
//!
//! ```
//! use rssd_flash::{FlashGeometry, NandArray, PageOob, Ppa};
//!
//! let geometry = FlashGeometry::small_test();
//! let mut nand = NandArray::new(geometry);
//! let ppa = Ppa::new(0, 0, 0, 0, 0);
//! let oob = PageOob { lpa: 42, timestamp_ns: 0, seq: 0 };
//! nand.program(ppa, vec![0xAB; geometry.page_size], oob)?;
//! let (data, _oob) = nand.read(ppa)?;
//! assert_eq!(data[0], 0xAB);
//! # Ok::<(), rssd_flash::NandError>(())
//! ```

pub mod clock;
pub mod geometry;
pub mod nand;
pub mod stats;
pub mod timing;

pub use clock::SimClock;
pub use geometry::{FlashGeometry, Ppa};
pub use nand::{BlockState, NandArray, NandError, PageOob, PageState};
pub use stats::NandStats;
pub use timing::{NandTiming, OpTicket};
