//! The simulated clock.
//!
//! All components of the reproduction — flash timing, FTL, NVMe queues, the
//! Ethernet link, attack actors — share one logical clock in nanoseconds, so
//! every experiment is exactly reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotically advancing simulation clock (nanoseconds).
///
/// Cloning a `SimClock` yields a handle onto the same underlying time.
///
/// # Examples
///
/// ```
/// use rssd_flash::SimClock;
///
/// let clock = SimClock::new();
/// let view = clock.clone();
/// clock.advance(1_000);
/// assert_eq!(view.now_ns(), 1_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

/// Nanoseconds per simulated second.
pub const NS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds per simulated millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds per simulated microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Nanoseconds per simulated day (used by the retention experiments).
pub const NS_PER_DAY: u64 = 86_400 * NS_PER_SEC;

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock {
            now_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a clock starting at `start_ns`.
    pub fn starting_at(start_ns: u64) -> Self {
        SimClock {
            now_ns: Arc::new(AtomicU64::new(start_ns)),
        }
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advances time by `delta_ns`, returning the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now_ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }

    /// Moves time forward to `target_ns` if it is in the future; a no-op
    /// otherwise (time never goes backwards). Returns the resulting time.
    pub fn advance_to(&self, target_ns: u64) -> u64 {
        self.now_ns.fetch_max(target_ns, Ordering::Relaxed);
        self.now_ns()
    }

    /// Current time expressed in whole simulated days (floor).
    pub fn now_days(&self) -> f64 {
        self.now_ns() as f64 / NS_PER_DAY as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_ns(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_ns(), 12);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(100);
        assert_eq!(b.now_ns(), 100);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::starting_at(1_000);
        c.advance_to(500);
        assert_eq!(c.now_ns(), 1_000);
        c.advance_to(2_000);
        assert_eq!(c.now_ns(), 2_000);
    }

    #[test]
    fn days_conversion() {
        let c = SimClock::starting_at(NS_PER_DAY * 3 / 2);
        assert!((c.now_days() - 1.5).abs() < 1e-12);
    }
}
