//! NAND timing model and the device-internal parallelism pipelines.
//!
//! Latencies follow the MLC-class parts on the Cosmos+ OpenSSD board the
//! paper uses. Scheduling models the two resources a real flash package
//! exposes:
//!
//! * **the channel bus** — one transfer at a time per channel (data in for
//!   programs, data out for reads), and
//! * **the plane cell arrays** — each plane executes one cell operation
//!   (read / program / erase) at a time; sibling planes of a chip overlap,
//!   which is the simulator's rendering of multi-plane program/read
//!   grouping (the staged transfers serialize on the bus, the cell phases
//!   run concurrently).
//!
//! Operations are *dispatched*: the scheduler picks the earliest start the
//! involved units allow (`max(now, unit busy horizons)`) and returns an
//! [`OpTicket`] with the completion time. Nothing here advances the shared
//! [`SimClock`](crate::SimClock) — the clock only moves when a caller
//! *blocks* on a completion (the scalar `NandArray` methods do; the batched
//! device paths block once per batch on the latest ticket). That is what
//! lets independent channels, chips and planes genuinely overlap.

use serde::{Deserialize, Serialize};

/// Latency parameters for the simulated NAND.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandTiming {
    /// Page read (cell-to-register) latency in nanoseconds.
    pub read_ns: u64,
    /// Page program latency in nanoseconds.
    pub program_ns: u64,
    /// Block erase latency in nanoseconds.
    pub erase_ns: u64,
    /// Channel transfer time per byte in nanoseconds (bus bandwidth).
    pub transfer_ns_per_byte: u64,
}

impl NandTiming {
    /// MLC-class defaults: 50 µs read, 500 µs program, 3.5 ms erase,
    /// 400 MB/s channel (2.5 ns/byte).
    pub fn mlc_default() -> Self {
        NandTiming {
            read_ns: 50_000,
            program_ns: 500_000,
            erase_ns: 3_500_000,
            transfer_ns_per_byte: 3,
        }
    }

    /// Zero-latency timing for functional tests where time is irrelevant.
    pub fn instant() -> Self {
        NandTiming {
            read_ns: 0,
            program_ns: 0,
            erase_ns: 0,
            transfer_ns_per_byte: 0,
        }
    }

    /// Total latency of reading one page of `page_size` bytes over the bus.
    pub fn read_latency(&self, page_size: usize) -> u64 {
        self.read_ns + self.transfer_ns_per_byte * page_size as u64
    }

    /// Total latency of programming one page of `page_size` bytes.
    pub fn program_latency(&self, page_size: usize) -> u64 {
        self.program_ns + self.transfer_ns_per_byte * page_size as u64
    }

    /// Latency of erasing one block.
    pub fn erase_latency(&self) -> u64 {
        self.erase_ns
    }

    /// Bus time for one page of `page_size` bytes.
    pub fn transfer_latency(&self, page_size: usize) -> u64 {
        self.transfer_ns_per_byte * page_size as u64
    }
}

impl Default for NandTiming {
    fn default() -> Self {
        Self::mlc_default()
    }
}

/// A scheduled operation: when it starts occupying its first unit and when
/// its result is available to the host side.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct OpTicket {
    /// Simulated time the operation first occupies a unit.
    pub start_ns: u64,
    /// Simulated time the operation completes (data transferred / cell
    /// operation finished).
    pub done_ns: u64,
}

impl OpTicket {
    /// A zero-duration ticket at `now_ns` (e.g. an unmapped read served
    /// from the mapping table without touching flash).
    pub fn instant(now_ns: u64) -> Self {
        OpTicket {
            start_ns: now_ns,
            done_ns: now_ns,
        }
    }

    /// Service time of the operation, queueing included.
    pub fn latency_ns(&self, dispatched_at_ns: u64) -> u64 {
        self.done_ns.saturating_sub(dispatched_at_ns)
    }
}

/// Merged busy windows retained per channel for the interval union; the
/// oldest fold away once the list grows past this (an op landing inside a
/// folded window would double-count, but dispatch skew is bounded — GC
/// schedules at most a block's worth ahead — so old windows are dead).
const MERGE_WINDOW: usize = 64;

/// Busy horizons of the device's internal units: one bus per channel, one
/// cell engine per plane. See the module docs for the model.
#[derive(Clone, Debug)]
pub(crate) struct UnitPipelines {
    chips_per_channel: u32,
    planes_per_chip: u32,
    /// Per-channel bus horizon (transfers serialize per channel).
    bus_busy_ns: Vec<u64>,
    /// Per-plane cell horizon (one cell op at a time per plane).
    plane_busy_ns: Vec<u64>,
    /// Per-channel sorted disjoint busy windows, for utilization
    /// accounting (the channel counts busy while *any* of its units
    /// works). Kept as intervals — not a scalar frontier — because ops
    /// dispatch out of time order (GC copy-backs start in the future) and
    /// must still union exactly.
    busy_windows: Vec<Vec<(u64, u64)>>,
}

impl UnitPipelines {
    pub(crate) fn new(channels: u32, chips_per_channel: u32, planes_per_chip: u32) -> Self {
        let planes = (channels * chips_per_channel * planes_per_chip) as usize;
        UnitPipelines {
            chips_per_channel,
            planes_per_chip,
            bus_busy_ns: vec![0; channels as usize],
            plane_busy_ns: vec![0; planes],
            busy_windows: vec![Vec::new(); channels as usize],
        }
    }

    fn plane_index(&self, channel: u32, chip: u32, plane: u32) -> usize {
        ((channel * self.chips_per_channel + chip) * self.planes_per_chip + plane) as usize
    }

    /// Read: cell phase on the plane, then data out over the channel bus.
    /// Returns the ticket and the newly covered channel-busy nanoseconds.
    pub(crate) fn dispatch_read(
        &mut self,
        channel: u32,
        chip: u32,
        plane: u32,
        earliest_ns: u64,
        cell_ns: u64,
        transfer_ns: u64,
    ) -> (OpTicket, u64) {
        let p = self.plane_index(channel, chip, plane);
        let cell_start = earliest_ns.max(self.plane_busy_ns[p]);
        let cell_done = cell_start + cell_ns;
        self.plane_busy_ns[p] = cell_done;
        let xfer_start = cell_done.max(self.bus_busy_ns[channel as usize]);
        let done = xfer_start + transfer_ns;
        self.bus_busy_ns[channel as usize] = done;
        let covered = self.cover(channel, cell_start, done);
        (
            OpTicket {
                start_ns: cell_start,
                done_ns: done,
            },
            covered,
        )
    }

    /// Program: data in over the channel bus, then the cell phase on the
    /// plane. Sibling planes overlap cell phases (multi-plane grouping);
    /// the same plane serializes.
    pub(crate) fn dispatch_program(
        &mut self,
        channel: u32,
        chip: u32,
        plane: u32,
        earliest_ns: u64,
        cell_ns: u64,
        transfer_ns: u64,
    ) -> (OpTicket, u64) {
        let p = self.plane_index(channel, chip, plane);
        let xfer_start = earliest_ns.max(self.bus_busy_ns[channel as usize]);
        let xfer_done = xfer_start + transfer_ns;
        self.bus_busy_ns[channel as usize] = xfer_done;
        let cell_start = xfer_done.max(self.plane_busy_ns[p]);
        let done = cell_start + cell_ns;
        self.plane_busy_ns[p] = done;
        let covered = self.cover(channel, xfer_start, done);
        (
            OpTicket {
                start_ns: xfer_start,
                done_ns: done,
            },
            covered,
        )
    }

    /// Erase: cell phase only, no bus transfer.
    pub(crate) fn dispatch_erase(
        &mut self,
        channel: u32,
        chip: u32,
        plane: u32,
        earliest_ns: u64,
        cell_ns: u64,
    ) -> (OpTicket, u64) {
        let p = self.plane_index(channel, chip, plane);
        let start = earliest_ns.max(self.plane_busy_ns[p]);
        let done = start + cell_ns;
        self.plane_busy_ns[p] = done;
        let covered = self.cover(channel, start, done);
        (
            OpTicket {
                start_ns: start,
                done_ns: done,
            },
            covered,
        )
    }

    /// Earliest time a new cell operation could start on `channel` (the
    /// freest plane's horizon) — the idleness signal GC uses to place
    /// copy-backs.
    pub(crate) fn channel_next_free_ns(&self, channel: u32) -> u64 {
        let per_channel = (self.chips_per_channel * self.planes_per_chip) as usize;
        let base = channel as usize * per_channel;
        self.plane_busy_ns[base..base + per_channel]
            .iter()
            .copied()
            .min()
            .unwrap_or(0)
    }

    /// Completion horizon across every unit: when the whole device goes
    /// idle.
    pub(crate) fn horizon_ns(&self) -> u64 {
        let bus = self.bus_busy_ns.iter().copied().max().unwrap_or(0);
        let cell = self.plane_busy_ns.iter().copied().max().unwrap_or(0);
        bus.max(cell)
    }

    /// Extends the channel's busy coverage by `[start, done)`, returning
    /// the nanoseconds not already covered. Exact interval union over the
    /// retained windows (merging handles out-of-order dispatch, e.g. a GC
    /// copy-back scheduled into the future followed by a host op at now).
    fn cover(&mut self, channel: u32, start_ns: u64, done_ns: u64) -> u64 {
        if done_ns <= start_ns {
            return 0;
        }
        let windows = &mut self.busy_windows[channel as usize];
        // First window that ends at or after our start (touching merges).
        let lo = windows.partition_point(|&(_, end)| end < start_ns);
        let mut new_start = start_ns;
        let mut new_end = done_ns;
        let mut overlapped = 0u64;
        let mut hi = lo;
        while hi < windows.len() && windows[hi].0 <= new_end {
            new_start = new_start.min(windows[hi].0);
            new_end = new_end.max(windows[hi].1);
            overlapped += windows[hi].1 - windows[hi].0;
            hi += 1;
        }
        let added = (new_end - new_start) - overlapped;
        windows.splice(lo..hi, [(new_start, new_end)]);
        if windows.len() > MERGE_WINDOW {
            // Their lengths are already counted; dropping them only risks
            // double-counting an op that lands inside a long-dead window.
            let excess = windows.len() - MERGE_WINDOW;
            windows.drain(..excess);
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipelines() -> UnitPipelines {
        // 2 channels × 2 chips × 2 planes.
        UnitPipelines::new(2, 2, 2)
    }

    #[test]
    fn latencies_include_transfer() {
        let t = NandTiming::mlc_default();
        assert_eq!(t.read_latency(4096), 50_000 + 3 * 4096);
        assert_eq!(t.program_latency(4096), 500_000 + 3 * 4096);
        assert_eq!(t.erase_latency(), 3_500_000);
        assert_eq!(t.transfer_latency(4096), 3 * 4096);
    }

    #[test]
    fn same_plane_serializes() {
        let mut p = pipelines();
        let (a, _) = p.dispatch_program(0, 0, 0, 0, 100, 10);
        let (b, _) = p.dispatch_program(0, 0, 0, 0, 100, 10);
        assert_eq!(a.done_ns, 110);
        // Second transfer starts after the first (bus), its cell after the
        // first cell completes (same plane).
        assert_eq!(b.done_ns, 210);
    }

    #[test]
    fn sibling_planes_overlap_cell_phases() {
        let mut p = pipelines();
        let (a, _) = p.dispatch_program(0, 0, 0, 0, 100, 10);
        let (b, _) = p.dispatch_program(0, 0, 1, 0, 100, 10);
        assert_eq!(a.done_ns, 110);
        // Transfer staged behind the first on the shared bus, then the cell
        // phase runs concurrently on the sibling plane: 20 + 100.
        assert_eq!(b.done_ns, 120, "multi-plane grouping overlaps cells");
    }

    #[test]
    fn independent_channels_fully_overlap() {
        let mut p = pipelines();
        let (a, _) = p.dispatch_program(0, 0, 0, 0, 100, 10);
        let (b, _) = p.dispatch_program(1, 0, 0, 0, 100, 10);
        assert_eq!(a.done_ns, b.done_ns);
    }

    #[test]
    fn reads_pipeline_cell_then_bus() {
        let mut p = pipelines();
        // Two reads on sibling planes: cells overlap, transfers serialize.
        let (a, _) = p.dispatch_read(0, 0, 0, 0, 100, 10);
        let (b, _) = p.dispatch_read(0, 0, 1, 0, 100, 10);
        assert_eq!(a.done_ns, 110);
        assert_eq!(b.done_ns, 120);
    }

    #[test]
    fn dispatch_respects_earliest() {
        let mut p = pipelines();
        let (a, _) = p.dispatch_program(0, 0, 0, 500, 100, 10);
        assert_eq!(a.start_ns, 500);
        assert_eq!(a.done_ns, 610);
    }

    #[test]
    fn erase_occupies_plane_only() {
        let mut p = pipelines();
        let (e, _) = p.dispatch_erase(0, 0, 0, 0, 1_000);
        // The bus is free: a sibling-plane program's transfer is not
        // delayed by the erase.
        let (b, _) = p.dispatch_program(0, 0, 1, 0, 100, 10);
        assert_eq!(e.done_ns, 1_000);
        assert_eq!(b.done_ns, 110);
        // Same plane as the erase: the transfer overlaps the erase, the
        // cell phase serializes behind it.
        let (c, _) = p.dispatch_program(0, 0, 0, 0, 100, 10);
        assert_eq!(c.done_ns, 1_100);
    }

    #[test]
    fn channel_next_free_tracks_the_freest_plane() {
        let mut p = pipelines();
        let _ = p.dispatch_erase(0, 0, 0, 0, 1_000);
        assert_eq!(p.channel_next_free_ns(0), 0, "three planes still idle");
        assert_eq!(p.channel_next_free_ns(1), 0);
        let _ = p.dispatch_erase(0, 0, 1, 0, 1_000);
        let _ = p.dispatch_erase(0, 1, 0, 0, 1_000);
        let _ = p.dispatch_erase(0, 1, 1, 0, 1_000);
        assert_eq!(p.channel_next_free_ns(0), 1_000, "whole channel busy");
    }

    #[test]
    fn horizon_is_the_device_idle_time() {
        let mut p = pipelines();
        assert_eq!(p.horizon_ns(), 0);
        let _ = p.dispatch_program(0, 0, 0, 0, 100, 10);
        let _ = p.dispatch_erase(1, 1, 1, 0, 5_000);
        assert_eq!(p.horizon_ns(), 5_000);
    }

    #[test]
    fn coverage_counts_busy_once_per_channel() {
        let mut p = pipelines();
        let (_, c1) = p.dispatch_program(0, 0, 0, 0, 100, 10);
        assert_eq!(c1, 110);
        // Overlapping sibling-plane op only adds the uncovered tail.
        let (b, c2) = p.dispatch_program(0, 0, 1, 0, 100, 10);
        assert_eq!(b.done_ns, 120);
        assert_eq!(c2, 10);
    }

    #[test]
    fn coverage_is_exact_under_out_of_order_dispatch() {
        // A GC copy-back scheduled into the future (program_async_after)
        // must not swallow the coverage of a host op dispatched at `now`
        // afterwards — the regression the scalar frontier had.
        let mut p = pipelines();
        // Future program on plane 0: transfer [10_000, 10_010), cell to
        // 10_110 — covers 110 ns.
        let (fut, c1) = p.dispatch_program(0, 0, 0, 10_000, 100, 10);
        assert_eq!(fut.done_ns, 10_110);
        assert_eq!(c1, 110);
        // Host erase at now on plane 1: [0, 1_000) is genuinely busy time
        // and must count in full despite starting before the future window.
        let (_, c2) = p.dispatch_erase(0, 0, 1, 0, 1_000);
        assert_eq!(c2, 1_000, "out-of-order interval must still be counted");
        // Overlapping the future window counts only the uncovered part.
        let (_, c3) = p.dispatch_erase(0, 1, 0, 10_050, 100);
        assert_eq!(c3, 40, "only the tail past 10_110 is new");
    }

    #[test]
    fn op_ticket_latency_is_relative_to_dispatch() {
        let t = OpTicket {
            start_ns: 50,
            done_ns: 150,
        };
        assert_eq!(t.latency_ns(40), 110);
        assert_eq!(OpTicket::instant(99).latency_ns(99), 0);
    }
}
