//! NAND timing model.
//!
//! Latencies follow the MLC-class parts on the Cosmos+ OpenSSD board the
//! paper uses. The array keeps a per-channel "busy until" horizon so
//! operations on different channels overlap while operations on the same
//! channel serialize — the parallelism that gives SSDs their bandwidth and
//! that RSSD's logging path must not disturb.

use serde::{Deserialize, Serialize};

/// Latency parameters for the simulated NAND.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandTiming {
    /// Page read (cell-to-register) latency in nanoseconds.
    pub read_ns: u64,
    /// Page program latency in nanoseconds.
    pub program_ns: u64,
    /// Block erase latency in nanoseconds.
    pub erase_ns: u64,
    /// Channel transfer time per byte in nanoseconds (bus bandwidth).
    pub transfer_ns_per_byte: u64,
}

impl NandTiming {
    /// MLC-class defaults: 50 µs read, 500 µs program, 3.5 ms erase,
    /// 400 MB/s channel (2.5 ns/byte).
    pub fn mlc_default() -> Self {
        NandTiming {
            read_ns: 50_000,
            program_ns: 500_000,
            erase_ns: 3_500_000,
            transfer_ns_per_byte: 3,
        }
    }

    /// Zero-latency timing for functional tests where time is irrelevant.
    pub fn instant() -> Self {
        NandTiming {
            read_ns: 0,
            program_ns: 0,
            erase_ns: 0,
            transfer_ns_per_byte: 0,
        }
    }

    /// Total latency of reading one page of `page_size` bytes over the bus.
    pub fn read_latency(&self, page_size: usize) -> u64 {
        self.read_ns + self.transfer_ns_per_byte * page_size as u64
    }

    /// Total latency of programming one page of `page_size` bytes.
    pub fn program_latency(&self, page_size: usize) -> u64 {
        self.program_ns + self.transfer_ns_per_byte * page_size as u64
    }

    /// Latency of erasing one block.
    pub fn erase_latency(&self) -> u64 {
        self.erase_ns
    }
}

impl Default for NandTiming {
    fn default() -> Self {
        Self::mlc_default()
    }
}

/// Per-channel busy horizons: operation completion times used to model
/// channel-level parallelism.
#[derive(Clone, Debug)]
pub(crate) struct ChannelSchedule {
    busy_until_ns: Vec<u64>,
}

impl ChannelSchedule {
    pub(crate) fn new(channels: u32) -> Self {
        ChannelSchedule {
            busy_until_ns: vec![0; channels as usize],
        }
    }

    /// Schedules an operation of duration `latency_ns` on `channel` starting
    /// no earlier than `now_ns`; returns its completion time.
    pub(crate) fn schedule(&mut self, channel: u32, now_ns: u64, latency_ns: u64) -> u64 {
        let slot = &mut self.busy_until_ns[channel as usize];
        let start = (*slot).max(now_ns);
        *slot = start + latency_ns;
        *slot
    }

    /// Completion time of the last scheduled operation on `channel`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn busy_until(&self, channel: u32) -> u64 {
        self.busy_until_ns[channel as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_include_transfer() {
        let t = NandTiming::mlc_default();
        assert_eq!(t.read_latency(4096), 50_000 + 3 * 4096);
        assert_eq!(t.program_latency(4096), 500_000 + 3 * 4096);
        assert_eq!(t.erase_latency(), 3_500_000);
    }

    #[test]
    fn same_channel_serializes() {
        let mut s = ChannelSchedule::new(2);
        let a = s.schedule(0, 0, 100);
        let b = s.schedule(0, 0, 100);
        assert_eq!(a, 100);
        assert_eq!(b, 200);
    }

    #[test]
    fn different_channels_overlap() {
        let mut s = ChannelSchedule::new(2);
        let a = s.schedule(0, 0, 100);
        let b = s.schedule(1, 0, 100);
        assert_eq!(a, 100);
        assert_eq!(b, 100);
    }

    #[test]
    fn schedule_respects_now() {
        let mut s = ChannelSchedule::new(1);
        s.schedule(0, 0, 100);
        // Channel free at 100, but request arrives at 500.
        let done = s.schedule(0, 500, 50);
        assert_eq!(done, 550);
        assert_eq!(s.busy_until(0), 550);
    }
}
