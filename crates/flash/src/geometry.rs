//! Flash array geometry and physical page addressing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of the simulated NAND array: channels × chips × planes × blocks ×
/// pages, with a fixed page size in bytes.
///
/// The defaults mirror the Cosmos+ OpenSSD class of device scaled down for
/// simulation; experiments pick geometries sized to their workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Independent channels (parallel buses to flash).
    pub channels: u32,
    /// Chips (targets) per channel.
    pub chips_per_channel: u32,
    /// Planes per chip.
    pub planes_per_chip: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Page size in bytes (data area; OOB is modelled separately).
    pub page_size: usize,
}

impl FlashGeometry {
    /// A tiny geometry for unit tests: 2×2×1×8×8 pages of 4 KiB = 4 MiB.
    pub fn small_test() -> Self {
        FlashGeometry {
            channels: 2,
            chips_per_channel: 2,
            planes_per_chip: 1,
            blocks_per_plane: 8,
            pages_per_block: 8,
            page_size: 4096,
        }
    }

    /// A mid-size geometry for integration tests and benches:
    /// 4×2×2×64×64 × 4 KiB = 256 MiB.
    pub fn bench_default() -> Self {
        FlashGeometry {
            channels: 4,
            chips_per_channel: 2,
            planes_per_chip: 2,
            blocks_per_plane: 64,
            pages_per_block: 64,
            page_size: 4096,
        }
    }

    /// Builds a geometry with roughly `capacity_bytes` total capacity by
    /// scaling the number of blocks per plane of [`Self::bench_default`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is too small for even one block per plane.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        let base = FlashGeometry::bench_default();
        let plane_count = u64::from(base.channels)
            * u64::from(base.chips_per_channel)
            * u64::from(base.planes_per_chip);
        let block_bytes = u64::from(base.pages_per_block) * base.page_size as u64;
        let blocks_per_plane = capacity_bytes / (plane_count * block_bytes);
        assert!(
            blocks_per_plane >= 1,
            "capacity {capacity_bytes} too small for geometry"
        );
        FlashGeometry {
            blocks_per_plane: blocks_per_plane as u32,
            ..base
        }
    }

    /// Total number of planes across the array.
    pub fn total_planes(&self) -> u32 {
        self.channels * self.chips_per_channel * self.planes_per_chip
    }

    /// Total number of erase blocks across the array.
    pub fn total_blocks(&self) -> u32 {
        self.total_planes() * self.blocks_per_plane
    }

    /// Total number of pages across the array.
    pub fn total_pages(&self) -> u64 {
        u64::from(self.total_blocks()) * u64::from(self.pages_per_block)
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Bytes in one erase block.
    pub fn block_bytes(&self) -> u64 {
        u64::from(self.pages_per_block) * self.page_size as u64
    }

    /// Converts a global block index (`0..total_blocks`) into the [`Ppa`] of
    /// that block's first page.
    ///
    /// # Panics
    ///
    /// Panics if `block_index >= total_blocks()`.
    pub fn block_to_ppa(&self, block_index: u32) -> Ppa {
        assert!(
            block_index < self.total_blocks(),
            "block index out of range"
        );
        let blocks_per_chip = self.planes_per_chip * self.blocks_per_plane;
        let blocks_per_channel = self.chips_per_channel * blocks_per_chip;
        let channel = block_index / blocks_per_channel;
        let rem = block_index % blocks_per_channel;
        let chip = rem / blocks_per_chip;
        let rem = rem % blocks_per_chip;
        let plane = rem / self.blocks_per_plane;
        let block = rem % self.blocks_per_plane;
        Ppa::new(channel, chip, plane, block, 0)
    }

    /// Converts a [`Ppa`] to its global block index.
    pub fn block_index(&self, ppa: Ppa) -> u32 {
        let blocks_per_chip = self.planes_per_chip * self.blocks_per_plane;
        let blocks_per_channel = self.chips_per_channel * blocks_per_chip;
        ppa.channel * blocks_per_channel
            + ppa.chip * blocks_per_chip
            + ppa.plane * self.blocks_per_plane
            + ppa.block
    }

    /// Converts a [`Ppa`] to a global page index (`0..total_pages`).
    pub fn page_index(&self, ppa: Ppa) -> u64 {
        u64::from(self.block_index(ppa)) * u64::from(self.pages_per_block) + u64::from(ppa.page)
    }

    /// Converts a global page index back to a [`Ppa`].
    ///
    /// # Panics
    ///
    /// Panics if `page_index >= total_pages()`.
    pub fn page_from_index(&self, page_index: u64) -> Ppa {
        assert!(page_index < self.total_pages(), "page index out of range");
        let block = (page_index / u64::from(self.pages_per_block)) as u32;
        let page = (page_index % u64::from(self.pages_per_block)) as u32;
        let mut ppa = self.block_to_ppa(block);
        ppa.page = page;
        ppa
    }

    /// Validates that `ppa` addresses a page inside this geometry.
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.channel < self.channels
            && ppa.chip < self.chips_per_channel
            && ppa.plane < self.planes_per_chip
            && ppa.block < self.blocks_per_plane
            && ppa.page < self.pages_per_block
    }
}

/// A physical page address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ppa {
    /// Channel index.
    pub channel: u32,
    /// Chip index within the channel.
    pub chip: u32,
    /// Plane index within the chip.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Creates a physical page address.
    pub fn new(channel: u32, chip: u32, plane: u32, block: u32, page: u32) -> Self {
        Ppa {
            channel,
            chip,
            plane,
            block,
            page,
        }
    }

    /// The same block but page `page`.
    pub fn with_page(self, page: u32) -> Self {
        Ppa { page, ..self }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}.c{}.pl{}.b{}.p{}",
            self.channel, self.chip, self.plane, self.block, self.page
        )
    }
}

impl fmt::Debug for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_consistent() {
        let g = FlashGeometry::small_test();
        assert_eq!(g.total_planes(), 4);
        assert_eq!(g.total_blocks(), 32);
        assert_eq!(g.total_pages(), 256);
        assert_eq!(g.capacity_bytes(), 256 * 4096);
        assert_eq!(g.block_bytes(), 8 * 4096);
    }

    #[test]
    fn block_index_round_trip() {
        let g = FlashGeometry::small_test();
        for idx in 0..g.total_blocks() {
            let ppa = g.block_to_ppa(idx);
            assert!(g.contains(ppa), "{ppa}");
            assert_eq!(g.block_index(ppa), idx);
            assert_eq!(ppa.page, 0);
        }
    }

    #[test]
    fn page_index_round_trip() {
        let g = FlashGeometry::small_test();
        for idx in (0..g.total_pages()).step_by(7) {
            let ppa = g.page_from_index(idx);
            assert_eq!(g.page_index(ppa), idx);
        }
    }

    #[test]
    fn with_capacity_hits_target() {
        let g = FlashGeometry::with_capacity(64 * 1024 * 1024);
        assert_eq!(g.capacity_bytes(), 64 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "block index out of range")]
    fn block_to_ppa_rejects_out_of_range() {
        let g = FlashGeometry::small_test();
        g.block_to_ppa(g.total_blocks());
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = FlashGeometry::small_test();
        assert!(!g.contains(Ppa::new(99, 0, 0, 0, 0)));
        assert!(!g.contains(Ppa::new(0, 0, 0, 0, 99)));
    }

    #[test]
    fn ppa_display() {
        let ppa = Ppa::new(1, 2, 0, 3, 4);
        assert_eq!(ppa.to_string(), "ch1.c2.pl0.b3.p4");
    }

    #[test]
    fn with_page_changes_only_page() {
        let ppa = Ppa::new(1, 2, 0, 3, 4).with_page(7);
        assert_eq!(ppa, Ppa::new(1, 2, 0, 3, 7));
    }
}
