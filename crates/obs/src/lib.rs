//! Observability for the RSSD simulation stack: dual-timeline structured
//! tracing, a typed metrics registry, and host-side phase profiling.
//!
//! Everything in this crate is **zero-cost when disabled**: the sink and
//! profiler handles default to a disabled state whose emission paths are a
//! single `Option` branch, and no component of the simulator ever *reads*
//! anything back from the observability layer — observation cannot perturb
//! simulation, which is what keeps the workspace's byte-identical-report
//! determinism contracts intact with tracing enabled (pinned by proptest in
//! `rssd-fleet` and `rssd-faults`).
//!
//! There are **no globals**: a [`SinkHandle`] or [`ProfilerHandle`] is
//! threaded explicitly into each component (`set_trace_sink` /
//! `set_profiler` methods on the instrumented types). Handles are cheap
//! `Rc` clones, which is safe under the fleet's share-nothing model —
//! members build their whole device stack *inside* a worker thread and
//! extract the recorded events as plain data before returning.
//!
//! See DESIGN.md §10 for the dual-timeline model and the export format.

pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use chrome::export_chrome_trace;
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{ProfileBreakdown, ProfilerHandle};
pub use trace::{SinkHandle, TraceEvent, TraceEventKind};
