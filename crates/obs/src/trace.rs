//! Dual-timeline structured trace events and the explicit sink handle.
//!
//! Every event carries two timestamps: `sim_ns`, the simulated-device time
//! from the component's `SimClock` (the primary timeline — it is what the
//! Chrome export renders, so a Perfetto view shows the *device's* schedule,
//! pipelined NAND overlap and all), and `host_ns`, host wall-time relative
//! to the sink's creation (carried in the event args, for correlating
//! simulated work with where the simulator itself spends real time).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// What shape of event this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A complete span: `sim_ns .. sim_ns + dur_ns` on its track.
    Span {
        /// Span duration in simulated nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker.
    Instant,
}

/// One recorded event. Plain data (`Send`), so a fleet worker can extract
/// a member's events and ship them across the thread boundary even though
/// the [`SinkHandle`] itself is thread-local.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Track the event renders on, e.g. `"nand/ch0/pl1"`, `"link/uplink"`,
    /// `"host/rounds"`, `"member/3"`. One track per channel/plane/link/
    /// member is the export contract.
    pub track: String,
    /// Event name, e.g. `"program"`, `"gc_pass"`, `"retransmission"`.
    pub name: String,
    /// Span or instant.
    pub kind: TraceEventKind,
    /// Simulated time of the event (span start), in nanoseconds.
    pub sim_ns: u64,
    /// Host wall-time at emission, in nanoseconds since the sink was
    /// created. Non-deterministic by nature; it never feeds back into any
    /// simulated result.
    pub host_ns: u64,
    /// Free-form key/value annotations.
    pub args: Vec<(String, String)>,
}

/// The recording buffer behind an enabled sink.
#[derive(Debug)]
struct TraceBuffer {
    origin: Instant,
    events: Vec<TraceEvent>,
}

/// An explicit, clonable handle to a trace sink.
///
/// The default handle is **disabled** (the `NullSink`): every emission
/// method is a no-op behind one `Option` check, and nothing is allocated.
/// [`SinkHandle::recording`] creates an enabled sink; clones share the same
/// buffer, which is how one sink is threaded through a whole device stack
/// (device → FTL → NAND, plus the wire and the fault injector).
///
/// Deliberately `!Send`: sinks live and die inside one thread, matching
/// the fleet's share-nothing worker model. Extract events with
/// [`SinkHandle::take_events`] before crossing threads.
#[derive(Clone, Default)]
pub struct SinkHandle {
    buffer: Option<Rc<RefCell<TraceBuffer>>>,
    /// Prepended to every emitted track name. This is how several
    /// instrumented stacks share one buffer without their tracks colliding:
    /// an array hands shard *i* a `shard{i}/`-prefixed clone, a fleet hands
    /// member *m* an `m{m}/`-prefixed one.
    prefix: Option<Rc<str>>,
}

impl SinkHandle {
    /// The disabled sink (alias for `Default`): all emissions are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        SinkHandle::default()
    }

    /// A fresh recording sink.
    #[must_use]
    pub fn recording() -> Self {
        SinkHandle {
            buffer: Some(Rc::new(RefCell::new(TraceBuffer {
                origin: Instant::now(),
                events: Vec::new(),
            }))),
            prefix: None,
        }
    }

    /// A handle onto the same buffer whose emitted track names gain
    /// `prefix` in front (composing with any prefix this handle already
    /// has). Disabled handles stay disabled.
    #[must_use]
    pub fn with_track_prefix(&self, prefix: &str) -> SinkHandle {
        let combined = match &self.prefix {
            Some(existing) => format!("{existing}{prefix}"),
            None => prefix.to_string(),
        };
        SinkHandle {
            buffer: self.buffer.clone(),
            prefix: Some(Rc::from(combined.as_str())),
        }
    }

    /// Is this sink recording?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.buffer.is_some()
    }

    fn prefixed(&self, track: &str) -> String {
        match &self.prefix {
            Some(p) => format!("{p}{track}"),
            None => track.to_string(),
        }
    }

    /// Records a complete span `[start_ns, end_ns]` of simulated time on
    /// `track`. A span whose end precedes its start is clamped to zero
    /// duration rather than dropped.
    pub fn span(
        &self,
        track: &str,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&str, String)],
    ) {
        let Some(buffer) = &self.buffer else { return };
        let track = self.prefixed(track);
        let mut buffer = buffer.borrow_mut();
        let host_ns = buffer.origin.elapsed().as_nanos() as u64;
        buffer.events.push(TraceEvent {
            track,
            name: name.to_string(),
            kind: TraceEventKind::Span {
                dur_ns: end_ns.saturating_sub(start_ns),
            },
            sim_ns: start_ns,
            host_ns,
            args: args
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
    }

    /// Records an instantaneous event at simulated time `sim_ns` on `track`.
    pub fn instant(&self, track: &str, name: &str, sim_ns: u64, args: &[(&str, String)]) {
        let Some(buffer) = &self.buffer else { return };
        let track = self.prefixed(track);
        let mut buffer = buffer.borrow_mut();
        let host_ns = buffer.origin.elapsed().as_nanos() as u64;
        buffer.events.push(TraceEvent {
            track,
            name: name.to_string(),
            kind: TraceEventKind::Instant,
            sim_ns,
            host_ns,
            args: args
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
    }

    /// Number of events recorded so far (0 for a disabled sink).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffer.as_ref().map_or(0, |b| b.borrow().events.len())
    }

    /// True when no events have been recorded (always true when disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns the recorded events (empty for a disabled sink).
    /// The events are plain data and may cross threads.
    #[must_use]
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.buffer
            .as_ref()
            .map_or_else(Vec::new, |b| std::mem::take(&mut b.borrow_mut().events))
    }

    /// Exports the recorded events as Chrome trace-event JSON (see
    /// [`crate::chrome::export_chrome_trace`]) without draining them.
    #[must_use]
    pub fn export_chrome_json(&self) -> String {
        match &self.buffer {
            None => crate::chrome::export_chrome_trace(&[]),
            Some(b) => crate::chrome::export_chrome_trace(&b.borrow().events),
        }
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.buffer {
            None => write!(f, "SinkHandle(disabled)"),
            Some(b) => write!(f, "SinkHandle({} events)", b.borrow().events.len()),
        }
    }
}

/// Sink identity is *not* simulation state: two device stacks that differ
/// only in whether a sink is attached are byte-identical as far as any
/// simulated result is concerned, so handles compare equal unconditionally.
/// This keeps `PartialEq`-derived determinism contracts (fleet reports,
/// scorecards) meaningful on types that carry a handle.
impl PartialEq for SinkHandle {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for SinkHandle {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = SinkHandle::disabled();
        sink.span("t", "a", 0, 10, &[]);
        sink.instant("t", "b", 5, &[]);
        assert!(!sink.is_enabled());
        assert!(sink.is_empty());
        assert!(sink.take_events().is_empty());
    }

    #[test]
    fn recording_sink_shares_its_buffer_across_clones() {
        let sink = SinkHandle::recording();
        let clone = sink.clone();
        sink.span("nand/ch0/pl0", "program", 100, 600, &[("lpa", "3".into())]);
        clone.instant("link/up", "link_loss", 700, &[]);
        assert_eq!(sink.len(), 2);
        let events = clone.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "program");
        assert_eq!(events[0].kind, TraceEventKind::Span { dur_ns: 500 });
        assert_eq!(events[1].kind, TraceEventKind::Instant);
        assert!(sink.is_empty(), "take_events drains the shared buffer");
    }

    #[test]
    fn inverted_span_clamps_to_zero_duration() {
        let sink = SinkHandle::recording();
        sink.span("t", "x", 50, 10, &[]);
        let events = sink.take_events();
        assert_eq!(events[0].kind, TraceEventKind::Span { dur_ns: 0 });
    }

    #[test]
    fn track_prefixes_compose_and_share_the_buffer() {
        let sink = SinkHandle::recording();
        let member = sink.with_track_prefix("m3/");
        let shard = member.with_track_prefix("shard1/");
        sink.instant("faults", "power_cut", 1, &[]);
        member.instant("faults", "power_cut", 2, &[]);
        shard.span("nand/ch0/pl0", "program", 3, 4, &[]);
        let events = sink.take_events();
        let tracks: Vec<&str> = events.iter().map(|e| e.track.as_str()).collect();
        assert_eq!(tracks, ["faults", "m3/faults", "m3/shard1/nand/ch0/pl0"]);
        assert!(!SinkHandle::disabled().with_track_prefix("x/").is_enabled());
    }

    #[test]
    fn handles_compare_equal_regardless_of_state() {
        let a = SinkHandle::recording();
        a.instant("t", "x", 0, &[]);
        assert_eq!(a, SinkHandle::disabled());
    }
}
