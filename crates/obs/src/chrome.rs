//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! Renders [`TraceEvent`]s in the Trace Event Format's JSON-array shape:
//! one `"X"` (complete) event per span and one `"i"` (instant) event per
//! marker, with `ts`/`dur` in microseconds of **simulated** time. Each
//! distinct track name becomes its own thread (`tid`) under a single
//! process, named via `thread_name` metadata events and ordered with
//! `thread_sort_index`, so Perfetto shows one labeled row per NAND
//! channel/plane, link, host round loop and fleet member. Host wall-time
//! rides along as `host_ns` in every event's `args`.

use crate::trace::{TraceEvent, TraceEventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond resolution kept as decimals.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn args_json(event: &TraceEvent) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"host_ns\": {}", event.host_ns);
    for (k, v) in &event.args {
        let _ = write!(out, ", \"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// Exports `events` as a Chrome trace-event JSON document. Deterministic
/// given the events: tracks are numbered in sorted-name order.
#[must_use]
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    // Stable track numbering: sorted unique track names.
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    for event in events {
        let next = tids.len() + 1;
        tids.entry(&event.track).or_insert(next);
    }
    // BTreeMap iteration is name-sorted; renumber in that order.
    for (i, (_, tid)) in tids.iter_mut().enumerate() {
        *tid = i + 1;
    }

    let mut out = String::from("[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str("  ");
        out.push_str(&line);
    };

    for (track, tid) in &tids {
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                json_escape(track)
            ),
            &mut out,
            &mut first,
        );
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"sort_index\": {tid}}}}}"
            ),
            &mut out,
            &mut first,
        );
    }

    for event in events {
        let tid = tids[event.track.as_str()];
        let line = match event.kind {
            TraceEventKind::Span { dur_ns } => format!(
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"sim\", \"pid\": 1, \
                 \"tid\": {tid}, \"ts\": {}, \"dur\": {}, \"args\": {}}}",
                json_escape(&event.name),
                us(event.sim_ns),
                us(dur_ns),
                args_json(event)
            ),
            TraceEventKind::Instant => format!(
                "{{\"ph\": \"i\", \"name\": \"{}\", \"cat\": \"sim\", \"pid\": 1, \
                 \"tid\": {tid}, \"ts\": {}, \"s\": \"t\", \"args\": {}}}",
                json_escape(&event.name),
                us(event.sim_ns),
                args_json(event)
            ),
        };
        push(line, &mut out, &mut first);
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SinkHandle;

    fn sample_events() -> Vec<TraceEvent> {
        let sink = SinkHandle::recording();
        sink.span(
            "nand/ch1/pl0",
            "program",
            1_500,
            2_750,
            &[("lpa", "7".into())],
        );
        sink.span("nand/ch0/pl0", "read", 0, 900, &[]);
        sink.instant("link/uplink", "link_loss", 3_000, &[("seq", "2".into())]);
        sink.take_events()
    }

    #[test]
    fn export_is_valid_json_array_with_named_tracks() {
        let doc = export_chrome_trace(&sample_events());
        assert!(doc.trim_start().starts_with('['));
        assert!(doc.trim_end().ends_with(']'));
        // Tracks named via metadata, numbered in sorted order.
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"name\": \"link/uplink\""));
        assert!(doc.contains("\"name\": \"nand/ch0/pl0\""));
        // Span timestamps land in microseconds with ns decimals.
        assert!(doc.contains("\"ts\": 1.500"), "{doc}");
        assert!(doc.contains("\"dur\": 1.250"), "{doc}");
        // Instant events carry the "i" phase and a scope.
        assert!(doc.contains("\"ph\": \"i\""));
        // Dual timeline: host_ns present in args.
        assert!(doc.contains("\"host_ns\""));
        // No trailing comma before the closing bracket.
        assert!(!doc.contains(",\n]"));
    }

    #[test]
    fn track_numbering_is_sorted_and_stable() {
        let doc = export_chrome_trace(&sample_events());
        let link = doc.find("\"name\": \"link/uplink\"").unwrap();
        let ch0 = doc.find("\"name\": \"nand/ch0/pl0\"").unwrap();
        let ch1 = doc.find("\"name\": \"nand/ch1/pl0\"").unwrap();
        assert!(link < ch0 && ch0 < ch1, "metadata in sorted track order");
    }

    #[test]
    fn strings_are_escaped() {
        let sink = SinkHandle::recording();
        sink.instant("t\"rack", "na\\me", 0, &[("k", "line\nbreak".into())]);
        let doc = export_chrome_trace(&sink.take_events());
        assert!(doc.contains("t\\\"rack"));
        assert!(doc.contains("na\\\\me"));
        assert!(doc.contains("line\\nbreak"));
    }

    #[test]
    fn empty_trace_is_still_a_document() {
        let doc = export_chrome_trace(&[]);
        assert_eq!(doc.trim(), "[\n\n]".trim());
    }
}
