//! Typed metrics: counters, gauges, and log-linear histograms, with the
//! workspace's established `merge` discipline (associative, commutative,
//! `Default` as identity) so fleet workers' registries fold into the
//! member-id-ordered report merge like every other stats type.

use std::collections::BTreeMap;

/// Sub-bucket resolution bits — 16 sub-buckets per octave, the same
/// log-linear scheme as `rssd-ssd`'s `LatencyStats` (≤ 6% quantization
/// error at any magnitude).
const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKET_COUNT: u64 = 1 << SUB_BUCKET_BITS;
const SUB_BUCKET_MASK: u64 = SUB_BUCKET_COUNT - 1;

/// Bucket index of `value` in the log-linear layout: values below 16 map
/// to themselves (exact), larger values to 16 sub-buckets per octave.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKET_COUNT {
        return value as usize;
    }
    let msb = 63 - u64::leading_zeros(value);
    let octave = msb - SUB_BUCKET_BITS + 1;
    let sub = (value >> (msb - SUB_BUCKET_BITS)) & SUB_BUCKET_MASK;
    ((u64::from(octave) << SUB_BUCKET_BITS) + sub) as usize
}

/// Largest value mapping to bucket `index` (inclusive).
fn bucket_upper_edge(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKET_COUNT {
        return index;
    }
    let octave = index >> SUB_BUCKET_BITS;
    let sub = index & SUB_BUCKET_MASK;
    ((SUB_BUCKET_COUNT + sub + 1) << (octave - 1)) - 1
}

/// A log-linear histogram of `u64` samples (latencies in ns, sizes in
/// bytes, ...). 16 sub-buckets per octave; exact below 16.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let index = bucket_index(value);
        if index >= self.buckets.len() {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = if self.count == 1 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper edge of the bucket holding quantile `q` in `[0, 1]`, clamped
    /// to the recorded extremes (0 when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_edge(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`: elementwise bucket addition plus
    /// count/sum/min/max. Associative and commutative with the empty
    /// histogram as identity (unit-tested below).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (index, &n) in other.buckets.iter().enumerate() {
            self.buckets[index] += n;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A typed registry of named counters, gauges, and histograms.
///
/// Names are `BTreeMap` keys, so iteration (and therefore any derived
/// output) is deterministic. The registry itself follows the merge
/// discipline: counters add, gauges take the maximum, histograms merge
/// elementwise — all deterministic functions of simulated state, which is
/// what allows a registry to live inside `FleetReport` without weakening
/// its byte-identical-across-workers contract.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to counter `name` (creating it at 0).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of counter `name` (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to the maximum of its current value and `value`
    /// (high-watermark semantics, which is what makes gauge merge
    /// order-independent).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        *g = g.max(value);
    }

    /// Current value of gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Histogram `name`, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counter names and values, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self` under the merge discipline: counters add,
    /// gauges take max, histograms merge. `MetricsRegistry::default()` is
    /// the identity.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            let g = self.gauges.entry(name.clone()).or_insert(f64::MIN);
            *g = g.max(v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_continuous_and_monotone() {
        let mut last = 0;
        for v in 0..100_000u64 {
            let index = bucket_index(v);
            assert!(index >= last, "index regressed at {v}");
            assert!(
                v <= bucket_upper_edge(index),
                "v={v} above its bucket edge {}",
                bucket_upper_edge(index)
            );
            last = index;
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        for v in [100u64, 1_000, 50_000, 1_000_000, u32::MAX as u64] {
            let edge = bucket_upper_edge(bucket_index(v));
            assert!(
                (edge - v) as f64 / v as f64 <= 0.0625,
                "error at {v}: edge {edge}"
            );
        }
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000);
        assert!((h.mean() - 220.0).abs() < 1e-9);
        assert!(h.quantile(0.5) >= 20 && h.quantile(0.5) <= 32);
        assert_eq!(h.quantile(1.0), 1_000);
    }

    #[test]
    fn histogram_merge_identity() {
        let mut h = Histogram::new();
        for v in 0..500u64 {
            h.record(v * 37);
        }
        let snapshot = h.clone();
        h.merge(&Histogram::default());
        assert_eq!(h, snapshot, "empty histogram must be the merge identity");
        let mut empty = Histogram::default();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot, "identity on the left too");
    }

    #[test]
    fn histogram_merge_associativity_and_commutativity() {
        let mk = |seed: u64, n: u64| {
            let mut h = Histogram::new();
            for i in 0..n {
                h.record(seed.wrapping_mul(i + 1) % 1_000_000);
            }
            h
        };
        let (a, b, c) = (mk(17, 300), mk(23, 50), mk(999, 700));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge must be commutative");
    }

    #[test]
    fn registry_merge_discipline() {
        let mut a = MetricsRegistry::new();
        a.counter_add("nand.programs", 10);
        a.gauge_max("queue.depth", 8.0);
        a.histogram_record("latency", 500);

        let mut b = MetricsRegistry::new();
        b.counter_add("nand.programs", 5);
        b.counter_add("wire.retransmissions", 2);
        b.gauge_max("queue.depth", 3.0);
        b.histogram_record("latency", 700);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("nand.programs"), 15);
        assert_eq!(merged.counter("wire.retransmissions"), 2);
        assert_eq!(merged.gauge("queue.depth"), Some(8.0));
        assert_eq!(merged.histogram("latency").unwrap().count(), 2);

        // Identity.
        let snapshot = merged.clone();
        merged.merge(&MetricsRegistry::default());
        assert_eq!(merged, snapshot);

        // Commutativity.
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);
    }
}
