//! Host-side phase profiling for the simulator's own hot loops.
//!
//! A [`ProfilerHandle`] is threaded (like a trace sink) into the replay hot
//! path: `enter(phase)` / `exit()` bracket regions of host work, and the
//! profiler charges elapsed wall-time to whichever phase is on top of the
//! stack — **self-time** accounting, so nested phases never double-count
//! and the per-phase totals sum to exactly the profiled wall-clock span.
//! That structural identity is what lets the CI gate demand "phases sum to
//! ~100%" instead of trusting the instrumentation.
//!
//! Like the trace sink, a disabled handle (the default) compiles each
//! call down to one `Option` check.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Wall-clock time charged per phase, plus the total profiled span.
///
/// Phase names map to **self**-nanoseconds (time spent with that phase on
/// top of the stack); `total_ns` is the whole profiled span, and time
/// outside any `enter`/`exit` bracket is charged to the `"other"` phase,
/// so `phases.values().sum() == total_ns` holds by construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileBreakdown {
    /// Self-time per phase, in host nanoseconds.
    pub phases: BTreeMap<String, u64>,
    /// Total profiled wall-clock span, in host nanoseconds.
    pub total_ns: u64,
}

/// The phase charged when no explicit phase is active.
pub const OTHER_PHASE: &str = "other";

impl ProfileBreakdown {
    /// Self-time of `phase` (0 if never entered).
    #[must_use]
    pub fn phase_ns(&self, phase: &str) -> u64 {
        self.phases.get(phase).copied().unwrap_or(0)
    }

    /// `phase`'s share of the total, in percent (0 when nothing profiled).
    #[must_use]
    pub fn phase_pct(&self, phase: &str) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        100.0 * self.phase_ns(phase) as f64 / self.total_ns as f64
    }

    /// Phase names and self-times, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.phases.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: per-phase self-times and totals add.
    /// Associative and commutative with `default()` as identity — the
    /// fleet merge folds member breakdowns with this, in member-id order
    /// like every other stat (the order is immaterial here, but uniform).
    pub fn merge(&mut self, other: &ProfileBreakdown) {
        for (phase, &ns) in &other.phases {
            *self.phases.entry(phase.clone()).or_insert(0) += ns;
        }
        self.total_ns += other.total_ns;
    }
}

#[derive(Debug)]
struct ProfilerInner {
    /// Stack of active phase names.
    stack: Vec<&'static str>,
    /// Instant at which the phase currently on top started accruing.
    last: Instant,
    started: Instant,
    acc: BTreeMap<String, u64>,
}

impl ProfilerInner {
    fn charge_current(&mut self) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_nanos() as u64;
        let phase = self.stack.last().copied().unwrap_or(OTHER_PHASE);
        *self.acc.entry(phase.to_string()).or_insert(0) += elapsed;
        self.last = now;
    }
}

/// Explicit, clonable handle to a phase profiler. Default = disabled.
#[derive(Clone, Default)]
pub struct ProfilerHandle(Option<Rc<RefCell<ProfilerInner>>>);

impl ProfilerHandle {
    /// The disabled profiler: `enter`/`exit` are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        ProfilerHandle(None)
    }

    /// An enabled profiler; the profiled span starts now.
    #[must_use]
    pub fn enabled() -> Self {
        let now = Instant::now();
        ProfilerHandle(Some(Rc::new(RefCell::new(ProfilerInner {
            stack: Vec::new(),
            last: now,
            started: now,
            acc: BTreeMap::new(),
        }))))
    }

    /// Is this profiler collecting?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Enters `phase`: elapsed time since the last transition is charged to
    /// the enclosing phase (or `"other"` at top level), then `phase` starts
    /// accruing.
    pub fn enter(&self, phase: &'static str) {
        let Some(inner) = &self.0 else { return };
        let mut inner = inner.borrow_mut();
        inner.charge_current();
        inner.stack.push(phase);
    }

    /// Exits the current phase, charging its elapsed self-time. A spurious
    /// `exit` with an empty stack charges `"other"` and is otherwise
    /// harmless.
    pub fn exit(&self) {
        let Some(inner) = &self.0 else { return };
        let mut inner = inner.borrow_mut();
        inner.charge_current();
        inner.stack.pop();
    }

    /// Finishes the profiled span and returns the breakdown: any phases
    /// still open are closed, the remainder is charged to `"other"`, and
    /// `total_ns` is set so that the per-phase self-times sum to it
    /// exactly. The handle resets to a fresh span afterwards.
    #[must_use]
    pub fn finish(&self) -> ProfileBreakdown {
        let Some(inner) = &self.0 else {
            return ProfileBreakdown::default();
        };
        let mut inner = inner.borrow_mut();
        while !inner.stack.is_empty() {
            inner.charge_current();
            inner.stack.pop();
        }
        inner.charge_current();
        let phases = std::mem::take(&mut inner.acc);
        let total_ns = phases.values().sum();
        inner.started = Instant::now();
        inner.last = inner.started;
        ProfileBreakdown { phases, total_ns }
    }
}

impl std::fmt::Debug for ProfilerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "ProfilerHandle(disabled)"),
            Some(inner) => write!(
                f,
                "ProfilerHandle(depth {}, running {:?})",
                inner.borrow().stack.len(),
                inner.borrow().started.elapsed()
            ),
        }
    }
}

/// Like [`SinkHandle`](crate::SinkHandle): profiler identity is not
/// simulation state, so handles compare equal unconditionally.
impl PartialEq for ProfilerHandle {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for ProfilerHandle {}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(iters: u64) -> u64 {
        let mut acc = 1u64;
        for i in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc)
    }

    #[test]
    fn disabled_profiler_is_a_no_op() {
        let p = ProfilerHandle::disabled();
        p.enter("a");
        p.exit();
        assert!(!p.is_enabled());
        assert_eq!(p.finish(), ProfileBreakdown::default());
    }

    #[test]
    fn self_times_sum_exactly_to_total() {
        let p = ProfilerHandle::enabled();
        p.enter("sort");
        spin(10_000);
        p.enter("inner");
        spin(10_000);
        p.exit();
        spin(10_000);
        p.exit();
        spin(10_000);
        let breakdown = p.finish();
        let sum: u64 = breakdown.phases.values().sum();
        assert_eq!(sum, breakdown.total_ns, "structural 100% identity");
        assert!(breakdown.phase_ns("sort") > 0);
        assert!(breakdown.phase_ns("inner") > 0);
        assert!(breakdown.phase_ns(OTHER_PHASE) > 0);
        let pct: f64 = breakdown
            .iter()
            .map(|(name, _)| breakdown.phase_pct(name))
            .sum();
        assert!((pct - 100.0).abs() < 1e-6, "pct sum {pct}");
    }

    #[test]
    fn unbalanced_exits_are_harmless() {
        let p = ProfilerHandle::enabled();
        p.exit();
        p.enter("a");
        let breakdown = p.finish();
        let sum: u64 = breakdown.phases.values().sum();
        assert_eq!(sum, breakdown.total_ns);
    }

    #[test]
    fn breakdown_merge_identity_and_associativity() {
        let mk = |a: u64, b: u64| {
            let mut phases = BTreeMap::new();
            phases.insert("sort".to_string(), a);
            phases.insert("wire".to_string(), b);
            ProfileBreakdown {
                phases,
                total_ns: a + b,
            }
        };
        let (a, b, c) = (mk(5, 10), mk(100, 1), mk(7, 7));
        let mut with_identity = a.clone();
        with_identity.merge(&ProfileBreakdown::default());
        assert_eq!(with_identity, a);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.total_ns, 130);
    }

    #[test]
    fn finish_resets_for_a_fresh_span() {
        let p = ProfilerHandle::enabled();
        p.enter("a");
        p.exit();
        let first = p.finish();
        assert!(first.total_ns > 0);
        let second = p.finish();
        assert!(
            second.phase_ns("a") == 0,
            "phase a must not leak into the next span"
        );
    }
}
