//! Ransomware detection algorithms.
//!
//! RSSD offloads detection to the remote side: because the hardware-assisted
//! log preserves every operation in time order, detectors can run on the
//! remote server's ample compute, over arbitrarily long horizons, and with
//! algorithms that can be upgraded without touching device firmware. The
//! same detectors also serve as the in-device logic of the
//! SSDInsider/RBlocker-style baselines in Table 1 — where their blind spots
//! (rate-limited and trim-based attacks) become visible.
//!
//! Detectors consume [`WriteObservation`]s — one per logged write/trim —
//! and an [`Ensemble`] combines their votes:
//!
//! * [`EntropyDetector`] — encrypted payloads are high-entropy and
//!   incompressible.
//! * [`OverwriteCorrelator`] — read-then-overwrite within a window is the
//!   signature of in-place encryption.
//! * [`TrimSurgeDetector`] — a burst of trims following overwrites marks the
//!   trimming attack's cleanup phase.
//! * [`TimingProfiler`] — cumulative long-horizon coverage tracking that
//!   catches rate-limited ("timing attack") encryption which per-window
//!   detectors miss.

pub mod ensemble;
pub mod entropy;
pub mod observation;
pub mod pattern;
pub mod timing;

pub use ensemble::{Ensemble, Verdict};
pub use entropy::EntropyDetector;
pub use observation::{merge_time_ordered, WriteObservation};
pub use pattern::{OverwriteCorrelator, TrimSurgeDetector};
pub use timing::TimingProfiler;

/// A detector consumes observations and exposes a suspicion score in
/// `[0.0, 1.0]`.
pub trait Detector {
    /// Human-readable detector name.
    fn name(&self) -> &'static str;

    /// Feeds one observation.
    fn observe(&mut self, obs: &WriteObservation);

    /// Current suspicion score in `[0.0, 1.0]`.
    fn score(&self) -> f64;

    /// Resets internal state.
    fn reset(&mut self);
}
