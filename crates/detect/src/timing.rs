//! Long-horizon profiling that catches the timing attack.
//!
//! Window-based detectors normalize by recent activity, so an attacker who
//! encrypts a few pages an hour hides inside the noise. The profiler instead
//! accumulates the set of *distinct* logical pages that have ever been
//! overwritten with near-ciphertext entropy, and compares it to the device's
//! seen working set: however slowly the attacker proceeds, that coverage
//! ratio climbs monotonically. This is only practical on the remote side —
//! it needs unbounded history, which is exactly what RSSD's offloaded log
//! provides.

use crate::observation::WriteObservation;
use crate::Detector;
use std::collections::HashSet;

/// Cumulative encrypted-coverage profiler.
#[derive(Clone, Debug)]
pub struct TimingProfiler {
    threshold_bits: f64,
    /// Distinct LPAs ever overwritten with high-entropy data.
    encrypted_lpas: HashSet<u64>,
    /// Distinct LPAs ever seen valid (written at all).
    seen_lpas: HashSet<u64>,
    /// Coverage fraction at which the score saturates to 1.0.
    saturation: f64,
    /// Minimum distinct encrypted pages before scoring (noise floor).
    min_encrypted: usize,
}

impl TimingProfiler {
    /// Saturates at 10 % coverage, 64-page noise floor.
    pub fn new() -> Self {
        Self::with_params(0.10, 64, 7.2)
    }

    /// Explicit saturation coverage, noise floor, and entropy threshold.
    pub fn with_params(saturation: f64, min_encrypted: usize, threshold_bits: f64) -> Self {
        TimingProfiler {
            threshold_bits,
            encrypted_lpas: HashSet::new(),
            seen_lpas: HashSet::new(),
            saturation: saturation.max(1e-6),
            min_encrypted: min_encrypted.max(1),
        }
    }

    /// Distinct pages flagged as encrypted so far.
    pub fn encrypted_pages(&self) -> usize {
        self.encrypted_lpas.len()
    }
}

impl Default for TimingProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for TimingProfiler {
    fn name(&self) -> &'static str {
        "timing-profile"
    }

    fn observe(&mut self, obs: &WriteObservation) {
        self.seen_lpas.insert(obs.lpa);
        if obs.is_trim {
            return;
        }
        if obs.overwrote_valid && obs.entropy_bits >= self.threshold_bits {
            self.encrypted_lpas.insert(obs.lpa);
        } else {
            // Page rewritten with benign data: no longer held hostage.
            self.encrypted_lpas.remove(&obs.lpa);
        }
    }

    fn score(&self) -> f64 {
        if self.encrypted_lpas.len() < self.min_encrypted || self.seen_lpas.is_empty() {
            return 0.0;
        }
        let coverage = self.encrypted_lpas.len() as f64 / self.seen_lpas.len() as f64;
        (coverage / self.saturation).min(1.0)
    }

    fn reset(&mut self) {
        self.encrypted_lpas.clear();
        self.seen_lpas.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_encryption_still_accumulates() {
        let mut d = TimingProfiler::new();
        // Background: 10k distinct benign pages.
        for i in 0..10_000u64 {
            d.observe(&WriteObservation::fresh_write(i, i, 4.0));
        }
        // Attacker encrypts 10 pages per simulated hour for 100 hours.
        let hour = 3_600_000_000_000u64;
        for h in 0..100u64 {
            for k in 0..10u64 {
                let lpa = h * 10 + k;
                d.observe(&WriteObservation::overwrite(h * hour, lpa, 7.9, false));
            }
        }
        assert!(
            d.score() >= 1.0 - 1e-9,
            "1000/10000 coverage saturates: {}",
            d.score()
        );
        assert_eq!(d.encrypted_pages(), 1000);
    }

    #[test]
    fn benign_churn_stays_quiet() {
        let mut d = TimingProfiler::new();
        for i in 0..10_000u64 {
            d.observe(&WriteObservation::fresh_write(i, i % 1000, 4.0));
        }
        // Occasional high-entropy writes (media files) under the floor.
        for i in 0..30u64 {
            d.observe(&WriteObservation::overwrite(i, i, 7.9, false));
        }
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn benign_rewrite_clears_page() {
        let mut d = TimingProfiler::with_params(0.10, 1, 7.2);
        for i in 0..100u64 {
            d.observe(&WriteObservation::fresh_write(i, i, 4.0));
        }
        for i in 0..50u64 {
            d.observe(&WriteObservation::overwrite(i, i, 7.9, false));
        }
        assert!(d.score() > 0.0);
        // User restores files (low-entropy rewrites).
        for i in 0..50u64 {
            d.observe(&WriteObservation::overwrite(i, i, 3.0, false));
        }
        assert_eq!(d.encrypted_pages(), 0);
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn empty_profiler_scores_zero() {
        assert_eq!(TimingProfiler::new().score(), 0.0);
    }
}
