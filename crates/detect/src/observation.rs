//! The detector input record.

use serde::{Deserialize, Serialize};

/// One observed write or trim, as reconstructed from the hardware-assisted
/// log (or observed inline by an in-device detector baseline).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WriteObservation {
    /// When the operation was issued.
    pub at_ns: u64,
    /// Logical page touched.
    pub lpa: u64,
    /// Shannon entropy of the written payload in bits/byte (0 for trims).
    pub entropy_bits: f64,
    /// Did this write overwrite a previously valid page?
    pub overwrote_valid: bool,
    /// Was the overwritten page read within the correlation window before
    /// this write (read-encrypt-writeback signature)?
    pub read_before_overwrite: bool,
    /// Is this a trim rather than a write?
    pub is_trim: bool,
}

impl WriteObservation {
    /// A benign-looking fresh write.
    pub fn fresh_write(at_ns: u64, lpa: u64, entropy_bits: f64) -> Self {
        WriteObservation {
            at_ns,
            lpa,
            entropy_bits,
            overwrote_valid: false,
            read_before_overwrite: false,
            is_trim: false,
        }
    }

    /// An overwrite of existing data.
    pub fn overwrite(at_ns: u64, lpa: u64, entropy_bits: f64, read_before: bool) -> Self {
        WriteObservation {
            at_ns,
            lpa,
            entropy_bits,
            overwrote_valid: true,
            read_before_overwrite: read_before,
            is_trim: false,
        }
    }

    /// A trim of a valid page.
    pub fn trim(at_ns: u64, lpa: u64) -> Self {
        WriteObservation {
            at_ns,
            lpa,
            entropy_bits: 0.0,
            overwrote_valid: true,
            read_before_overwrite: false,
            is_trim: true,
        }
    }
}

/// Merges per-device observation streams into one fleet-wide stream in
/// global time order.
///
/// Each input stream must itself be time-ordered (they are: each comes from
/// one device's evidence chain, which logs in arrival order). Ties on
/// `at_ns` are broken by stream index, and within a stream the original
/// order is preserved, so the merge is deterministic.
///
/// This is the input side of fleet-level detection: a campaign that spreads
/// its writes across N shards shows each per-shard detector only 1/N of the
/// signal, while the merged stream carries all of it (see `ArrayDetector`
/// in `rssd-array`).
pub fn merge_time_ordered(streams: &[Vec<WriteObservation>]) -> Vec<WriteObservation> {
    let total = streams.iter().map(Vec::len).sum();
    let mut tagged: Vec<(u64, usize, usize)> = Vec::with_capacity(total);
    for (stream_idx, stream) in streams.iter().enumerate() {
        for (pos, obs) in stream.iter().enumerate() {
            tagged.push((obs.at_ns, stream_idx, pos));
        }
    }
    tagged.sort_unstable();
    tagged
        .into_iter()
        .map(|(_, stream_idx, pos)| streams[stream_idx][pos])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let w = WriteObservation::fresh_write(1, 2, 3.0);
        assert!(!w.overwrote_valid && !w.is_trim);
        let o = WriteObservation::overwrite(1, 2, 7.9, true);
        assert!(o.overwrote_valid && o.read_before_overwrite);
        let t = WriteObservation::trim(1, 2);
        assert!(t.is_trim && t.overwrote_valid);
        assert_eq!(t.entropy_bits, 0.0);
    }

    #[test]
    fn merge_orders_globally_and_breaks_ties_by_stream() {
        let a = vec![
            WriteObservation::fresh_write(10, 1, 1.0),
            WriteObservation::fresh_write(30, 2, 1.0),
        ];
        let b = vec![
            WriteObservation::fresh_write(10, 3, 2.0),
            WriteObservation::fresh_write(20, 4, 2.0),
        ];
        let merged = merge_time_ordered(&[a, b]);
        let order: Vec<u64> = merged.iter().map(|o| o.lpa).collect();
        // t=10 tie: stream 0 first; then t=20 from stream 1, t=30 from 0.
        assert_eq!(order, vec![1, 3, 4, 2]);
    }

    #[test]
    fn merge_of_empty_and_singleton_streams() {
        assert!(merge_time_ordered(&[]).is_empty());
        let only = vec![WriteObservation::trim(5, 9)];
        let merged = merge_time_ordered(&[Vec::new(), only.clone()]);
        assert_eq!(merged, only);
    }

    #[test]
    fn merge_preserves_within_stream_order_at_equal_times() {
        // Two same-timestamp observations in one stream must not swap.
        let s = vec![
            WriteObservation::overwrite(7, 1, 7.9, false),
            WriteObservation::overwrite(7, 2, 7.9, false),
        ];
        let merged = merge_time_ordered(&[s]);
        assert_eq!(merged[0].lpa, 1);
        assert_eq!(merged[1].lpa, 2);
    }
}
