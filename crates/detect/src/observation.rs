//! The detector input record.

use serde::{Deserialize, Serialize};

/// One observed write or trim, as reconstructed from the hardware-assisted
/// log (or observed inline by an in-device detector baseline).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WriteObservation {
    /// When the operation was issued.
    pub at_ns: u64,
    /// Logical page touched.
    pub lpa: u64,
    /// Shannon entropy of the written payload in bits/byte (0 for trims).
    pub entropy_bits: f64,
    /// Did this write overwrite a previously valid page?
    pub overwrote_valid: bool,
    /// Was the overwritten page read within the correlation window before
    /// this write (read-encrypt-writeback signature)?
    pub read_before_overwrite: bool,
    /// Is this a trim rather than a write?
    pub is_trim: bool,
}

impl WriteObservation {
    /// A benign-looking fresh write.
    pub fn fresh_write(at_ns: u64, lpa: u64, entropy_bits: f64) -> Self {
        WriteObservation {
            at_ns,
            lpa,
            entropy_bits,
            overwrote_valid: false,
            read_before_overwrite: false,
            is_trim: false,
        }
    }

    /// An overwrite of existing data.
    pub fn overwrite(at_ns: u64, lpa: u64, entropy_bits: f64, read_before: bool) -> Self {
        WriteObservation {
            at_ns,
            lpa,
            entropy_bits,
            overwrote_valid: true,
            read_before_overwrite: read_before,
            is_trim: false,
        }
    }

    /// A trim of a valid page.
    pub fn trim(at_ns: u64, lpa: u64) -> Self {
        WriteObservation {
            at_ns,
            lpa,
            entropy_bits: 0.0,
            overwrote_valid: true,
            read_before_overwrite: false,
            is_trim: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let w = WriteObservation::fresh_write(1, 2, 3.0);
        assert!(!w.overwrote_valid && !w.is_trim);
        let o = WriteObservation::overwrite(1, 2, 7.9, true);
        assert!(o.overwrote_valid && o.read_before_overwrite);
        let t = WriteObservation::trim(1, 2);
        assert!(t.is_trim && t.overwrote_valid);
        assert_eq!(t.entropy_bits, 0.0);
    }
}
