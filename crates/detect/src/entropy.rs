//! Entropy-based detection: ciphertext is incompressible.

use crate::observation::WriteObservation;
use crate::Detector;
use std::collections::VecDeque;

/// Flags when a large fraction of recent overwrites carry near-ciphertext
/// entropy. Fast against classic ransomware; evadable by rate-limiting
/// (which dilutes the window) — that gap is the timing attack.
#[derive(Clone, Debug)]
pub struct EntropyDetector {
    window: usize,
    threshold_bits: f64,
    recent: VecDeque<bool>,
    high_count: usize,
    min_samples: usize,
}

impl EntropyDetector {
    /// Sliding window of 256 overwrites, ciphertext threshold 7.2 bits/byte.
    pub fn new() -> Self {
        Self::with_params(256, 7.2, 32)
    }

    /// Explicit window length, entropy threshold, and minimum samples before
    /// the detector will score.
    pub fn with_params(window: usize, threshold_bits: f64, min_samples: usize) -> Self {
        EntropyDetector {
            window: window.max(1),
            threshold_bits,
            recent: VecDeque::new(),
            high_count: 0,
            min_samples: min_samples.max(1),
        }
    }
}

impl Default for EntropyDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for EntropyDetector {
    fn name(&self) -> &'static str {
        "entropy"
    }

    fn observe(&mut self, obs: &WriteObservation) {
        if obs.is_trim || !obs.overwrote_valid {
            return;
        }
        let high = obs.entropy_bits >= self.threshold_bits;
        self.recent.push_back(high);
        if high {
            self.high_count += 1;
        }
        if self.recent.len() > self.window && self.recent.pop_front() == Some(true) {
            self.high_count -= 1;
        }
    }

    fn score(&self) -> f64 {
        if self.recent.len() < self.min_samples {
            return 0.0;
        }
        self.high_count as f64 / self.recent.len() as f64
    }

    fn reset(&mut self) {
        self.recent.clear();
        self.high_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut EntropyDetector, n: usize, entropy: f64) {
        for i in 0..n {
            det.observe(&WriteObservation::overwrite(
                i as u64, i as u64, entropy, false,
            ));
        }
    }

    #[test]
    fn silent_before_min_samples() {
        let mut d = EntropyDetector::new();
        feed(&mut d, 10, 8.0);
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn flags_ciphertext_overwrites() {
        let mut d = EntropyDetector::new();
        feed(&mut d, 100, 7.9);
        assert!(d.score() > 0.9);
    }

    #[test]
    fn ignores_low_entropy_writes() {
        let mut d = EntropyDetector::new();
        feed(&mut d, 100, 4.0);
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn fresh_writes_do_not_count() {
        let mut d = EntropyDetector::new();
        for i in 0..100 {
            d.observe(&WriteObservation::fresh_write(i, i, 8.0));
        }
        assert_eq!(
            d.score(),
            0.0,
            "high-entropy *new* data is not encryption of user data"
        );
    }

    #[test]
    fn window_slides() {
        let mut d = EntropyDetector::with_params(50, 7.2, 10);
        feed(&mut d, 50, 7.9); // fill with hot
        feed(&mut d, 50, 1.0); // then cold pushes hot out
        assert!(d.score() < 0.1, "score {}", d.score());
    }

    #[test]
    fn reset_clears() {
        let mut d = EntropyDetector::new();
        feed(&mut d, 100, 8.0);
        d.reset();
        assert_eq!(d.score(), 0.0);
    }
}
