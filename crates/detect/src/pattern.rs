//! I/O-pattern detectors: read-encrypt-writeback correlation and trim
//! surges.

use crate::observation::WriteObservation;
use crate::Detector;
use std::collections::VecDeque;

/// Flags when recent overwrites are dominated by the read-then-overwrite
/// pattern (the encryptor must read plaintext before writing ciphertext).
#[derive(Clone, Debug)]
pub struct OverwriteCorrelator {
    window: usize,
    recent: VecDeque<bool>,
    correlated: usize,
    min_samples: usize,
}

impl OverwriteCorrelator {
    /// Window of 256 overwrites, 32-sample warm-up.
    pub fn new() -> Self {
        Self::with_params(256, 32)
    }

    /// Explicit window and warm-up.
    pub fn with_params(window: usize, min_samples: usize) -> Self {
        OverwriteCorrelator {
            window: window.max(1),
            recent: VecDeque::new(),
            correlated: 0,
            min_samples: min_samples.max(1),
        }
    }
}

impl Default for OverwriteCorrelator {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for OverwriteCorrelator {
    fn name(&self) -> &'static str {
        "overwrite-correlation"
    }

    fn observe(&mut self, obs: &WriteObservation) {
        if obs.is_trim || !obs.overwrote_valid {
            return;
        }
        self.recent.push_back(obs.read_before_overwrite);
        if obs.read_before_overwrite {
            self.correlated += 1;
        }
        if self.recent.len() > self.window && self.recent.pop_front() == Some(true) {
            self.correlated -= 1;
        }
    }

    fn score(&self) -> f64 {
        if self.recent.len() < self.min_samples {
            return 0.0;
        }
        self.correlated as f64 / self.recent.len() as f64
    }

    fn reset(&mut self) {
        self.recent.clear();
        self.correlated = 0;
    }
}

/// Flags a surge of trims of valid data: the trimming attack's second phase
/// (encrypt to new locations, then trim the originals — or trim directly).
#[derive(Clone, Debug)]
pub struct TrimSurgeDetector {
    window_ns: u64,
    trim_times: VecDeque<u64>,
    surge_threshold: usize,
}

impl TrimSurgeDetector {
    /// 60-simulated-second window, 128-trim surge threshold.
    pub fn new() -> Self {
        Self::with_params(60_000_000_000, 128)
    }

    /// Explicit window and threshold.
    pub fn with_params(window_ns: u64, surge_threshold: usize) -> Self {
        TrimSurgeDetector {
            window_ns,
            trim_times: VecDeque::new(),
            surge_threshold: surge_threshold.max(1),
        }
    }
}

impl Default for TrimSurgeDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for TrimSurgeDetector {
    fn name(&self) -> &'static str {
        "trim-surge"
    }

    fn observe(&mut self, obs: &WriteObservation) {
        if !obs.is_trim {
            return;
        }
        self.trim_times.push_back(obs.at_ns);
        while let Some(&front) = self.trim_times.front() {
            if obs.at_ns.saturating_sub(front) > self.window_ns {
                self.trim_times.pop_front();
            } else {
                break;
            }
        }
    }

    fn score(&self) -> f64 {
        (self.trim_times.len() as f64 / self.surge_threshold as f64).min(1.0)
    }

    fn reset(&mut self) {
        self.trim_times.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlator_flags_read_encrypt_writeback() {
        let mut d = OverwriteCorrelator::new();
        for i in 0..100u64 {
            d.observe(&WriteObservation::overwrite(i, i, 7.9, true));
        }
        assert!(d.score() > 0.9);
    }

    #[test]
    fn correlator_ignores_blind_overwrites() {
        let mut d = OverwriteCorrelator::new();
        for i in 0..100u64 {
            d.observe(&WriteObservation::overwrite(i, i, 4.0, false));
        }
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn correlator_warm_up() {
        let mut d = OverwriteCorrelator::new();
        for i in 0..10u64 {
            d.observe(&WriteObservation::overwrite(i, i, 7.9, true));
        }
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn trim_surge_fires_on_burst() {
        let mut d = TrimSurgeDetector::new();
        for i in 0..200u64 {
            d.observe(&WriteObservation::trim(i * 1_000, i));
        }
        assert!((d.score() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trim_surge_quiet_on_sparse_trims() {
        let mut d = TrimSurgeDetector::new();
        // One trim every 10 simulated minutes.
        for i in 0..50u64 {
            d.observe(&WriteObservation::trim(i * 600_000_000_000, i));
        }
        assert!(d.score() < 0.05, "score {}", d.score());
    }

    #[test]
    fn trim_surge_ignores_writes() {
        let mut d = TrimSurgeDetector::new();
        for i in 0..500u64 {
            d.observe(&WriteObservation::overwrite(i, i, 8.0, true));
        }
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn resets_clear_state() {
        let mut c = OverwriteCorrelator::new();
        let mut t = TrimSurgeDetector::new();
        for i in 0..200u64 {
            c.observe(&WriteObservation::overwrite(i, i, 8.0, true));
            t.observe(&WriteObservation::trim(i, i));
        }
        c.reset();
        t.reset();
        assert_eq!(c.score(), 0.0);
        assert_eq!(t.score(), 0.0);
    }
}
