//! Detector ensemble and verdicts.

use crate::entropy::EntropyDetector;
use crate::observation::WriteObservation;
use crate::pattern::{OverwriteCorrelator, TrimSurgeDetector};
use crate::timing::TimingProfiler;
use crate::Detector;
use serde::{Deserialize, Serialize};

/// Classification produced by the ensemble.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Nothing notable.
    #[default]
    Benign,
    /// Elevated signals; worth flagging for an operator.
    Suspicious,
    /// Confident ransomware detection.
    Ransomware,
}

/// A weighted ensemble of the four detectors with a maximum-signal fallback:
/// any single detector at full confidence forces a detection, because the
/// attacks are designed so that each evades *most* detectors.
#[derive(Debug)]
pub struct Ensemble {
    entropy: EntropyDetector,
    correlator: OverwriteCorrelator,
    trim_surge: TrimSurgeDetector,
    timing: TimingProfiler,
    observations: u64,
}

impl Ensemble {
    /// Builds the default ensemble.
    pub fn new() -> Self {
        Ensemble {
            entropy: EntropyDetector::new(),
            correlator: OverwriteCorrelator::new(),
            trim_surge: TrimSurgeDetector::new(),
            timing: TimingProfiler::new(),
            observations: 0,
        }
    }

    /// Feeds one observation to every member.
    pub fn observe(&mut self, obs: &WriteObservation) {
        self.entropy.observe(obs);
        self.correlator.observe(obs);
        self.trim_surge.observe(obs);
        self.timing.observe(obs);
        self.observations += 1;
    }

    /// Feeds a batch.
    pub fn observe_all<'a, I: IntoIterator<Item = &'a WriteObservation>>(&mut self, obs: I) {
        for o in obs {
            self.observe(o);
        }
    }

    /// Observations consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Combined score: weighted mean with a max-signal floor.
    pub fn score(&self) -> f64 {
        let weighted = 0.30 * self.entropy.score()
            + 0.30 * self.correlator.score()
            + 0.20 * self.trim_surge.score()
            + 0.20 * self.timing.score();
        let strongest = self
            .member_scores()
            .into_iter()
            .map(|(_, s)| s)
            .fold(0.0f64, f64::max);
        weighted.max(if strongest >= 0.99 { 0.9 } else { 0.0 })
    }

    /// Per-member scores (for the forensic report).
    pub fn member_scores(&self) -> Vec<(&'static str, f64)> {
        vec![
            (self.entropy.name(), self.entropy.score()),
            (self.correlator.name(), self.correlator.score()),
            (self.trim_surge.name(), self.trim_surge.score()),
            (self.timing.name(), self.timing.score()),
        ]
    }

    /// Current verdict: `Ransomware` at ≥ 0.6, `Suspicious` at ≥ 0.3.
    pub fn verdict(&self) -> Verdict {
        let s = self.score();
        if s >= 0.6 {
            Verdict::Ransomware
        } else if s >= 0.3 {
            Verdict::Suspicious
        } else {
            Verdict::Benign
        }
    }

    /// Emits the current verdict, combined score and every member score as
    /// one instant on the `detect` track of `sink`, stamped at simulated
    /// time `sim_ns`. No-op on a disabled sink.
    pub fn trace_verdict(&self, sink: &rssd_obs::SinkHandle, sim_ns: u64) {
        if !sink.is_enabled() {
            return;
        }
        let mut args = vec![
            ("verdict", format!("{:?}", self.verdict())),
            ("score", format!("{:.3}", self.score())),
            ("observations", self.observations.to_string()),
        ];
        for (name, score) in self.member_scores() {
            args.push((name, format!("{score:.3}")));
        }
        sink.instant("detect", "verdict", sim_ns, &args);
    }

    /// Resets all members.
    pub fn reset(&mut self) {
        self.entropy.reset();
        self.correlator.reset();
        self.trim_surge.reset();
        self.timing.reset();
        self.observations = 0;
    }
}

impl Default for Ensemble {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_workload_stays_benign() {
        let mut e = Ensemble::new();
        for i in 0..5_000u64 {
            // Mixed fresh writes and low-entropy overwrites, no read
            // correlation, no trims.
            if i % 3 == 0 {
                e.observe(&WriteObservation::overwrite(i * 1000, i % 500, 4.5, false));
            } else {
                e.observe(&WriteObservation::fresh_write(i * 1000, 1000 + i, 3.0));
            }
        }
        assert_eq!(e.verdict(), Verdict::Benign, "score {}", e.score());
    }

    #[test]
    fn classic_ransomware_detected() {
        let mut e = Ensemble::new();
        for i in 0..500u64 {
            e.observe(&WriteObservation::overwrite(i * 1000, i, 7.9, true));
        }
        assert_eq!(e.verdict(), Verdict::Ransomware);
    }

    #[test]
    fn trimming_attack_detected_by_surge() {
        let mut e = Ensemble::new();
        // Encrypt-to-new-place writes (fresh, evade entropy-overwrite), then
        // mass trim of originals.
        for i in 0..300u64 {
            e.observe(&WriteObservation::fresh_write(i * 1000, 10_000 + i, 7.9));
            e.observe(&WriteObservation::trim(i * 1000 + 1, i));
        }
        assert_eq!(e.verdict(), Verdict::Ransomware);
    }

    #[test]
    fn timing_attack_detected_long_horizon() {
        let mut e = Ensemble::new();
        let hour = 3_600_000_000_000u64;
        // Benign background across a large working set.
        for i in 0..20_000u64 {
            e.observe(&WriteObservation::fresh_write(i, i, 4.0));
        }
        // Slow encryptor: 8 pages/hour for 300 hours, spaced out so
        // window-based detectors see mostly benign traffic in between.
        for h in 0..300u64 {
            for k in 0..8u64 {
                e.observe(&WriteObservation::overwrite(
                    h * hour,
                    h * 8 + k,
                    7.9,
                    false,
                ));
            }
            for b in 0..100u64 {
                e.observe(&WriteObservation::fresh_write(
                    h * hour + 1,
                    30_000 + (h * 100 + b) % 5_000,
                    4.0,
                ));
            }
        }
        assert_eq!(
            e.verdict(),
            Verdict::Ransomware,
            "scores {:?}",
            e.member_scores()
        );
    }

    #[test]
    fn member_scores_exposed() {
        let e = Ensemble::new();
        let scores = e.member_scores();
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|(_, s)| *s == 0.0));
    }

    #[test]
    fn reset_returns_to_benign() {
        let mut e = Ensemble::new();
        for i in 0..500u64 {
            e.observe(&WriteObservation::overwrite(i, i, 7.9, true));
        }
        e.reset();
        assert_eq!(e.verdict(), Verdict::Benign);
        assert_eq!(e.observations(), 0);
    }
}
